"""Table 2: detection success rate for 1/2/3 misplaced books."""

from conftest import emit, run_once

from repro.evaluation.experiments import table2_misplaced_books
from repro.reporting.tables import format_series


def test_table2_misplaced_books(benchmark):
    result = run_once(benchmark, table2_misplaced_books, repetitions=3)
    emit(
        "Table 2 — misplaced book detection success rate",
        format_series({f"{k} book(s)": v for k, v in result.items()}, name="success rate")
        + "\npaper: 98% / 97% / 98% for 1 / 2 / 3 misplaced books",
    )
    assert all(0.0 <= rate <= 1.0 for rate in result.values())
