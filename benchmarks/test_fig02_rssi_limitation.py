"""Figure 2: RSSI fluctuates under multipath; peak order is unreliable."""

from conftest import emit, run_once

from repro.evaluation.experiments import fig02_rssi_limitation
from repro.reporting.tables import format_table


def test_fig02_rssi_limitation(benchmark):
    result = run_once(benchmark, fig02_rssi_limitation)
    rows = [
        (tag_id[-6:], f"{result.peak_time_s[tag_id]:.2f}s", len(result.times_ms[tag_id]))
        for tag_id in result.physical_order
    ]
    emit(
        "Figure 2 — peak-RSSI times (physical order top to bottom)",
        format_table(("tag", "peak time", "samples"), rows)
        + f"\npeak order matches physical order: {result.peak_order_matches_physical}"
        + "\npaper: peak RSSI order is inconsistent with the actual tag order",
    )
    assert len(result.physical_order) == 2
