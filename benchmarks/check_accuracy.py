"""Assert floors and the paper's scheme ordering on ``BENCH_accuracy.json``.

The accuracy twin of ``check_speedups.py``: CI runs it after the accuracy
recorder so an ordering-accuracy regression fails the build the same way an
eroded speedup does.  Today a PR could degrade STPP from ~88% toward
BackPos-level and every timing floor would still pass — this gate closes
that hole.  Enforced, with explicit tolerances:

* **schema** — the snapshot must carry the leaderboard shape (shared
  validator in ``repro.bench.schema``; a floor check against a truncated
  record proves nothing);
* **pinned floors** — each scheme's combined accuracy, averaged over every
  scenario registered in the declarative matrix (the legacy
  library/airport/warehouse trio plus the committed ``specs/*.json``
  deployments), must stay at or above its recorded level minus a margin;
  STPP also has per-scenario floors;
* **STPP on top** — STPP's cross-scenario mean must be at least every
  baseline's minus ``--ordering-tolerance``;
* **paper Figure-17 ordering** — on the recorded Figure-17 deployment the
  paper's ranking (G-RSSI ~ Landmarc < OTrack < BackPos < STPP) must hold
  within ``--fig17-tolerance``, and STPP must beat every baseline by at
  least ``--fig17-margin``.

Run with:
  python benchmarks/check_accuracy.py [--accuracy BENCH_accuracy.json] ...

A missing file is skipped with a note (the record is produced by
``make bench-accuracy``), so the check degrades gracefully on fresh clones.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent
if str(_REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(_REPO_ROOT / "src"))

from repro.bench.schema import validate_snapshot

FAILURES: list[str] = []

MEAN_FLOORS: dict[str, float] = {
    "STPP": 0.60,
    "BackPos": 0.25,
    "OTrack": 0.35,
    "Landmarc": 0.45,
    "G-RSSI": 0.45,
}
"""Pinned floors on each scheme's mean combined accuracy over the full
eight-scenario matrix.

Pinned from the recorded 2-repetition run (STPP 0.71, BackPos 0.42, OTrack
0.52, Landmarc 0.59, G-RSSI 0.62; the 1-repetition smoke scale reads within
0.02 of each) with ~0.15 of margin.  A scheme dropping through its floor
means its adapter (or the shared pipeline under it) regressed — schemes are
deterministic at fixed seeds.
"""

STPP_SCENARIO_FLOORS: dict[str, float] = {
    "library": 0.85,
    "airport": 0.35,
    "warehouse": 0.40,
    "cold_chain_tunnel": 0.70,
    "robot_aisle_scan": 0.85,
}
"""Per-scenario STPP floors, covering the legacy trio and two of the
spec-only deployments (recorded at 2 repetitions: library 1.00, airport
0.58, warehouse 0.58, cold_chain_tunnel 0.95, robot_aisle_scan 1.00; the
smoke scale reads airport 0.45 and cold_chain_tunnel 1.00)."""


def _require(condition: bool, message: str) -> None:
    if condition:
        print(f"  ok:   {message}")
    else:
        print(f"  FAIL: {message}")
        FAILURES.append(message)


def _parse_overrides(pairs: list[str], what: str) -> dict[str, float]:
    overrides = {}
    for pair in pairs:
        name, _, raw = pair.partition("=")
        if not name or not raw:
            raise SystemExit(f"bad {what} override {pair!r} (expected NAME=FLOAT)")
        overrides[name] = float(raw)
    return overrides


def check_accuracy(path: Path, args: argparse.Namespace) -> None:
    print(f"accuracy leaderboard ({path}):")
    if not path.exists():
        print(f"  skip: {path} not found")
        return
    payload = json.loads(path.read_text())

    problems = validate_snapshot("accuracy", payload)
    for problem in problems:
        _require(False, f"schema: {problem}")
    if problems:
        return

    mean_floors = {**MEAN_FLOORS, **_parse_overrides(args.mean_floor, "--mean-floor")}
    scenario_floors = {
        **STPP_SCENARIO_FLOORS,
        **_parse_overrides(args.scenario_floor, "--scenario-floor"),
    }

    mean = payload["mean_combined"]
    for scheme, floor in mean_floors.items():
        if scheme not in mean:
            _require(False, f"mean_combined is missing scheme {scheme!r}")
            continue
        _require(
            float(mean[scheme]) >= floor,
            f"{scheme} mean combined accuracy {float(mean[scheme]):.3f} >= floor {floor}",
        )

    for scenario, floor in scenario_floors.items():
        value = (
            payload["scenarios"].get(scenario, {}).get("STPP", {}).get("combined")
        )
        if value is None:
            _require(False, f"scenario {scenario!r} has no recorded STPP accuracy")
            continue
        _require(
            float(value) >= floor,
            f"STPP {scenario} combined accuracy {float(value):.3f} >= floor {floor}",
        )

    baselines = [scheme for scheme in payload["schemes"] if scheme != "STPP"]
    stpp_mean = float(mean.get("STPP", float("nan")))
    for scheme in baselines:
        if scheme not in mean:
            continue
        _require(
            stpp_mean >= float(mean[scheme]) - args.ordering_tolerance,
            f"STPP mean {stpp_mean:.3f} >= {scheme} mean {float(mean[scheme]):.3f} "
            f"- tolerance {args.ordering_tolerance}",
        )

    fig17 = payload["fig17"]
    if "STPP" not in fig17:
        _require(False, "fig17 record is missing STPP")
        return
    stpp17 = float(fig17["STPP"])
    _require(
        stpp17 >= args.fig17_stpp_floor,
        f"fig17 STPP combined accuracy {stpp17:.3f} >= floor {args.fig17_stpp_floor}",
    )
    for scheme in baselines:
        if scheme not in fig17:
            _require(False, f"fig17 record is missing {scheme!r}")
            continue
        _require(
            stpp17 >= float(fig17[scheme]) + args.fig17_margin,
            f"fig17: STPP {stpp17:.3f} beats {scheme} {float(fig17[scheme]):.3f} "
            f"by >= margin {args.fig17_margin}",
        )
    # The paper's baseline ranking: G-RSSI ~ Landmarc < OTrack < BackPos.
    ranking = (("G-RSSI", "OTrack"), ("Landmarc", "OTrack"), ("OTrack", "BackPos"))
    for lower, higher in ranking:
        if lower not in fig17 or higher not in fig17:
            continue
        _require(
            float(fig17[higher]) >= float(fig17[lower]) - args.fig17_tolerance,
            f"fig17 ordering: {higher} {float(fig17[higher]):.3f} >= "
            f"{lower} {float(fig17[lower]):.3f} - tolerance {args.fig17_tolerance}",
        )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--accuracy", type=Path, default=Path("BENCH_accuracy.json"))
    parser.add_argument(
        "--mean-floor", action="append", default=[], metavar="SCHEME=FLOOR",
        help="override a pinned cross-scenario mean floor (repeatable)",
    )
    parser.add_argument(
        "--scenario-floor", action="append", default=[], metavar="SCENARIO=FLOOR",
        help="override a pinned per-scenario STPP floor (repeatable)",
    )
    parser.add_argument(
        "--ordering-tolerance", type=float, default=0.05,
        help="slack allowed when requiring STPP's mean to top every baseline "
        "(default 0.05; the recorded gap to the best baseline is ~0.09)",
    )
    parser.add_argument(
        "--fig17-stpp-floor", type=float, default=0.65,
        help="minimum STPP combined accuracy on the Figure-17 deployment "
        "(default 0.65; recorded 0.77, paper reports >= 88%% at full scale)",
    )
    parser.add_argument(
        "--fig17-margin", type=float, default=0.10,
        help="minimum STPP lead over every baseline on Figure 17 "
        "(default 0.10; recorded lead over BackPos is ~0.22)",
    )
    parser.add_argument(
        "--fig17-tolerance", type=float, default=0.15,
        help="slack allowed in the paper's baseline ranking on Figure 17 "
        "(default 0.15; our Landmarc adaptation slightly outscores OTrack)",
    )
    args = parser.parse_args()

    check_accuracy(args.accuracy, args)

    if FAILURES:
        print(f"\n{len(FAILURES)} accuracy floor(s)/ordering constraint(s) violated")
        sys.exit(1)
    print("\nrecorded accuracies at or above their floors; scheme ordering preserved")


if __name__ == "__main__":
    main()
