"""Section 5.1 headline: average book-ordering accuracy over repeated sweeps."""

from conftest import emit, run_once

from repro.evaluation.experiments import case_library_headline


def test_case_library_headline(benchmark):
    accuracy = run_once(benchmark, case_library_headline, sweeps=3)
    emit(
        "Section 5.1 — misplaced-book case study headline",
        f"mean per-level ordering accuracy over sweeps: {accuracy:.2f}\n"
        "paper: 0.84 on a 90-book, 3-level shelf over 50 sweeps",
    )
    assert accuracy > 0.25
