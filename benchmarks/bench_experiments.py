"""Experiment-engine timing harness: serial vs sharded sweep execution.

Runs the same spacing-sweep workload (the shape behind Figures 13/14: a
multi-spacing staircase sweep, ``repetitions`` independent simulated sweeps
per spacing, STPP scored on each) through the
:class:`~repro.evaluation.sweep.SweepService` twice:

* ``serial``  — the in-process fallback (one repetition after another), the
  cost profile of the pre-engine per-figure ``for rep in range(...)`` loops;
* ``sharded`` — repetitions sharded across a ``ProcessPoolExecutor`` with one
  worker per available core;
* ``pipeline`` — the double-buffered serial path (``SweepService(pipeline=
  True)``): repetition N+1's Python scheduling overlaps repetition N's
  GIL-releasing NumPy physics on a second thread.

Both paths execute the identical shard function with identical per-repetition
seeds, so the results are bit-identical (asserted here); only the wall clock
differs.  The measured times, the speed-up, a per-stage breakdown of the
serial pass (simulate vs localize vs metrics), and the machine's core count
are written to ``BENCH_experiments.json`` so the scaling trajectory is
tracked PR over PR.

On a single-core runner the sharded path degenerates to pool overhead, so
the sharded **timing is skipped entirely** (``sharded_skipped: true``,
``timings_s.sharded: null``) rather than recording a meaningless sub-1x
"speedup"; a one-repetition sharded run still executes through the process
pool so the serial-vs-sharded bit-identity stays verified.  Worker count is
auto-sized from ``os.cpu_count()``.

The simulate stage is additionally compared against the PR-4 recorded
baseline (3.34 s for the default 4x8 workload, per-round sweep engine) so
``check_speedups.py`` can enforce the fused sweep engine's >=3x stage
speedup.

Run with:
  PYTHONPATH=src python benchmarks/bench_experiments.py [--repetitions 8] [--out BENCH_experiments.json]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from datetime import datetime, timezone
from functools import partial
from pathlib import Path

from repro.bench.store import record_run
from repro.core.localizer import BatchLocalizer, STPPConfig
from repro.evaluation.experiments import _staircase_experiment
from repro.evaluation.metrics import evaluate_ordering
from repro.evaluation.sweep import SweepService, scheme_sweep_plan, score_stpp
from repro.simulation.collector import profiles_from_read_log

SPACINGS_M = (0.04, 0.06, 0.08, 0.10)

DEFAULT_REPETITIONS = 8

PR4_SIMULATE_BASELINE_S = 3.3376
"""Simulate-stage seconds recorded in PR 4's BENCH_experiments.json for the
default workload (4 spacings x 8 repetitions, per-round batched sweep
engine).  The fused two-phase engine's acceptance criterion is >=3x against
this number at the same scale."""


def spacing_factories():
    """(spacing, scene factory) pairs — the single source of the workload."""
    return [
        (
            spacing,
            partial(
                _staircase_experiment,
                tag_count=8,
                spacing_x_m=spacing,
                spacing_y_m=spacing,
                tag_moving=False,
            ),
        )
        for spacing in SPACINGS_M
    ]


def spacing_sweep_plans(repetitions: int):
    """The benchmark workload: one plan per spacing, ``repetitions`` reps each."""
    return [
        scheme_sweep_plan(
            name=f"bench_spacing[{spacing}]",
            scene_factory=factory,
            scorer=score_stpp,
            repetitions=repetitions,
            base_seed=int(spacing * 1000),
        )
        for spacing, factory in spacing_factories()
    ]


def stage_breakdown(repetitions: int, passes: int = 2) -> dict:
    """Per-stage serial timing: where does one repetition's time actually go?

    Runs the same (rep_index, seed) workload the plans describe, but with the
    three stages of a repetition timed separately:

    * ``simulate`` — build the scene and run the RFID sweep simulation;
    * ``localize`` — extract phase profiles and run the batched STPP engine;
    * ``metrics``  — score the predicted orderings against ground truth.

    The whole breakdown runs ``passes`` times and each stage records its
    best total — the ratios feed CI floors, so a background-load spike on a
    shared runner must not read as an engine regression.
    """
    best = {"simulate": float("inf"), "localize": float("inf"), "metrics": float("inf")}
    factories = spacing_factories()
    plans = spacing_sweep_plans(repetitions)
    for _ in range(max(1, passes)):
        simulate_s = localize_s = metrics_s = 0.0
        for (_, factory), plan in zip(factories, plans):
            for rep_index, seed in enumerate(plan.resolved_seeds()):
                started = time.perf_counter()
                experiment = factory(rep_index, seed)
                simulated = time.perf_counter()
                localizer = BatchLocalizer(STPPConfig())
                profiles = profiles_from_read_log(experiment.read_log)
                result = localizer.localize(
                    profiles, expected_tag_ids=experiment.target_ids
                )
                localized = time.perf_counter()
                evaluate_ordering(
                    experiment.true_x,
                    experiment.true_y,
                    result.x_ordering.ordered_ids,
                    result.y_ordering.ordered_ids,
                )
                scored = time.perf_counter()
                simulate_s += simulated - started
                localize_s += localized - simulated
                metrics_s += scored - localized
        best["simulate"] = min(best["simulate"], simulate_s)
        best["localize"] = min(best["localize"], localize_s)
        best["metrics"] = min(best["metrics"], metrics_s)
    return {**best, "total": best["simulate"] + best["localize"] + best["metrics"]}


def run_once(service: SweepService, repetitions: int):
    """Execute the workload on ``service``; returns (elapsed_s, outcomes)."""
    plans = spacing_sweep_plans(repetitions)
    started = time.perf_counter()
    outcomes = service.run_many(plans)
    return time.perf_counter() - started, outcomes


def evaluations_of(outcomes):
    """The deterministic portion of the results, for the equivalence check."""
    return [
        (outcome.plan, result.rep_index, result.seed, score.scheme, score.evaluation)
        for outcome in outcomes
        for result in outcome.results
        for score in result.scores
    ]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--repetitions", type=int, default=DEFAULT_REPETITIONS,
        help="repetitions per spacing (default 8; total sweeps = 4x this)",
    )
    parser.add_argument("--out", type=Path, default=Path("BENCH_experiments.json"))
    parser.add_argument(
        "--history", type=Path, default=Path("BENCH_HISTORY.jsonl"),
        help="append-only ledger for this run's rows (smoke runs pass a scratch path)",
    )
    parser.add_argument("--no-history", action="store_true")
    args = parser.parse_args()

    cpu_count = os.cpu_count() or 1
    total_sweeps = args.repetitions * len(SPACINGS_M)
    print(f"workload: {len(SPACINGS_M)} spacings x {args.repetitions} reps "
          f"= {total_sweeps} simulated sweeps; {cpu_count} cores")

    # Warm the process-wide reference cache so neither path pays it.
    warm_service = SweepService(parallel=False)
    run_once(warm_service, 1)

    serial_s, serial_outcomes = run_once(SweepService(parallel=False), args.repetitions)
    print(f"serial : {serial_s:8.2f} s")

    conclusive = cpu_count > 1
    if conclusive:
        # Multi-core host: the comparison is meaningful — time it.
        sharded_service = SweepService(
            max_workers=cpu_count, parallel=True, shard_size=1
        )
        sharded_s, sharded_outcomes = run_once(sharded_service, args.repetitions)
        print(f"sharded: {sharded_s:8.2f} s  ({cpu_count} workers)")
        speedup = serial_s / max(sharded_s, 1e-9)
        print(f"speedup: {speedup:8.2f} x")
        equivalence_repetitions = args.repetitions
    else:
        # Single core: sharding can only add pool overhead, so a timing would
        # be noise.  Skip it, but still push one repetition through the pool
        # so the serial-vs-sharded bit-identity stays verified on this host.
        print("sharded: skipped (single-core host — pool overhead only)")
        sharded_s = None
        speedup = None
        equivalence_repetitions = 1
        sharded_service = SweepService(max_workers=1, parallel=True, shard_size=1)
        _, sharded_outcomes = run_once(sharded_service, equivalence_repetitions)
        serial_outcomes = run_once(
            SweepService(parallel=False), equivalence_repetitions
        )[1]

    if evaluations_of(serial_outcomes) != evaluations_of(sharded_outcomes):
        raise AssertionError("serial and sharded results diverged — engine bug")
    print(
        "serial/sharded results: bit-identical "
        f"({equivalence_repetitions} repetition(s) compared)"
    )

    # Pipelined serial path (PR 8): overlap rep N+1's Python scheduling with
    # rep N's GIL-releasing physics.  Same single-core rule as sharding: the
    # timing is only conclusive with >1 core, but bit-identity is always
    # verified.
    if conclusive:
        pipeline_service = SweepService(parallel=False, pipeline=True)
        pipeline_s, pipeline_outcomes = run_once(pipeline_service, args.repetitions)
        print(f"pipeline: {pipeline_s:7.2f} s  (double-buffered serial path)")
        pipeline_speedup = serial_s / max(pipeline_s, 1e-9)
        print(f"pipeline speedup vs serial: {pipeline_speedup:.2f}x")
        pipeline_reference = serial_outcomes
    else:
        print("pipeline: timing skipped (single-core host — overlap impossible)")
        pipeline_s = None
        pipeline_speedup = None
        pipeline_service = SweepService(parallel=False, pipeline=True)
        _, pipeline_outcomes = run_once(pipeline_service, equivalence_repetitions)
        pipeline_reference = serial_outcomes
    if evaluations_of(pipeline_reference) != evaluations_of(pipeline_outcomes):
        raise AssertionError("serial and pipelined results diverged — engine bug")
    print("serial/pipelined results: bit-identical")

    stages = stage_breakdown(args.repetitions)
    for stage in ("simulate", "localize", "metrics"):
        share = stages[stage] / max(stages["total"], 1e-9)
        print(f"stage {stage:>8}: {stages[stage]:8.2f} s  ({share:5.1%})")

    # The fused sweep engine's acceptance criterion: the simulate stage vs
    # the PR-4 recorded baseline, comparable only at the default scale.
    baseline_comparable = args.repetitions == DEFAULT_REPETITIONS
    simulate_speedup = (
        PR4_SIMULATE_BASELINE_S / max(stages["simulate"], 1e-9)
        if baseline_comparable
        else None
    )
    if simulate_speedup is not None:
        print(
            f"simulate stage vs PR-4 recorded baseline "
            f"({PR4_SIMULATE_BASELINE_S:.2f} s): {simulate_speedup:.2f}x"
        )

    payload = {
        "generated_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "platform": platform.platform(),
        "cpu_count": cpu_count,
        "workload": {
            "spacings_m": list(SPACINGS_M),
            "repetitions_per_spacing": args.repetitions,
            "total_sweeps": total_sweeps,
            "scheme": "STPP",
        },
        "timings_s": {
            "serial": serial_s,
            "sharded": sharded_s,
            "pipeline": pipeline_s,
        },
        "physics_backend": os.environ.get("REPRO_PHYSICS_BACKEND", "serial"),
        "stage_breakdown_s": stages,
        "simulate_baseline_pr4_s": PR4_SIMULATE_BASELINE_S,
        "simulate_baseline_comparable": baseline_comparable,
        "speedup_simulate_vs_pr4": simulate_speedup,
        "sharded_workers": cpu_count if conclusive else None,
        "speedup_sharded_vs_serial": speedup,
        "sharded_skipped": not conclusive,
        "sharded_comparison_conclusive": conclusive,
        "speedup_pipeline_vs_serial": pipeline_speedup,
        "pipeline_skipped": not conclusive,
        "results_bit_identical": True,
        "equivalence_repetitions": equivalence_repetitions,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")

    if not args.no_history:
        rows = record_run(
            source="bench_experiments",
            metrics={
                "timings_s": payload["timings_s"],
                "stage_breakdown_s": payload["stage_breakdown_s"],
                "speedup_simulate_vs_pr4": payload["speedup_simulate_vs_pr4"],
                "speedup_sharded_vs_serial": payload["speedup_sharded_vs_serial"],
                "speedup_pipeline_vs_serial": payload["speedup_pipeline_vs_serial"],
                "results_bit_identical": payload["results_bit_identical"],
            },
            scale={
                "spacings": len(SPACINGS_M),
                "repetitions_per_spacing": args.repetitions,
                "cpu_count": cpu_count,
            },
            history=args.history,
            timestamp=payload["generated_at"],
            platform=payload["platform"],
        )
        print(f"appended {len(rows)} history rows to {args.history}")


if __name__ == "__main__":
    main()
