"""Experiment-engine timing harness: serial vs sharded sweep execution.

Runs the same spacing-sweep workload (the shape behind Figures 13/14: a
multi-spacing staircase sweep, ``repetitions`` independent simulated sweeps
per spacing, STPP scored on each) through the
:class:`~repro.evaluation.sweep.SweepService` twice:

* ``serial``  — the in-process fallback (one repetition after another), the
  cost profile of the pre-engine per-figure ``for rep in range(...)`` loops;
* ``sharded`` — repetitions sharded across a ``ProcessPoolExecutor`` with one
  worker per available core.

Both paths execute the identical shard function with identical per-repetition
seeds, so the results are bit-identical (asserted here); only the wall clock
differs.  The measured times, the speed-up, and the machine's core count are
written to ``BENCH_experiments.json`` so the scaling trajectory is tracked PR
over PR.  On a single-core runner the sharded path degenerates to pool
overhead; the JSON records ``cpu_count`` so readers can tell.

Run with:
  PYTHONPATH=src python benchmarks/bench_experiments.py [--repetitions 8] [--out BENCH_experiments.json]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from datetime import datetime, timezone
from functools import partial
from pathlib import Path

from repro.evaluation.experiments import _staircase_experiment
from repro.evaluation.sweep import SweepService, scheme_sweep_plan, score_stpp

SPACINGS_M = (0.04, 0.06, 0.08, 0.10)


def spacing_sweep_plans(repetitions: int):
    """The benchmark workload: one plan per spacing, ``repetitions`` reps each."""
    return [
        scheme_sweep_plan(
            name=f"bench_spacing[{spacing}]",
            scene_factory=partial(
                _staircase_experiment,
                tag_count=8,
                spacing_x_m=spacing,
                spacing_y_m=spacing,
                tag_moving=False,
            ),
            scorer=score_stpp,
            repetitions=repetitions,
            base_seed=int(spacing * 1000),
        )
        for spacing in SPACINGS_M
    ]


def run_once(service: SweepService, repetitions: int):
    """Execute the workload on ``service``; returns (elapsed_s, outcomes)."""
    plans = spacing_sweep_plans(repetitions)
    started = time.perf_counter()
    outcomes = service.run_many(plans)
    return time.perf_counter() - started, outcomes


def evaluations_of(outcomes):
    """The deterministic portion of the results, for the equivalence check."""
    return [
        (outcome.plan, result.rep_index, result.seed, score.scheme, score.evaluation)
        for outcome in outcomes
        for result in outcome.results
        for score in result.scores
    ]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--repetitions", type=int, default=8,
        help="repetitions per spacing (default 8; total sweeps = 4x this)",
    )
    parser.add_argument("--out", type=Path, default=Path("BENCH_experiments.json"))
    args = parser.parse_args()

    cpu_count = os.cpu_count() or 1
    total_sweeps = args.repetitions * len(SPACINGS_M)
    print(f"workload: {len(SPACINGS_M)} spacings x {args.repetitions} reps "
          f"= {total_sweeps} simulated sweeps; {cpu_count} cores")

    # Warm the process-wide reference cache so neither path pays it.
    warm_service = SweepService(parallel=False)
    run_once(warm_service, 1)

    serial_s, serial_outcomes = run_once(SweepService(parallel=False), args.repetitions)
    print(f"serial : {serial_s:8.2f} s")

    sharded_service = SweepService(max_workers=cpu_count, parallel=True, shard_size=1)
    sharded_s, sharded_outcomes = run_once(sharded_service, args.repetitions)
    print(f"sharded: {sharded_s:8.2f} s  ({cpu_count} workers)")

    if evaluations_of(serial_outcomes) != evaluations_of(sharded_outcomes):
        raise AssertionError("serial and sharded results diverged — engine bug")
    print("serial/sharded results: bit-identical")

    speedup = serial_s / max(sharded_s, 1e-9)
    print(f"speedup: {speedup:8.2f} x")

    payload = {
        "generated_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "platform": platform.platform(),
        "cpu_count": cpu_count,
        "workload": {
            "spacings_m": list(SPACINGS_M),
            "repetitions_per_spacing": args.repetitions,
            "total_sweeps": total_sweeps,
            "scheme": "STPP",
        },
        "timings_s": {
            "serial": serial_s,
            "sharded": sharded_s,
        },
        "sharded_workers": cpu_count,
        "speedup_sharded_vs_serial": speedup,
        "results_bit_identical": True,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
