"""Ablation: quadratic fitting vs raw-minimum bottom picking."""

from conftest import emit, run_once

from repro.evaluation.experiments import ablation_quadratic_fitting
from repro.reporting.tables import format_series


def test_ablation_quadratic_fitting(benchmark):
    result = run_once(benchmark, ablation_quadratic_fitting, repetitions=2)
    emit(
        "Ablation — quadratic fitting of the V-zone nadir",
        format_series(result, name="X-axis accuracy")
        + "\npaper: fitting suppresses the influence of noise and missing samples at the nadir",
    )
    assert result["with_quadratic_fit"] >= result["raw_minimum"] - 0.15
