"""Figure 4: reference profiles, Y spacing changes V-zone shape, not timing."""

from conftest import emit, run_once

from repro.evaluation.experiments import fig04_reference_profiles_y
from repro.reporting.tables import format_table


def test_fig04_reference_profiles_y(benchmark):
    result = run_once(benchmark, fig04_reference_profiles_y)
    rows = [
        (f"{spacing*100:.0f} cm", f"{pair.bottom_gap_s:.3f} s", f"{pair.bottom_phase_gap_rad:.3f}")
        for spacing, pair in sorted(result.items())
    ]
    emit(
        "Figure 4 — V-zone shape difference vs Y spacing (reference profiles)",
        format_table(("Y spacing", "bottom-time gap", "curvature gap (rad/s^2)"), rows)
        + "\npaper: larger Y spacing -> larger difference between the two V-zones",
    )
    assert result[0.10].bottom_phase_gap_rad > result[0.05].bottom_phase_gap_rad
