"""Streaming-service timing harness: ingest throughput + provisional latency.

Measures the two costs of the streaming localization subsystem
(``repro/service`` + ``repro/simulation/streaming.py``):

* **ingest throughput** — reads/second through
  :meth:`LocalizationSession.ingest_batch` (collector appends + bookkeeping,
  no ordering refresh), measured by replaying a pre-simulated read log as
  columnar round batches.  The acceptance floor is 10k reads/s — far below
  what a COTS reader emits per antenna (~1k reads/s), so one session can
  multiplex many readers.
* **provisional-ordering latency** — the wall-clock cost of
  :meth:`LocalizationSession.provisional` after each inventory round of a
  live warehouse conveyor portal.  This is the cost the incremental engines
  (segmenter + resumable DTW) keep flat: only columns that grew since the
  previous refresh are recomputed.

The harness also verifies the convergence guarantee on the benchmarked data:
the session's final X/Y orderings must equal the batch pipeline's over the
same reads — a streaming service that drifts from the batch answer is not
faster, it is wrong.

Results are written to ``BENCH_streaming.json``; CI asserts the ingest floor
via ``benchmarks/check_speedups.py``.

Run with:
  PYTHONPATH=src python benchmarks/bench_streaming.py [--tags 60] [--out BENCH_streaming.json]
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

from repro.bench.store import record_run
from repro.core import BatchLocalizer, STPPConfig
from repro.rf.geometry import Point3D
from repro.rfid.tag import make_tags
from repro.service import LocalizationSession
from repro.simulation.collector import collect_sweep, profiles_from_read_log
from repro.simulation.presets import standard_antenna_moving_scene
from repro.workloads.warehouse import ConveyorConfig, conveyor_portal

SEED = 2015


def shelf_read_log(tag_count: int):
    """Simulate one shelf sweep and return (scene, its read log)."""
    positions = [
        Point3D(0.05 * (i // 2), 0.30 * (i % 2), 0.0) for i in range(tag_count)
    ]
    tags = make_tags(positions, seed=SEED)
    scene = standard_antenna_moving_scene(tags, seed=SEED)
    return scene, tags, collect_sweep(scene).read_log


def bench_ingest(scene, tags, read_log, repeats: int) -> dict:
    """Replay the log's round batches through fresh sessions; time ingestion."""
    channel = scene.reader_config.channel.channel_index
    batches = list(read_log.iter_batches(256))
    best = float("inf")
    for _ in range(repeats):
        session = LocalizationSession(
            expected_tag_ids=tags.ids(), channel_index=channel
        )
        started = time.perf_counter()
        for batch in batches:
            session.ingest_batch(batch)
        elapsed = time.perf_counter() - started
        best = min(best, elapsed)
    reads_per_s = len(read_log) / max(best, 1e-9)
    print(
        f"  ingest: {len(read_log)} reads in {best * 1e3:7.2f} ms "
        f"(best of {repeats}) = {reads_per_s:,.0f} reads/s"
    )
    return {
        "reads": len(read_log),
        "batches": len(batches),
        "best_elapsed_s": best,
        "ingest_reads_per_s": reads_per_s,
    }


def bench_portal(cartons_per_lane: int, lanes: int) -> dict:
    """Run a live conveyor portal; collect per-round provisional latencies."""
    portal = conveyor_portal(
        config=ConveyorConfig(lanes=lanes, cartons_per_lane=cartons_per_lane),
        seed=SEED,
        update_every_rounds=1,
    )
    updates = list(portal.updates())
    provisional = updates[:-1]
    final = updates[-1]
    latencies = np.array([u.elapsed_s for u in provisional], dtype=float)
    summary = {
        "rounds": final.batches_ingested,
        "reads": final.reads_ingested,
        "provisional_updates": len(provisional),
        "provisional_latency_s_mean": float(np.mean(latencies)),
        "provisional_latency_s_median": float(np.median(latencies)),
        "provisional_latency_s_p95": float(np.percentile(latencies, 95)),
        "provisional_latency_s_max": float(np.max(latencies)),
        "final_confidence": final.confidence,
        "belt_order_accuracy": portal.belt_order_accuracy(),
    }
    print(
        f"  portal: {summary['rounds']} rounds, {summary['reads']} reads | "
        f"provisional latency mean {summary['provisional_latency_s_mean'] * 1e3:.2f} ms, "
        f"p95 {summary['provisional_latency_s_p95'] * 1e3:.2f} ms | "
        f"belt accuracy {summary['belt_order_accuracy']:.2f}"
    )
    return summary


def verify_convergence(scene, tags, read_log) -> bool:
    """Final streaming orderings must equal the batch pipeline's."""
    channel = scene.reader_config.channel.channel_index
    session = LocalizationSession(expected_tag_ids=tags.ids(), channel_index=channel)
    for batch in read_log.iter_batches(256):
        session.ingest_batch(batch)
    final = session.finalize()
    batch_result = BatchLocalizer(STPPConfig()).localize(
        profiles_from_read_log(read_log, channel_index=channel),
        expected_tag_ids=tags.ids(),
    )
    identical = (
        final.result.x_ordering == batch_result.x_ordering
        and final.result.y_ordering == batch_result.y_ordering
    )
    print(f"  convergence: streaming final == batch orderings: {identical}")
    return identical


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tags", type=int, default=60,
        help="shelf population for the ingest-throughput scene (default 60)",
    )
    parser.add_argument(
        "--ingest-repeats", type=int, default=5,
        help="ingest timing repetitions; the best run is recorded (default 5)",
    )
    parser.add_argument(
        "--cartons-per-lane", type=int, default=4,
        help="portal conveyor batch size knob (default 4, 3 lanes)",
    )
    parser.add_argument("--out", type=Path, default=Path("BENCH_streaming.json"))
    parser.add_argument(
        "--history", type=Path, default=Path("BENCH_HISTORY.jsonl"),
        help="append-only ledger for this run's rows (smoke runs pass a scratch path)",
    )
    parser.add_argument("--no-history", action="store_true")
    args = parser.parse_args()

    print(f"ingest scene: {args.tags}-tag shelf | portal: 3-lane conveyor")
    scene, tags, read_log = shelf_read_log(args.tags)

    # Warm the code paths (imports, reference cache, numpy kernels).
    bench_ingest(scene, tags, read_log, repeats=1)

    ingest = bench_ingest(scene, tags, read_log, repeats=args.ingest_repeats)
    portal = bench_portal(args.cartons_per_lane, lanes=3)
    identical = verify_convergence(scene, tags, read_log)

    payload = {
        "generated_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "platform": platform.platform(),
        "seed": SEED,
        "ingest": {"tag_count": args.tags, **ingest},
        "portal": portal,
        # Headline fields (the acceptance criteria).
        "ingest_reads_per_s": ingest["ingest_reads_per_s"],
        "provisional_latency_s_mean": portal["provisional_latency_s_mean"],
        "results_bit_identical": identical,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")

    if not args.no_history:
        rows = record_run(
            source="bench_streaming",
            metrics={
                "ingest_reads_per_s": payload["ingest_reads_per_s"],
                "portal": portal,
                "results_bit_identical": identical,
            },
            scale={
                "tags": args.tags,
                "cartons_per_lane": args.cartons_per_lane,
                "ingest_repeats": args.ingest_repeats,
            },
            history=args.history,
            timestamp=payload["generated_at"],
            platform=payload["platform"],
        )
        print(f"appended {len(rows)} history rows to {args.history}")

    if not identical:
        raise SystemExit("streaming final diverged from the batch pipeline")


if __name__ == "__main__":
    main()
