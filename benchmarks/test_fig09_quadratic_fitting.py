"""Figure 9: quadratic fitting orders three tags (15 cm / 2 cm apart)."""

from conftest import emit, run_once

from repro.evaluation.experiments import fig09_quadratic_fitting
from repro.reporting.tables import format_table


def test_fig09_quadratic_fitting(benchmark):
    result = run_once(benchmark, fig09_quadratic_fitting)
    rows = [
        (tag_id[-6:], f"{result.bottom_times_s.get(tag_id, float('nan')):.2f} s")
        for tag_id in result.true_order
    ]
    emit(
        "Figure 9 — tag ordering with quadratic fitting",
        format_table(("tag (true order)", "fitted bottom time"), rows)
        + f"\ndetected order correct: {result.correct}"
        + "\npaper: the three fitted minima appear in the ground-truth order",
    )
    assert len(result.detected_order) >= 2
