"""Sweep-simulation timing harness: fused vs per-round vs scalar engines.

Simulates the same scenes through all three :class:`~repro.rfid.reader.RFIDReader`
sweep engines:

* ``scalar`` — the read-at-a-time reference loop (one ``observe`` per
  decoded reply, whole-population coupling scan per read);
* ``round``  — the per-round batched engine (structure-of-arrays RF kernel
  per inventory round, spatial-hash coupling lookups, array-native motion
  sampling, columnar read log);
* ``fused``  — the two-phase engine (PR 5): a scheduling pass owns every rng
  draw and emits a whole-sweep event table, then one fused NumPy pass
  evaluates all rounds' physics together.

All engines consume the shared random generator in the identical order, so
the read logs are **bit-identical** (asserted here and pinned by
``tests/test_fused_sweep.py``); only the wall clock differs.  Two scenes are
timed: the headline **static** 200-tag library-style shelf and a **moving**
warehouse-style conveyor batch that exercises the per-round dense coupling
filter.

Baseline caveat: the scalar reference loop shares the batched kernels (one
``observe_batch`` call per read), which makes it ~2x slower than the pure
scalar arithmetic the pre-batching engine used — so scalar-relative speedups
overstate the win over the pre-PR-3 engine by about that factor.  The
``speedup_fused_vs_round`` field has no such caveat: both engines are real
shipped paths, and the ratio isolates the whole-sweep fusion win.

Results are written to ``BENCH_sweep.json`` so the speedups are tracked PR
over PR; CI asserts floors on the recorded speedup fields.

Run with:
  PYTHONPATH=src python benchmarks/bench_sweep.py [--tags 200] [--out BENCH_sweep.json]
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from datetime import datetime, timezone
from pathlib import Path

from repro.bench.store import record_run
from repro.rf.geometry import Point3D
from repro.rfid.tag import make_tags
from repro.simulation.collector import collect_sweep
from repro.simulation.presets import standard_antenna_moving_scene
from repro.workloads.warehouse import ConveyorConfig, conveyor_batch, conveyor_scene

SEED = 2015

ENGINES = ("scalar", "round", "fused")


def static_scene(tag_count: int):
    """A library-style shelf: ``tag_count`` static tags in two rows."""
    positions = [
        Point3D(0.05 * (i // 2), 0.30 * (i % 2), 0.0) for i in range(tag_count)
    ]
    tags = make_tags(positions, seed=SEED)
    return standard_antenna_moving_scene(tags, seed=SEED)


def moving_scene(tag_count: int):
    """A warehouse conveyor batch with roughly ``tag_count`` cartons."""
    lanes = 3
    config = ConveyorConfig(lanes=lanes, cartons_per_lane=max(1, tag_count // lanes))
    return conveyor_scene(conveyor_batch(config, seed=SEED), seed=SEED)


def time_sweep(scene_factory, engine: str):
    """Build a fresh scene (the protocol is stateful) and time one sweep."""
    scene = scene_factory()
    started = time.perf_counter()
    result = collect_sweep(scene, engine=engine)
    return time.perf_counter() - started, result.read_log


def bench_case(name: str, scene_factory) -> dict:
    """Time all three engines on one scene; assert bit-identical logs."""
    timings = {}
    logs = {}
    for engine in ENGINES:
        timings[engine], logs[engine] = time_sweep(scene_factory, engine)
    for engine in ("round", "fused"):
        if logs[engine].reads != logs["scalar"].reads:
            raise AssertionError(
                f"{name}: {engine} and scalar read logs diverged — engine bug"
            )
    round_vs_scalar = timings["scalar"] / max(timings["round"], 1e-9)
    fused_vs_scalar = timings["scalar"] / max(timings["fused"], 1e-9)
    fused_vs_round = timings["round"] / max(timings["fused"], 1e-9)
    print(
        f"{name:>8}: scalar {timings['scalar']:7.2f} s | "
        f"round {timings['round']:7.2f} s | fused {timings['fused']:7.2f} s | "
        f"fused/round {fused_vs_round:5.1f}x | "
        f"{len(logs['fused'])} reads, bit-identical"
    )
    return {
        "scalar_s": timings["scalar"],
        "round_s": timings["round"],
        "fused_s": timings["fused"],
        # Back-compat name: "batched" is the per-round engine.
        "batched_s": timings["round"],
        "speedup_batched_vs_scalar": round_vs_scalar,
        "speedup_fused_vs_scalar": fused_vs_scalar,
        "speedup_fused_vs_round": fused_vs_round,
        "reads": len(logs["fused"]),
        "results_bit_identical": True,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tags", type=int, default=200,
        help="population of the static headline scene (default 200)",
    )
    parser.add_argument(
        "--moving-tags", type=int, default=24,
        help="cartons in the moving conveyor scene (default 24)",
    )
    parser.add_argument("--out", type=Path, default=Path("BENCH_sweep.json"))
    parser.add_argument(
        "--history", type=Path, default=Path("BENCH_HISTORY.jsonl"),
        help="append-only ledger for this run's rows (smoke runs pass a scratch path)",
    )
    parser.add_argument("--no-history", action="store_true")
    args = parser.parse_args()

    # Warm all code paths (imports, numpy kernels) outside the timed region.
    for engine in ENGINES:
        time_sweep(lambda: static_scene(8), engine)

    print(f"static scene: {args.tags} tags | moving scene: ~{args.moving_tags} cartons")
    static = bench_case("static", lambda: static_scene(args.tags))
    moving = bench_case("moving", lambda: moving_scene(args.moving_tags))

    payload = {
        "generated_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "platform": platform.platform(),
        "seed": SEED,
        "scenes": {
            "static": {"tag_count": args.tags, **static},
            "moving": {"carton_count": args.moving_tags, **moving},
        },
        # Headline fields for the static scene: the per-round engine's win
        # over the scalar loop, and the fused engine's win over per-round.
        "speedup_batched_vs_scalar": static["speedup_batched_vs_scalar"],
        "speedup_fused_vs_round": static["speedup_fused_vs_round"],
        "baseline_note": (
            "scalar = the in-tree reference loop (one observe_batch call per "
            "read); it is ~2x slower than the pre-batching pure-scalar "
            "engine, so scalar-relative speedups overstate the win over the "
            "pre-PR-3 engine by roughly that factor.  fused-vs-round has no "
            "such caveat: both are shipped engines."
        ),
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")

    if not args.no_history:
        rows = record_run(
            source="bench_sweep",
            metrics={
                "scenes": payload["scenes"],
                "speedup_batched_vs_scalar": payload["speedup_batched_vs_scalar"],
                "speedup_fused_vs_round": payload["speedup_fused_vs_round"],
            },
            scale={"static_tags": args.tags, "moving_cartons": args.moving_tags},
            history=args.history,
            timestamp=payload["generated_at"],
            platform=payload["platform"],
        )
        print(f"appended {len(rows)} history rows to {args.history}")


if __name__ == "__main__":
    main()
