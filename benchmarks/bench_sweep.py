"""Sweep-simulation timing harness: fused vs per-round vs scalar engines.

Simulates the same scenes through all three :class:`~repro.rfid.reader.RFIDReader`
sweep engines:

* ``scalar`` — the read-at-a-time reference loop (one ``observe`` per
  decoded reply, whole-population coupling scan per read);
* ``round``  — the per-round batched engine (structure-of-arrays RF kernel
  per inventory round, spatial-hash coupling lookups, array-native motion
  sampling, columnar read log);
* ``fused``  — the two-phase engine (PR 5): a scheduling pass owns every rng
  draw and emits a whole-sweep event table, then one fused NumPy pass
  evaluates all rounds' physics together.

All engines consume the shared random generator in the identical order, so
the read logs are **bit-identical** (asserted here and pinned by
``tests/test_fused_sweep.py``); only the wall clock differs.  Two scenes are
timed: the headline **static** 200-tag library-style shelf and a **moving**
warehouse-style conveyor batch that exercises the per-round dense coupling
filter.

On top of the engine comparison, the harness times the fused engine's
**physics backends** (``serial`` / ``threads`` / ``process`` — see
:mod:`repro.rfid.backends`) on three scenes: static, moving, and the
``dense_hall_10k`` scaling showcase from the scenario catalog.  Physics is
rng-free and order-free, so every backend must produce bit-identical read
logs (asserted per scene).  Backend speedups are only meaningful on
multi-core hosts: on a single-core host the matrix records the timings but
leaves every ``speedup_*_vs_serial`` field ``null`` and marks
``parallel_comparison_conclusive: false`` — a ~1x "speedup" measured on one
core is noise, not evidence.

Baseline caveat: the scalar reference loop shares the batched kernels (one
``observe_batch`` call per read), which makes it ~2x slower than the pure
scalar arithmetic the pre-batching engine used — so scalar-relative speedups
overstate the win over the pre-PR-3 engine by about that factor.  The
``speedup_fused_vs_round`` field has no such caveat: both engines are real
shipped paths, and the ratio isolates the whole-sweep fusion win.

Results are written to ``BENCH_sweep.json`` so the speedups are tracked PR
over PR; CI asserts floors on the recorded speedup fields.

Run with:
  PYTHONPATH=src python benchmarks/bench_sweep.py [--tags 200] [--out BENCH_sweep.json]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from datetime import datetime, timezone
from pathlib import Path

from repro.bench.store import record_run
from repro.rf.geometry import Point3D
from repro.rfid.backends import PHYSICS_BACKENDS, resolve_physics_backend
from repro.rfid.tag import make_tags
from repro.scenarios import showcase_registry
from repro.scenarios.builders import noise_model, scenario_positions, sweep_geometry
from repro.simulation.collector import collect_sweep
from repro.simulation.presets import standard_antenna_moving_scene
from repro.workloads.warehouse import ConveyorConfig, conveyor_batch, conveyor_scene

SEED = 2015

ENGINES = ("scalar", "round", "fused")

DENSE_SPEC_NAME = "dense_hall_10k"


def static_scene(tag_count: int):
    """A library-style shelf: ``tag_count`` static tags in two rows."""
    positions = [
        Point3D(0.05 * (i // 2), 0.30 * (i % 2), 0.0) for i in range(tag_count)
    ]
    tags = make_tags(positions, seed=SEED)
    return standard_antenna_moving_scene(tags, seed=SEED)


def moving_scene(tag_count: int):
    """A warehouse conveyor batch with roughly ``tag_count`` cartons."""
    lanes = 3
    config = ConveyorConfig(lanes=lanes, cartons_per_lane=max(1, tag_count // lanes))
    return conveyor_scene(conveyor_batch(config, seed=SEED), seed=SEED)


def dense_hall_scene(tag_count: int):
    """The ``dense_hall_10k`` showcase spec, optionally truncated.

    Loaded through the scenario catalog's showcase registry so the bench
    exercises the exact committed spec; ``tag_count`` below 10000 slices the
    grid for smoke runs (CI times a few hundred tags, not the full hall).
    """
    spec = showcase_registry().get(DENSE_SPEC_NAME)
    positions = scenario_positions(spec, SEED)[:tag_count]
    tags = make_tags(positions, seed=SEED)
    return standard_antenna_moving_scene(
        tags,
        speed_mps=spec.motion.speed_mps,
        jitter_fraction=spec.motion.jitter_fraction,
        geometry=sweep_geometry(spec),
        noise=noise_model(spec),
        reflector_count=spec.channel.reflector_count,
        seed=SEED,
    )


def time_sweep(scene_factory, engine: str, physics_backend: str | None = None):
    """Build a fresh scene (the protocol is stateful) and time one sweep."""
    scene = scene_factory()
    started = time.perf_counter()
    result = collect_sweep(scene, engine=engine, physics_backend=physics_backend)
    return time.perf_counter() - started, result.read_log


def bench_case(name: str, scene_factory) -> dict:
    """Time all three engines on one scene; assert bit-identical logs."""
    timings = {}
    logs = {}
    for engine in ENGINES:
        timings[engine], logs[engine] = time_sweep(scene_factory, engine)
    for engine in ("round", "fused"):
        if logs[engine].reads != logs["scalar"].reads:
            raise AssertionError(
                f"{name}: {engine} and scalar read logs diverged — engine bug"
            )
    round_vs_scalar = timings["scalar"] / max(timings["round"], 1e-9)
    fused_vs_scalar = timings["scalar"] / max(timings["fused"], 1e-9)
    fused_vs_round = timings["round"] / max(timings["fused"], 1e-9)
    print(
        f"{name:>8}: scalar {timings['scalar']:7.2f} s | "
        f"round {timings['round']:7.2f} s | fused {timings['fused']:7.2f} s | "
        f"fused/round {fused_vs_round:5.1f}x | "
        f"{len(logs['fused'])} reads, bit-identical"
    )
    return {
        "scalar_s": timings["scalar"],
        "round_s": timings["round"],
        "fused_s": timings["fused"],
        # Back-compat name: "batched" is the per-round engine.
        "batched_s": timings["round"],
        "speedup_batched_vs_scalar": round_vs_scalar,
        "speedup_fused_vs_scalar": fused_vs_scalar,
        "speedup_fused_vs_round": fused_vs_round,
        "reads": len(logs["fused"]),
        "results_bit_identical": True,
    }


def bench_backend_case(name: str, scene_factory, conclusive: bool) -> dict:
    """Time the fused engine under every physics backend on one scene.

    Bit-identity across backends is always asserted; the speedup ratios are
    recorded only when ``conclusive`` (multi-core host) — otherwise they are
    ``null``, never a misleading ~1x.
    """
    timings = {}
    logs = {}
    for backend in PHYSICS_BACKENDS:
        timings[backend], logs[backend] = time_sweep(
            scene_factory, "fused", physics_backend=backend
        )
    for backend in PHYSICS_BACKENDS[1:]:
        if logs[backend].reads != logs["serial"].reads:
            raise AssertionError(
                f"{name}: {backend} and serial backend read logs diverged — "
                "physics is no longer order-free"
            )

    def ratio(backend: str) -> float | None:
        if not conclusive:
            return None
        return timings["serial"] / max(timings[backend], 1e-9)

    verdict = "conclusive" if conclusive else "single-core, inconclusive"
    print(
        f"{name:>10}: serial {timings['serial']:7.2f} s | "
        f"threads {timings['threads']:7.2f} s | "
        f"process {timings['process']:7.2f} s | "
        f"{len(logs['serial'])} reads, bit-identical ({verdict})"
    )
    return {
        "serial_s": timings["serial"],
        "threads_s": timings["threads"],
        "process_s": timings["process"],
        "speedup_threads_vs_serial": ratio("threads"),
        "speedup_process_vs_serial": ratio("process"),
        "reads": len(logs["serial"]),
        "results_bit_identical": True,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tags", type=int, default=200,
        help="population of the static headline scene (default 200)",
    )
    parser.add_argument(
        "--moving-tags", type=int, default=24,
        help="cartons in the moving conveyor scene (default 24)",
    )
    parser.add_argument(
        "--dense-tags", type=int, default=10_000,
        help="tags sliced from the dense_hall_10k showcase grid "
        "(default 10000; CI smoke passes a few hundred)",
    )
    parser.add_argument("--out", type=Path, default=Path("BENCH_sweep.json"))
    parser.add_argument(
        "--history", type=Path, default=Path("BENCH_HISTORY.jsonl"),
        help="append-only ledger for this run's rows (smoke runs pass a scratch path)",
    )
    parser.add_argument("--no-history", action="store_true")
    args = parser.parse_args()

    # Warm all code paths (imports, numpy kernels) outside the timed region.
    for engine in ENGINES:
        time_sweep(lambda: static_scene(8), engine)

    print(f"static scene: {args.tags} tags | moving scene: ~{args.moving_tags} cartons")
    static = bench_case("static", lambda: static_scene(args.tags))
    moving = bench_case("moving", lambda: moving_scene(args.moving_tags))

    cpu_count = os.cpu_count() or 1
    conclusive = cpu_count > 1
    print(
        f"physics backends ({cpu_count} core(s), "
        f"{'conclusive' if conclusive else 'speedups inconclusive'}) | "
        f"dense hall: {args.dense_tags} tags"
    )
    backends = {
        "static": {
            "tag_count": args.tags,
            **bench_backend_case("static", lambda: static_scene(args.tags), conclusive),
        },
        "moving": {
            "carton_count": args.moving_tags,
            **bench_backend_case(
                "moving", lambda: moving_scene(args.moving_tags), conclusive
            ),
        },
        "dense_hall": {
            "tag_count": args.dense_tags,
            "spec": DENSE_SPEC_NAME,
            **bench_backend_case(
                "dense_hall", lambda: dense_hall_scene(args.dense_tags), conclusive
            ),
        },
    }

    payload = {
        "generated_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "platform": platform.platform(),
        "seed": SEED,
        "cpu_count": cpu_count,
        "parallel_comparison_conclusive": conclusive,
        "physics_chunk_events": {
            backend: getattr(resolve_physics_backend(backend), "chunk_events", None)
            for backend in PHYSICS_BACKENDS
        },
        "scenes": {
            "static": {"tag_count": args.tags, **static},
            "moving": {"carton_count": args.moving_tags, **moving},
        },
        "backends": backends,
        # Headline fields for the static scene: the per-round engine's win
        # over the scalar loop, and the fused engine's win over per-round.
        "speedup_batched_vs_scalar": static["speedup_batched_vs_scalar"],
        "speedup_fused_vs_round": static["speedup_fused_vs_round"],
        "baseline_note": (
            "scalar = the in-tree reference loop (one observe_batch call per "
            "read); it is ~2x slower than the pre-batching pure-scalar "
            "engine, so scalar-relative speedups overstate the win over the "
            "pre-PR-3 engine by roughly that factor.  fused-vs-round has no "
            "such caveat: both are shipped engines."
        ),
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")

    if not args.no_history:
        rows = record_run(
            source="bench_sweep",
            metrics={
                "scenes": payload["scenes"],
                # None speedups (single-core hosts) are skipped by the
                # flattener — the ledger records timings, never ~1x noise.
                "backends": payload["backends"],
                "cpu_count": cpu_count,
                "parallel_comparison_conclusive": conclusive,
                "speedup_batched_vs_scalar": payload["speedup_batched_vs_scalar"],
                "speedup_fused_vs_round": payload["speedup_fused_vs_round"],
            },
            scale={
                "static_tags": args.tags,
                "moving_cartons": args.moving_tags,
                "dense_tags": args.dense_tags,
            },
            history=args.history,
            timestamp=payload["generated_at"],
            platform=payload["platform"],
        )
        print(f"appended {len(rows)} history rows to {args.history}")


if __name__ == "__main__":
    main()
