"""Sweep-simulation timing harness: batched RF kernel vs scalar reference loop.

Simulates the same scenes through both :class:`~repro.rfid.reader.RFIDReader`
paths:

* ``scalar``  — the read-at-a-time reference loop (one ``observe`` per
  decoded reply, whole-population coupling scan per read);
* ``batched`` — the round-batched engine (structure-of-arrays RF kernel,
  spatial-hash coupling lookups, array-native motion sampling, columnar read
  log).

Both paths consume the shared random generator in the identical order, so the
read logs are **bit-identical** (asserted here and pinned by
``tests/test_batch_sweep.py``); only the wall clock differs.  Two scenes are
timed: the headline **static** 200-tag library-style shelf (the acceptance
scene: the batched path must be ≥5x faster) and a **moving** warehouse-style
conveyor batch that exercises the per-round dense coupling filter.

Baseline caveat: the scalar reference loop shares the batched kernels (one
``observe_batch`` call per read), which makes it ~2x slower than the pure
scalar arithmetic the pre-batching engine used — so the recorded
``speedup_batched_vs_scalar`` overstates the win over the previously shipped
engine by about that factor (the 200-tag scene: 1.20 s pre-batching vs
~2.5 s for the in-tree scalar loop vs ~0.15 s batched, i.e. ~8x real).  The
ratio is still the right regression tripwire: both sides share one kernel,
so it isolates batching from unrelated kernel changes.

Results are written to ``BENCH_sweep.json`` so the speedup is tracked PR over
PR; CI asserts a floor on the recorded speedup fields.

Run with:
  PYTHONPATH=src python benchmarks/bench_sweep.py [--tags 200] [--out BENCH_sweep.json]
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from datetime import datetime, timezone
from pathlib import Path

from repro.rf.geometry import Point3D
from repro.rfid.tag import make_tags
from repro.simulation.collector import collect_sweep
from repro.simulation.presets import standard_antenna_moving_scene
from repro.workloads.warehouse import ConveyorConfig, conveyor_batch, conveyor_scene

SEED = 2015


def static_scene(tag_count: int):
    """A library-style shelf: ``tag_count`` static tags in two rows."""
    positions = [
        Point3D(0.05 * (i // 2), 0.30 * (i % 2), 0.0) for i in range(tag_count)
    ]
    tags = make_tags(positions, seed=SEED)
    return standard_antenna_moving_scene(tags, seed=SEED)


def moving_scene(tag_count: int):
    """A warehouse conveyor batch with roughly ``tag_count`` cartons."""
    lanes = 3
    config = ConveyorConfig(lanes=lanes, cartons_per_lane=max(1, tag_count // lanes))
    return conveyor_scene(conveyor_batch(config, seed=SEED), seed=SEED)


def time_sweep(scene_factory, batched: bool):
    """Build a fresh scene (the protocol is stateful) and time one sweep."""
    scene = scene_factory()
    started = time.perf_counter()
    result = collect_sweep(scene, batched=batched)
    return time.perf_counter() - started, result.read_log


def bench_case(name: str, scene_factory) -> dict:
    """Time scalar vs batched on one scene; assert bit-identical logs."""
    batched_s, batched_log = time_sweep(scene_factory, batched=True)
    scalar_s, scalar_log = time_sweep(scene_factory, batched=False)
    if batched_log.reads != scalar_log.reads:
        raise AssertionError(f"{name}: batched and scalar read logs diverged — engine bug")
    speedup = scalar_s / max(batched_s, 1e-9)
    print(
        f"{name:>8}: scalar {scalar_s:7.2f} s | batched {batched_s:7.2f} s | "
        f"{speedup:6.1f}x | {len(batched_log)} reads, bit-identical"
    )
    return {
        "scalar_s": scalar_s,
        "batched_s": batched_s,
        "speedup_batched_vs_scalar": speedup,
        "reads": len(batched_log),
        "results_bit_identical": True,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tags", type=int, default=200,
        help="population of the static headline scene (default 200)",
    )
    parser.add_argument(
        "--moving-tags", type=int, default=24,
        help="cartons in the moving conveyor scene (default 24)",
    )
    parser.add_argument("--out", type=Path, default=Path("BENCH_sweep.json"))
    args = parser.parse_args()

    # Warm both code paths (imports, numpy kernels) outside the timed region.
    time_sweep(lambda: static_scene(8), batched=True)
    time_sweep(lambda: static_scene(8), batched=False)

    print(f"static scene: {args.tags} tags | moving scene: ~{args.moving_tags} cartons")
    static = bench_case("static", lambda: static_scene(args.tags))
    moving = bench_case("moving", lambda: moving_scene(args.moving_tags))

    payload = {
        "generated_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "platform": platform.platform(),
        "seed": SEED,
        "scenes": {
            "static": {"tag_count": args.tags, **static},
            "moving": {"carton_count": args.moving_tags, **moving},
        },
        # Headline field (the ≥5x acceptance criterion for the 200-tag scene).
        "speedup_batched_vs_scalar": static["speedup_batched_vs_scalar"],
        "baseline_note": (
            "scalar = the in-tree reference loop (one observe_batch call per "
            "read); it is ~2x slower than the pre-batching pure-scalar "
            "engine, so the speedup over the previously shipped engine is "
            "roughly half the recorded ratio"
        ),
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
