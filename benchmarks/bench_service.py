"""Fleet-service load harness: session-count scaling under mixed traffic.

Drives :class:`repro.service.FleetService` with a load generator that replays
mixed portal traffic — the three leaderboard workload templates (library
shelf, airport baggage, warehouse conveyor) round-robined across N concurrent
portals — and records, per session count:

* **aggregate throughput** — total reads/second through the fleet's queued
  ingest path, producers to finalized sessions;
* **per-session provisional latency** — p95 of mid-stream
  :meth:`FleetService.provisional` refreshes sampled across portals;
* **bit-identity** — for each unique traffic template, the fleet-served final
  orderings must equal a standalone :class:`LocalizationSession` fed the same
  batches.  A fleet that drops or reorders under load is not fast, it is
  wrong, so the harness exits non-zero on divergence.

The default ladder (``--session-counts 1 8 64 256``) is the scaling curve the
paper's deployment story implies: one service instance multiplexing hundreds
of portals.  CI runs a reduced smoke and gates the committed snapshot via
``benchmarks/check_speedups.py --only service``.

Run with:
  PYTHONPATH=src python benchmarks/bench_service.py [--session-counts 1 8 64 256]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import threading
import time
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

from repro.bench.store import record_run
from repro.scenarios.registry import DEFAULT_SEED, SEED_STRIDE
from repro.service import FleetConfig, FleetService, LocalizationSession
from repro.simulation import (
    collect_sweep,
    standard_antenna_moving_scene,
    standard_tag_moving_scene,
)
from repro.workloads import MORNING_PEAK, baggage_batch, conveyor_batch, conveyor_scene
from repro.workloads.library import generate_bookshelf

SEED = DEFAULT_SEED
BATCH_READS = 128


def _template_traffic() -> list[dict]:
    """The three leaderboard workload templates as replayable batch lists.

    Seeds follow the leaderboard convention: ``DEFAULT_SEED + SEED_STRIDE *
    scenario_index`` for the legacy trio (library=0, airport=1, warehouse=2).
    """
    library_seed = SEED + SEED_STRIDE * 0
    shelf = generate_bookshelf(levels=1, books_per_level=10, seed=library_seed)
    library_tags = shelf.to_tags(seed=library_seed)
    library_scene = standard_antenna_moving_scene(library_tags, seed=library_seed)

    airport_seed = SEED + SEED_STRIDE * 1
    bag = baggage_batch(MORNING_PEAK, bag_count=8, seed=airport_seed)
    airport_scene = standard_tag_moving_scene(bag.tags, seed=airport_seed)

    warehouse_seed = SEED + SEED_STRIDE * 2
    carton = conveyor_batch(batch_index=0, seed=warehouse_seed)
    warehouse_scene = conveyor_scene(carton, seed=warehouse_seed)

    templates = []
    for name, tags, scene in (
        ("library", library_tags, library_scene),
        ("airport", bag.tags, airport_scene),
        ("warehouse", carton.tags, warehouse_scene),
    ):
        sweep = collect_sweep(scene)
        templates.append(
            {
                "name": name,
                "channel": scene.reader_config.channel.channel_index,
                "tag_ids": tags.ids(),
                "batches": list(sweep.read_log.iter_batches(BATCH_READS)),
            }
        )
    return templates


def _standalone_final(template: dict):
    session = LocalizationSession(
        expected_tag_ids=template["tag_ids"], channel_index=template["channel"]
    )
    for batch in template["batches"]:
        session.ingest_batch(batch)
    return session.finalize()


def run_fleet(
    templates: list[dict],
    session_count: int,
    producer_count: int,
    worker_count: int,
    expected_finals: dict[str, object],
) -> dict:
    """Replay mixed traffic across ``session_count`` portals; measure."""
    config = FleetConfig(
        queue_capacity=32,
        shed_policy="block",
        worker_count=worker_count,
        block_poll_s=0.01,
    )
    latencies: list[float] = []
    latency_lock = threading.Lock()
    total_reads = 0
    identical = True

    with FleetService(config) as fleet:
        keys = []
        for index in range(session_count):
            template = templates[index % len(templates)]
            key = fleet.open_portal(
                f"facility-{template['name']}",
                f"portal-{index:03d}",
                expected_tag_ids=template["tag_ids"],
                channel_index=template["channel"],
            )
            keys.append((key, template))
            total_reads += sum(len(batch) for batch in template["batches"])

        rounds = max(len(t["batches"]) for t in templates)
        sample_every = max(1, rounds // 4)

        def produce(producer_index: int) -> None:
            # Each producer drives a stride of portals round-robin so reads
            # from many portals interleave, as live reader traffic would.
            mine = keys[producer_index::producer_count]
            for round_index in range(rounds):
                for key, template in mine:
                    batches = template["batches"]
                    if round_index < len(batches):
                        fleet.ingest(key, batches[round_index])
                if round_index and round_index % sample_every == 0:
                    key, _ = mine[round_index % len(mine)]
                    update = fleet.provisional(key)
                    with latency_lock:
                        latencies.append(update.elapsed_s)

        started = time.perf_counter()
        producers = [
            threading.Thread(target=produce, args=(i,))
            for i in range(min(producer_count, session_count))
        ]
        for thread in producers:
            thread.start()
        for thread in producers:
            thread.join()
        finals = {key: fleet.finalize(key) for key, _ in keys}
        elapsed = time.perf_counter() - started

        for key, template in keys:
            final = finals[key]
            expected = expected_finals[template["name"]]
            if (
                final.result.x_ordering != expected.result.x_ordering
                or final.result.y_ordering != expected.result.y_ordering
                or final.reads_ingested != expected.reads_ingested
            ):
                identical = False
        stats = fleet.stats()

    latency_p95 = float(np.percentile(latencies, 95)) if latencies else None
    summary = {
        "session_count": session_count,
        "elapsed_s": elapsed,
        "reads": total_reads,
        "aggregate_reads_per_s": total_reads / max(elapsed, 1e-9),
        "provisional_latency_s_p95": latency_p95,
        "shed_reads": stats.shed_reads,
        "results_bit_identical": identical,
    }
    p95_ms = "n/a" if latency_p95 is None else f"{latency_p95 * 1e3:.2f} ms"
    print(
        f"  {session_count:4d} sessions: {total_reads:7d} reads in "
        f"{elapsed:6.2f} s = {summary['aggregate_reads_per_s']:10,.0f} reads/s | "
        f"provisional p95 {p95_ms} | shed {stats.shed_reads} | "
        f"bit-identical {identical}"
    )
    return summary


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--session-counts", type=int, nargs="+", default=[1, 8, 64, 256],
        help="session-count ladder for the scaling curve (default 1 8 64 256)",
    )
    parser.add_argument(
        "--producers", type=int, default=8,
        help="concurrent producer threads replaying traffic (default 8)",
    )
    parser.add_argument(
        "--workers", type=int, default=4,
        help="fleet worker-pool size (default 4)",
    )
    parser.add_argument("--out", type=Path, default=Path("BENCH_service.json"))
    parser.add_argument(
        "--history", type=Path, default=Path("BENCH_HISTORY.jsonl"),
        help="append-only ledger for this run's rows (smoke runs pass a scratch path)",
    )
    parser.add_argument("--no-history", action="store_true")
    args = parser.parse_args()

    cpu_count = os.cpu_count() or 1
    print(
        f"fleet load harness: {len(args.session_counts)}-point ladder "
        f"{args.session_counts} | {args.producers} producers, "
        f"{args.workers} workers | {cpu_count} cores"
    )
    templates = _template_traffic()
    expected_finals = {t["name"]: _standalone_final(t) for t in templates}
    for template in templates:
        reads = sum(len(b) for b in template["batches"])
        print(
            f"  template {template['name']}: {len(template['batches'])} "
            f"batches, {reads} reads"
        )

    # Warm code paths (imports, reference profile, numpy kernels).
    run_fleet(templates, 1, args.producers, args.workers, expected_finals)

    sessions = {}
    for count in args.session_counts:
        sessions[str(count)] = run_fleet(
            templates, count, args.producers, args.workers, expected_finals
        )

    max_sessions = max(args.session_counts)
    headline = sessions[str(max_sessions)]
    identical = all(row["results_bit_identical"] for row in sessions.values())

    payload = {
        "generated_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "platform": platform.platform(),
        "seed": SEED,
        "cpu_count": cpu_count,
        "producers": args.producers,
        "workers": args.workers,
        "sessions": sessions,
        # Headline fields (the acceptance criteria): the largest run.
        "max_sessions": max_sessions,
        "aggregate_reads_per_s": headline["aggregate_reads_per_s"],
        "provisional_latency_s_p95": headline["provisional_latency_s_p95"],
        "results_bit_identical": identical,
        # Floors only apply where parallel dispatch can show up at all.
        "parallel_conclusive": cpu_count > 1,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")

    if not args.no_history:
        rows = record_run(
            source="bench_service",
            metrics={
                "max_sessions": max_sessions,
                "aggregate_reads_per_s": payload["aggregate_reads_per_s"],
                "provisional_latency_s_p95": payload["provisional_latency_s_p95"],
                "results_bit_identical": identical,
                "sessions": {
                    count: {
                        "aggregate_reads_per_s": row["aggregate_reads_per_s"],
                    }
                    for count, row in sessions.items()
                },
            },
            scale={
                "session_counts": args.session_counts,
                "producers": args.producers,
                "workers": args.workers,
                "cpu_count": cpu_count,
            },
            history=args.history,
            timestamp=payload["generated_at"],
            platform=payload["platform"],
        )
        print(f"appended {len(rows)} history rows to {args.history}")

    if not identical:
        raise SystemExit("fleet finals diverged from standalone sessions")


if __name__ == "__main__":
    main()
