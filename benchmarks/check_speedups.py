"""Assert floors on the speedup fields recorded in the ``BENCH_*.json`` files.

CI runs this after the benchmark passes so a regression that erodes an
engine's recorded win fails the build instead of silently shipping:

* ``BENCH_sweep.json``        — the round-batched RF sweep kernel must beat
                                the scalar per-read path on the static scene,
                                and the fused two-phase engine must beat the
                                per-round engine; the physics-backend matrix
                                must be bit-identical on every host, and the
                                threads/process backends must hold their
                                floor only when the record marks the
                                comparison conclusive (multi-core host);
* ``BENCH_dtw.json``          — the batched DTW engine must beat the seed's
                                pure-Python per-tag loop, and the end-to-end
                                localize overhead must stay under the ceiling
                                (2x the kernel time);
* ``BENCH_experiments.json``  — the sharded experiment engine must beat the
                                serial path, but only when the file says the
                                comparison is conclusive (on a single-core
                                host the sharded timing is skipped outright,
                                so there is no ratio to check); the simulate
                                stage must hold its >=3x win over the PR-4
                                recorded baseline when the workload scale is
                                comparable;
* ``BENCH_streaming.json``    — the streaming session must ingest at least
                                10k reads/s, and its final orderings must be
                                bit-identical to the batch pipeline's;
* ``BENCH_service.json``      — the fleet service must have been exercised at
                                the acceptance scale (>= 64 concurrent
                                sessions) with every fleet-served final
                                bit-identical to its standalone session; the
                                aggregate-throughput floor applies only when
                                the record marks the host multi-core (queued
                                dispatch on one core measures queueing, not
                                capacity).

Every file also has to carry ``results_bit_identical: true`` where the field
exists: a speedup from an engine that changed the results is not a speedup.

Run with:
  python benchmarks/check_speedups.py [--only sweep] [--sweep-floor 5.0] ...

Missing files are skipped with a note (each benchmark is recorded by its own
``make bench-*`` target), so the check degrades gracefully on fresh clones.
Fields introduced by later PRs (e.g. the fused-sweep speedup) are only
enforced when present, so the checker still validates pre-upgrade records.
Every present file is first validated against its snapshot schema
(``repro.bench.schema``, shared with ``check_accuracy.py``): a floor check
against a truncated or corrupted record proves nothing.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent
if str(_REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(_REPO_ROOT / "src"))

from repro.bench.schema import validate_snapshot

FAILURES: list[str] = []


def _load(path: Path, kind: str) -> dict | None:
    """Read and schema-validate one snapshot; None = skip or already failed."""
    if not path.exists():
        print(f"  skip: {path} not found")
        return None
    payload = json.loads(path.read_text())
    problems = validate_snapshot(kind, payload)
    for problem in problems:
        _require(False, f"schema: {problem}")
    return None if problems else payload


def _require(condition: bool, message: str) -> None:
    if condition:
        print(f"  ok:   {message}")
    else:
        print(f"  FAIL: {message}")
        FAILURES.append(message)


def check_sweep(path: Path, floor: float, fused_floor: float, backend_floor: float) -> None:
    print(f"sweep kernel ({path}):")
    payload = _load(path, "sweep")
    if payload is None:
        return
    static = payload["scenes"]["static"]
    speedup = float(static["speedup_batched_vs_scalar"])
    _require(
        speedup >= floor,
        f"static-scene batched-vs-scalar speedup {speedup:.2f}x >= {floor}x",
    )
    if "speedup_fused_vs_round" in static:
        fused = float(static["speedup_fused_vs_round"])
        _require(
            fused >= fused_floor,
            f"static-scene fused-vs-round speedup {fused:.2f}x >= {fused_floor}x",
        )
    else:
        print("  skip: no fused-engine record (pre-PR-5 file) — no fused floor applied")
    for scene_name, scene in payload["scenes"].items():
        _require(
            bool(scene.get("results_bit_identical")),
            f"{scene_name} scene: all engines' logs bit-identical",
        )

    backends = payload.get("backends")
    if backends is None:
        print("  skip: no physics-backend matrix (pre-PR-8 file)")
        return
    # Bit-identity across physics backends is unconditional — it holds on
    # any host.  Speedup floors only apply when the record says the host
    # could measure parallelism at all (never on single-core runners, where
    # a ~1x "speedup" would be noise).
    for scene_name, scene in backends.items():
        _require(
            bool(scene.get("results_bit_identical")),
            f"{scene_name} scene: all physics backends' logs bit-identical",
        )
    if not payload.get("parallel_comparison_conclusive", payload.get("cpu_count", 1) > 1):
        print(
            "  skip: backend speedups inconclusive "
            f"(cpu_count={payload.get('cpu_count')}) — no backend floor applied"
        )
        return
    for scene_name, scene in backends.items():
        for field in ("speedup_threads_vs_serial", "speedup_process_vs_serial"):
            value = scene.get(field)
            if value is None:
                print(f"  skip: {scene_name} {field} not recorded")
                continue
            _require(
                float(value) >= backend_floor,
                f"{scene_name} {field} {float(value):.2f}x >= {backend_floor}x",
            )


def check_dtw(path: Path, floor: float, overhead_ceiling: float) -> None:
    print(f"DTW engine ({path}):")
    payload = _load(path, "dtw")
    if payload is None:
        return
    speedup = float(payload["speedup_vs_python_loop"]["batched"])
    _require(
        speedup >= floor,
        f"batched-vs-python-loop speedup {speedup:.2f}x >= {floor}x",
    )
    overhead = payload.get("localize_overhead_vs_kernel")
    if overhead is None:
        print("  skip: no localize-overhead record (pre-PR-5 file) — no ceiling applied")
    else:
        _require(
            float(overhead) < overhead_ceiling,
            f"localize overhead {float(overhead):.2f}x the kernel < {overhead_ceiling}x",
        )


def check_experiments(path: Path, floor: float, simulate_floor: float) -> None:
    print(f"experiment engine ({path}):")
    payload = _load(path, "experiments")
    if payload is None:
        return
    _require(
        bool(payload.get("results_bit_identical")),
        "serial and sharded results bit-identical",
    )
    simulate_speedup = payload.get("speedup_simulate_vs_pr4")
    if payload.get("simulate_baseline_comparable") and simulate_speedup is not None:
        _require(
            float(simulate_speedup) >= simulate_floor,
            f"simulate stage vs PR-4 baseline {float(simulate_speedup):.2f}x "
            f">= {simulate_floor}x",
        )
    else:
        print(
            "  skip: simulate stage not comparable to the PR-4 baseline "
            "(non-default scale or pre-PR-5 file) — no stage floor applied"
        )
    if not payload.get("sharded_comparison_conclusive", payload.get("cpu_count", 1) > 1):
        reason = (
            "timing skipped" if payload.get("sharded_skipped") else "inconclusive"
        )
        print(
            f"  skip: sharded-vs-serial comparison {reason} "
            f"(cpu_count={payload.get('cpu_count')}) — no floor applied"
        )
        return
    speedup = float(payload["speedup_sharded_vs_serial"])
    _require(
        speedup >= floor,
        f"sharded-vs-serial speedup {speedup:.2f}x >= {floor}x",
    )


def check_streaming(path: Path, floor: float) -> None:
    print(f"streaming service ({path}):")
    payload = _load(path, "streaming")
    if payload is None:
        return
    reads_per_s = float(payload["ingest_reads_per_s"])
    _require(
        reads_per_s >= floor,
        f"session ingest throughput {reads_per_s:,.0f} reads/s >= {floor:,.0f} reads/s",
    )
    _require(
        bool(payload.get("results_bit_identical")),
        "streaming final orderings bit-identical to batch pipeline",
    )
    latency = payload.get("provisional_latency_s_mean")
    if latency is not None:
        print(f"  info: provisional-ordering latency mean {float(latency) * 1e3:.2f} ms/round")


def check_service(path: Path, floor: float, min_sessions: int) -> None:
    print(f"fleet service ({path}):")
    payload = _load(path, "service")
    if payload is None:
        return
    max_sessions = int(payload["max_sessions"])
    _require(
        max_sessions >= min_sessions,
        f"fleet exercised at {max_sessions} sessions >= {min_sessions}",
    )
    _require(
        bool(payload.get("results_bit_identical")),
        "fleet-served finals bit-identical to standalone sessions",
    )
    latency = payload.get("provisional_latency_s_p95")
    if latency is not None:
        print(f"  info: provisional latency p95 {float(latency) * 1e3:.2f} ms at {max_sessions} sessions")
    if not payload.get("parallel_conclusive", payload.get("cpu_count", 1) > 1):
        print(
            "  skip: aggregate throughput inconclusive "
            f"(cpu_count={payload.get('cpu_count')}) — no service floor applied"
        )
        return
    reads_per_s = float(payload["aggregate_reads_per_s"])
    _require(
        reads_per_s >= floor,
        f"aggregate fleet throughput {reads_per_s:,.0f} reads/s >= {floor:,.0f} reads/s",
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sweep", type=Path, default=Path("BENCH_sweep.json"))
    parser.add_argument("--dtw", type=Path, default=Path("BENCH_dtw.json"))
    parser.add_argument(
        "--experiments", type=Path, default=Path("BENCH_experiments.json")
    )
    parser.add_argument(
        "--streaming", type=Path, default=Path("BENCH_streaming.json")
    )
    parser.add_argument(
        "--sweep-floor", type=float, default=5.0,
        help="minimum static-scene sweep speedup (default 5.0; the acceptance "
        "floor for the recorded 200-tag scene — smoke runs pass a lower one)",
    )
    parser.add_argument(
        "--sweep-fused-floor", type=float, default=1.5,
        help="minimum static-scene fused-vs-round speedup (default 1.5; the "
        "recorded 200-tag scene sits above 2x — smoke scenes are smaller, so "
        "the default floor is conservative)",
    )
    parser.add_argument(
        "--sweep-backend-floor", type=float, default=1.0,
        help="minimum threads/process-vs-serial physics-backend speedup, "
        "applied only when the record marks the comparison conclusive "
        "(multi-core host); bit-identity is checked on every host",
    )
    parser.add_argument("--dtw-floor", type=float, default=5.0)
    parser.add_argument(
        "--dtw-overhead-ceiling", type=float, default=2.0,
        help="maximum localize overhead as a multiple of the DTW kernel time "
        "(default 2.0, the PR-5 acceptance ceiling)",
    )
    parser.add_argument(
        "--experiments-floor", type=float, default=1.0,
        help="minimum sharded speedup, applied only when the record says the "
        "comparison is conclusive (multi-core host)",
    )
    parser.add_argument(
        "--experiments-simulate-floor", type=float, default=3.0,
        help="minimum simulate-stage speedup over the PR-4 recorded baseline, "
        "applied only when the record is at the comparable default scale",
    )
    parser.add_argument(
        "--streaming-floor", type=float, default=10_000.0,
        help="minimum streaming-session ingest throughput in reads/s "
        "(default 10000, the acceptance floor)",
    )
    parser.add_argument(
        "--service", type=Path, default=Path("BENCH_service.json")
    )
    parser.add_argument(
        "--service-floor", type=float, default=10_000.0,
        help="minimum aggregate fleet throughput in reads/s at the largest "
        "session count, applied only when the record marks the host "
        "multi-core (default 10000; smoke runs pass a lower one)",
    )
    parser.add_argument(
        "--service-min-sessions", type=int, default=64,
        help="minimum session count the record must have exercised "
        "(default 64, the acceptance scale; smoke runs pass a lower one)",
    )
    parser.add_argument(
        "--only", choices=("sweep", "dtw", "experiments", "streaming", "service"),
        default=None,
        help="check a single record instead of all of them",
    )
    args = parser.parse_args()

    if args.only in (None, "sweep"):
        check_sweep(
            args.sweep, args.sweep_floor, args.sweep_fused_floor,
            args.sweep_backend_floor,
        )
    if args.only in (None, "dtw"):
        check_dtw(args.dtw, args.dtw_floor, args.dtw_overhead_ceiling)
    if args.only in (None, "experiments"):
        check_experiments(
            args.experiments, args.experiments_floor, args.experiments_simulate_floor
        )
    if args.only in (None, "streaming"):
        check_streaming(args.streaming, args.streaming_floor)
    if args.only in (None, "service"):
        check_service(args.service, args.service_floor, args.service_min_sessions)

    if FAILURES:
        print(f"\n{len(FAILURES)} speedup floor(s) violated")
        sys.exit(1)
    print("\nall recorded speedups at or above their floors")


if __name__ == "__main__":
    main()
