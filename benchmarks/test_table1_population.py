"""Table 1: tag population within the reading zone vs ordering accuracy."""

from conftest import emit, run_once

from repro.evaluation.experiments import table1_population
from repro.reporting.tables import format_accuracy_map


def test_table1_population(benchmark):
    result = run_once(
        benchmark, table1_population, populations=(5, 10, 15, 20, 25, 30), repetitions=2
    )
    for case, values in result.items():
        emit(
            f"Table 1 — population vs accuracy ({case})",
            format_accuracy_map({f"n={n}": acc for n, acc in values.items()})
            + "\npaper: gentle degradation from n=5 to n=30; tag-moving > antenna-moving, X > Y",
        )
    for values in result.values():
        populations = sorted(values)
        assert values[populations[0]]["x"] >= values[populations[-1]]["x"] - 0.2
