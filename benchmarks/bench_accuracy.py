"""Accuracy recorder: the five-scheme leaderboard snapshot + history rows.

Runs the paper's five ordering schemes (STPP, BackPos, OTrack, Landmarc,
G-RSSI) over every scenario registered in the declarative scenario matrix
(``repro.scenarios`` — the legacy library/airport/warehouse trio plus the
committed ``specs/*.json`` deployments) and the Figure-17 deployment at a
fixed seed/scale, and records:

* ``BENCH_accuracy.json`` — the accuracy-per-scheme-per-scenario leaderboard
  snapshot (overwritten, like the timing snapshots);
* history rows in ``BENCH_HISTORY.jsonl`` — one row per (scenario, scheme)
  combined accuracy plus the cross-scenario means, stamped with run id, git
  sha, timestamp, and platform, so accuracy is tracked PR over PR the same
  way timings are.

``benchmarks/check_accuracy.py`` gates the recorded values in CI: pinned
per-scheme floors and the paper's scheme ordering.  The leaderboard is a
deterministic function of the code (fixed seeds, serial-equals-sharded
engine), so any movement in these numbers is a code change, not noise.

Run with:
  PYTHONPATH=src python benchmarks/bench_accuracy.py [--repetitions 2] \\
      [--out BENCH_accuracy.json] [--history BENCH_HISTORY.jsonl]
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent
if str(_REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(_REPO_ROOT / "src"))

from repro.bench.leaderboard import (
    DEFAULT_REPETITIONS,
    DEFAULT_SEED,
    compute_leaderboard,
    leaderboard_history_metrics,
    scenario_names,
)
from repro.bench.report import format_leaderboard
from repro.bench.store import record_run, utc_timestamp


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--repetitions", type=int, default=DEFAULT_REPETITIONS,
        help=f"sweeps per scenario (default {DEFAULT_REPETITIONS}; CI smoke uses 1)",
    )
    parser.add_argument(
        "--fig17-repetitions", type=int, default=1,
        help="repetitions of the five-layout Figure-17 pass (default 1)",
    )
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--out", type=Path, default=Path("BENCH_accuracy.json"))
    parser.add_argument(
        "--history", type=Path, default=Path("BENCH_HISTORY.jsonl"),
        help="append-only ledger to add this run's rows to "
        "(pass a scratch path for smoke runs)",
    )
    parser.add_argument(
        "--no-history", action="store_true",
        help="write only the snapshot (used by throwaway experiments)",
    )
    args = parser.parse_args()

    print(
        f"scoring 5 schemes x {len(scenario_names())} scenarios "
        f"({args.repetitions} sweep(s) each) + Figure-17 deployment, seed {args.seed}"
    )
    body = compute_leaderboard(
        repetitions=args.repetitions,
        seed=args.seed,
        fig17_repetitions=args.fig17_repetitions,
    )
    payload = {
        "generated_at": utc_timestamp(),
        "platform": platform.platform(),
        **body,
    }
    print(format_leaderboard(payload))

    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")

    if not args.no_history:
        rows = record_run(
            source="bench_accuracy",
            metrics=leaderboard_history_metrics(payload),
            scale=payload["scale"],
            history=args.history,
            timestamp=payload["generated_at"],
            platform=payload["platform"],
        )
        print(f"appended {len(rows)} history rows to {args.history}")


if __name__ == "__main__":
    main()
