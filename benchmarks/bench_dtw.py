"""DTW engine timing harness: before/after numbers for the vectorized kernels.

Compares three implementations of the V-zone detection hot path on the same
fleet of simulated tag profiles:

* ``python_loop``  — the seed repository's pure-Python double-loop DTW
  accumulation (``repro.core.dtw._accumulate_python``), run per tag.  This is
  the *before* baseline.
* ``vectorized``   — the anti-diagonal NumPy kernel, run per tag.
* ``batched``      — the same kernel sweeping whole chunks of cost matrices
  at once through ``accumulate_cost_batch``; the batch aligners behind
  ``BatchLocalizer`` use the same chunked sweep (streaming each chunk's
  results instead of materialising every cost matrix).

Results (plus the end-to-end batched localization time) are written to
``BENCH_dtw.json`` so the performance trajectory is tracked PR over PR.

Run with:  PYTHONPATH=src python benchmarks/bench_dtw.py [--tags 120] [--out BENCH_dtw.json]
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

from repro.bench.store import record_run
from repro.core.dtw import (
    MAX_BATCH_CELLS,
    _accumulate_python,
    _backtrack,
    _result_from_cost,
    _weighted_matrix,
    accumulate_cost,
    accumulate_cost_batch,
)
from repro.core.localizer import BatchLocalizer, STPPConfig
from repro.core.phase_profile import ProfileSet
from repro.core.reference import reference_profile, shared_canonical_reference
from repro.core.segmentation import (
    segment_distance_matrix,
    segment_duration_weights,
    segment_profile,
)


def make_profiles(tag_count: int, seed: int = 0) -> ProfileSet:
    """Simulated measured profiles for ``tag_count`` tags along one sweep.

    Profiles are generated directly from the nominal phase model with additive
    phase noise — cheap to build at any fleet size, and the same length/shape
    regime (hundreds of samples, several wrapped periods) the simulator's
    read logs produce.
    """
    rng = np.random.default_rng(seed)
    profiles = {}
    for index in range(tag_count):
        tag_x = 0.5 + 0.05 * index
        ref = reference_profile(
            tag_x_m=tag_x,
            perpendicular_distance_m=float(rng.uniform(0.3, 0.5)),
            sweep_start_x_m=tag_x - 1.0,
            sweep_end_x_m=tag_x + 1.0,
            speed_mps=0.3,
            tag_id=f"bench-{index:04d}",
        )
        base = ref.profile
        noisy = np.mod(
            base.phases_rad + rng.normal(0.0, 0.08, size=len(base)), 2 * np.pi
        )
        profiles[base.tag_id] = base.__class__(
            tag_id=base.tag_id,
            timestamps_s=base.timestamps_s,
            phases_rad=noisy,
        )
    return ProfileSet(profiles=profiles)


def build_weighted_matrices(profiles: ProfileSet, window_size: int = 5):
    """The segmented-DTW weighted distance matrix of every profile."""
    reference = shared_canonical_reference()
    ref_segments = segment_profile(reference.profile, window_size)
    weighted = []
    for profile in profiles.profiles.values():
        segments = segment_profile(profile, window_size)
        distance = segment_distance_matrix(ref_segments, segments)
        weights = segment_duration_weights(ref_segments, segments)
        weighted.append(_weighted_matrix(distance, weights))
    return weighted


def time_call(fn, repeats: int = 3) -> float:
    """Best-of-N wall clock of ``fn`` in seconds."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tags", type=int, default=120, help="fleet size (>= 100 for the acceptance figure)")
    parser.add_argument("--out", type=Path, default=Path(__file__).resolve().parent.parent / "BENCH_dtw.json")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--history", type=Path, default=Path("BENCH_HISTORY.jsonl"),
        help="append-only ledger for this run's rows (smoke runs pass a scratch path)",
    )
    parser.add_argument("--no-history", action="store_true")
    args = parser.parse_args()

    print(f"generating {args.tags} simulated tag profiles ...")
    profiles = make_profiles(args.tags)
    weighted = build_weighted_matrices(profiles)
    cells = sum(m.size for m in weighted)
    print(f"{len(weighted)} cost matrices, {cells} cells total")

    def run_python_loop():
        for matrix in weighted:
            cost = _accumulate_python(matrix, None, True)
            _result_from_cost(cost, subsequence=True)

    def run_vectorized():
        for matrix in weighted:
            cost = accumulate_cost(matrix, None, True)
            _result_from_cost(cost, subsequence=True)

    def run_batched():
        for cost in accumulate_cost_batch(weighted, free_query_start=True):
            _result_from_cost(cost, subsequence=True)

    print("timing the per-tag pure-Python loop (seed baseline) ...")
    python_s = time_call(run_python_loop, repeats=args.repeats)
    print(f"  python_loop : {python_s * 1000:9.1f} ms")
    print("timing the vectorized per-tag kernel ...")
    vectorized_s = time_call(run_vectorized, repeats=args.repeats)
    print(f"  vectorized  : {vectorized_s * 1000:9.1f} ms")
    print("timing the batched kernel ...")
    batched_s = time_call(run_batched, repeats=args.repeats)
    print(f"  batched     : {batched_s * 1000:9.1f} ms")

    engine = BatchLocalizer(STPPConfig())
    tag_ids = list(profiles.profiles)
    localize_s = time_call(
        lambda: engine.localize(profiles, expected_tag_ids=tag_ids),
        repeats=args.repeats,
    )
    print(f"  end-to-end batched localization of {args.tags} tags: {localize_s * 1000:.1f} ms")

    # Where does the non-kernel time go?  The localize call decomposes into
    # profile segmentation, V-zone detection (which contains the DTW kernel),
    # and the X/Y ordering on top; timing the pieces the pipeline exposes
    # keeps the "overhead vs kernel" ratio honest PR over PR.
    from repro.core.segmentation import segment_profile_arrays
    from repro.core.vzone import VZoneDetector

    profile_list = list(profiles.profiles.values())
    segmentation_s = time_call(
        lambda: [segment_profile_arrays(p, 5) for p in profile_list],
        repeats=args.repeats,
    )
    detector = VZoneDetector(reference=engine.reference, window_size=5)
    detection_s = time_call(
        lambda: detector.detect_all(profiles.profiles), repeats=args.repeats
    )
    overhead_s = localize_s - batched_s
    overhead_ratio = overhead_s / max(batched_s, 1e-12)
    print(
        f"  breakdown: segmentation {segmentation_s * 1000:6.1f} ms | "
        f"v-zone detection {detection_s * 1000:6.1f} ms | "
        f"kernel {batched_s * 1000:6.1f} ms"
    )
    print(
        f"  localize overhead over the DTW kernel: {overhead_s * 1000:.1f} ms "
        f"({overhead_ratio:.2f}x the kernel; floor-checked < 2x)"
    )

    report = {
        "generated_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "platform": platform.platform(),
        "tag_count": args.tags,
        "window_size": 5,
        "total_cost_matrix_cells": int(cells),
        "max_batch_cells": MAX_BATCH_CELLS,
        "timings_s": {
            "python_loop_per_tag": python_s,
            "vectorized_per_tag": vectorized_s,
            "batched": batched_s,
            "batched_localize_end_to_end": localize_s,
            "profile_segmentation": segmentation_s,
            "vzone_detection": detection_s,
        },
        "speedup_vs_python_loop": {
            "vectorized_per_tag": python_s / max(vectorized_s, 1e-12),
            "batched": python_s / max(batched_s, 1e-12),
        },
        "localize_overhead_s": overhead_s,
        "localize_overhead_vs_kernel": overhead_ratio,
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {args.out}")
    if not args.no_history:
        rows = record_run(
            source="bench_dtw",
            metrics={
                "timings_s": report["timings_s"],
                "speedup_vs_python_loop": report["speedup_vs_python_loop"],
                "localize_overhead_vs_kernel": report["localize_overhead_vs_kernel"],
            },
            scale={"tags": args.tags, "window_size": 5},
            history=args.history,
            timestamp=report["generated_at"],
            platform=report["platform"],
        )
        print(f"appended {len(rows)} history rows to {args.history}")
    print(
        f"batched DTW over {args.tags} tags: "
        f"{report['speedup_vs_python_loop']['batched']:.1f}x faster than the "
        f"per-tag Python loop"
    )


if __name__ == "__main__":
    main()
