"""Figure 19: accuracy distribution vs tag population, STPP vs OTrack."""

from conftest import emit, run_once

from repro.evaluation.experiments import fig19_population_boxplot, summarise_boxplot
from repro.reporting.tables import format_accuracy_map


def test_fig19_population_boxplot(benchmark):
    samples = run_once(benchmark, fig19_population_boxplot, repetitions=1)
    summary = summarise_boxplot(samples)
    emit(
        "Figure 19 — accuracy distribution vs population (STPP vs OTrack)",
        format_accuracy_map(
            {name: {"median": s["median"], "iqr": s["iqr"]} for name, s in summary.items()}
        )
        + "\npaper: STPP's IQR is significantly smaller than OTrack's",
    )
    assert summary["STPP"]["median"] >= summary["OTrack"]["median"]
