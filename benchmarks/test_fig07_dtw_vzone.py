"""Figure 7: V-zone located in a measured profile by segmented DTW."""

from conftest import emit, run_once

from repro.evaluation.experiments import fig07_dtw_alignment


def test_fig07_dtw_vzone(benchmark):
    result = run_once(benchmark, fig07_dtw_alignment)
    emit(
        "Figure 7 — DTW V-zone detection",
        f"DTW cost: {result.dtw_cost:.3f}\n"
        f"detected bottom: {result.detected_bottom_time_s:.2f} s "
        f"(true perpendicular: {result.true_perpendicular_time_s:.2f} s, "
        f"error {result.bottom_error_s*100:.1f} cm-equivalent x 0.3 m/s)\n"
        f"detected window: {result.detected_window_s[0]:.2f}-{result.detected_window_s[1]:.2f} s\n"
        "paper: after warping, the reference V-zone lands on the measured V-zone",
    )
    assert result.bottom_error_s < 0.5
