"""Figure 18: accuracy distribution per scheme as adjacent spacing shrinks."""

from conftest import emit, run_once

from repro.evaluation.experiments import fig18_spacing_boxplot, summarise_boxplot
from repro.reporting.tables import format_accuracy_map


def test_fig18_spacing_boxplot(benchmark):
    samples = run_once(benchmark, fig18_spacing_boxplot, repetitions=1)
    summary = summarise_boxplot(samples)
    emit(
        "Figure 18 — accuracy distribution vs spacing (per scheme)",
        format_accuracy_map(
            {name: {"median": s["median"], "iqr": s["iqr"]} for name, s in summary.items()}
        )
        + "\npaper: STPP has the highest median and the smallest IQR",
    )
    # At these generous spacings every scheme does well; STPP must stay in the
    # leading group (the paper's separation appears at the small-spacing end,
    # which Figure 17's benchmark covers).
    assert summary["STPP"]["median"] >= max(
        summary[name]["median"] for name in summary if name != "STPP"
    ) - 0.25
