"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures at a reduced
but representative scale, prints the regenerated rows/series (so the run log
doubles as the paper-vs-measured record), and reports its runtime through
pytest-benchmark.  ``run_once`` wraps ``benchmark.pedantic`` so heavyweight
simulations execute exactly once.

``record_metrics`` lets a figure benchmark feed the warehouse ledger too:
when ``REPRO_BENCH_HISTORY`` names a JSONL path, the regenerated numbers are
appended as history rows (run id, git sha, timestamp, platform, scale).  It
is opt-in by environment variable on purpose — plain ``pytest`` runs must
stay read-only, or every tier-1 run would grow the committed history.
"""

from __future__ import annotations

import os


def run_once(benchmark, function, *args, **kwargs):
    """Run ``function`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)


def emit(title: str, body: str) -> None:
    """Print a titled block; shows up in the captured benchmark output."""
    print(f"\n=== {title} ===\n{body}")


def record_metrics(source: str, metrics: dict, scale: dict) -> None:
    """Append ``metrics`` to the ledger named by ``REPRO_BENCH_HISTORY``.

    No-op when the variable is unset (the default for local and tier-1
    runs); nested mappings are flattened to dotted metric names.
    """
    history_path = os.environ.get("REPRO_BENCH_HISTORY")
    if not history_path:
        return
    from repro.bench.store import record_run

    rows = record_run(source=source, metrics=metrics, scale=scale, history=history_path)
    print(f"[bench-history] appended {len(rows)} rows to {history_path}")
