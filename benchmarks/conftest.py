"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures at a reduced
but representative scale, prints the regenerated rows/series (so the run log
doubles as the paper-vs-measured record), and reports its runtime through
pytest-benchmark.  ``run_once`` wraps ``benchmark.pedantic`` so heavyweight
simulations execute exactly once.
"""

from __future__ import annotations


def run_once(benchmark, function, *args, **kwargs):
    """Run ``function`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)


def emit(title: str, body: str) -> None:
    """Print a titled block; shows up in the captured benchmark output."""
    print(f"\n=== {title} ===\n{body}")
