"""Figure 6: measured profiles along the Y axis."""

from conftest import emit, run_once

from repro.evaluation.experiments import fig06_measured_profiles_y
from repro.reporting.tables import format_table


def test_fig06_measured_profiles_y(benchmark):
    result = run_once(benchmark, fig06_measured_profiles_y)
    rows = [
        (f"{spacing*100:.0f} cm", f"{m.bottom_gap_s:.3f} s", m.sample_counts)
        for spacing, m in sorted(result.items())
    ]
    emit(
        "Figure 6 — measured profiles along Y",
        format_table(("spacing", "bottom-time gap", "samples/tag"), rows)
        + "\npaper: Y spacing leaves bottom times nearly unchanged (shape differs instead)",
    )
    # The Y-spaced pair should show a far smaller bottom-time gap than the
    # 10 cm X-spaced pair of Figure 5 does at the same sweep speed (~0.33 s/10 cm);
    # individual seeds carry some detection noise, hence the loose bound.
    assert result[0.05].bottom_gap_s < 1.5
