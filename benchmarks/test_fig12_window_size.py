"""Figure 12: coarse-segment window size w vs ordering accuracy."""

from conftest import emit, run_once

from repro.evaluation.experiments import fig12_window_size
from repro.reporting.tables import format_accuracy_map


def test_fig12_window_size(benchmark):
    result = run_once(benchmark, fig12_window_size, repetitions=2)
    emit(
        "Figure 12 — window size vs accuracy",
        format_accuracy_map({case: {str(w): acc for w, acc in values.items()} for case, values in result.items()})
        + "\npaper: accuracy ~0.98 for w<=3, slight drop to w=5, sharp drop beyond",
    )
    for case_values in result.values():
        assert all(0.0 <= acc <= 1.0 for acc in case_values.values())
