"""Figure 3: reference profiles, X spacing separates V-zone bottoms in time."""

from conftest import emit, run_once

from repro.evaluation.experiments import fig03_reference_profiles_x
from repro.reporting.tables import format_table


def test_fig03_reference_profiles_x(benchmark):
    result = run_once(benchmark, fig03_reference_profiles_x)
    rows = [
        (f"{spacing*100:.0f} cm", f"{pair.bottom_gap_s:.2f} s")
        for spacing, pair in sorted(result.items())
    ]
    emit(
        "Figure 3 — V-zone bottom separation vs X spacing (reference profiles)",
        format_table(("X spacing", "bottom gap"), rows)
        + "\npaper: the 10 cm spacing shows a visibly larger time gap than 5 cm",
    )
    assert result[0.10].bottom_gap_s > result[0.05].bottom_gap_s
