"""Figure 8: coarse-grained segmentation of a measured phase profile."""

from conftest import emit, run_once

from repro.evaluation.experiments import fig08_segmentation


def test_fig08_segmentation(benchmark):
    result = run_once(benchmark, fig08_segmentation)
    emit(
        "Figure 8 — phase profile segmentation (w=5)",
        f"samples: {result.sample_count}\n"
        f"segments: {result.segment_count} (extra splits at wraps: {result.wrap_splits})\n"
        f"compression ratio: {result.compression_ratio:.1f}x\n"
        "paper: the profile is represented by a few dozen range/interval segments",
    )
    assert result.segment_count < result.sample_count
