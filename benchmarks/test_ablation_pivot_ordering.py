"""Ablation: pivot-based Y comparison (M-1) vs all-pairs (M(M-1)/2)."""

from conftest import emit, run_once

from repro.evaluation.experiments import ablation_pivot_vs_all_pairs, ablation_y_value_mode
from repro.reporting.tables import format_accuracy_map


def test_ablation_pivot_ordering(benchmark):
    result = run_once(benchmark, ablation_pivot_vs_all_pairs, repetitions=2)
    modes = ablation_y_value_mode(repetitions=2)
    emit(
        "Ablation — Y-axis comparison strategy",
        format_accuracy_map(result)
        + "\n"
        + format_accuracy_map(modes, title="Y-axis V-zone summary (depth / raw / curvature)")
        + "\npaper: the pivot shortcut keeps accuracy while cutting comparisons to M-1",
    )
    assert abs(result["pivot"]["accuracy_y"] - result["all_pairs"]["accuracy_y"]) < 0.4
