"""Figure 5: measured (noisy, fragmentary) profiles along the X axis."""

from conftest import emit, run_once

from repro.evaluation.experiments import fig05_measured_profiles_x
from repro.reporting.tables import format_table


def test_fig05_measured_profiles_x(benchmark):
    result = run_once(benchmark, fig05_measured_profiles_x)
    rows = [
        (
            f"{spacing*100:.0f} cm",
            f"{measured.bottom_gap_s:.2f} s",
            measured.sample_counts,
            f"{measured.dropout_fraction:.2f}",
        )
        for spacing, measured in sorted(result.items())
    ]
    emit(
        "Figure 5 — measured profiles along X",
        format_table(("spacing", "bottom gap", "samples/tag", "fragmentation"), rows)
        + "\npaper: measured V-zones still separate in time; profiles are fragmentary",
    )
    assert result[0.10].bottom_gap_s > 0
