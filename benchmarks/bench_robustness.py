"""Robustness recorder: accuracy-vs-fault-rate curves for all five schemes.

The accuracy leaderboard (``bench_accuracy.py``) scores clean simulated
sweeps; a deployed portal never sees one.  This harness replays the three
legacy leaderboard workloads (library shelf, airport baggage belt, warehouse
conveyor) through the seeded fault layer (:mod:`repro.faults`) and scores the
paper's five ordering schemes at every rung of three degradation ladders:

* **loss** — independent per-read loss at increasing rates (RF nulls,
  reader CPU stalls);
* **corruption** — phase and RSSI field corruption at increasing rates
  (decoder glitches);
* **reorder** — bounded clock skew at increasing rates (NTP steps, buffered
  LLRP reports), which scrambles arrival order without losing reads.

Every ladder starts at rate 0, and the rate-0 rung runs through the full
fault pipeline: the harness asserts the piped read log is **bit-identical**
to the clean one (``zero_fault_bit_identical``), which pins the fault layer's
pass-through contract at benchmark scale.  Two headline scalars summarize the
curves for the CI gate: ``stpp_min_accuracy`` (STPP's worst combined accuracy
over every scenario x ladder x rung) and ``stpp_min_lead`` (STPP's worst lead
over the best baseline, same domain).  ``benchmarks/check_robustness.py``
enforces floors on both plus per-rung STPP-above-baseline ordering.

Faults are drawn from ``FaultSpec(seed=<run seed>)`` pipelines seed-offset by
each repetition's scenario seed, so the whole record is a deterministic
function of the code — any movement is a code change, not noise.

Ladder rates are calibrated to the graceful-degradation regime.  STPP is the
only phase-*dependent* scheme in the suite, so phase corruption hits it
hardest by construction: beyond ~5% corrupted reads its accuracy crosses
below the RSSI-based baselines (measured: warehouse STPP 0.23 vs G-RSSI 0.40
at 10% corruption).  The recorded ladders stop where the paper's ordering
claim still holds within the checker's tolerance; the collapse region is a
property of the algorithm family, not a regression to gate.

Run with:
  PYTHONPATH=src python benchmarks/bench_robustness.py [--repetitions 2] \\
      [--scenarios library airport warehouse] [--out BENCH_robustness.json]
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from dataclasses import replace
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent
if str(_REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(_REPO_ROOT / "src"))

import numpy as np

from repro.bench.store import record_run, utc_timestamp
from repro.evaluation.runner import standard_scheme_suite
from repro.evaluation.sweep import score_schemes
from repro.faults import FaultSpec, apply_to_log
from repro.scenarios import default_registry
from repro.scenarios.builders import scenario_experiment
from repro.scenarios.registry import DEFAULT_SEED, SEED_STRIDE

DEFAULT_REPETITIONS = 3
"""Sweeps per scenario in the recorded curves (CI smoke uses 1).  One more
than the accuracy leaderboard: per-rung scores are small-population ordering
accuracies, and the extra repetition keeps rung-to-rung noise below the
checker's tolerances."""

SCHEMES: tuple[str, ...] = ("STPP", "BackPos", "OTrack", "Landmarc", "G-RSSI")

LEGACY_SCENARIOS: tuple[str, ...] = ("library", "airport", "warehouse")

LADDERS: dict[str, dict] = {
    "loss": {
        "description": "independent per-read loss",
        "rates": (0.0, 0.05, 0.1, 0.2),
        "injectors": lambda rate: [{"kind": "read_loss", "rate": rate}],
    },
    "corruption": {
        "description": "phase + RSSI field corruption",
        "rates": (0.0, 0.01, 0.02, 0.05),
        "injectors": lambda rate: [
            {"kind": "phase_corruption", "rate": rate},
            {"kind": "rssi_corruption", "rate": rate, "sigma_db": 6.0},
        ],
    },
    "reorder": {
        "description": "bounded clock skew (reordering)",
        "rates": (0.0, 0.25, 0.5),
        "injectors": lambda rate: [
            {"kind": "clock_skew", "rate": rate, "max_skew_s": 0.05}
        ],
    },
}
"""Ladder name -> rates swept and the injector chain built per rate."""


def run_curves(
    scenario_names: list[str], repetitions: int, seed: int
) -> dict:
    """Score every (scenario, ladder, rung, scheme) cell; returns the body."""
    registry = default_registry()
    ladders: dict[str, dict] = {
        name: {
            "description": ladder["description"],
            "rates": list(ladder["rates"]),
            "curves": {s: {} for s in scenario_names},
        }
        for name, ladder in LADDERS.items()
    }
    zero_fault_identical = True

    # accumulator[(ladder, scenario, scheme)] = per-rung list of rep scores
    cells: dict[tuple[str, str, str], list[list[float]]] = {}

    for scenario in scenario_names:
        spec = registry.get(scenario)
        index = registry.index_of(scenario)
        for rep in range(repetitions):
            rep_seed = seed + SEED_STRIDE * index + rep
            clean = scenario_experiment(rep, rep_seed, spec)
            for ladder_name, ladder in LADDERS.items():
                for rung, rate in enumerate(ladder["rates"]):
                    fault_spec = FaultSpec.from_json(
                        {"seed": seed, "injectors": ladder["injectors"](rate)}
                    )
                    degraded_log = apply_to_log(
                        fault_spec, clean.read_log, seed_offset=rep_seed
                    )
                    if rate == 0.0 and degraded_log != clean.read_log:
                        zero_fault_identical = False
                    experiment = replace(clean, read_log=degraded_log)
                    scores = score_schemes(experiment, standard_scheme_suite)
                    for score in scores:
                        cell = cells.setdefault(
                            (ladder_name, scenario, score.scheme),
                            [[] for _ in ladder["rates"]],
                        )
                        cell[rung].append(score.evaluation.combined)
            print(
                f"  {scenario} rep {rep + 1}/{repetitions} "
                f"(seed {rep_seed}): "
                + ", ".join(
                    f"{ladder}@max "
                    f"{np.mean(cells[(ladder, scenario, 'STPP')][-1]):.2f}"
                    for ladder in LADDERS
                )
            )

    for (ladder_name, scenario, scheme), per_rung in cells.items():
        ladders[ladder_name]["curves"][scenario][scheme] = [
            float(np.mean(values)) for values in per_rung
        ]

    # Headline scalars over every (scenario, ladder, rung) cell.
    min_lead = float("inf")
    min_accuracy = float("inf")
    for ladder in ladders.values():
        for scenario in scenario_names:
            curves = ladder["curves"][scenario]
            for rung in range(len(ladder["rates"])):
                stpp = curves["STPP"][rung]
                best_baseline = max(
                    curves[s][rung] for s in SCHEMES if s != "STPP"
                )
                min_lead = min(min_lead, stpp - best_baseline)
                min_accuracy = min(min_accuracy, stpp)

    return {
        "seed": seed,
        "schemes": list(SCHEMES),
        "scenarios": list(scenario_names),
        "ladders": ladders,
        "zero_fault_bit_identical": zero_fault_identical,
        "stpp_min_accuracy": min_accuracy,
        "stpp_min_lead": min_lead,
        "scale": {
            "repetitions": repetitions,
            "scenarios": list(scenario_names),
            "rungs": {name: list(l["rates"]) for name, l in LADDERS.items()},
        },
    }


def history_metrics(payload: dict) -> dict[str, float]:
    """Flat headline rows for the append-only ledger."""
    metrics: dict[str, float] = {
        "zero_fault_bit_identical": float(payload["zero_fault_bit_identical"]),
        "stpp_min_accuracy": payload["stpp_min_accuracy"],
        "stpp_min_lead": payload["stpp_min_lead"],
    }
    for ladder_name, ladder in payload["ladders"].items():
        for scenario in payload["scenarios"]:
            curve = ladder["curves"][scenario]["STPP"]
            metrics[f"{ladder_name}.{scenario}.STPP.max_rate"] = curve[-1]
    return metrics


def format_curves(payload: dict) -> str:
    lines = ["robustness curves (combined accuracy, STPP | best baseline):"]
    for ladder_name, ladder in payload["ladders"].items():
        lines.append(f"  {ladder_name} ({ladder['description']}):")
        header = "    {:<12}".format("scenario") + "".join(
            f"{rate:>12g}" for rate in ladder["rates"]
        )
        lines.append(header)
        for scenario in payload["scenarios"]:
            curves = ladder["curves"][scenario]
            row = f"    {scenario:<12}"
            for rung in range(len(ladder["rates"])):
                stpp = curves["STPP"][rung]
                best = max(
                    curves[s][rung]
                    for s in payload["schemes"]
                    if s != "STPP"
                )
                row += f"  {stpp:.2f}|{best:.2f}"
            lines.append(row)
    lines.append(
        f"  zero-fault rungs bit-identical: "
        f"{payload['zero_fault_bit_identical']}"
    )
    lines.append(
        f"  STPP min accuracy {payload['stpp_min_accuracy']:.3f}, "
        f"min lead over best baseline {payload['stpp_min_lead']:+.3f}"
    )
    return "\n".join(lines)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--repetitions", type=int, default=DEFAULT_REPETITIONS,
        help=f"sweeps per scenario (default {DEFAULT_REPETITIONS}; CI smoke uses 1)",
    )
    parser.add_argument(
        "--scenarios", nargs="+", default=list(LEGACY_SCENARIOS),
        help="registered scenarios to degrade (default: the legacy trio)",
    )
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--out", type=Path, default=Path("BENCH_robustness.json"))
    parser.add_argument(
        "--history", type=Path, default=Path("BENCH_HISTORY.jsonl"),
        help="append-only ledger to add this run's rows to "
        "(pass a scratch path for smoke runs)",
    )
    parser.add_argument(
        "--no-history", action="store_true",
        help="write only the snapshot (used by throwaway experiments)",
    )
    args = parser.parse_args()

    rung_count = sum(len(l["rates"]) for l in LADDERS.values())
    print(
        f"scoring 5 schemes x {len(args.scenarios)} scenarios x "
        f"{rung_count} fault rungs ({args.repetitions} sweep(s) each), "
        f"seed {args.seed}"
    )
    body = run_curves(args.scenarios, args.repetitions, args.seed)
    payload = {
        "generated_at": utc_timestamp(),
        "platform": platform.platform(),
        **body,
    }
    print(format_curves(payload))

    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")

    if not args.no_history:
        rows = record_run(
            source="bench_robustness",
            metrics=history_metrics(payload),
            scale=payload["scale"],
            history=args.history,
            timestamp=payload["generated_at"],
            platform=payload["platform"],
        )
        print(f"appended {len(rows)} history rows to {args.history}")


if __name__ == "__main__":
    main()
