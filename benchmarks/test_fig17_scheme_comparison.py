"""Figure 17: ordering accuracy of the five schemes over the five layouts."""

from conftest import emit, record_metrics, run_once

from repro.evaluation.experiments import fig17_scheme_comparison
from repro.reporting.tables import format_accuracy_map


def test_fig17_scheme_comparison(benchmark):
    result = run_once(benchmark, fig17_scheme_comparison, repetitions=1)
    emit(
        "Figure 17 — accuracy per scheme (X / Y / combined)",
        format_accuracy_map(result)
        + "\npaper: G-RSSI ~ Landmarc < 25% < OTrack < 50% < BackPos ~ 80% < STPP >= 88%",
    )
    record_metrics(
        "fig17_scheme_comparison",
        {scheme: values["combined"] for scheme, values in result.items()},
        scale={"repetitions": 1},
    )
    assert result["STPP"]["combined"] >= result["G-RSSI"]["combined"]
    assert result["STPP"]["combined"] >= result["OTrack"]["combined"]
    assert result["STPP"]["combined"] >= result["Landmarc"]["combined"]
    assert result["STPP"]["combined"] >= result["BackPos"]["combined"]
