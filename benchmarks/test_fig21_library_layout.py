"""Figure 21: detected book layout; errors concentrate on thin books."""

import numpy as np
from conftest import emit, run_once

from repro.evaluation.experiments import fig21_library_layout


def test_fig21_library_layout(benchmark):
    result = run_once(benchmark, fig21_library_layout)
    wrong_thickness = (
        float(np.mean(result.wrong_book_thicknesses_m)) if result.wrong_book_thicknesses_m else float("nan")
    )
    emit(
        "Figure 21 — detected book layout",
        f"per-level accuracy: { {k: round(v, 2) for k, v in result.per_level_accuracy.items()} }\n"
        f"overall accuracy: {result.accuracy:.2f}\n"
        f"wrongly ordered books: {len(result.wrong_books)} "
        f"(mean thickness {wrong_thickness*100:.1f} cm vs shelf median {result.median_thickness_m*100:.1f} cm)\n"
        "paper: all incorrectly ordered books are the thin ones",
    )
    assert 0.0 <= result.accuracy <= 1.0
