"""Figure 14: tag-to-tag distance vs ordering accuracy (antenna-moving case)."""

from conftest import emit, run_once

from repro.evaluation.experiments import fig14_spacing_antenna_moving
from repro.reporting.tables import format_accuracy_map


def test_fig14_spacing_antenna_moving(benchmark):
    result = run_once(benchmark, fig14_spacing_antenna_moving, repetitions=3)
    emit(
        "Figure 14 — spacing vs accuracy, antenna-moving case",
        format_accuracy_map({f"{s*100:.0f} cm": v for s, v in sorted(result.items())})
        + "\npaper: accuracy remains high for spacings above 8 cm",
    )
    spacings = sorted(result)
    assert result[spacings[-1]]["combined"] >= result[spacings[0]]["combined"] - 0.1
