"""Assert degradation floors on ``BENCH_robustness.json``.

The robustness twin of ``check_accuracy.py``: CI runs it after the
robustness recorder so a PR that makes STPP *fragile* — fine on clean
streams, collapsing under read loss or corruption — fails the build even
while every clean-accuracy floor still passes.  Enforced:

* **schema** — the snapshot must carry the robustness shape (shared
  validator in ``repro.bench.schema``);
* **zero-fault pass-through** — the recorded run must have found the rate-0
  rung of every ladder bit-identical to the clean stream
  (``zero_fault_bit_identical``); a fault layer that perturbs clean streams
  invalidates every other number in the warehouse;
* **degradation floor** — STPP's worst combined accuracy over every
  (scenario, ladder, rung) cell must stay above ``--min-accuracy``;
* **STPP above baselines at every rung** — recomputed from the curves (not
  trusted from the summary scalar): at each rung STPP must score at least
  every baseline's accuracy minus ``--lead-tolerance``.  The tolerance
  absorbs the airport tie (STPP ~= G-RSSI clean) and high-corruption rungs
  where phase corruption hits the phase-based scheme hardest.

Run with:
  python benchmarks/check_robustness.py [--robustness BENCH_robustness.json]

A missing file is skipped with a note (the record is produced by
``make bench-robustness``), so the check degrades gracefully on fresh clones.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent
if str(_REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(_REPO_ROOT / "src"))

from repro.bench.schema import validate_snapshot

FAILURES: list[str] = []


def _require(condition: bool, message: str) -> None:
    if condition:
        print(f"  ok:   {message}")
    else:
        print(f"  FAIL: {message}")
        FAILURES.append(message)


def check_robustness(path: Path, args: argparse.Namespace) -> None:
    print(f"robustness curves ({path}):")
    if not path.exists():
        print(f"  skip: {path} not found")
        return
    payload = json.loads(path.read_text())

    problems = validate_snapshot("robustness", payload)
    for problem in problems:
        _require(False, f"schema: {problem}")
    if problems:
        return

    _require(
        payload["zero_fault_bit_identical"] is True,
        "rate-0 rungs passed through the fault pipeline bit-identically",
    )

    min_accuracy = float(payload["stpp_min_accuracy"])
    _require(
        min_accuracy >= args.min_accuracy,
        f"STPP worst-rung combined accuracy {min_accuracy:.3f} "
        f">= floor {args.min_accuracy}",
    )

    baselines = [s for s in payload["schemes"] if s != "STPP"]
    recomputed_min_accuracy = float("inf")
    for ladder_name, ladder in payload["ladders"].items():
        for scenario in payload["scenarios"]:
            curves = ladder["curves"].get(scenario, {})
            if "STPP" not in curves:
                _require(
                    False, f"{ladder_name}/{scenario} has no recorded STPP curve"
                )
                continue
            for rung, rate in enumerate(ladder["rates"]):
                stpp = float(curves["STPP"][rung])
                recomputed_min_accuracy = min(recomputed_min_accuracy, stpp)
                worst = min(
                    stpp - float(curves[s][rung])
                    for s in baselines
                    if s in curves
                )
                _require(
                    worst >= -args.lead_tolerance,
                    f"{ladder_name}/{scenario}@{rate:g}: STPP {stpp:.3f} within "
                    f"{args.lead_tolerance} of every baseline "
                    f"(worst lead {worst:+.3f})",
                )
    _require(
        abs(recomputed_min_accuracy - min_accuracy) < 1e-9,
        f"summary stpp_min_accuracy {min_accuracy:.3f} matches the curves "
        f"({recomputed_min_accuracy:.3f})",
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--robustness", type=Path, default=Path("BENCH_robustness.json")
    )
    parser.add_argument(
        "--min-accuracy", type=float, default=0.25,
        help="floor on STPP's worst combined accuracy over every "
        "(scenario, ladder, rung) cell (default 0.25; recorded worst is "
        "0.35, the warehouse corruption ladder)",
    )
    parser.add_argument(
        "--lead-tolerance", type=float, default=0.20,
        help="slack allowed when requiring STPP to top every baseline at "
        "every rung (default 0.20; recorded worst lead is -0.13 — the "
        "airport ties G-RSSI even clean, and phase corruption hits the "
        "only phase-based scheme hardest)",
    )
    args = parser.parse_args()

    check_robustness(args.robustness, args)

    if FAILURES:
        print(f"\n{len(FAILURES)} robustness floor(s) violated")
        sys.exit(1)
    print("\nrecorded degradation curves at or above their floors")


if __name__ == "__main__":
    main()
