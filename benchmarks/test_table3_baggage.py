"""Table 3: baggage ordering accuracy per scheme and traffic period."""

from conftest import emit, run_once

from repro.evaluation.experiments import table3_baggage
from repro.reporting.tables import format_accuracy_map


def test_table3_baggage(benchmark):
    result = run_once(benchmark, table3_baggage, bags_per_batch=12, batches_per_period=2)
    emit(
        "Table 3 — baggage handling accuracy per period",
        format_accuracy_map(result)
        + "\npaper: STPP 96-97% > OTrack 88-95% > G-RSSI 51-72% across the three periods",
    )
    for period in next(iter(result.values())):
        assert result["STPP"][period] >= result["G-RSSI"][period] - 0.1
