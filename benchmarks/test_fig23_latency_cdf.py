"""Figure 23: ordering latency CDF of STPP vs OTrack."""

import numpy as np
from conftest import emit, run_once

from repro.evaluation.experiments import fig23_latency_cdf
from repro.evaluation.latency import latency_cdf
from repro.reporting.tables import format_table


def test_fig23_latency_cdf(benchmark):
    samples = run_once(benchmark, fig23_latency_cdf, bag_count=25)
    rows = []
    for scheme, scheme_samples in samples.items():
        values, _ = latency_cdf(scheme_samples)
        rows.append(
            (scheme, f"{float(np.mean(values)):.3f} s", f"{float(np.median(values)):.3f} s", f"{float(values[-1]):.3f} s")
        )
    emit(
        "Figure 23 — ordering latency (mean / median / max)",
        format_table(("scheme", "mean", "median", "max"), rows)
        + "\npaper: STPP averages ~1.47 s, slightly above OTrack",
    )
    mean_latency = {s: float(np.mean([x.latency_s for x in v])) for s, v in samples.items()}
    assert mean_latency["STPP"] >= mean_latency["OTrack"] - 0.05
