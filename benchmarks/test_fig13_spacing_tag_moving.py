"""Figure 13: tag-to-tag distance vs ordering accuracy (tag-moving case)."""

from conftest import emit, run_once

from repro.evaluation.experiments import fig13_spacing_tag_moving
from repro.reporting.tables import format_accuracy_map


def test_fig13_spacing_tag_moving(benchmark):
    result = run_once(benchmark, fig13_spacing_tag_moving, repetitions=3)
    emit(
        "Figure 13 — spacing vs accuracy, tag-moving case",
        format_accuracy_map({f"{s*100:.0f} cm": v for s, v in sorted(result.items())})
        + "\npaper: 42%/23% (X/Y) at 2 cm rising to 92%/88% at 10 cm",
    )
    spacings = sorted(result)
    assert result[spacings[-1]]["y"] >= result[spacings[0]]["y"]
