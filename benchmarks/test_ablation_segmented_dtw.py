"""Ablation: segmented DTW vs full-sample DTW vs longest-run heuristic."""

from conftest import emit, run_once

from repro.evaluation.experiments import (
    ablation_segmented_vs_full_dtw,
    dtw_speedup_measurement,
)
from repro.reporting.tables import format_accuracy_map


def test_ablation_segmented_vs_full_dtw(benchmark):
    result = run_once(benchmark, ablation_segmented_vs_full_dtw, repetitions=2)
    speedup = dtw_speedup_measurement()
    emit(
        "Ablation — V-zone detection strategy",
        format_accuracy_map(result)
        + f"\nsingle-profile DTW speed-up from segmentation: {speedup['speedup']:.1f}x "
        f"(paper predicts ~w^2 = {speedup['theoretical_speedup']:.0f}x)",
    )
    assert result["segmented_dtw"]["runtime_s"] <= result["full_dtw"]["runtime_s"]
