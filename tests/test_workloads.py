"""Unit tests for the layout, library, and airport workload generators."""

import numpy as np
import pytest

from repro.workloads.airport import (
    MIDDAY_OFF_PEAK,
    MORNING_PEAK,
    PAPER_PERIODS,
    baggage_batch,
    period_batches,
)
from repro.workloads.layouts import (
    column_layout,
    grid_layout,
    paper_test_cases,
    random_spacing_row,
    reference_tag_grid,
    row_layout,
    staircase_layout,
)
from repro.workloads.library import (
    detect_misplaced_books,
    generate_bookshelf,
    misplace_books,
)


class TestLayouts:
    def test_row_and_column(self):
        row = row_layout(5, 0.1)
        assert len(row) == 5
        assert row[4].x == pytest.approx(0.4)
        col = column_layout(3, 0.2)
        assert col[2].y == pytest.approx(0.4)

    def test_grid_size(self):
        grid = grid_layout(3, 2, 0.1, 0.05)
        assert len(grid) == 6
        assert grid[-1].x == pytest.approx(0.2)
        assert grid[-1].y == pytest.approx(0.05)

    def test_staircase_distinct_x(self):
        layout = staircase_layout(8, 0.05, 0.05)
        xs = [p.x for p in layout]
        assert len(set(xs)) == 8

    def test_random_spacing_row_within_bounds(self):
        rng = np.random.default_rng(0)
        layout = random_spacing_row(10, 0.02, 0.10, rng=rng)
        gaps = np.diff([p.x for p in layout])
        assert np.all(gaps >= 0.02 - 1e-9)
        assert np.all(gaps <= 0.10 + 1e-9)

    def test_reference_grid_covers_span(self):
        grid = reference_tag_grid(0.4, 0.2, spacing_m=0.2)
        xs = {p.x for p in grid}
        ys = {p.y for p in grid}
        assert max(xs) == pytest.approx(0.4)
        assert max(ys) == pytest.approx(0.2)

    def test_paper_test_cases_have_five_layouts(self):
        cases = paper_test_cases()
        assert len(cases) == 5
        assert all(len(points) >= 8 for points in cases.values())

    def test_validation(self):
        with pytest.raises(ValueError):
            row_layout(0, 0.1)
        with pytest.raises(ValueError):
            random_spacing_row(5, 0.1, 0.05)


class TestLibrary:
    def test_generate_bookshelf_structure(self):
        shelf = generate_bookshelf(levels=3, books_per_level=10, seed=0)
        assert len(shelf.books) == 30
        assert shelf.levels == [0, 1, 2]
        assert all(0.03 <= b.thickness_m <= 0.08 for b in shelf.books)

    def test_spine_positions_monotone_within_level(self):
        shelf = generate_bookshelf(levels=1, books_per_level=10, seed=1)
        positions = shelf.spine_positions()
        order = shelf.physical_order(0)
        xs = [positions[c].x for c in order]
        assert xs == sorted(xs)

    def test_fresh_shelf_has_no_misplaced_books(self):
        shelf = generate_bookshelf(levels=2, books_per_level=8, seed=2)
        assert shelf.misplaced_books() == []

    def test_misplace_books_detected_by_ground_truth(self):
        shelf = generate_bookshelf(levels=1, books_per_level=20, seed=3)
        shuffled, misplaced = misplace_books(shelf, 2, rng=np.random.default_rng(3))
        assert len(misplaced) == 2
        assert set(misplaced) <= set(shuffled.misplaced_books())

    def test_detect_misplaced_books_flags_moved_book(self):
        catalogue = [f"B{i}" for i in range(10)]
        physical = list(catalogue)
        moved = physical.pop(2)
        physical.insert(7, moved)
        flagged = detect_misplaced_books(catalogue, physical)
        assert moved in flagged
        assert len(flagged) <= 2

    def test_detect_no_false_alarm_on_ordered_shelf(self):
        catalogue = [f"B{i}" for i in range(10)]
        assert detect_misplaced_books(catalogue, catalogue) == []

    def test_to_tags_labels_are_call_numbers(self):
        shelf = generate_bookshelf(levels=1, books_per_level=5, seed=4)
        tags = shelf.to_tags(seed=4)
        assert sorted(tag.label for tag in tags) == shelf.catalogue_order()

    def test_misplace_too_many_rejected(self):
        shelf = generate_bookshelf(levels=1, books_per_level=3, seed=5)
        with pytest.raises(ValueError):
            misplace_books(shelf, 10)


class TestAirport:
    def test_periods_defined(self):
        assert len(PAPER_PERIODS) == 3
        assert MORNING_PEAK.is_peak
        assert not MIDDAY_OFF_PEAK.is_peak

    def test_batch_gaps_respect_period(self):
        batch = baggage_batch(MORNING_PEAK, 15, seed=0)
        xs = sorted(t.position.x for t in batch.tags)
        gaps = np.diff(xs)
        assert np.all(gaps >= MORNING_PEAK.min_gap_m - 1e-9)
        assert np.all(gaps <= MORNING_PEAK.max_gap_m + 1e-9)

    def test_batch_ground_truth_order(self):
        batch = baggage_batch(MIDDAY_OFF_PEAK, 8, seed=1)
        order = batch.ground_truth_order()
        xs = [batch.tags.by_id(t).position.x for t in order]
        assert xs == sorted(xs)

    def test_period_batches_total(self):
        batches = period_batches(MORNING_PEAK, bags_per_batch=7, total_bags=20, seed=2)
        assert sum(len(b.tags) for b in batches) == 20
        assert len(batches) == 3

    def test_batch_validation(self):
        with pytest.raises(ValueError):
            baggage_batch(MORNING_PEAK, 0)
        with pytest.raises(ValueError):
            period_batches(MORNING_PEAK, bags_per_batch=0)
