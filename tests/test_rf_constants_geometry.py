"""Unit tests for repro.rf.constants and repro.rf.geometry."""

import math

import numpy as np
import pytest

from repro.rf import constants
from repro.rf.geometry import (
    Point3D,
    distance_point_to_segment,
    pairwise_distances,
    perpendicular_foot_parameter,
)


class TestBandPlan:
    def test_channel_frequency_in_band(self):
        for channel in range(constants.ISM_CHANNEL_COUNT):
            freq = constants.channel_frequency_hz(channel)
            assert constants.ISM_BAND_LOW_HZ <= freq <= constants.ISM_BAND_HIGH_HZ

    def test_channel_spacing(self):
        assert constants.channel_frequency_hz(7) - constants.channel_frequency_hz(6) == pytest.approx(
            constants.ISM_CHANNEL_SPACING_HZ
        )

    def test_invalid_channel_rejected(self):
        with pytest.raises(ValueError):
            constants.channel_frequency_hz(-1)
        with pytest.raises(ValueError):
            constants.channel_frequency_hz(constants.ISM_CHANNEL_COUNT)

    def test_wavelength_about_32cm(self):
        wavelength = constants.channel_wavelength_m(constants.DEFAULT_CHANNEL_INDEX)
        assert 0.32 < wavelength < 0.33

    def test_wavelength_rejects_nonpositive_frequency(self):
        with pytest.raises(ValueError):
            constants.wavelength_m(0.0)


class TestPoint3D:
    def test_distance_symmetric(self):
        a = Point3D(0.0, 0.0, 0.0)
        b = Point3D(3.0, 4.0, 0.0)
        assert a.distance_to(b) == pytest.approx(5.0)
        assert b.distance_to(a) == pytest.approx(5.0)

    def test_translate(self):
        p = Point3D(1.0, 2.0, 3.0).translate(dx=1.0, dz=-3.0)
        assert p == Point3D(2.0, 2.0, 0.0)

    def test_midpoint(self):
        mid = Point3D(0.0, 0.0, 0.0).midpoint(Point3D(2.0, 4.0, 6.0))
        assert mid == Point3D(1.0, 2.0, 3.0)

    def test_from_sequence_2d_and_3d(self):
        assert Point3D.from_sequence([1.0, 2.0]) == Point3D(1.0, 2.0, 0.0)
        assert Point3D.from_sequence([1.0, 2.0, 3.0]) == Point3D(1.0, 2.0, 3.0)
        with pytest.raises(ValueError):
            Point3D.from_sequence([1.0])

    def test_as_array(self):
        arr = Point3D(1.0, 2.0, 3.0).as_array()
        assert arr.shape == (3,)
        assert np.allclose(arr, [1.0, 2.0, 3.0])


class TestGeometryHelpers:
    def test_pairwise_distances_matrix(self):
        points = [Point3D(0, 0, 0), Point3D(1, 0, 0), Point3D(0, 1, 0)]
        matrix = pairwise_distances(points)
        assert matrix.shape == (3, 3)
        assert np.allclose(np.diag(matrix), 0.0)
        assert matrix[1, 2] == pytest.approx(math.sqrt(2))

    def test_pairwise_distances_empty(self):
        assert pairwise_distances([]).shape == (0, 0)

    def test_distance_point_to_segment_interior(self):
        d = distance_point_to_segment(
            Point3D(0.5, 1.0, 0.0), Point3D(0, 0, 0), Point3D(1, 0, 0)
        )
        assert d == pytest.approx(1.0)

    def test_distance_point_to_segment_clamps_to_endpoint(self):
        d = distance_point_to_segment(
            Point3D(2.0, 1.0, 0.0), Point3D(0, 0, 0), Point3D(1, 0, 0)
        )
        assert d == pytest.approx(math.sqrt(2))

    def test_perpendicular_foot_parameter(self):
        t = perpendicular_foot_parameter(
            Point3D(0.25, 5.0, 0.0), Point3D(0, 0, 0), Point3D(1, 0, 0)
        )
        assert t == pytest.approx(0.25)

    def test_perpendicular_foot_degenerate_segment(self):
        with pytest.raises(ValueError):
            perpendicular_foot_parameter(Point3D(0, 0, 0), Point3D(1, 1, 1), Point3D(1, 1, 1))
