"""The declarative fault layer: specs, injectors, and scenario integration.

Three contracts under test:

* **strictness** — ``FaultSpec`` parses in the scenario-spec style: unknown
  keys and out-of-range values raise :class:`SpecError` with the dotted path
  of the offending field, and specs round-trip exactly through JSON;
* **seeded determinism** — building the same spec twice degrades a stream
  identically; distinct ``seed_offset`` values decorrelate; injectors never
  mutate their input batches;
* **zero-fault pass-through** — a spec with no injectors (and every
  injector at rate 0) replays a stream bit-identically, which is the
  foundation the robustness benchmark's rate-0 rungs stand on.

Scenario integration rides along: a spec's optional ``faults`` section
round-trips, committed specs stay clean (no ``faults`` key emitted), and
``scenario_experiment`` applies the profile deterministically.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.faults import (
    INJECTOR_KINDS,
    FaultPipeline,
    FaultSpec,
    InjectorSpec,
    apply_to_log,
    build_pipeline,
)
from repro.rfid.reading import ReadBatch, ReadLog
from repro.scenarios import (
    ScenarioSpec,
    SpecError,
    default_registry,
    load_builtin_specs,
)


def _spec(*injectors: dict, seed: int = 9) -> FaultSpec:
    return FaultSpec.from_json({"seed": seed, "injectors": list(injectors)})


def _batches(seed: int = 5, rounds: int = 8, reads: int = 20) -> list[ReadBatch]:
    rng = np.random.default_rng(seed)
    out = []
    start = 0.0
    for round_index in range(rounds):
        times = start + np.sort(rng.uniform(0.0, 0.05, reads))
        start += 0.06
        out.append(
            ReadBatch(
                timestamps_s=times,
                tag_ids=tuple(f"t{int(i)}" for i in rng.integers(0, 4, reads)),
                phases_rad=rng.uniform(0.0, 2.0 * np.pi, reads),
                rssi_dbm=rng.uniform(-70.0, -40.0, reads),
                channel_index=6,
                round_index=round_index,
            )
        )
    return out


def _log(batches: list[ReadBatch]) -> ReadLog:
    log = ReadLog()
    for batch in batches:
        log.extend_batch(batch)
    return log


def _snapshot(batch: ReadBatch):
    return (
        batch.timestamps_s.copy(),
        batch.tag_ids,
        batch.phases_rad.copy(),
        batch.rssi_dbm.copy(),
    )


# ---------------------------------------------------------------------------
# Spec parsing and validation
# ---------------------------------------------------------------------------


class TestFaultSpec:
    def test_round_trips_exactly(self):
        spec = _spec(
            {"kind": "read_loss", "rate": 0.2},
            {"kind": "clock_skew", "rate": 0.5, "max_skew_s": 0.02},
        )
        assert FaultSpec.from_json(spec.to_json()) == spec

    def test_defaults_are_made_explicit(self):
        spec = _spec({"kind": "rssi_corruption", "rate": 0.1})
        assert spec.injectors[0].param("sigma_db") == 6.0
        assert spec.to_json()["injectors"][0]["sigma_db"] == 6.0

    def test_hashable_and_picklable(self):
        spec = _spec({"kind": "duplicate", "rate": 0.3})
        assert hash(spec) == hash(FaultSpec.from_json(spec.to_json()))
        assert pickle.loads(pickle.dumps(spec)) == spec

    def test_unknown_top_level_key_names_the_path(self):
        with pytest.raises(SpecError, match="faults.extra"):
            FaultSpec.from_json({"seed": 1, "injectors": [], "extra": 1})

    def test_unknown_kind_lists_the_known_ones(self):
        with pytest.raises(SpecError, match="read_loss"):
            _spec({"kind": "gremlins", "rate": 0.1})

    def test_unknown_injector_param_names_the_indexed_path(self):
        with pytest.raises(SpecError, match=r"faults.injectors\[1\]"):
            _spec(
                {"kind": "read_loss", "rate": 0.1},
                {"kind": "duplicate", "rate": 0.1, "banana": 1},
            )

    def test_rate_out_of_range_rejected_with_path(self):
        with pytest.raises(SpecError, match=r"faults.injectors\[0\].rate"):
            _spec({"kind": "read_loss", "rate": 1.5})

    def test_missing_required_param_rejected(self):
        with pytest.raises(SpecError, match="rate"):
            _spec({"kind": "read_loss"})

    def test_burst_bounds_must_be_ordered(self):
        with pytest.raises(SpecError, match="min_reads"):
            _spec({"kind": "burst_loss", "rate": 0.1, "min_reads": 5, "max_reads": 2})

    def test_seed_must_be_a_nonnegative_integer(self):
        with pytest.raises(SpecError, match="faults.seed"):
            FaultSpec(seed=-1)
        with pytest.raises(SpecError, match="faults.seed"):
            FaultSpec(seed=True)
        with pytest.raises(SpecError, match="faults.seed"):
            FaultSpec.from_json({"seed": "nine"})

    def test_describe_is_compact(self):
        assert FaultSpec().describe() == "clean"
        spec = _spec({"kind": "read_loss", "rate": 0.2}, {"kind": "duplicate", "rate": 0.1})
        assert spec.describe() == "read_loss(rate=0.2)+duplicate(rate=0.1)"

    def test_injector_order_is_part_of_identity(self):
        forward = _spec({"kind": "duplicate", "rate": 0.5}, {"kind": "read_loss", "rate": 0.5})
        backward = _spec({"kind": "read_loss", "rate": 0.5}, {"kind": "duplicate", "rate": 0.5})
        assert forward != backward

    def test_every_kind_parses_with_required_params_only(self):
        required = {
            "read_loss": {"rate": 0.1},
            "burst_loss": {"rate": 0.1},
            "duplicate": {"rate": 0.1},
            "clock_skew": {"rate": 0.1},
            "phase_corruption": {"rate": 0.1},
            "rssi_corruption": {"rate": 0.1},
            "stall": {"start_s": 1.0, "duration_s": 0.5},
            "disconnect": {"start_batch": 2},
            "truncate": {"after_batches": 4},
        }
        assert set(required) == set(INJECTOR_KINDS)
        for kind, params in required.items():
            spec = _spec({"kind": kind, **params})
            assert spec.injectors[0].kind == kind


# ---------------------------------------------------------------------------
# Injector behaviour
# ---------------------------------------------------------------------------


class TestInjectors:
    def test_read_loss_drops_and_counts(self):
        batches = _batches()
        pipeline = _spec({"kind": "read_loss", "rate": 0.3}).build()
        out = [b for batch in batches for b in pipeline.push(batch)]
        counters = pipeline.counters()
        total_in = sum(len(b) for b in batches)
        total_out = sum(len(b) for b in out)
        assert 0 < total_out < total_in
        assert counters["reads_dropped"] == total_in - total_out
        assert counters["reads_in"] == total_in
        assert counters["reads_out"] == total_out

    def test_burst_loss_drops_consecutive_runs(self):
        batch = _batches(rounds=1, reads=200)[0]
        pipeline = _spec(
            {"kind": "burst_loss", "rate": 0.02, "min_reads": 5, "max_reads": 5}
        ).build()
        (out,) = pipeline.push(batch)
        dropped = pipeline.counters()["reads_dropped"]
        assert dropped > 0 and dropped % 5 == 0 or dropped >= 5  # full runs (last may clip)
        # Surviving timestamps are a subsequence of the originals.
        assert set(out.timestamps_s).issubset(set(batch.timestamps_s))

    def test_duplicate_emits_adjacent_copies(self):
        batch = _batches(rounds=1, reads=100)[0]
        pipeline = _spec({"kind": "duplicate", "rate": 0.2}).build()
        (out,) = pipeline.push(batch)
        duplicated = pipeline.counters()["reads_duplicated"]
        assert duplicated > 0
        assert len(out) == len(batch) + duplicated
        # Every duplicated read sits next to its original, field-for-field.
        pairs = 0
        for i in range(len(out) - 1):
            if (
                out.timestamps_s[i] == out.timestamps_s[i + 1]
                and out.tag_ids[i] == out.tag_ids[i + 1]
                and out.phases_rad[i] == out.phases_rad[i + 1]
                and out.rssi_dbm[i] == out.rssi_dbm[i + 1]
            ):
                pairs += 1
        assert pairs >= duplicated

    def test_clock_skew_is_bounded_and_timestamp_only(self):
        batch = _batches(rounds=1, reads=100)[0]
        pipeline = _spec(
            {"kind": "clock_skew", "rate": 0.5, "max_skew_s": 0.01}
        ).build()
        (out,) = pipeline.push(batch)
        assert pipeline.counters()["reads_skewed"] > 0
        assert np.max(np.abs(out.timestamps_s - batch.timestamps_s)) <= 0.01
        assert out.tag_ids == batch.tag_ids
        assert np.array_equal(out.phases_rad, batch.phases_rad)
        assert np.array_equal(out.rssi_dbm, batch.rssi_dbm)

    def test_phase_corruption_touches_only_phases(self):
        batch = _batches(rounds=1, reads=100)[0]
        pipeline = _spec({"kind": "phase_corruption", "rate": 0.3}).build()
        (out,) = pipeline.push(batch)
        corrupted = pipeline.counters()["reads_corrupted"]
        changed = int(np.count_nonzero(out.phases_rad != batch.phases_rad))
        assert 0 < changed <= corrupted
        assert np.all((out.phases_rad >= 0.0) & (out.phases_rad < 2.0 * np.pi))
        assert np.array_equal(out.timestamps_s, batch.timestamps_s)
        assert np.array_equal(out.rssi_dbm, batch.rssi_dbm)

    def test_rssi_corruption_touches_only_rssi(self):
        batch = _batches(rounds=1, reads=100)[0]
        pipeline = _spec(
            {"kind": "rssi_corruption", "rate": 0.3, "sigma_db": 3.0}
        ).build()
        (out,) = pipeline.push(batch)
        assert pipeline.counters()["reads_corrupted"] > 0
        assert np.any(out.rssi_dbm != batch.rssi_dbm)
        assert np.array_equal(out.phases_rad, batch.phases_rad)

    def test_stall_silences_the_window(self):
        batches = _batches(rounds=6)
        pipeline = _spec(
            {"kind": "stall", "start_s": 0.06, "duration_s": 0.12}
        ).build()
        out = [b for batch in batches for b in pipeline.push(batch)]
        survivors = np.concatenate([b.timestamps_s for b in out])
        assert not np.any((survivors >= 0.06) & (survivors < 0.18))
        assert pipeline.counters()["reads_dropped"] == sum(
            len(b) for b in batches
        ) - survivors.size

    def test_disconnect_drops_whole_batches(self):
        batches = _batches(rounds=6)
        pipeline = _spec(
            {"kind": "disconnect", "start_batch": 2, "batch_count": 2}
        ).build()
        out = [pipeline.push(batch) for batch in batches]
        assert [len(survivors) for survivors in out] == [1, 1, 0, 0, 1, 1]
        assert pipeline.counters()["batches_dropped"] == 2

    def test_truncate_cuts_the_stream_short(self):
        batches = _batches(rounds=6)
        pipeline = _spec({"kind": "truncate", "after_batches": 3}).build()
        out = [pipeline.push(batch) for batch in batches]
        assert [len(survivors) for survivors in out] == [1, 1, 1, 0, 0, 0]

    def test_injectors_never_mutate_their_input(self):
        batches = _batches(rounds=4)
        snapshots = [_snapshot(batch) for batch in batches]
        pipeline = _spec(
            {"kind": "duplicate", "rate": 0.3},
            {"kind": "clock_skew", "rate": 0.5, "max_skew_s": 0.01},
            {"kind": "phase_corruption", "rate": 0.3},
            {"kind": "rssi_corruption", "rate": 0.3},
            {"kind": "read_loss", "rate": 0.3},
        ).build()
        for batch in batches:
            pipeline.push(batch)
        for batch, (times, ids, phases, rssis) in zip(batches, snapshots):
            assert np.array_equal(batch.timestamps_s, times)
            assert batch.tag_ids == ids
            assert np.array_equal(batch.phases_rad, phases)
            assert np.array_equal(batch.rssi_dbm, rssis)


# ---------------------------------------------------------------------------
# Pipeline determinism and pass-through
# ---------------------------------------------------------------------------


class TestPipeline:
    CHAIN = (
        {"kind": "read_loss", "rate": 0.15},
        {"kind": "duplicate", "rate": 0.1},
        {"kind": "clock_skew", "rate": 0.3, "max_skew_s": 0.01},
    )

    def test_build_twice_degrades_identically(self):
        log = _log(_batches())
        spec = _spec(*self.CHAIN)
        assert apply_to_log(spec, log) == apply_to_log(spec, log)

    def test_seed_offsets_decorrelate(self):
        log = _log(_batches())
        spec = _spec(*self.CHAIN)
        assert apply_to_log(spec, log, seed_offset=1) != apply_to_log(
            spec, log, seed_offset=2
        )

    def test_no_injectors_is_bit_identical_pass_through(self):
        log = _log(_batches())
        assert apply_to_log(FaultSpec(seed=3), log) == log

    def test_zero_rates_are_bit_identical_pass_through(self):
        log = _log(_batches())
        spec = _spec(
            {"kind": "read_loss", "rate": 0.0},
            {"kind": "duplicate", "rate": 0.0},
            {"kind": "clock_skew", "rate": 0.0},
            {"kind": "phase_corruption", "rate": 0.0},
            {"kind": "rssi_corruption", "rate": 0.0},
        )
        pipeline = spec.build()
        assert apply_to_log(pipeline, log) == log
        assert pipeline.faults_injected == 0
        counters = pipeline.counters()
        assert counters["reads_in"] == counters["reads_out"] == len(log)

    def test_faults_injected_sums_injector_counters(self):
        pipeline = _spec(*self.CHAIN).build()
        for batch in _batches():
            pipeline.push(batch)
        counters = pipeline.counters()
        assert pipeline.faults_injected == (
            counters["reads_dropped"]
            + counters["reads_duplicated"]
            + counters["reads_skewed"]
        )
        assert pipeline.faults_injected > 0

    def test_push_returns_zero_or_one_batches(self):
        pipeline = _spec({"kind": "disconnect", "start_batch": 0}).build()
        assert pipeline.push(_batches(rounds=1)[0]) == []

    def test_apply_matches_manual_push_flush(self):
        batches = _batches()
        via_apply = list(_spec(*self.CHAIN).build().apply(batches))
        manual_pipeline = _spec(*self.CHAIN).build()
        manual = [b for batch in batches for b in manual_pipeline.push(batch)]
        manual.extend(manual_pipeline.flush())
        assert len(via_apply) == len(manual)
        for a, b in zip(via_apply, manual):
            assert np.array_equal(a.timestamps_s, b.timestamps_s)
            assert a.tag_ids == b.tag_ids

    def test_build_pipeline_returns_pipeline(self):
        assert isinstance(build_pipeline(_spec(*self.CHAIN)), FaultPipeline)


# ---------------------------------------------------------------------------
# Scenario integration
# ---------------------------------------------------------------------------


def _minimal_scenario(**overrides):
    payload = {
        "name": "faulttest",
        "description": "a minimal valid spec",
        "layout": {"kind": "row", "spacing_m": 0.1},
        "population": {"count": 6},
        "motion": {"kind": "handheld"},
    }
    payload.update(overrides)
    return payload


class TestScenarioFaults:
    FAULTS = {
        "seed": 4,
        "injectors": [{"kind": "read_loss", "rate": 0.2}],
    }

    def test_faults_section_round_trips(self):
        spec = ScenarioSpec.from_json(_minimal_scenario(faults=self.FAULTS))
        assert spec.faults == FaultSpec.from_json(self.FAULTS)
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_clean_specs_emit_no_faults_key(self):
        spec = ScenarioSpec.from_json(_minimal_scenario())
        assert spec.faults is None
        assert "faults" not in spec.to_json()

    @pytest.mark.parametrize(
        "spec", load_builtin_specs(), ids=lambda spec: spec.name
    )
    def test_committed_specs_stay_clean(self, spec):
        assert spec.faults is None
        assert "faults" not in spec.to_json()

    def test_bad_faults_section_names_the_dotted_path(self):
        with pytest.raises(SpecError, match=r"faults.injectors\[0\].rate"):
            ScenarioSpec.from_json(
                _minimal_scenario(
                    faults={"injectors": [{"kind": "read_loss", "rate": 2.0}]}
                )
            )

    def test_degraded_names_encode_the_profile(self):
        spec = ScenarioSpec.from_json(_minimal_scenario())
        degraded = spec.degraded(FaultSpec.from_json(self.FAULTS))
        assert degraded.name == "faulttest[faults=read_loss.rate=0.2]"
        assert degraded.faults is not None
        # The generated name satisfies the spec's own name charset.
        assert ScenarioSpec.from_json(degraded.to_json()) == degraded

    def test_degraded_variants_expand_in_registration_order(self):
        registry = default_registry()
        profile = FaultSpec.from_json(self.FAULTS)
        variants = registry.degraded_variants(profile)
        assert [v.name.split("[")[0] for v in variants] == list(
            registry.names()
        )
        assert all(v.faults == profile for v in variants)

    def test_degraded_experiment_is_deterministic_and_lossy(self):
        from repro.scenarios.builders import scenario_experiment

        registry = default_registry()
        clean_spec = registry.get("library")
        degraded_spec = clean_spec.degraded(
            FaultSpec.from_json(self.FAULTS), name="library_degraded"
        )
        clean = scenario_experiment(0, 77, clean_spec)
        first = scenario_experiment(0, 77, degraded_spec)
        second = scenario_experiment(0, 77, degraded_spec)
        assert first.read_log == second.read_log
        assert len(first.read_log) < len(clean.read_log)
        # A different rep seed degrades differently (seed offsets the faults).
        other = scenario_experiment(0, 78, degraded_spec)
        assert other.read_log != first.read_log
