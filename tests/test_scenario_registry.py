"""Registry tests: ordering, seed derivation, and grid expansion.

The registry is the layer that turns validated specs into the sweep plans
the leaderboard scores, so the properties pinned here are the comparability
contract: the legacy trio keeps its historical seed indices (0, 1, 2), every
plan's seeds follow ``seed + 31 * index + rep``, and subsetting the matrix
never shifts a scenario's seeds.
"""

from __future__ import annotations

import pytest

from repro.scenarios import (
    DEFAULT_SEED,
    LEGACY_SCENARIOS,
    ScenarioRegistry,
    ScenarioSpec,
    SpecError,
    default_registry,
    expand_grid,
    load_builtin_specs,
)
from repro.scenarios.registry import SEED_STRIDE


def make_spec(name: str = "alpha", **overrides) -> ScenarioSpec:
    payload = {
        "name": name,
        "description": "registry test spec",
        "layout": {"kind": "row", "spacing_m": 0.1},
        "population": {"count": 6},
        "motion": {"kind": "handheld"},
    }
    payload.update(overrides)
    return ScenarioSpec.from_json(payload)


class TestDefaultRegistry:
    def test_legacy_trio_holds_the_first_three_indices(self):
        registry = default_registry()
        assert registry.names()[:3] == LEGACY_SCENARIOS
        for index, name in enumerate(LEGACY_SCENARIOS):
            assert registry.index_of(name) == index

    def test_matrix_has_at_least_four_new_scenarios(self):
        registry = default_registry()
        assert len(registry) >= len(LEGACY_SCENARIOS) + 4

    def test_default_registry_is_cached(self):
        assert default_registry() is default_registry()

    def test_builtin_specs_load_in_registry_order(self):
        registry = default_registry()
        assert tuple(spec.name for spec in load_builtin_specs()) == registry.names()


class TestRegistration:
    def test_registration_preserves_order(self):
        registry = ScenarioRegistry()
        registry.register_all([make_spec("b"), make_spec("a"), make_spec("c")])
        assert registry.names() == ("b", "a", "c")
        assert [spec.name for spec in registry] == ["b", "a", "c"]

    def test_duplicate_registration_rejected(self):
        registry = ScenarioRegistry()
        registry.register(make_spec("a"))
        with pytest.raises(ValueError, match="already registered"):
            registry.register(make_spec("a"))

    def test_replace_keeps_the_original_index(self):
        registry = ScenarioRegistry()
        registry.register_all([make_spec("a"), make_spec("b")])
        replacement = make_spec("a", population={"count": 9})
        registry.register(replacement, replace=True)
        assert registry.index_of("a") == 0
        assert registry.get("a").tag_count == 9

    def test_unknown_name_lists_the_known_ones(self):
        registry = ScenarioRegistry()
        registry.register(make_spec("a"))
        with pytest.raises(KeyError, match="registered: a"):
            registry.get("nope")


class TestSweepPlans:
    def test_seed_formula(self):
        registry = ScenarioRegistry()
        registry.register_all([make_spec("a"), make_spec("b"), make_spec("c")])
        plans = registry.sweep_plans(repetitions=3, seed=100)
        for index, plan in enumerate(plans):
            expected = [100 + SEED_STRIDE * index + rep for rep in range(3)]
            assert list(plan.seeds) == expected

    def test_plan_names_carry_the_scenario(self):
        registry = ScenarioRegistry()
        registry.register_all([make_spec("a"), make_spec("b")])
        plans = registry.sweep_plans(repetitions=1)
        assert [plan.name for plan in plans] == ["accuracy[a]", "accuracy[b]"]

    def test_subset_keeps_registration_index_seeds(self):
        registry = ScenarioRegistry()
        registry.register_all([make_spec("a"), make_spec("b"), make_spec("c")])
        full = {p.name: list(p.seeds) for p in registry.sweep_plans(repetitions=2)}
        subset = registry.sweep_plans(repetitions=2, names=("c",))
        assert len(subset) == 1
        assert list(subset[0].seeds) == full["accuracy[c]"]

    def test_default_seed_matches_the_leaderboard(self):
        registry = ScenarioRegistry()
        registry.register(make_spec("a"))
        (plan,) = registry.sweep_plans(repetitions=1)
        assert list(plan.seeds) == [DEFAULT_SEED]

    def test_all_default_plan_seeds_are_distinct(self):
        plans = default_registry().sweep_plans(repetitions=2)
        seeds = [seed for plan in plans for seed in plan.seeds]
        assert len(seeds) == len(set(seeds))


class TestExpandGrid:
    def test_cartesian_product_counts(self):
        spec = make_spec("base")
        variants = expand_grid(
            spec,
            {
                "motion.speed_mps": [0.2, 0.3],
                "layout.spacing_m": [0.05, 0.1, 0.15],
            },
        )
        assert len(variants) == 6

    def test_variant_names_encode_the_overrides(self):
        spec = make_spec("base")
        variants = expand_grid(spec, {"motion.speed_mps": [0.2, 0.4]})
        names = [v.name for v in variants]
        assert names == [
            "base[motion.speed_mps=0.2]",
            "base[motion.speed_mps=0.4]",
        ]
        assert variants[1].motion.speed_mps == 0.4

    def test_empty_axes_returns_the_base_spec(self):
        spec = make_spec("base")
        assert expand_grid(spec, {}) == [spec]

    def test_variants_are_revalidated(self):
        spec = make_spec("base")
        with pytest.raises(SpecError, match=r"motion\.speed_mps"):
            expand_grid(spec, {"motion.speed_mps": [-1.0]})

    def test_unknown_axis_path_rejected(self):
        spec = make_spec("base")
        with pytest.raises(SpecError):
            expand_grid(spec, {"motion.warp_factor": [1.0]})

    def test_expanded_variants_register_and_plan(self):
        spec = make_spec("base")
        registry = ScenarioRegistry()
        registry.register_all(expand_grid(spec, {"population.count": [4, 5]}))
        plans = registry.sweep_plans(repetitions=1, seed=7)
        assert [list(p.seeds) for p in plans] == [[7], [7 + SEED_STRIDE]]
