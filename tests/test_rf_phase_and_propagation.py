"""Unit tests for the phase model, link budget, antenna, multipath, and noise."""

import math

import numpy as np
import pytest

from repro.rf.antenna import DirectionalAntenna, ReadingZone
from repro.rf.channel import BackscatterChannel
from repro.rf.constants import TWO_PI, channel_wavelength_m
from repro.rf.geometry import Point3D
from repro.rf.multipath import (
    MultipathChannel,
    Reflector,
    tag_coupling_scatterers,
    typical_indoor_reflectors,
)
from repro.rf.noise import NOISELESS, NoiseModel
from repro.rf.phase_model import (
    DeviceOffsets,
    phase_distance,
    quantise_phase,
    round_trip_phase,
    wrap_phase,
)
from repro.rf.propagation import (
    LinkBudget,
    dbm_to_milliwatts,
    free_space_path_loss_db,
    milliwatts_to_dbm,
)


class TestPhaseModel:
    def test_phase_periodic_in_half_wavelength(self):
        wavelength = channel_wavelength_m(6)
        theta0 = round_trip_phase(1.0, wavelength)
        theta1 = round_trip_phase(1.0 + wavelength / 2.0, wavelength)
        assert phase_distance(theta0, theta1) < 1e-6

    def test_phase_range(self):
        wavelength = channel_wavelength_m(6)
        distances = np.linspace(0.1, 5.0, 500)
        phases = round_trip_phase(distances, wavelength)
        assert np.all(phases >= 0.0)
        assert np.all(phases < TWO_PI)

    def test_device_offsets_shift_phase(self):
        wavelength = channel_wavelength_m(6)
        offsets = DeviceOffsets(theta_tx=0.5, theta_rx=0.25, theta_tag=0.25)
        base = round_trip_phase(1.0, wavelength)
        shifted = round_trip_phase(1.0, wavelength, offsets)
        assert phase_distance(shifted, wrap_phase(base + 1.0)) < 1e-9

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            round_trip_phase(-0.1, 0.3)

    def test_quantise_phase_resolution(self):
        theta = 1.234567
        quantised = quantise_phase(theta, bits=12)
        assert abs(quantised - theta) <= TWO_PI / (1 << 12)

    def test_quantise_rejects_bad_bits(self):
        with pytest.raises(ValueError):
            quantise_phase(1.0, bits=0)

    def test_phase_distance_symmetric_and_bounded(self):
        assert phase_distance(0.1, TWO_PI - 0.1) == pytest.approx(0.2, abs=1e-9)
        assert 0 <= phase_distance(3.0, 0.5) <= math.pi

    def test_scalar_like_inputs_return_floats(self):
        # Regression: np.isscalar(np.array(0.3)) is False, so 0-d arrays used
        # to leak back out as 0-d ndarrays instead of Python floats.
        for value in (0.3, np.float64(0.3), np.array(0.3)):
            wrapped = wrap_phase(value)
            assert type(wrapped) is float
            assert wrapped == pytest.approx(0.3)
            quantised = quantise_phase(value)
            assert type(quantised) is float
        for distance in (1.0, np.float64(1.0), np.array(1.0)):
            theta = round_trip_phase(distance, 0.326)
            assert type(theta) is float

    def test_array_inputs_stay_arrays(self):
        values = np.array([0.1, TWO_PI + 0.1, -0.1])
        assert isinstance(wrap_phase(values), np.ndarray)
        assert isinstance(quantise_phase(values), np.ndarray)
        assert isinstance(round_trip_phase(np.array([1.0, 2.0]), 0.326), np.ndarray)
        # One-element arrays are arrays, not scalars.
        assert isinstance(wrap_phase(np.array([0.1])), np.ndarray)


class TestLinkBudget:
    def test_fspl_increases_with_distance(self):
        assert free_space_path_loss_db(2.0, 920e6) > free_space_path_loss_db(1.0, 920e6)

    def test_dbm_conversions_roundtrip(self):
        assert milliwatts_to_dbm(dbm_to_milliwatts(13.0)) == pytest.approx(13.0)
        with pytest.raises(ValueError):
            milliwatts_to_dbm(0.0)

    def test_rssi_decreases_with_distance(self):
        budget = LinkBudget()
        antenna = Point3D(0, 0, 0)
        near = budget.reverse_power_dbm(antenna, Point3D(0, 0, 0.5), 920e6)
        far = budget.reverse_power_dbm(antenna, Point3D(0, 0, 2.0), 920e6)
        assert near > far

    def test_read_range_is_metres_scale(self):
        budget = LinkBudget()
        rng = budget.max_read_range_m(920e6, resolution_m=0.05)
        assert 1.0 < rng < 50.0

    def test_tag_energised_near_not_far(self):
        budget = LinkBudget()
        antenna = Point3D(0, 0, 0)
        assert budget.tag_energised(antenna, Point3D(0, 0, 0.5), 920e6)
        assert not budget.tag_energised(antenna, Point3D(0, 0, 40.0), 920e6)


class TestAntennaAndZone:
    def test_boresight_gain_is_max(self):
        antenna = DirectionalAntenna(boresight=(0, 0, 1))
        origin = Point3D(0, 0, 0)
        on_axis = antenna.gain_dbi_towards(origin, Point3D(0, 0, 1))
        off_axis = antenna.gain_dbi_towards(origin, Point3D(1, 0, 1))
        assert on_axis == pytest.approx(antenna.gain_dbi)
        assert off_axis < on_axis

    def test_half_power_at_half_beamwidth(self):
        antenna = DirectionalAntenna(gain_dbi=6.0, beamwidth_deg=70.0, boresight=(0, 0, 1))
        origin = Point3D(0, 0, 0)
        angle = math.radians(35.0)
        target = Point3D(math.sin(angle), 0.0, math.cos(angle))
        assert antenna.gain_dbi_towards(origin, target) == pytest.approx(3.0, abs=0.2)

    def test_behind_panel_rejected(self):
        antenna = DirectionalAntenna(boresight=(0, 0, 1))
        gain = antenna.gain_dbi_towards(Point3D(0, 0, 0), Point3D(0, 0, -1))
        assert gain <= antenna.gain_dbi - 20.0 + 1e-9

    def test_invalid_beamwidth(self):
        with pytest.raises(ValueError):
            DirectionalAntenna(beamwidth_deg=0.0)

    def test_reading_zone_range_limit(self):
        zone = ReadingZone(max_range_m=1.0, beam_limited=False)
        assert zone.contains(Point3D(0, 0, 0), Point3D(0, 0, 0.5))
        assert not zone.contains(Point3D(0, 0, 0), Point3D(0, 0, 1.5))

    def test_reading_zone_beam_limit(self):
        antenna = DirectionalAntenna(beamwidth_deg=60.0, boresight=(0, 0, 1))
        zone = ReadingZone(max_range_m=5.0, antenna=antenna, beam_limited=True)
        assert zone.contains(Point3D(0, 0, 0), Point3D(0, 0, 1.0))
        assert not zone.contains(Point3D(0, 0, 0), Point3D(5.0, 0, 0.5))

    def test_tags_in_zone_filtering(self):
        zone = ReadingZone(max_range_m=1.0, beam_limited=False)
        tags = {"near": Point3D(0, 0, 0.5), "far": Point3D(0, 0, 3.0)}
        assert zone.tags_in_zone(Point3D(0, 0, 0), tags) == ["near"]


class TestMultipath:
    def test_no_reflectors_identity(self):
        channel = MultipathChannel()
        gain = channel.complex_gain(Point3D(0, 0, 0), Point3D(0, 0, 1), 0.326)
        assert gain == pytest.approx(1.0 + 0.0j)
        assert channel.amplitude_gain_db(Point3D(0, 0, 0), Point3D(0, 0, 1), 0.326) == pytest.approx(0.0)

    def test_reflector_perturbs_phase(self):
        channel = MultipathChannel(
            reflectors=(Reflector(Point3D(0.5, 0.5, 0.5), reflection_coefficient=0.5),)
        )
        perturbation = channel.phase_perturbation_rad(Point3D(0, 0, 0), Point3D(0, 0, 1), 0.326)
        assert perturbation != 0.0
        assert -math.pi <= perturbation <= math.pi

    def test_reflection_coefficient_validated(self):
        with pytest.raises(ValueError):
            Reflector(Point3D(0, 0, 0), reflection_coefficient=1.5)

    def test_scatterer_attenuation_decays(self):
        scatterer = Reflector(Point3D(0, 0, 0), reflection_coefficient=0.5, scattering_decay_m=0.02)
        near = scatterer.scattering_attenuation(Point3D(0.02, 0, 0))
        far = scatterer.scattering_attenuation(Point3D(0.10, 0, 0))
        assert near == pytest.approx(1.0)
        assert far < 0.1

    def test_scatterer_attenuation_curve_is_squared(self):
        # The roll-off beyond the decay scale is (decay / distance) ** 2 —
        # the squared near-field form the docstring now documents; this pins
        # the curve so doc and code cannot drift apart again.
        decay = 0.02
        scatterer = Reflector(
            Point3D(0, 0, 0), reflection_coefficient=0.5, scattering_decay_m=decay
        )
        for distance in (0.005, 0.01, 0.02):
            # At or inside the decay scale: no extra attenuation.
            assert scatterer.scattering_attenuation(Point3D(distance, 0, 0)) == 1.0
        for distance in (0.03, 0.04, 0.05, 0.10):
            expected = (decay / distance) ** 2
            assert scatterer.scattering_attenuation(
                Point3D(distance, 0, 0)
            ) == pytest.approx(expected, rel=1e-12)
        # Spot values: strong at 2 cm, marginal at 4 cm, negligible at 10 cm.
        assert scatterer.scattering_attenuation(Point3D(0.04, 0, 0)) == pytest.approx(0.25)
        assert scatterer.scattering_attenuation(Point3D(0.10, 0, 0)) == pytest.approx(0.04)

    def test_tag_coupling_scatterers_one_per_tag(self):
        positions = [Point3D(i * 0.05, 0, 0) for i in range(4)]
        scatterers = tag_coupling_scatterers(positions)
        assert len(scatterers) == 4

    def test_typical_indoor_reflectors_outside_region(self):
        rng = np.random.default_rng(0)
        reflectors = typical_indoor_reflectors(
            Point3D(0, 0, 0), Point3D(1, 1, 0), count=5, rng=rng
        )
        assert len(reflectors) == 5
        for reflector in reflectors:
            assert 0.0 < reflector.reflection_coefficient <= 1.0


class TestNoise:
    def test_noiseless_is_identity(self):
        rng = np.random.default_rng(0)
        assert NOISELESS.noisy_phase(1.0, rng) == pytest.approx(1.0)
        assert NOISELESS.noisy_rssi(-60.0, rng) == pytest.approx(-60.0)
        assert not NOISELESS.read_dropped(-100.0, rng)

    def test_noisy_phase_stays_wrapped(self):
        model = NoiseModel(phase_noise_std_rad=0.5)
        rng = np.random.default_rng(1)
        for _ in range(200):
            value = model.noisy_phase(0.01, rng)
            assert 0.0 <= value < TWO_PI

    def test_fade_dropout(self):
        model = NoiseModel(random_dropout_probability=0.0, fade_dropout_threshold_db=-10.0)
        rng = np.random.default_rng(2)
        assert model.read_dropped(-15.0, rng)
        assert not model.read_dropped(-5.0, rng)

    def test_random_dropout_rate(self):
        model = NoiseModel(random_dropout_probability=0.3, fade_dropout_threshold_db=-100.0)
        rng = np.random.default_rng(3)
        drops = sum(model.read_dropped(0.0, rng) for _ in range(2000))
        assert 0.25 < drops / 2000 < 0.35

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            NoiseModel(phase_noise_std_rad=-1.0)
        with pytest.raises(ValueError):
            NoiseModel(random_dropout_probability=1.5)


class TestBackscatterChannel:
    def test_ideal_phase_matches_model(self):
        channel = BackscatterChannel(quantise=False, noise=NOISELESS)
        antenna = Point3D(0, 0, 0)
        tag = Point3D(0, 0, 1.0)
        expected = round_trip_phase(1.0, channel.wavelength_m, channel.device_offsets)
        assert channel.ideal_phase(antenna, tag) == pytest.approx(expected)

    def test_observation_fields(self):
        channel = BackscatterChannel(noise=NOISELESS)
        obs = channel.observe(Point3D(0, 0, 0), Point3D(0, 0, 1.0), np.random.default_rng(0))
        assert obs.readable
        assert 0 <= obs.phase_rad < TWO_PI
        assert obs.true_distance_m == pytest.approx(1.0)

    def test_extra_reflectors_change_observation(self):
        channel = BackscatterChannel(noise=NOISELESS, quantise=False)
        rng = np.random.default_rng(0)
        plain = channel.observe(Point3D(0, 0, 0), Point3D(0, 0, 1.0), rng)
        extra = (Reflector(Point3D(0.2, 0.0, 0.5), reflection_coefficient=0.6),)
        perturbed = channel.observe(
            Point3D(0, 0, 0), Point3D(0, 0, 1.0), rng, extra_reflectors=extra
        )
        assert perturbed.phase_rad != pytest.approx(plain.phase_rad)
