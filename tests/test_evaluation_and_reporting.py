"""Unit tests for the experiment runner, latency measurement, and reporting."""

import numpy as np
import pytest

from repro.baselines import GRssiScheme, OTrackScheme
from repro.evaluation.latency import latency_cdf, measure_scheme_latency
from repro.evaluation.runner import mean_accuracy, run_stpp, standard_experiment
from repro.reporting.tables import format_accuracy_map, format_series, format_table
from repro.workloads.layouts import row_layout, staircase_layout


@pytest.fixture(scope="module")
def row_experiment():
    return standard_experiment(row_layout(5, 0.12), seed=13)


class TestRunner:
    def test_experiment_fields(self, row_experiment):
        assert len(row_experiment.target_ids) == 5
        assert set(row_experiment.true_x) == set(row_experiment.target_ids)
        assert len(row_experiment.read_log) > 0

    def test_run_scheme_produces_evaluation(self, row_experiment):
        run = row_experiment.run_scheme(GRssiScheme())
        assert run.scheme == "G-RSSI"
        assert 0.0 <= run.evaluation.accuracy_x <= 1.0
        assert run.latency_s > 0.0

    def test_run_stpp(self, row_experiment):
        evaluation, latency = run_stpp(row_experiment)
        assert evaluation.total_tags == 5
        assert latency > 0.0

    def test_reference_grid_excluded_from_targets(self):
        experiment = standard_experiment(
            staircase_layout(4, 0.1, 0.1), seed=1,
            reference_grid=row_layout(3, 0.3, y_m=-0.05),
        )
        assert len(experiment.target_ids) == 4
        assert len(experiment.reference_positions) == 3
        # reference tags are read too
        assert set(experiment.reference_positions) <= set(experiment.read_log.tag_ids())

    def test_mean_accuracy_requires_runs(self):
        with pytest.raises(ValueError):
            mean_accuracy([])


class TestLatency:
    def test_latency_samples_per_tag(self, row_experiment):
        samples = measure_scheme_latency(
            OTrackScheme(), row_experiment.read_log, row_experiment.target_ids, repeats=1
        )
        assert len(samples) == len(row_experiment.target_ids)
        assert all(s.latency_s > 0 for s in samples)

    def test_latency_cdf_monotone(self, row_experiment):
        samples = measure_scheme_latency(
            GRssiScheme(), row_experiment.read_log, row_experiment.target_ids, repeats=1
        )
        values, probabilities = latency_cdf(samples)
        assert np.all(np.diff(values) >= 0)
        assert probabilities[-1] == pytest.approx(1.0)

    def test_latency_cdf_empty_rejected(self):
        with pytest.raises(ValueError):
            latency_cdf([])

    def test_invalid_repeats(self, row_experiment):
        with pytest.raises(ValueError):
            measure_scheme_latency(
                GRssiScheme(), row_experiment.read_log, row_experiment.target_ids, repeats=0
            )


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(("name", "value"), [("a", 1.0), ("bb", 0.5)], title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_format_series(self):
        text = format_series({0.02: 0.4, 0.10: 0.9}, name="accuracy")
        assert "accuracy" in text
        assert "0.900" in text

    def test_format_accuracy_map(self):
        text = format_accuracy_map({"STPP": {"x": 0.9, "y": 0.8}, "G-RSSI": {"x": 0.2, "y": 0.3}})
        assert "STPP" in text and "G-RSSI" in text
        assert "0.900" in text
