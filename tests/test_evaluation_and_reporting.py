"""Unit tests for the experiment runner, latency measurement, and reporting."""

import numpy as np
import pytest

from repro.baselines import GRssiScheme, OTrackScheme
from repro.evaluation.latency import latency_cdf, measure_scheme_latency
from repro.evaluation.runner import mean_accuracy, run_stpp, standard_experiment
from repro.reporting.tables import format_accuracy_map, format_series, format_table
from repro.workloads.layouts import row_layout, staircase_layout


@pytest.fixture(scope="module")
def row_experiment():
    return standard_experiment(row_layout(5, 0.12), seed=13)


class TestRunner:
    def test_experiment_fields(self, row_experiment):
        assert len(row_experiment.target_ids) == 5
        assert set(row_experiment.true_x) == set(row_experiment.target_ids)
        assert len(row_experiment.read_log) > 0

    def test_run_scheme_produces_evaluation(self, row_experiment):
        run = row_experiment.run_scheme(GRssiScheme())
        assert run.scheme == "G-RSSI"
        assert 0.0 <= run.evaluation.accuracy_x <= 1.0
        assert run.latency_s > 0.0

    def test_run_stpp(self, row_experiment):
        evaluation, latency = run_stpp(row_experiment)
        assert evaluation.total_tags == 5
        assert latency > 0.0

    def test_reference_grid_excluded_from_targets(self):
        experiment = standard_experiment(
            staircase_layout(4, 0.1, 0.1), seed=1,
            reference_grid=row_layout(3, 0.3, y_m=-0.05),
        )
        assert len(experiment.target_ids) == 4
        assert len(experiment.reference_positions) == 3
        # reference tags are read too
        assert set(experiment.reference_positions) <= set(experiment.read_log.tag_ids())

    def test_mean_accuracy_requires_runs(self):
        with pytest.raises(ValueError):
            mean_accuracy([])


class TestLatency:
    def test_latency_samples_per_tag(self, row_experiment):
        samples = measure_scheme_latency(
            OTrackScheme(), row_experiment.read_log, row_experiment.target_ids, repeats=1
        )
        assert len(samples) == len(row_experiment.target_ids)
        assert all(s.latency_s > 0 for s in samples)

    def test_latency_cdf_monotone(self, row_experiment):
        samples = measure_scheme_latency(
            GRssiScheme(), row_experiment.read_log, row_experiment.target_ids, repeats=1
        )
        values, probabilities = latency_cdf(samples)
        assert np.all(np.diff(values) >= 0)
        assert probabilities[-1] == pytest.approx(1.0)

    def test_latency_cdf_empty_rejected(self):
        with pytest.raises(ValueError):
            latency_cdf([])

    def test_invalid_repeats(self, row_experiment):
        with pytest.raises(ValueError):
            measure_scheme_latency(
                GRssiScheme(), row_experiment.read_log, row_experiment.target_ids, repeats=0
            )

    def test_per_tag_share_divides_by_processed_tags(self, monkeypatch):
        # Regression: the per-tag compute share must divide by the tags the
        # scheme actually processed (expected AND present in the log), not by
        # len(expected_tag_ids).  Two of four expected tags appear in the log,
        # so with a fake 0.5-second batch compute time the per-tag share is
        # 0.25 s (the old divisor of 4 would have given 0.125 s).
        import repro.evaluation.latency as latency_module
        from repro.rfid.reading import ReadLog, TagRead

        class FakeTime:
            def __init__(self):
                self.now = 0.0

            def perf_counter(self):
                self.now += 0.5
                return self.now

        monkeypatch.setattr(latency_module, "time", FakeTime())
        log = ReadLog(
            [
                TagRead(0.0, "a", 1.0, -50.0),
                TagRead(0.1, "b", 1.1, -51.0),
            ]
        )
        samples = measure_scheme_latency(
            GRssiScheme(), log, ["a", "b", "c", "d"], collection_tail_s=1.0, repeats=1
        )
        assert len(samples) == 4
        # perf_counter() advances 0.5 s per call -> one timed run == 0.5 s.
        # a and b are processed (ranks 1 and 2 at 0.25 s each); c and d were
        # never heard, so each waits out the tail plus the full batch compute.
        assert [s.latency_s for s in samples] == pytest.approx([1.25, 1.5, 1.5, 1.5])
        # Attributed compute never exceeds the measured batch time.
        assert max(s.latency_s for s in samples) <= 1.0 + 0.5 + 1e-9


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(("name", "value"), [("a", 1.0), ("bb", 0.5)], title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_format_series(self):
        text = format_series({0.02: 0.4, 0.10: 0.9}, name="accuracy")
        assert "accuracy" in text
        assert "0.900" in text

    def test_format_accuracy_map(self):
        text = format_accuracy_map({"STPP": {"x": 0.9, "y": 0.8}, "G-RSSI": {"x": 0.2, "y": 0.3}})
        assert "STPP" in text and "G-RSSI" in text
        assert "0.900" in text
