"""The CI accuracy gate, exercised through its argparse entrypoint.

Proves the two properties ``benchmarks/check_accuracy.py`` exists for: it
passes on the pipeline's recorded leaderboard, and it demonstrably fails —
nonzero exit — when a scheme drops through its pinned floor or the paper's
Figure-17 ordering breaks.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[1]
SCRIPT = REPO / "benchmarks" / "check_accuracy.py"


def run_gate(cwd: Path, *argv: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(SCRIPT), *argv],
        cwd=cwd,
        capture_output=True,
        text=True,
        timeout=60,
    )


def healthy_payload() -> dict:
    """A leaderboard snapshot shaped like the recorded run, floors all met."""
    scenarios = {
        "library": {"x": 1.0, "y": 1.0},
        "airport": {"x": 0.7, "y": 0.4},
        "warehouse": {"x": 1.0, "y": 0.3},
        "cold_chain_tunnel": {"x": 1.0, "y": 0.9},
        "robot_aisle_scan": {"x": 1.0, "y": 1.0},
    }
    schemes = ["STPP", "BackPos", "OTrack", "Landmarc", "G-RSSI"]
    mean = {"STPP": 0.72, "BackPos": 0.42, "OTrack": 0.52, "Landmarc": 0.59, "G-RSSI": 0.62}
    fig17 = {"STPP": 0.77, "BackPos": 0.56, "OTrack": 0.43, "Landmarc": 0.52, "G-RSSI": 0.33}
    per_scheme = lambda axes: {  # noqa: E731 - tiny fixture helper
        scheme: {
            "x": axes["x"],
            "y": axes["y"],
            "combined": (axes["x"] + axes["y"]) / 2,
        }
        for scheme in schemes
    }
    return {
        "generated_at": "2026-08-08T00:00:00+00:00",
        "platform": "test-host",
        "seed": 2015,
        "schemes": schemes,
        "scenarios": {name: per_scheme(axes) for name, axes in scenarios.items()},
        "mean_combined": mean,
        "fig17": fig17,
        "scale": {"repetitions": 2, "fig17_repetitions": 1},
    }


def write_accuracy(tmp_path: Path, payload: dict) -> None:
    (tmp_path / "BENCH_accuracy.json").write_text(json.dumps(payload))


def test_missing_record_is_skipped(tmp_path):
    proc = run_gate(tmp_path)
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "skip" in proc.stdout


def test_healthy_record_passes(tmp_path):
    write_accuracy(tmp_path, healthy_payload())
    proc = run_gate(tmp_path)
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "FAIL" not in proc.stdout


def test_stpp_mean_below_floor_fails(tmp_path):
    payload = healthy_payload()
    payload["mean_combined"]["STPP"] = 0.40
    write_accuracy(tmp_path, payload)
    proc = run_gate(tmp_path)
    assert proc.returncode == 1
    assert "FAIL" in proc.stdout
    assert "STPP mean combined" in proc.stdout


def test_stpp_scenario_floor_violation_fails(tmp_path):
    payload = healthy_payload()
    payload["scenarios"]["library"]["STPP"]["combined"] = 0.50
    write_accuracy(tmp_path, payload)
    proc = run_gate(tmp_path)
    assert proc.returncode == 1
    assert "library" in proc.stdout


def test_fig17_stpp_losing_its_lead_fails(tmp_path):
    payload = healthy_payload()
    # STPP still above its own floor, but BackPos closes within the margin:
    # the scheme comparison — the paper's headline — no longer holds.
    payload["fig17"]["BackPos"] = 0.73
    write_accuracy(tmp_path, payload)
    proc = run_gate(tmp_path)
    assert proc.returncode == 1
    assert "beats BackPos" in proc.stdout


def test_fig17_baseline_ranking_violation_fails(tmp_path):
    payload = healthy_payload()
    # G-RSSI above OTrack by more than the tolerance inverts the paper's
    # G-RSSI < OTrack ranking.
    payload["fig17"]["G-RSSI"] = 0.70
    write_accuracy(tmp_path, payload)
    proc = run_gate(tmp_path)
    assert proc.returncode == 1
    assert "ordering" in proc.stdout


def test_schema_corruption_fails_before_any_floor(tmp_path):
    payload = healthy_payload()
    del payload["mean_combined"]
    write_accuracy(tmp_path, payload)
    proc = run_gate(tmp_path)
    assert proc.returncode == 1
    assert "schema" in proc.stdout


def test_floor_overrides_are_respected(tmp_path):
    payload = healthy_payload()
    payload["mean_combined"]["G-RSSI"] = 0.30  # below the default 0.45 floor
    write_accuracy(tmp_path, payload)
    assert run_gate(tmp_path).returncode == 1
    proc = run_gate(tmp_path, "--mean-floor", "G-RSSI=0.25")
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_committed_record_passes_the_default_floors():
    if not (REPO / "BENCH_accuracy.json").exists():
        pytest.skip("BENCH_accuracy.json not recorded in this checkout")
    proc = run_gate(REPO)
    assert proc.returncode == 0, proc.stdout + proc.stderr
