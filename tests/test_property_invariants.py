"""Property-based tests (hypothesis) for core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.dtw import dtw_align, subsequence_dtw
from repro.core.phase_profile import PhaseProfile
from repro.core.segmentation import coarse_representation, segment_profile, segment_range_distance
from repro.evaluation.metrics import ordering_accuracy, pairwise_order_accuracy
from repro.rf.constants import TWO_PI, channel_wavelength_m
from repro.rf.phase_model import phase_distance, round_trip_phase, wrap_phase

finite_floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)
small_positive = st.floats(min_value=0.01, max_value=100.0, allow_nan=False)


class TestPhaseModelProperties:
    @given(distance=small_positive)
    def test_phase_always_wrapped(self, distance):
        theta = round_trip_phase(distance, channel_wavelength_m(6))
        assert 0.0 <= theta < TWO_PI

    @given(theta=finite_floats)
    def test_wrap_phase_idempotent(self, theta):
        once = wrap_phase(theta)
        assert 0.0 <= once < TWO_PI
        assert wrap_phase(once) == pytest.approx(once)

    @given(a=finite_floats, b=finite_floats)
    def test_phase_distance_symmetric_bounded(self, a, b):
        d_ab = phase_distance(a, b)
        d_ba = phase_distance(b, a)
        assert d_ab == pytest.approx(d_ba, abs=1e-9)
        assert 0.0 <= d_ab <= np.pi + 1e-9

    @given(distance=small_positive, k=st.integers(min_value=-3, max_value=3))
    def test_phase_periodic_in_half_wavelength(self, distance, k):
        wavelength = channel_wavelength_m(6)
        shifted = distance + k * wavelength / 2.0
        if shifted <= 0:
            return
        d = phase_distance(
            round_trip_phase(distance, wavelength), round_trip_phase(shifted, wavelength)
        )
        assert d < 1e-6


def profile_strategy(min_size=2, max_size=60):
    """Random valid phase profiles."""
    return st.integers(min_value=min_size, max_value=max_size).flatmap(
        lambda n: st.tuples(
            arrays(np.float64, n, elements=st.floats(0.001, 0.1, allow_nan=False)),
            arrays(np.float64, n, elements=st.floats(0.0, TWO_PI - 1e-6, allow_nan=False)),
        )
    )


class TestProfileAndSegmentationProperties:
    @settings(max_examples=30, deadline=None)
    @given(data=profile_strategy(), window=st.integers(min_value=1, max_value=10))
    def test_segments_partition_profile(self, data, window):
        gaps, phases = data
        times = np.cumsum(gaps)
        profile = PhaseProfile("t", times, phases)
        segments = segment_profile(profile, window)
        assert sum(s.sample_count for s in segments) == len(profile)
        # Segments are contiguous and ordered.
        boundaries = [s.start_index for s in segments] + [segments[-1].end_index]
        assert boundaries == sorted(boundaries)
        # No segment contains a wrap larger than the threshold.
        for segment in segments:
            chunk = profile.phases_rad[segment.start_index:segment.end_index]
            assert np.all(np.abs(np.diff(chunk)) <= 0.75 * TWO_PI + 1e-9)

    @settings(max_examples=30, deadline=None)
    @given(data=profile_strategy())
    def test_segment_distance_nonnegative_symmetric(self, data):
        gaps, phases = data
        times = np.cumsum(gaps)
        profile = PhaseProfile("t", times, phases)
        segments = segment_profile(profile, 5)
        for a in segments[:4]:
            for b in segments[:4]:
                assert segment_range_distance(a, b) >= 0.0
                assert segment_range_distance(a, b) == pytest.approx(segment_range_distance(b, a))

    @settings(max_examples=30, deadline=None)
    @given(
        values=arrays(np.float64, st.integers(10, 80), elements=st.floats(0, 10, allow_nan=False)),
        k=st.integers(min_value=2, max_value=10),
    )
    def test_coarse_representation_mean_bounds(self, values, k):
        if values.size < k:
            return
        rep = coarse_representation("t", values, k)
        assert rep.segment_means_rad.size == k
        assert np.min(values) - 1e-9 <= np.min(rep.segment_means_rad)
        assert np.max(rep.segment_means_rad) <= np.max(values) + 1e-9


class TestDTWProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        seq=arrays(np.float64, st.integers(2, 30), elements=st.floats(0, 6, allow_nan=False)),
    )
    def test_self_alignment_zero_cost(self, seq):
        result = dtw_align(seq, seq)
        assert result.cost == pytest.approx(0.0, abs=1e-9)

    @settings(max_examples=25, deadline=None)
    @given(
        ref=arrays(np.float64, st.integers(2, 20), elements=st.floats(0, 6, allow_nan=False)),
        query=arrays(np.float64, st.integers(2, 25), elements=st.floats(0, 6, allow_nan=False)),
    )
    def test_dtw_cost_nonnegative_and_path_valid(self, ref, query):
        result = dtw_align(ref, query)
        assert result.cost >= 0.0
        assert result.path[0] == (0, 0)
        assert result.path[-1] == (len(ref) - 1, len(query) - 1)
        for (r0, q0), (r1, q1) in zip(result.path, result.path[1:]):
            assert 0 <= r1 - r0 <= 1
            assert 0 <= q1 - q0 <= 1

    @settings(max_examples=25, deadline=None)
    @given(
        ref=arrays(np.float64, st.integers(2, 15), elements=st.floats(0, 6, allow_nan=False)),
        query=arrays(np.float64, st.integers(2, 25), elements=st.floats(0, 6, allow_nan=False)),
    )
    def test_subsequence_cost_at_most_full_cost(self, ref, query):
        full = dtw_align(ref, query)
        sub = subsequence_dtw(ref, query)
        assert sub.cost <= full.cost + 1e-9
        assert 0 <= sub.query_start <= sub.query_end < len(query)


class TestMetricProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        coords=st.lists(
            st.floats(min_value=0, max_value=10, allow_nan=False), min_size=2, max_size=12, unique=True
        ),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_accuracy_bounds_and_perfect_case(self, coords, seed):
        true = {f"t{i}": c for i, c in enumerate(coords)}
        correct_order = sorted(true, key=true.get)
        assert ordering_accuracy(true, correct_order) == 1.0
        assert pairwise_order_accuracy(true, correct_order) == 1.0
        rng = np.random.default_rng(seed)
        shuffled = list(true)
        rng.shuffle(shuffled)
        accuracy = ordering_accuracy(true, shuffled)
        assert 0.0 <= accuracy <= 1.0

    @settings(max_examples=40, deadline=None)
    @given(
        coords=st.lists(st.integers(min_value=0, max_value=1000), min_size=2, max_size=10, unique=True)
    )
    def test_reversed_order_pairwise_zero(self, coords):
        # Integer-valued coordinates keep every pair clearly un-tied.
        true = {f"t{i}": float(c) for i, c in enumerate(coords)}
        reversed_order = sorted(true, key=true.get, reverse=True)
        assert pairwise_order_accuracy(true, reversed_order) == 0.0
