"""Equivalence and determinism tests for the sharded sweep engine.

The contract pinned here: a :class:`SweepPlan` executed through the
:class:`SweepService` produces **bit-identical** ``OrderingEvaluation``
results whether it runs serially in-process or sharded across a process
pool, for any shard size — seeds are fixed per repetition before any shard
runs, so results are a pure function of ``(rep_index, seed)``.
"""

from functools import partial

import pytest

from repro.evaluation.experiments import _staircase_experiment
from repro.evaluation.sweep import (
    SchemeScore,
    SweepPlan,
    SweepService,
    default_worker_count,
    scheme_sweep_plan,
    score_schemes,
    score_stpp,
)
from repro.evaluation.runner import standard_scheme_suite


def _small_plan(name="equivalence", repetitions=4, seeds=None, base_seed=123):
    """A cheap but real plan: 3-tag staircase sweeps scored by STPP."""
    return scheme_sweep_plan(
        name=name,
        scene_factory=partial(
            _staircase_experiment,
            tag_count=3,
            spacing_x_m=0.12,
            spacing_y_m=0.12,
            tag_moving=False,
        ),
        scorer=score_stpp,
        repetitions=repetitions,
        base_seed=base_seed,
        seeds=seeds,
    )


def _evaluations(outcome):
    """(scheme, rep_index, seed, evaluation) tuples — everything deterministic.

    Latencies are wall-clock measurements and legitimately differ between
    runs, so they are excluded from equivalence comparisons.
    """
    return [
        (score.scheme, result.rep_index, result.seed, score.evaluation)
        for result in outcome.results
        for score in result.scores
    ]


class TestSeedDerivation:
    def test_spawned_seeds_are_deterministic(self):
        plan = _small_plan()
        assert plan.resolved_seeds() == plan.resolved_seeds()
        assert len(plan.resolved_seeds()) == plan.repetitions

    def test_spawned_seeds_differ_per_repetition(self):
        seeds = _small_plan(repetitions=8).resolved_seeds()
        assert len(set(seeds)) == len(seeds)

    def test_different_base_seed_different_children(self):
        assert _small_plan(base_seed=1).resolved_seeds() != _small_plan(base_seed=2).resolved_seeds()

    def test_explicit_seeds_win(self):
        plan = _small_plan(repetitions=3, seeds=(7, 8, 9))
        assert plan.resolved_seeds() == (7, 8, 9)

    def test_seed_count_mismatch_rejected(self):
        with pytest.raises(ValueError, match="seeds"):
            _small_plan(repetitions=3, seeds=(1, 2))

    def test_zero_repetitions_rejected(self):
        with pytest.raises(ValueError, match="repetitions"):
            SweepPlan(name="bad", repetitions=0, task=score_stpp)


class TestSerialShardedEquivalence:
    """The acceptance-criterion tests: sharded == serial, bit for bit."""

    def test_process_pool_matches_serial(self):
        plan = _small_plan()
        serial = SweepService(parallel=False).run(plan)
        sharded = SweepService(max_workers=2, parallel=True).run(plan)
        assert _evaluations(serial) == _evaluations(sharded)

    def test_shard_size_does_not_change_results(self):
        plan = _small_plan(repetitions=5)
        outcomes = [
            SweepService(parallel=False, shard_size=size).run(plan)
            for size in (1, 2, 5)
        ]
        reference = _evaluations(outcomes[0])
        for outcome in outcomes[1:]:
            assert _evaluations(outcome) == reference

    def test_five_scheme_scorer_survives_pickling(self):
        # The full five-scheme suite (closures over the scene's trajectory,
        # Landmarc reference tags) is built inside the worker; only the
        # scores cross the process boundary.
        from repro.evaluation.experiments import _fig18_experiment

        plan = scheme_sweep_plan(
            name="five-schemes",
            scene_factory=partial(_fig18_experiment, spacing_m=0.15, tag_count=4),
            scorer=partial(score_schemes, scheme_factory=standard_scheme_suite),
            repetitions=2,
            seeds=(5, 6),
        )
        serial = SweepService(parallel=False).run(plan)
        sharded = SweepService(max_workers=2, parallel=True).run(plan)
        assert serial.schemes() == ["G-RSSI", "OTrack", "Landmarc", "BackPos", "STPP"]
        assert _evaluations(serial) == _evaluations(sharded)

    def test_run_many_preserves_plan_order_and_results(self):
        plans = [_small_plan(name=f"p{i}", repetitions=2, base_seed=i) for i in range(3)]
        serial = SweepService(parallel=False).run_many(plans)
        sharded = SweepService(max_workers=2, parallel=True).run_many(plans)
        assert [o.plan for o in serial] == ["p0", "p1", "p2"]
        assert [o.plan for o in sharded] == ["p0", "p1", "p2"]
        for a, b in zip(serial, sharded):
            assert _evaluations(a) == _evaluations(b)


class TestPipelinedExecution:
    """The double-buffered serial path is bit-identical to the plain loop."""

    def test_pipeline_matches_serial(self):
        plan = _small_plan(repetitions=5)
        serial = SweepService(parallel=False).run(plan)
        pipelined = SweepService(parallel=False, pipeline=True).run(plan)
        assert _evaluations(serial) == _evaluations(pipelined)

    def test_pipeline_across_plans(self):
        plans = [_small_plan(name=f"p{i}", repetitions=2, base_seed=i) for i in range(3)]
        serial = SweepService(parallel=False).run_many(plans)
        pipelined = SweepService(parallel=False, pipeline=True).run_many(plans)
        assert [o.plan for o in pipelined] == ["p0", "p1", "p2"]
        for a, b in zip(serial, pipelined):
            assert _evaluations(a) == _evaluations(b)

    def test_pipeline_single_shard_degenerates(self):
        plan = _small_plan(repetitions=1)
        serial = SweepService(parallel=False).run(plan)
        pipelined = SweepService(parallel=False, pipeline=True).run(plan)
        assert _evaluations(serial) == _evaluations(pipelined)


class TestServiceBackendScoping:
    """The service's physics_backend reaches readers via the environment."""

    def test_serial_path_scopes_env(self, monkeypatch):
        import os

        from repro.rfid.backends import PHYSICS_BACKEND_ENV

        monkeypatch.delenv(PHYSICS_BACKEND_ENV, raising=False)
        plan = _small_plan(repetitions=2)
        default = SweepService(parallel=False).run(plan)
        threaded = SweepService(parallel=False, physics_backend="threads").run(plan)
        # Backends are bit-identical, and the env var is restored afterwards.
        assert _evaluations(default) == _evaluations(threaded)
        assert PHYSICS_BACKEND_ENV not in os.environ

    def test_pool_workers_receive_backend(self):
        plan = _small_plan(repetitions=2)
        default = SweepService(max_workers=2, parallel=True).run(plan)
        threaded = SweepService(
            max_workers=2, parallel=True, physics_backend="threads"
        ).run(plan)
        assert _evaluations(default) == _evaluations(threaded)


class TestOutcomeAccessors:
    def test_metric_samples_roundtrip(self):
        plan = SweepPlan(name="metrics", repetitions=3, task=_metric_task, seeds=(1, 2, 3))
        outcome = SweepService(parallel=False).run(plan)
        assert outcome.schemes() == ["probe"]
        assert outcome.metric_samples("probe", "value") == [1.0, 2.0, 3.0]

    def test_results_ordered_by_repetition(self):
        plan = _small_plan(repetitions=4)
        outcome = SweepService(max_workers=2, parallel=True, shard_size=1).run(plan)
        assert [r.rep_index for r in outcome.results] == [0, 1, 2, 3]


def _metric_task(rep_index, seed):
    """Module-level (picklable) task used by the accessor tests."""
    return (SchemeScore(scheme="probe", metrics={"value": float(seed)}),)


class TestServiceConfiguration:
    def test_invalid_shard_size(self):
        with pytest.raises(ValueError):
            SweepService(shard_size=0)

    def test_invalid_max_workers(self):
        with pytest.raises(ValueError):
            SweepService(max_workers=0)

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "3")
        assert default_worker_count() == 3
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "junk")
        with pytest.raises(ValueError):
            default_worker_count()

    def test_ported_experiment_accepts_service(self):
        # The ported generators run identically on an explicit parallel service.
        from repro.evaluation.experiments import fig13_spacing_tag_moving

        serial = fig13_spacing_tag_moving(
            spacings_m=(0.08,), repetitions=2, service=SweepService(parallel=False)
        )
        sharded = fig13_spacing_tag_moving(
            spacings_m=(0.08,), repetitions=2,
            service=SweepService(max_workers=2, parallel=True),
        )
        assert serial == sharded
