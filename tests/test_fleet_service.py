"""Fleet service: concurrent multiplexing with the bit-identity contract.

The contract under test: for every portal, the fleet-served session's
``finalize()`` output is **bit-identical** to a standalone
:class:`LocalizationSession` fed the same read batches — queueing, worker
dispatch, and interleaving across portals never change results.  Portal
traffic comes from the three workload deployments (library shelf, airport
belt, warehouse conveyor) at the leaderboard's seed formula
(``DEFAULT_SEED + SEED_STRIDE * index``), so the pinned streams are the same
ones the accuracy leaderboard scores.

Also covered: lifecycle (open → ingest → finalize → evict), idle eviction,
stats-counter correctness, and the stress/regression test — 64 concurrent
portals under threaded ingest with the ``block`` policy must deadlock never,
drop nothing, and keep per-session read counts monotonic (a reduced-scale
twin always runs; the full-scale one is marked ``slow``).
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.rfid.reading import ReadBatch
from repro.scenarios.registry import DEFAULT_SEED, SEED_STRIDE
from repro.service import (
    FleetConfig,
    FleetService,
    LocalizationSession,
    PortalStateError,
    UnknownPortalError,
)
from repro.simulation import (
    collect_sweep,
    standard_antenna_moving_scene,
    standard_tag_moving_scene,
)
from repro.workloads import MORNING_PEAK, baggage_batch, conveyor_batch, conveyor_scene
from repro.workloads.library import generate_bookshelf


# ---------------------------------------------------------------------------
# Portal traffic: the three workloads at the leaderboard seeds
# ---------------------------------------------------------------------------


def _library_traffic(seed: int):
    shelf = generate_bookshelf(levels=1, books_per_level=8, seed=seed)
    tags = shelf.to_tags(seed=seed)
    return tags, standard_antenna_moving_scene(tags, seed=seed)


def _airport_traffic(seed: int):
    batch = baggage_batch(MORNING_PEAK, bag_count=6, seed=seed)
    return batch.tags, standard_tag_moving_scene(batch.tags, seed=seed)


def _warehouse_traffic(seed: int):
    batch = conveyor_batch(batch_index=0, seed=seed)
    return batch.tags, conveyor_scene(batch, seed=seed)


@pytest.fixture(scope="module")
def portal_traffic():
    """One read-batch stream per workload portal, plus its standalone final.

    Seeds follow the leaderboard formula (registration index 0/1/2 at
    repetition 0), so these are the exact streams the accuracy matrix pins.
    """
    factories = {
        "library": _library_traffic,
        "airport": _airport_traffic,
        "warehouse": _warehouse_traffic,
    }
    traffic = {}
    for index, (facility, factory) in enumerate(factories.items()):
        tags, scene = factory(DEFAULT_SEED + SEED_STRIDE * index)
        sweep = collect_sweep(scene)
        channel = scene.reader_config.channel.channel_index
        batches = list(sweep.read_log.iter_batches(64))
        standalone = LocalizationSession(
            expected_tag_ids=tags.ids(), channel_index=channel
        )
        for batch in batches:
            standalone.ingest_batch(batch)
        traffic[facility] = {
            "tags": tags,
            "channel": channel,
            "batches": batches,
            "standalone_final": standalone.finalize(),
        }
    return traffic


def _assert_final_identical(fleet_update, standalone_update):
    """The fleet contract: orderings (ids + scores) and V-zones identical."""
    fleet_result = fleet_update.result
    expected = standalone_update.result
    assert fleet_result.x_ordering == expected.x_ordering
    assert fleet_result.y_ordering == expected.y_ordering
    assert set(fleet_result.vzones) == set(expected.vzones)
    for tag_id, vzone in expected.vzones.items():
        actual = fleet_result.vzones[tag_id]
        assert actual.fit == vzone.fit
        assert (actual.start_index, actual.end_index) == (
            vzone.start_index,
            vzone.end_index,
        )
    assert fleet_update.reads_ingested == standalone_update.reads_ingested


# ---------------------------------------------------------------------------
# Bit-identity under interleaved multi-portal ingest
# ---------------------------------------------------------------------------


class TestFleetBitIdentity:
    def test_round_robin_across_workload_portals_matches_standalone(
        self, portal_traffic
    ):
        """Interleaved round-robin ingest across the three workload portals:
        every portal finalizes exactly like a standalone session."""
        with FleetService(FleetConfig(worker_count=3)) as fleet:
            keys = {
                facility: fleet.open_portal(
                    facility,
                    "portal-0",
                    expected_tag_ids=case["tags"].ids(),
                    channel_index=case["channel"],
                )
                for facility, case in portal_traffic.items()
            }
            # Strict round-robin: batch r of every portal before batch r+1
            # of any — the reader streams are interleaved as a real fleet's
            # would be.
            max_rounds = max(len(c["batches"]) for c in portal_traffic.values())
            for round_index in range(max_rounds):
                for facility, case in portal_traffic.items():
                    if round_index < len(case["batches"]):
                        fleet.ingest(keys[facility], case["batches"][round_index])
                if round_index == max_rounds // 2:
                    # Mid-stream provisionals must not perturb convergence.
                    for key in keys.values():
                        fleet.provisional(key)
            for facility, case in portal_traffic.items():
                final = fleet.finalize(keys[facility])
                assert final.final
                _assert_final_identical(final, case["standalone_final"])

    def test_many_portals_of_one_stream_agree(self, portal_traffic):
        """Five portals replaying the same stream concurrently all converge
        to the same (standalone-identical) final ordering."""
        case = portal_traffic["warehouse"]
        with FleetService(FleetConfig(worker_count=4)) as fleet:
            keys = [
                fleet.open_portal(
                    "warehouse",
                    f"lane-{i}",
                    expected_tag_ids=case["tags"].ids(),
                    channel_index=case["channel"],
                )
                for i in range(5)
            ]
            for batch in case["batches"]:
                for key in keys:
                    fleet.ingest(key, batch)
            for key in keys:
                _assert_final_identical(
                    fleet.finalize(key), case["standalone_final"]
                )
            # One facility, five sessions: the reference profile was built
            # exactly once through the shared registry.
            assert fleet.profile_cache.stats()["builds"] == 1


# ---------------------------------------------------------------------------
# Lifecycle
# ---------------------------------------------------------------------------


class TestLifecycle:
    def test_open_ingest_finalize_evict(self, portal_traffic):
        case = portal_traffic["library"]
        with FleetService(FleetConfig(worker_count=2)) as fleet:
            key = fleet.open_portal(
                "library",
                "shelf-1",
                expected_tag_ids=case["tags"].ids(),
                channel_index=case["channel"],
            )
            for batch in case["batches"]:
                fleet.ingest(key, batch)
            final = fleet.finalize(key)
            assert final.final
            assert fleet.portal_stats(key).state == "finalized"
            fleet.evict(key)
            assert key not in fleet.portal_keys()
            with pytest.raises(UnknownPortalError):
                fleet.ingest(key, case["batches"][0])
            with pytest.raises(UnknownPortalError):
                fleet.finalize(key)
            # An evicted key is reusable (e.g. the next sweep of the shelf).
            fleet.open_portal("library", "shelf-1")

    def test_duplicate_open_raises(self):
        with FleetService(FleetConfig(worker_count=1)) as fleet:
            fleet.open_portal("f", "p")
            with pytest.raises(PortalStateError, match="already open"):
                fleet.open_portal("f", "p")

    def test_evicting_open_portal_requires_force(self):
        with FleetService(FleetConfig(worker_count=1)) as fleet:
            key = fleet.open_portal("f", "p")
            with pytest.raises(PortalStateError, match="still open"):
                fleet.evict(key)
            fleet.evict(key, force=True)
            assert key not in fleet.portal_keys()

    def test_idle_eviction_finalizes_and_evicts(self, portal_traffic):
        case = portal_traffic["warehouse"]
        with FleetService(FleetConfig(worker_count=2)) as fleet:
            key = fleet.open_portal(
                "warehouse",
                "lane-0",
                expected_tag_ids=case["tags"].ids(),
                channel_index=case["channel"],
            )
            for batch in case["batches"]:
                fleet.ingest(key, batch)
            # Wait until the queue drains, then declare everything idle.
            deadline = time.monotonic() + 10.0
            while fleet.portal_stats(key).queue_depth and time.monotonic() < deadline:
                time.sleep(0.01)
            evicted = fleet.evict_idle(idle_timeout_s=1e-6)
            assert key in evicted
            _assert_final_identical(evicted[key], case["standalone_final"])
            assert key not in fleet.portal_keys()
            assert fleet.stats().evicted == 1

    def test_busy_portal_is_never_idle_evicted(self):
        with FleetService(FleetConfig(worker_count=1)) as fleet:
            fleet.pause()  # keep the queue populated deterministically
            key = fleet.open_portal("f", "p")
            fleet.ingest(key, _synthetic_batches(0, rounds=1)[0])
            assert fleet.evict_idle(idle_timeout_s=1e-6) == {}
            assert key in fleet.portal_keys()
            fleet.resume()


# ---------------------------------------------------------------------------
# Stats counters
# ---------------------------------------------------------------------------


class TestStats:
    def test_counters_account_for_every_read(self, portal_traffic):
        with FleetService(FleetConfig(worker_count=2)) as fleet:
            keys = {}
            for facility, case in portal_traffic.items():
                keys[facility] = fleet.open_portal(
                    facility,
                    "portal-0",
                    expected_tag_ids=case["tags"].ids(),
                    channel_index=case["channel"],
                )
                for batch in case["batches"]:
                    fleet.ingest(keys[facility], batch)
            for facility in portal_traffic:
                fleet.provisional(keys[facility])
                fleet.finalize(keys[facility])

            stats = fleet.stats()
            expected_total = 0
            for facility, case in portal_traffic.items():
                reads = sum(len(batch) for batch in case["batches"])
                expected_total += reads
                snap = stats.portals[keys[facility]]
                assert snap.reads_enqueued == reads
                assert snap.reads_ingested == reads
                assert snap.batches_enqueued == len(case["batches"])
                assert snap.batches_ingested == len(case["batches"])
                assert snap.shed_batches == 0 and snap.shed_reads == 0
                assert snap.queue_depth == 0
                assert snap.state == "finalized"
                assert snap.provisional_count == 1
                assert snap.provisional_latency_p95_s is not None
            assert stats.reads_ingested == expected_total
            assert stats.shed_reads == 0
            assert stats.queue_depth == 0
            assert stats.sessions == {
                "open": 0,
                "finalized": len(portal_traffic),
                "quarantined": 0,
            }
            assert stats.provisional_latency_p95_s is not None


# ---------------------------------------------------------------------------
# Stress/regression: concurrent portals under threaded ingest
# ---------------------------------------------------------------------------


def _synthetic_batches(
    portal_index: int, rounds: int = 24, reads_per_round: int = 16
) -> list[ReadBatch]:
    """Cheap deterministic traffic for stress runs (two tags per portal)."""
    rng = np.random.default_rng(9000 + portal_index)
    batches = []
    start = 0.0
    for round_index in range(rounds):
        times = start + np.sort(rng.uniform(0.0, 0.05, reads_per_round))
        start += 0.06
        tag_ids = tuple(
            f"T{portal_index}-{int(i)}"
            for i in rng.integers(0, 2, reads_per_round)
        )
        batches.append(
            ReadBatch(
                timestamps_s=times,
                tag_ids=tag_ids,
                phases_rad=rng.uniform(0.0, 2.0 * np.pi, reads_per_round),
                rssi_dbm=rng.uniform(-70.0, -40.0, reads_per_round),
                channel_index=6,
                round_index=round_index,
            )
        )
    return batches


def _run_stress(portal_count: int, producer_count: int, rounds: int) -> None:
    """Threaded round-robin ingest into ``portal_count`` portals under the
    ``block`` policy: no deadlock, zero drops, monotonic read counts."""
    reads_per_round = 16
    config = FleetConfig(
        worker_count=4, queue_capacity=4, shed_policy="block", block_poll_s=0.02
    )
    with FleetService(config) as fleet:
        keys = [
            fleet.open_portal(f"facility-{i % 4}", f"portal-{i}")
            for i in range(portal_count)
        ]
        traffic = [
            _synthetic_batches(i, rounds=rounds, reads_per_round=reads_per_round)
            for i in range(portal_count)
        ]
        errors: list[BaseException] = []

        def produce(slice_index: int) -> None:
            mine = range(slice_index, portal_count, producer_count)
            try:
                for round_index in range(rounds):
                    for portal in mine:
                        fleet.ingest(keys[portal], traffic[portal][round_index])
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        producers = [
            threading.Thread(target=produce, args=(i,))
            for i in range(producer_count)
        ]
        for producer in producers:
            producer.start()

        # Sample per-session read counts while ingest is running: they must
        # only ever grow (a shrinking count would mean lost or re-ingested
        # reads).
        seen = {key: 0 for key in keys}
        for _ in range(20):
            stats = fleet.stats()
            for key in keys:
                count = stats.portals[key].reads_ingested
                assert count >= seen[key], f"read count shrank on {key}"
                seen[key] = count
            time.sleep(0.005)

        for producer in producers:
            producer.join(timeout=60.0)
            assert not producer.is_alive(), "producer deadlocked under block policy"
        assert not errors, f"producers raised: {errors!r}"

        expected = rounds * reads_per_round
        for key in keys:
            fleet.finalize(key)
        stats = fleet.stats()
        for key in keys:
            snap = stats.portals[key]
            assert snap.reads_ingested == expected, f"{key} lost reads"
            assert snap.shed_batches == 0 and snap.shed_reads == 0
            assert snap.queue_depth == 0
        assert stats.reads_ingested == portal_count * expected
        assert stats.shed_reads == 0


class TestStress:
    def test_stress_reduced_scale(self):
        """The CI-smoke twin of the full stress run (always executes)."""
        _run_stress(portal_count=8, producer_count=4, rounds=10)

    @pytest.mark.slow
    def test_stress_64_portals(self):
        """64 concurrent portals, threaded ingest, block policy: no deadlock,
        zero dropped reads, monotonic per-session counts."""
        _run_stress(portal_count=64, producer_count=8, rounds=24)
