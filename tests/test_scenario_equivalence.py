"""Bit-identity pins: spec-built legacy scenarios equal the bespoke factories.

The migration contract of the declarative scenario matrix is that moving the
library/airport/warehouse workloads into ``specs/*.json`` changes *nothing*
about what the leaderboard measures: the spec path must call the same
generators with the same arguments and seeds, producing the same simulated
:class:`ReadLog` read for read.  These tests build each legacy scenario both
ways — through :func:`repro.scenarios.scenario_experiment` and through the
retained reference factories — at the exact seeds the leaderboard derives
(``DEFAULT_SEED + 31 * index + rep``) and require full equality, not
statistical closeness.
"""

from __future__ import annotations

import pytest

from repro.bench.leaderboard import airport_experiment, library_experiment
from repro.scenarios import DEFAULT_SEED, default_registry, scenario_experiment
from repro.scenarios.registry import SEED_STRIDE
from repro.workloads.warehouse import ConveyorConfig, conveyor_experiment

REPS = (0, 1)


def leaderboard_seed(scenario: str, rep: int) -> int:
    """The exact seed the leaderboard hands this scenario repetition."""
    index = default_registry().index_of(scenario)
    return DEFAULT_SEED + SEED_STRIDE * index + rep


def spec_built(scenario: str, rep: int):
    spec = default_registry().get(scenario)
    return scenario_experiment(rep, leaderboard_seed(scenario, rep), spec=spec)


def assert_experiments_identical(ours, reference):
    assert ours.target_ids == reference.target_ids
    assert ours.true_x == reference.true_x
    assert ours.true_y == reference.true_y
    assert ours.reference_positions == reference.reference_positions
    assert ours.read_log == reference.read_log


class TestLegacyTrioBitIdentity:
    def test_legacy_trio_keeps_its_seed_indices(self):
        assert [leaderboard_seed(name, 0) for name in ("library", "airport", "warehouse")] == [
            DEFAULT_SEED,
            DEFAULT_SEED + SEED_STRIDE,
            DEFAULT_SEED + 2 * SEED_STRIDE,
        ]

    @pytest.mark.parametrize("rep", REPS)
    def test_library_spec_matches_reference_factory(self, rep):
        seed = leaderboard_seed("library", rep)
        assert_experiments_identical(
            spec_built("library", rep), library_experiment(rep, seed)
        )

    @pytest.mark.parametrize("rep", REPS)
    def test_airport_spec_matches_reference_factory(self, rep):
        seed = leaderboard_seed("airport", rep)
        assert_experiments_identical(
            spec_built("airport", rep), airport_experiment(rep, seed)
        )

    @pytest.mark.parametrize("rep", REPS)
    def test_warehouse_spec_matches_reference_factory(self, rep):
        # The pre-registry leaderboard ran the conveyor at 2 lanes x 5
        # cartons (not the ConveyorConfig defaults) — pin that exact shape.
        seed = leaderboard_seed("warehouse", rep)
        assert_experiments_identical(
            spec_built("warehouse", rep),
            conveyor_experiment(
                rep, seed, config=ConveyorConfig(lanes=2, cartons_per_lane=5)
            ),
        )
