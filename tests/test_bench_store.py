"""Round-trip and property tests for the append-only bench history store."""

from __future__ import annotations

import json

import pytest

from repro.bench.schema import BenchRecord
from repro.bench.store import (
    GIT_SHA_ENV,
    BenchHistory,
    HistoryError,
    current_git_sha,
    flatten_metrics,
    record_run,
)


def make_record(metric: str = "speedup", value: float = 2.0, **overrides) -> BenchRecord:
    fields = dict(
        run_id="run-1",
        git_sha="abc1234",
        timestamp="2026-08-08T00:00:00+00:00",
        platform="test-host",
        source="bench_test",
        metric=metric,
        value=value,
        scale={"tags": 8},
    )
    fields.update(overrides)
    return BenchRecord(**fields)


class TestAppendReadRoundTrip:
    def test_append_then_read_preserves_rows_exactly(self, tmp_path):
        history = BenchHistory(tmp_path / "hist.jsonl")
        records = [
            make_record("a", 1.5),
            make_record("b", -3.0, scale={"tags": 8, "reps": 2}),
            make_record("c", 0.0, run_id="run-2"),
        ]
        assert history.append(records) == 3
        assert history.read() == records

    def test_appends_accumulate_in_order(self, tmp_path):
        history = BenchHistory(tmp_path / "hist.jsonl")
        first = [make_record("a", 1.0)]
        second = [make_record("b", 2.0), make_record("c", 3.0)]
        history.append(first)
        history.append(second)
        assert history.read() == first + second

    def test_two_handles_share_one_ledger(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        BenchHistory(path).append([make_record("a", 1.0)])
        BenchHistory(path).append([make_record("b", 2.0)])
        assert [r.metric for r in BenchHistory(path).read()] == ["a", "b"]

    def test_empty_append_is_a_no_op(self, tmp_path):
        history = BenchHistory(tmp_path / "hist.jsonl")
        assert history.append([]) == 0
        assert not history.path.exists()
        assert history.read() == []

    def test_one_line_per_record(self, tmp_path):
        history = BenchHistory(tmp_path / "hist.jsonl")
        history.append([make_record("a", 1.0), make_record("b", 2.0)])
        lines = history.path.read_text().splitlines()
        assert len(lines) == 2
        assert all(json.loads(line)["source"] == "bench_test" for line in lines)


class TestMalformedHistory:
    def test_invalid_json_line_raises_with_line_number(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        BenchHistory(path).append([make_record()])
        with open(path, "a") as handle:
            handle.write("{not json\n")
        with pytest.raises(HistoryError, match=r"hist\.jsonl:2"):
            BenchHistory(path).read()

    def test_missing_field_raises_naming_the_field(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        row = make_record().to_json()
        del row["git_sha"]
        path.write_text(json.dumps(row) + "\n")
        with pytest.raises(HistoryError, match="git_sha"):
            BenchHistory(path).read()

    def test_unknown_field_raises(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        row = make_record().to_json()
        row["surprise"] = 1
        path.write_text(json.dumps(row) + "\n")
        with pytest.raises(HistoryError, match="unknown"):
            BenchHistory(path).read()

    def test_blank_lines_are_tolerated(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        BenchHistory(path).append([make_record()])
        with open(path, "a") as handle:
            handle.write("\n\n")
        assert len(BenchHistory(path).read()) == 1


class TestRowsFor:
    def test_filters_by_source_and_metric(self, tmp_path):
        history = BenchHistory(tmp_path / "hist.jsonl")
        history.append(
            [
                make_record("a", 1.0),
                make_record("a", 2.0, source="bench_other"),
                make_record("b", 3.0),
            ]
        )
        assert [r.value for r in history.rows_for("bench_test")] == [1.0, 3.0]
        assert [r.value for r in history.rows_for("bench_test", "a")] == [1.0]
        assert history.rows_for("bench_missing") == []


class TestFlattenMetrics:
    def test_nested_mappings_become_dotted_names(self):
        flat = flatten_metrics({"timings_s": {"serial": 1.5, "stages": {"sim": 0.5}}})
        assert flat == {"timings_s.serial": 1.5, "timings_s.stages.sim": 0.5}

    def test_bools_become_zero_one(self):
        assert flatten_metrics({"ok": True, "bad": False}) == {"ok": 1.0, "bad": 0.0}

    def test_non_numeric_and_non_finite_leaves_are_skipped(self):
        flat = flatten_metrics(
            {"label": "fused", "nan": float("nan"), "inf": float("inf"), "v": 2}
        )
        assert flat == {"v": 2.0}


class TestRecordRun:
    def test_rows_share_one_stamp_and_append_to_history(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        rows = record_run(
            source="bench_test",
            metrics={"speedup": {"batched": 5.0}, "ok": True},
            scale={"tags": 8},
            history=path,
            git_sha="cafe123",
            timestamp="2026-08-08T00:00:00+00:00",
            platform="test-host",
        )
        assert {r.metric for r in rows} == {"speedup.batched", "ok"}
        assert len({r.run_id for r in rows}) == 1
        assert all(r.git_sha == "cafe123" for r in rows)
        assert BenchHistory(path).read() == rows

    def test_distinct_runs_get_distinct_run_ids(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        first = record_run("bench_test", {"v": 1.0}, {}, history=path)
        second = record_run("bench_test", {"v": 2.0}, {}, history=path)
        assert first[0].run_id != second[0].run_id

    def test_git_sha_env_override_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv(GIT_SHA_ENV, "deadbeef")
        assert current_git_sha() == "deadbeef"
        rows = record_run("bench_test", {"v": 1.0}, {}, history=tmp_path / "h.jsonl")
        assert rows[0].git_sha == "deadbeef"
