"""Unit tests for the baseline schemes and the evaluation metrics."""

import numpy as np
import pytest

from repro.baselines import (
    BackPosScheme,
    GRssiScheme,
    LandmarcScheme,
    OTrackScheme,
    STPPScheme,
)
from repro.evaluation.metrics import (
    _tie_groups,
    detection_success_rate,
    evaluate_ordering,
    ordering_accuracy,
    pairwise_order_accuracy,
    strict_ordering_accuracy,
    summarise,
)
from repro.rf.geometry import Point3D
from repro.workloads.layouts import reference_tag_grid, row_layout
from repro.evaluation.runner import standard_experiment


class TestMetrics:
    def test_paper_example(self):
        # Paper: true order 1-2-3-4-5, output 1-2-4-3-5 -> 3/5 = 60%.
        true = {"1": 1.0, "2": 2.0, "3": 3.0, "4": 4.0, "5": 5.0}
        predicted = ["1", "2", "4", "3", "5"]
        assert ordering_accuracy(true, predicted) == pytest.approx(0.6)
        assert strict_ordering_accuracy(["1", "2", "3", "4", "5"], predicted) == pytest.approx(0.6)

    def test_tie_groups_are_interchangeable(self):
        true = {"a": 0.0, "b": 0.0, "c": 1.0}
        assert ordering_accuracy(true, ["b", "a", "c"]) == pytest.approx(1.0)
        assert ordering_accuracy(true, ["a", "b", "c"]) == pytest.approx(1.0)
        assert ordering_accuracy(true, ["c", "b", "a"]) == pytest.approx(1.0 / 3.0)

    def test_missing_tags_count_as_wrong(self):
        true = {"a": 0.0, "b": 1.0, "c": 2.0}
        assert ordering_accuracy(true, ["a", "b"]) == pytest.approx(2.0 / 3.0)

    def test_extraneous_predicted_ids_ignored(self):
        # Regression: a stray non-target id in the predicted order used to
        # inflate the ranks of every tag after it, flagging them all wrong.
        true = {"a": 0.0, "b": 1.0, "c": 2.0}
        assert ordering_accuracy(true, ["a", "stray", "b", "c"]) == pytest.approx(1.0)
        assert ordering_accuracy(true, ["x", "y", "a", "b", "c"]) == pytest.approx(1.0)
        # A genuine misordering still scores against the filtered ranks.
        assert ordering_accuracy(true, ["stray", "b", "a", "c"]) == pytest.approx(1.0 / 3.0)
        # The strict (explicit-order) variant filters the same way.
        assert strict_ordering_accuracy(["a", "b", "c"], ["stray", "a", "b", "c"]) == pytest.approx(1.0)
        assert strict_ordering_accuracy(["a", "b", "c"], ["b", "stray", "a", "c"]) == pytest.approx(1.0 / 3.0)

    def test_tie_groups_chained_near_tolerance(self):
        # Groups are anchored at their first (smallest) member: a chain whose
        # adjacent gaps are sub-tolerance but whose ends are farther apart
        # than the tolerance splits where the distance to the anchor exceeds
        # the tolerance, so tie groups cannot grow without bound.
        tol = 1e-3
        true = {"a": 0.0, "b": 0.8e-3, "c": 1.6e-3, "d": 2.4e-3}
        groups = _tie_groups(true, tol)
        assert groups["a"] == (0, 1)
        assert groups["b"] == (0, 1)
        assert groups["c"] == (2, 3)
        assert groups["d"] == (2, 3)
        # Within-group swaps are correct, cross-group swaps are not.
        assert ordering_accuracy(true, ["b", "a", "d", "c"], tolerance=tol) == pytest.approx(1.0)
        assert ordering_accuracy(true, ["c", "d", "a", "b"], tolerance=tol) == pytest.approx(0.0)

    def test_tie_groups_all_tied_layout(self):
        # A shelf level: every tag shares one coordinate -> one group spanning
        # every rank, so any permutation is fully correct.
        true = {f"t{i}": 5.0 for i in range(6)}
        groups = _tie_groups(true, 1e-6)
        assert set(groups.values()) == {(0, 5)}
        assert ordering_accuracy(true, ["t3", "t0", "t5", "t1", "t4", "t2"]) == pytest.approx(1.0)

    def test_pairwise_accuracy(self):
        true = {"a": 0.0, "b": 1.0, "c": 2.0}
        assert pairwise_order_accuracy(true, ["a", "b", "c"]) == pytest.approx(1.0)
        assert pairwise_order_accuracy(true, ["c", "b", "a"]) == pytest.approx(0.0)

    def test_pairwise_ignores_ties(self):
        true = {"a": 0.0, "b": 0.0}
        assert pairwise_order_accuracy(true, ["b", "a"]) == pytest.approx(1.0)

    def test_evaluate_ordering_combined(self):
        true = {"a": 0.0, "b": 1.0}
        evaluation = evaluate_ordering(true, true, ["a", "b"], ["b", "a"])
        assert evaluation.accuracy_x == 1.0
        assert evaluation.accuracy_y == 0.0
        assert evaluation.combined == pytest.approx(0.5)

    def test_detection_success_rate(self):
        assert detection_success_rate([True, True, False, True]) == pytest.approx(0.75)
        with pytest.raises(ValueError):
            detection_success_rate([])

    def test_summarise_quartiles(self):
        summary = summarise([0.0, 0.25, 0.5, 0.75, 1.0])
        assert summary["median"] == pytest.approx(0.5)
        assert summary["iqr"] == pytest.approx(0.5)
        assert summary["min"] == 0.0 and summary["max"] == 1.0

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError):
            ordering_accuracy({}, [])
        with pytest.raises(ValueError):
            summarise([])


@pytest.fixture(scope="module")
def comparison_experiment():
    """A shared sweep with reference tags, used by all baseline tests."""
    positions = [Point3D(i * 0.12, (i % 2) * 0.08, 0.0) for i in range(6)]
    grid = reference_tag_grid(0.8, 0.3, spacing_m=0.2, origin=Point3D(-0.1, -0.1, 0.0))
    return standard_experiment(positions, seed=31, reference_grid=grid)


class TestBaselines:
    def test_grssi_orders_most_tags(self, comparison_experiment):
        run = comparison_experiment.run_scheme(GRssiScheme())
        assert len(run.result.x_ordering.ordered_ids) == len(comparison_experiment.target_ids)
        assert 0.0 <= run.evaluation.accuracy_x <= 1.0

    def test_otrack_produces_orderings(self, comparison_experiment):
        run = comparison_experiment.run_scheme(OTrackScheme())
        assert set(run.result.x_ordering.ordered_ids) <= set(comparison_experiment.target_ids)
        assert run.latency_s >= 0.0

    def test_landmarc_uses_reference_tags(self, comparison_experiment):
        scheme = LandmarcScheme(reference_positions=comparison_experiment.reference_positions)
        run = comparison_experiment.run_scheme(scheme)
        assert run.result.metadata["reference_tag_count"] == len(
            comparison_experiment.reference_positions
        )
        assert len(run.result.x_ordering.ordered_ids) > 0

    def test_landmarc_requires_enough_references(self, comparison_experiment):
        scheme = LandmarcScheme(reference_positions={})
        with pytest.raises(ValueError):
            scheme.order(comparison_experiment.read_log, comparison_experiment.target_ids)

    def test_backpos_requires_geometry(self, comparison_experiment):
        with pytest.raises(ValueError):
            BackPosScheme().order(
                comparison_experiment.read_log, comparison_experiment.target_ids
            )

    def test_backpos_estimates_positions(self, comparison_experiment):
        xs = [comparison_experiment.true_x[t] for t in comparison_experiment.target_ids]
        ys = [comparison_experiment.true_y[t] for t in comparison_experiment.target_ids]
        scheme = BackPosScheme(
            antenna_position_at=comparison_experiment.scene.scenario.antenna_position,
            region_min=Point3D(min(xs) - 0.3, min(ys) - 0.3, 0.0),
            region_max=Point3D(max(xs) + 0.3, max(ys) + 0.3, 0.0),
            grid_resolution_m=0.02,
        )
        run = comparison_experiment.run_scheme(scheme)
        assert run.evaluation.pairwise_x > 0.4

    def test_stpp_scheme_beats_grssi_on_x(self, comparison_experiment):
        stpp = comparison_experiment.run_scheme(STPPScheme())
        grssi = comparison_experiment.run_scheme(GRssiScheme())
        assert stpp.evaluation.accuracy_x >= grssi.evaluation.accuracy_x

    def test_stpp_scheme_orders_only_targets(self, comparison_experiment):
        run = comparison_experiment.run_scheme(STPPScheme())
        assert set(run.result.x_ordering.ordered_ids) <= set(comparison_experiment.target_ids)


class TestSchemesOnRow:
    def test_all_schemes_run_on_plain_row(self):
        experiment = standard_experiment(row_layout(5, 0.15), seed=11)
        schemes = [GRssiScheme(), OTrackScheme(), STPPScheme()]
        for scheme in schemes:
            run = experiment.run_scheme(scheme)
            assert 0.0 <= run.evaluation.accuracy_x <= 1.0
