"""Shared fixtures for the test suite."""

from __future__ import annotations


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "slow: full-scale stress/regression tests (CI smoke runs their "
        "reduced-scale twins; deselect with -m 'not slow')",
    )

import numpy as np
import pytest

from repro.core.phase_profile import PhaseProfile
from repro.rf.geometry import Point3D
from repro.rfid.tag import make_tags
from repro.simulation.collector import collect_sweep
from repro.simulation.presets import (
    standard_antenna_moving_scene,
    standard_tag_moving_scene,
)


@pytest.fixture(scope="session")
def small_row_sweep():
    """One simulated antenna-moving sweep over a 4-tag row (session-cached)."""
    positions = [Point3D(i * 0.10, 0.0, 0.0) for i in range(4)]
    tags = make_tags(positions, seed=42)
    scene = standard_antenna_moving_scene(tags, seed=42)
    return tags, scene, collect_sweep(scene)


@pytest.fixture(scope="session")
def staircase_sweep():
    """One simulated tag-moving sweep over a 6-tag staircase (session-cached)."""
    positions = [Point3D(i * 0.10, (i % 3) * 0.10, 0.0) for i in range(6)]
    tags = make_tags(positions, seed=7)
    scene = standard_tag_moving_scene(tags, seed=7)
    return tags, scene, collect_sweep(scene)


@pytest.fixture()
def synthetic_vzone_profile():
    """A clean synthetic profile with a known V-zone bottom at t = 2.0 s."""
    times = np.linspace(0.0, 4.0, 400)
    wavelength = 0.3262
    distance = np.sqrt((0.3 * (times - 2.0)) ** 2 + 0.35**2)
    phases = np.mod(4.0 * np.pi * distance / wavelength, 2.0 * np.pi)
    return PhaseProfile(tag_id="synthetic", timestamps_s=times, phases_rad=phases)
