"""Checkpoint/restore: crash a session anywhere, resume it bit-identically.

The contract (``LocalizationSession.checkpoint``/``restore``): a session
checkpointed after *any* prefix of its stream, restored, and fed the
remaining batches finalizes **bit-identically** to the uninterrupted
session — same orderings, same scores, same V-zones, same confidence.
This is what makes the fleet's restart-from-checkpoint recovery invisible
to results.

The property test samples random mid-stream cut points across the three
leaderboard workloads (library shelf / airport belt / warehouse conveyor)
rather than pinning a single split; the remaining tests cover the edges —
checkpoint before any reads, double restore from one payload, lifecycle
errors, the version gate, and subclass flattening.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import BatchLocalizer, STPPConfig
from repro.rfid.reading import TagRead
from repro.service import CHECKPOINT_VERSION, LocalizationSession
from repro.simulation import collect_sweep, standard_antenna_moving_scene, \
    standard_tag_moving_scene
from repro.simulation.collector import profiles_from_read_log
from repro.workloads import MORNING_PEAK, baggage_batch, conveyor_batch, \
    conveyor_scene
from repro.workloads.library import generate_bookshelf


def _library_case():
    shelf = generate_bookshelf(levels=1, books_per_level=10, seed=21)
    tags = shelf.to_tags(seed=21)
    return tags, standard_antenna_moving_scene(tags, seed=21)


def _airport_case():
    batch = baggage_batch(MORNING_PEAK, bag_count=8, seed=22)
    return batch.tags, standard_tag_moving_scene(batch.tags, seed=22)


def _warehouse_case():
    batch = conveyor_batch(batch_index=0, seed=23)
    return batch.tags, conveyor_scene(batch, seed=23)


_CASES = {
    "library": _library_case,
    "airport": _airport_case,
    "warehouse": _warehouse_case,
}


@pytest.fixture(scope="module", params=sorted(_CASES), name="workload")
def _workload(request):
    tags, scene = _CASES[request.param]()
    sweep = collect_sweep(scene)
    channel = scene.reader_config.channel.channel_index
    batches = list(sweep.read_log.iter_batches(100))
    return tags, channel, batches


def _fresh_session(tags, channel):
    return LocalizationSession(
        expected_tag_ids=tags.ids(), channel_index=channel
    )


def _assert_updates_identical(a, b):
    """Bit-identical updates modulo wall-clock (NaN-aware for dtw_cost)."""
    assert a.result.x_ordering == b.result.x_ordering
    assert a.result.y_ordering == b.result.y_ordering
    assert set(a.result.vzones) == set(b.result.vzones)
    for tag_id, expected in b.result.vzones.items():
        actual = a.result.vzones[tag_id]
        assert actual.fit == expected.fit
        assert (actual.start_index, actual.end_index) == (
            expected.start_index,
            expected.end_index,
        )
        assert actual.dtw_cost == expected.dtw_cost or (
            np.isnan(actual.dtw_cost) and np.isnan(expected.dtw_cost)
        )
    assert a.update_index == b.update_index
    assert a.reads_ingested == b.reads_ingested
    assert a.batches_ingested == b.batches_ingested
    assert a.ordered_fraction == b.ordered_fraction
    assert a.agreement == b.agreement
    assert a.quality == b.quality
    assert a.confidence == b.confidence
    assert a.final == b.final


def test_random_cut_points_restore_bit_identically(workload):
    """The property: at random mid-stream cuts (including cuts landing after
    a provisional refresh, which populates the incremental DTW caches), the
    restored session's remaining run finalizes exactly like the
    uninterrupted one."""
    tags, channel, batches = workload
    uninterrupted = _fresh_session(tags, channel)
    for batch in batches:
        uninterrupted.ingest_batch(batch)
    expected = uninterrupted.finalize()

    rng = np.random.default_rng(97)
    cuts = sorted(set(rng.integers(1, len(batches), 3).tolist()))
    for cut in cuts:
        session = _fresh_session(tags, channel)
        # The control replays the exact same call sequence with no
        # checkpoint, so update indices and agreement histories match too.
        control = _fresh_session(tags, channel)
        for batch in batches[:cut]:
            session.ingest_batch(batch)
            control.ingest_batch(batch)
        # Half the cuts refresh first so the checkpoint carries warm
        # segmenter/aligner caches, not just raw buffers.
        warm = bool(rng.integers(0, 2))
        if warm:
            provisional_before = session.provisional()
            control.provisional()
        payload = session.checkpoint()

        restored = LocalizationSession.restore(payload)
        if warm:
            # A provisional recomputed from the restored state matches the
            # one the original session produced at the cut.
            twin = LocalizationSession.restore(payload)
            assert (
                twin.provisional().result.x_ordering
                == provisional_before.result.x_ordering
            )
        for batch in batches[cut:]:
            restored.ingest_batch(batch)
            control.ingest_batch(batch)
        final = restored.finalize()
        _assert_updates_identical(final, control.finalize())
        # The orderings themselves never depend on the refresh history.
        assert final.result.x_ordering == expected.result.x_ordering
        assert final.result.y_ordering == expected.result.y_ordering


def test_one_payload_restores_many_times(workload):
    tags, channel, batches = workload
    session = _fresh_session(tags, channel)
    cut = len(batches) // 2
    for batch in batches[:cut]:
        session.ingest_batch(batch)
    payload = session.checkpoint()

    finals = []
    for _ in range(2):
        restored = LocalizationSession.restore(payload)
        for batch in batches[cut:]:
            restored.ingest_batch(batch)
        finals.append(restored.finalize())
    _assert_updates_identical(finals[0], finals[1])
    # The original session is untouched by its checkpoint being taken.
    for batch in batches[cut:]:
        session.ingest_batch(batch)
    _assert_updates_identical(session.finalize(), finals[0])


def test_restored_final_matches_batch_pipeline(workload):
    """Transitivity check: restore-and-resume equals not just the streaming
    twin but the batch pipeline over the full log."""
    tags, channel, batches = workload
    session = _fresh_session(tags, channel)
    for batch in batches[: len(batches) // 3]:
        session.ingest_batch(batch)
    restored = LocalizationSession.restore(session.checkpoint())
    for batch in batches[len(batches) // 3 :]:
        restored.ingest_batch(batch)
    final = restored.finalize()

    from repro.rfid import ReadLog

    log = ReadLog()
    for batch in batches:
        log.extend_batch(batch)
    batch_result = BatchLocalizer(STPPConfig()).localize(
        profiles_from_read_log(log, channel_index=channel),
        expected_tag_ids=tags.ids(),
    )
    assert final.result.x_ordering == batch_result.x_ordering
    assert final.result.y_ordering == batch_result.y_ordering


class TestCheckpointEdges:
    def test_empty_session_round_trips(self):
        session = LocalizationSession(
            expected_tag_ids=["a", "b"], channel_index=6
        )
        restored = LocalizationSession.restore(session.checkpoint())
        update = restored.provisional()
        assert update.result.x_ordering.unordered_ids == ("a", "b")
        assert restored.reads_ingested == 0

    def test_checkpoint_after_finalize_raises(self):
        session = LocalizationSession(channel_index=6)
        session.finalize()
        with pytest.raises(RuntimeError, match="finalized"):
            session.checkpoint()

    def test_version_gate(self):
        import pickle

        session = LocalizationSession(channel_index=6)
        state = pickle.loads(session.checkpoint())
        state["version"] = CHECKPOINT_VERSION + 1
        with pytest.raises(ValueError, match="checkpoint version"):
            LocalizationSession.restore(pickle.dumps(state))

    def test_restore_flattens_subclasses(self):
        class Wrapper(LocalizationSession):
            pass

        session = Wrapper(channel_index=6)
        session.ingest_read(TagRead(0.1, "t", 1.0, -60.0))
        restored = LocalizationSession.restore(session.checkpoint())
        assert type(restored) is LocalizationSession
        assert restored.reads_ingested == 1

    def test_dedupe_policy_and_counters_survive_restore(self):
        session = LocalizationSession(channel_index=6, out_of_order="dedupe")
        session.ingest_read(TagRead(0.1, "t", 1.0, -60.0))
        session.ingest_read(TagRead(0.1, "t", 1.0, -60.0))  # exact duplicate
        assert session.collector.duplicates_dropped == 1
        restored = LocalizationSession.restore(session.checkpoint())
        assert restored.collector.out_of_order == "dedupe"
        assert restored.collector.duplicates_dropped == 1
        # The dedupe window itself survives: the same duplicate is still
        # recognized after restore.
        restored.ingest_read(TagRead(0.1, "t", 1.0, -60.0))
        assert restored.collector.duplicates_dropped == 2
        assert restored.reads_ingested == 1
