"""Schema tests for the declarative scenario spec.

Covers the strictness contract: specs round-trip exactly through JSON,
unknown keys and out-of-range values are rejected with the dotted path of
the offending field, and errors raised while parsing a *document* carry the
1-based line the field sits on — the property that makes a typo in a
committed spec fail CI with a message pointing at the line to fix.
"""

from __future__ import annotations

import json

import pytest

from repro.scenarios import ScenarioSpec, SpecError, load_builtin_specs
from repro.scenarios.spec import Layout, Motion, TagPopulation


def minimal_payload(**overrides):
    payload = {
        "name": "testbed",
        "description": "a minimal valid spec",
        "layout": {"kind": "row", "spacing_m": 0.1},
        "population": {"count": 8},
        "motion": {"kind": "handheld"},
    }
    payload.update(overrides)
    return payload


class TestRoundTrip:
    def test_minimal_spec_round_trips(self):
        spec = ScenarioSpec.from_json(minimal_payload())
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_text_round_trip_is_identity(self):
        spec = ScenarioSpec.from_json(minimal_payload())
        assert ScenarioSpec.from_text(spec.to_text()) == spec

    @pytest.mark.parametrize(
        "spec", load_builtin_specs(), ids=lambda spec: spec.name
    )
    def test_every_committed_spec_round_trips(self, spec):
        assert ScenarioSpec.from_json(spec.to_json()) == spec
        assert ScenarioSpec.from_text(spec.to_text()) == spec

    def test_defaults_are_made_explicit_by_to_json(self):
        spec = ScenarioSpec.from_json(minimal_payload())
        payload = spec.to_json()
        assert payload["channel"]["phase_noise_std_rad"] == 0.25
        assert payload["placement"]["reference_spacing_m"] is None
        assert payload["motion"]["speed_mps"] == 0.3

    def test_specs_are_hashable_and_picklable(self):
        import pickle

        spec = ScenarioSpec.from_json(minimal_payload())
        assert hash(spec) == hash(ScenarioSpec.from_json(spec.to_json()))
        assert pickle.loads(pickle.dumps(spec)) == spec


class TestUnknownKeys:
    def test_unknown_top_level_key(self):
        with pytest.raises(SpecError) as err:
            ScenarioSpec.from_json(minimal_payload(antenna={"gain": 6}))
        assert err.value.path == "antenna"

    def test_unknown_layout_param_names_the_dotted_path(self):
        payload = minimal_payload()
        payload["layout"]["spacings_m"] = 0.1
        with pytest.raises(SpecError) as err:
            ScenarioSpec.from_json(payload)
        assert err.value.path == "layout.spacings_m"
        assert "allowed:" in err.value.message

    def test_unknown_motion_param(self):
        payload = minimal_payload(motion={"kind": "belt", "jitter_fraction": 0.1})
        with pytest.raises(SpecError) as err:
            ScenarioSpec.from_json(payload)
        # plain 'belt' is constant-speed; jitter_fraction belongs to belt_jittered
        assert err.value.path == "motion.jitter_fraction"

    def test_unknown_channel_key(self):
        payload = minimal_payload(channel={"snr_db": 20})
        with pytest.raises(SpecError, match=r"channel\.snr_db"):
            ScenarioSpec.from_json(payload)


class TestRanges:
    def test_negative_speed_rejected_with_path(self):
        payload = minimal_payload(motion={"kind": "handheld", "speed_mps": -0.3})
        with pytest.raises(SpecError) as err:
            ScenarioSpec.from_json(payload)
        assert err.value.path == "motion.speed_mps"
        assert "must be >" in err.value.message

    def test_dropout_probability_capped(self):
        payload = minimal_payload(
            channel={"random_dropout_probability": 0.99}
        )
        with pytest.raises(SpecError, match=r"channel\.random_dropout_probability"):
            ScenarioSpec.from_json(payload)

    def test_type_errors_name_the_field(self):
        payload = minimal_payload(population={"count": "eight"})
        with pytest.raises(SpecError, match=r"population\.count"):
            ScenarioSpec.from_json(payload)

    def test_bool_is_not_a_number(self):
        payload = minimal_payload()
        payload["layout"]["spacing_m"] = True
        with pytest.raises(SpecError, match=r"layout\.spacing_m"):
            ScenarioSpec.from_json(payload)

    def test_missing_required_layout_param(self):
        with pytest.raises(SpecError) as err:
            ScenarioSpec.from_json(minimal_payload(layout={"kind": "row"}))
        assert err.value.path == "layout.spacing_m"
        assert "required" in err.value.message


class TestCrossFieldValidation:
    def test_random_row_spacing_order(self):
        layout = {"kind": "random_row", "min_spacing_m": 0.2, "max_spacing_m": 0.1}
        with pytest.raises(SpecError, match=r"layout\.max_spacing_m"):
            ScenarioSpec.from_json(minimal_payload(layout=layout))

    def test_conveyor_lateral_jitter_below_half_pitch(self):
        layout = {"kind": "conveyor_lanes", "lane_pitch_m": 0.1, "lateral_jitter_m": 0.06}
        payload = minimal_payload(
            layout=layout,
            population={"groups": 2, "per_group": 3},
            motion={"kind": "belt"},
        )
        with pytest.raises(SpecError, match=r"layout\.lateral_jitter_m"):
            ScenarioSpec.from_json(payload)

    def test_belt_layout_rejects_antenna_motion(self):
        payload = minimal_payload(
            layout={
                "kind": "baggage_belt",
                "gap_ranges_m": [[0.05, 0.2]],
            },
            population={"count": 5},
            motion={"kind": "handheld"},
        )
        with pytest.raises(SpecError, match=r"motion\.kind"):
            ScenarioSpec.from_json(payload)

    def test_bookshelf_rejects_belt_motion(self):
        payload = minimal_payload(
            layout={"kind": "bookshelf"},
            population={"groups": 1, "per_group": 5},
            motion={"kind": "belt"},
        )
        with pytest.raises(SpecError, match=r"motion\.kind"):
            ScenarioSpec.from_json(payload)

    def test_grouped_layout_needs_per_group(self):
        payload = minimal_payload(
            layout={"kind": "grid", "x_spacing_m": 0.1, "y_spacing_m": 0.1},
            population={"count": 5},
        )
        with pytest.raises(SpecError, match=r"population\.per_group"):
            ScenarioSpec.from_json(payload)

    def test_gap_ranges_must_be_ordered_pairs(self):
        payload = minimal_payload(
            layout={"kind": "baggage_belt", "gap_ranges_m": [[0.3, 0.1]]},
            population={"count": 5},
            motion={"kind": "belt"},
        )
        with pytest.raises(SpecError, match=r"gap_ranges_m\[0\]"):
            ScenarioSpec.from_json(payload)


class TestLinePointingErrors:
    def test_bad_value_error_carries_its_line(self):
        text = (
            '{\n'
            '  "name": "t",\n'
            '  "layout": {"kind": "row", "spacing_m": 0.1},\n'
            '  "population": {"count": 4},\n'
            '  "motion": {\n'
            '    "kind": "handheld",\n'
            '    "speed_mps": -1.0\n'
            '  }\n'
            '}\n'
        )
        with pytest.raises(SpecError) as err:
            ScenarioSpec.from_text(text)
        assert err.value.path == "motion.speed_mps"
        assert err.value.line == 7
        assert "(line 7)" in str(err.value)

    def test_unknown_key_error_carries_its_line(self):
        text = (
            '{\n'
            '  "name": "t",\n'
            '  "layout": {"kind": "row", "spacing_m": 0.1},\n'
            '  "population": {"count": 4},\n'
            '  "motion": {"kind": "handheld"},\n'
            '  "channel": {"snr_db": 20}\n'
            '}\n'
        )
        with pytest.raises(SpecError) as err:
            ScenarioSpec.from_text(text)
        assert err.value.path == "channel.snr_db"
        assert err.value.line == 6

    def test_invalid_json_reports_decoder_line(self):
        with pytest.raises(SpecError) as err:
            ScenarioSpec.from_text('{\n  "name": "t",,\n}\n')
        assert err.value.line == 2

    def test_plain_from_json_has_no_line(self):
        with pytest.raises(SpecError) as err:
            ScenarioSpec.from_json(minimal_payload(motion={"kind": "warp"}))
        assert err.value.line is None


class TestNameValidation:
    def test_empty_name_rejected(self):
        with pytest.raises(SpecError, match="name"):
            ScenarioSpec.from_json(minimal_payload(name=""))

    def test_names_with_spaces_rejected(self):
        with pytest.raises(SpecError, match="name"):
            ScenarioSpec.from_json(minimal_payload(name="two words"))

    def test_grid_variant_charset_is_allowed(self):
        spec = ScenarioSpec.from_json(
            minimal_payload(name="base[motion.speed_mps=0.5]")
        )
        assert spec.name == "base[motion.speed_mps=0.5]"


class TestSectionHelpers:
    def test_layout_param_lookup(self):
        layout = Layout.from_json({"kind": "row", "spacing_m": 0.1})
        assert layout.param("spacing_m") == 0.1
        with pytest.raises(KeyError):
            layout.param("nope")

    def test_population_total_interprets_layout_kind(self):
        population = TagPopulation(count=7, groups=3, per_group=4)
        assert population.total("row") == 7
        assert population.total("grid") == 12
        assert population.total("staircase") == 7

    def test_motion_is_belt(self):
        assert Motion.from_json({"kind": "belt"}).is_belt
        assert not Motion.from_json({"kind": "robot"}).is_belt

    def test_committed_specs_match_their_filenames(self):
        from repro.scenarios import spec_files

        for path, spec in zip(spec_files(), load_builtin_specs()):
            assert spec.name == path.stem
