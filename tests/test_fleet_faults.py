"""Fault injection against the fleet service: quarantine, recovery, and
shed policies.

What must hold when things go wrong:

* a session that raises mid-stream (injected via the fleet's
  ``session_factory`` seam: its aligner blows up during ingestion)
  quarantines **only its portal** — siblings keep ingesting and finalize
  bit-identically to standalone sessions;
* a **transient** fault is retried from the last checkpoint instead of
  quarantining: the portal recovers, counts the retry/restart, and still
  finalizes bit-identically to a standalone session (recovery is invisible
  to results); exhausted retries quarantine with the original error;
* a portal armed with a ``FaultSpec`` degrades its own feed exactly as the
  spec's seeded pipeline dictates, and surfaces ``faults_injected``;
* each shed policy does exactly what it says under a full queue: ``reject``
  raises :class:`PortalOverloadError`, ``drop_oldest`` sheds and counts,
  ``block`` backpressures the producer and never drops;
* double-finalize and ingest-after-finalize raise cleanly (no hangs, no
  corrupted state).

Worker pools are paused (``FleetService.pause``) where queue-full behaviour
must be deterministic.
"""

from __future__ import annotations

import threading
import time
import zlib

import numpy as np
import pytest

from repro.faults import FaultSpec
from repro.rfid.reading import ReadBatch
from repro.service import (
    FleetConfig,
    FleetService,
    LocalizationSession,
    PortalOverloadError,
    PortalQuarantinedError,
    PortalStateError,
    TransientFaultError,
)


def _batches(stream_index: int, rounds: int = 6, reads: int = 12) -> list[ReadBatch]:
    rng = np.random.default_rng(4000 + stream_index)
    out = []
    start = 0.0
    for round_index in range(rounds):
        times = start + np.sort(rng.uniform(0.0, 0.05, reads))
        start += 0.06
        out.append(
            ReadBatch(
                timestamps_s=times,
                tag_ids=tuple(
                    f"S{stream_index}-{int(i)}" for i in rng.integers(0, 2, reads)
                ),
                phases_rad=rng.uniform(0.0, 2.0 * np.pi, reads),
                rssi_dbm=rng.uniform(-70.0, -40.0, reads),
                channel_index=6,
                round_index=round_index,
            )
        )
    return out


def _standalone_final(batches):
    session = LocalizationSession(channel_index=6)
    for batch in batches:
        session.ingest_batch(batch)
    return session.finalize()


class _AlignerExplodesSession(LocalizationSession):
    """A session whose (simulated) aligner dies after N ingested batches."""

    def __init__(self, fail_after_batches: int, **kwargs):
        kwargs.pop("facility_id", None)
        kwargs.pop("profile_cache", None)
        super().__init__(**kwargs)
        self._fail_after = fail_after_batches

    def ingest_batch(self, batch: ReadBatch) -> None:
        if self.batches_ingested >= self._fail_after:
            raise RuntimeError("aligner exploded mid-stream")
        super().ingest_batch(batch)


# ---------------------------------------------------------------------------
# Quarantine isolation
# ---------------------------------------------------------------------------


class TestQuarantine:
    def test_mid_stream_fault_quarantines_only_that_portal(self):
        """The faulty portal is quarantined; both siblings keep ingesting and
        finalize bit-identically to standalone sessions."""

        def factory(key, **kwargs):
            if key.portal_id == "bad":
                return _AlignerExplodesSession(fail_after_batches=2, **kwargs)
            kwargs.pop("facility_id", None)
            kwargs.pop("profile_cache", None)
            return LocalizationSession(**kwargs)

        traffic = {name: _batches(i) for i, name in enumerate(["good-1", "bad", "good-2"])}
        config = FleetConfig(worker_count=2, session_factory=factory)
        with FleetService(config) as fleet:
            keys = {
                name: fleet.open_portal("facility", name, channel_index=6)
                for name in traffic
            }
            # Interleave: the fault fires on the bad portal's third batch,
            # while the good portals are still mid-stream.
            for round_index in range(6):
                for name, batches in traffic.items():
                    try:
                        fleet.ingest(keys[name], batches[round_index])
                    except PortalQuarantinedError:
                        assert name == "bad"

            with pytest.raises(PortalQuarantinedError) as excinfo:
                fleet.finalize(keys["bad"])
            assert "aligner exploded" in str(excinfo.value.__cause__)
            assert isinstance(fleet.portal_error(keys["bad"]), RuntimeError)

            for name in ("good-1", "good-2"):
                final = fleet.finalize(keys[name])
                expected = _standalone_final(traffic[name])
                assert final.result.x_ordering == expected.result.x_ordering
                assert final.result.y_ordering == expected.result.y_ordering
                assert final.reads_ingested == expected.reads_ingested

            stats = fleet.stats()
            assert stats.sessions["quarantined"] == 1
            assert stats.sessions["finalized"] == 2
            # Ingest after quarantine raises, carrying the original error.
            with pytest.raises(PortalQuarantinedError):
                fleet.ingest(keys["bad"], traffic["bad"][0])

    def test_provisional_failure_quarantines(self):
        class ProvisionalExplodes(LocalizationSession):
            def provisional(self):
                raise RuntimeError("refresh died")

        def factory(key, **kwargs):
            kwargs.pop("facility_id", None)
            kwargs.pop("profile_cache", None)
            return ProvisionalExplodes(**kwargs)

        with FleetService(FleetConfig(worker_count=1, session_factory=factory)) as fleet:
            key = fleet.open_portal("f", "p", channel_index=6)
            fleet.ingest(key, _batches(0, rounds=1)[0])
            with pytest.raises(PortalQuarantinedError):
                fleet.provisional(key)
            assert fleet.portal_stats(key).state == "quarantined"

    def test_quarantined_portal_is_evictable(self):
        def factory(key, **kwargs):
            return _AlignerExplodesSession(fail_after_batches=0, **kwargs)

        with FleetService(FleetConfig(worker_count=1, session_factory=factory)) as fleet:
            key = fleet.open_portal("f", "p", channel_index=6)
            fleet.ingest(key, _batches(0, rounds=1)[0])
            deadline = time.monotonic() + 5.0
            while (
                fleet.portal_stats(key).state != "quarantined"
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
            assert fleet.portal_stats(key).state == "quarantined"
            fleet.evict(key)
            assert key not in fleet.portal_keys()


# ---------------------------------------------------------------------------
# Transient-fault recovery (retry + restart-from-checkpoint)
# ---------------------------------------------------------------------------


class _FlakySession(LocalizationSession):
    """A session whose ingest raises a *transient* fault on batch N.

    Restart-from-checkpoint replaces it with a plain
    :class:`LocalizationSession` (wrappers do not survive a restart), so the
    fault fires exactly once per portal lifetime — the shape of a driver
    hiccup rather than corrupted state.
    """

    def __init__(self, fail_on_batch: int, **kwargs):
        kwargs.pop("facility_id", None)
        kwargs.pop("profile_cache", None)
        super().__init__(**kwargs)
        self._fail_on = fail_on_batch

    def ingest_batch(self, batch: ReadBatch) -> None:
        if self.batches_ingested == self._fail_on:
            raise TransientFaultError("reader driver hiccup")
        super().ingest_batch(batch)


class TestTransientRecovery:
    @pytest.mark.parametrize("checkpoint_every", [1, 2, 16])
    def test_transient_fault_recovers_bit_identically(self, checkpoint_every):
        """The tentpole recovery pin: a transient mid-stream fault is
        retried from the last checkpoint (+ journal replay), the portal is
        NOT quarantined, and the final ordering is bit-identical to a
        standalone session fed the same stream."""

        def factory(key, **kwargs):
            return _FlakySession(fail_on_batch=4, **kwargs)

        batches = _batches(7, rounds=6)
        config = FleetConfig(
            worker_count=1,
            session_factory=factory,
            checkpoint_every=checkpoint_every,
            retry_backoff_s=0.001,
        )
        with FleetService(config) as fleet:
            key = fleet.open_portal("f", "p", channel_index=6)
            for batch in batches:
                fleet.ingest(key, batch)
            final = fleet.finalize(key)
            snap = fleet.portal_stats(key)
        assert snap.state == "finalized"
        assert snap.retries == 1
        assert snap.restarts == 1
        expected = _standalone_final(batches)
        assert final.result.x_ordering == expected.result.x_ordering
        assert final.result.y_ordering == expected.result.y_ordering
        assert final.reads_ingested == expected.reads_ingested

    def test_fatal_fault_skips_retries_and_quarantines(self):
        def factory(key, **kwargs):
            return _AlignerExplodesSession(fail_after_batches=2, **kwargs)

        config = FleetConfig(worker_count=1, retry_backoff_s=0.001,
                             session_factory=factory)
        with FleetService(config) as fleet:
            key = fleet.open_portal("f", "p", channel_index=6)
            for batch in _batches(8, rounds=4):
                try:
                    fleet.ingest(key, batch)
                except PortalQuarantinedError:
                    break
            with pytest.raises(PortalQuarantinedError):
                fleet.finalize(key)
            snap = fleet.portal_stats(key)
        assert snap.state == "quarantined"
        # RuntimeError is not in transient_errors: no retry was attempted.
        assert snap.retries == 0
        assert snap.restarts == 0

    def test_exhausted_retries_quarantine_with_the_original_error(self):
        """A fault that survives every restart (the batch itself is
        poisonous: out-of-order under the "raise" policy) burns all retries
        and then quarantines."""
        batches = _batches(9, rounds=2)
        config = FleetConfig(
            worker_count=1,
            max_retries=2,
            retry_backoff_s=0.001,
            transient_errors=(ValueError,),
        )
        with FleetService(config) as fleet:
            key = fleet.open_portal(
                "f", "p", channel_index=6, out_of_order="raise"
            )
            fleet.ingest(key, batches[1])  # later timestamps first
            fleet.ingest(key, batches[0])  # now every ingest is out-of-order
            with pytest.raises(PortalQuarantinedError) as excinfo:
                fleet.finalize(key)
            assert isinstance(excinfo.value.__cause__, ValueError)
            snap = fleet.portal_stats(key)
        assert snap.state == "quarantined"
        assert snap.retries == 2
        assert snap.restarts == 0

    def test_fleet_stats_aggregate_recovery_counters(self):
        def factory(key, **kwargs):
            if key.portal_id == "flaky":
                return _FlakySession(fail_on_batch=3, **kwargs)
            kwargs.pop("facility_id", None)
            kwargs.pop("profile_cache", None)
            return LocalizationSession(**kwargs)

        config = FleetConfig(worker_count=2, session_factory=factory,
                             retry_backoff_s=0.001)
        with FleetService(config) as fleet:
            keys = {
                name: fleet.open_portal("f", name, channel_index=6)
                for name in ("flaky", "steady")
            }
            for index, name in enumerate(keys):
                for batch in _batches(20 + index, rounds=5):
                    fleet.ingest(keys[name], batch)
            for key in keys.values():
                fleet.finalize(key)
            stats = fleet.stats()
        assert stats.retries == 1
        assert stats.restarts == 1
        assert stats.portals[keys["flaky"]].retries == 1
        assert stats.portals[keys["steady"]].retries == 0


# ---------------------------------------------------------------------------
# Fault-armed portals (the per-portal injection seam)
# ---------------------------------------------------------------------------


class TestFaultArmedPortals:
    SPEC = FaultSpec.from_json(
        {
            "seed": 11,
            "injectors": [
                {"kind": "read_loss", "rate": 0.2},
                {"kind": "duplicate", "rate": 0.1},
            ],
        }
    )

    def test_armed_portal_matches_the_spec_pipeline_exactly(self):
        """The seeding contract: a portal's degradation is reproducible
        outside the fleet by building the same spec with the portal key's
        seed offset and feeding a standalone session."""
        batches = _batches(10, rounds=6)
        with FleetService(FleetConfig(worker_count=1)) as fleet:
            key = fleet.open_portal(
                "f", "p", channel_index=6,
                fault_spec=self.SPEC, out_of_order="dedupe",
            )
            for batch in batches:
                fleet.ingest(key, batch)
            final = fleet.finalize(key)
            snap = fleet.portal_stats(key)
        assert snap.faults_injected > 0

        pipeline = self.SPEC.build(seed_offset=zlib.crc32(str(key).encode()))
        session = LocalizationSession(channel_index=6, out_of_order="dedupe")
        for degraded in pipeline.apply(batches):
            session.ingest_batch(degraded)
        expected = session.finalize()
        assert final.result.x_ordering == expected.result.x_ordering
        assert final.result.y_ordering == expected.result.y_ordering
        assert final.reads_ingested == expected.reads_ingested
        assert snap.faults_injected == pipeline.faults_injected

    def test_empty_spec_is_bit_identical_pass_through(self):
        batches = _batches(11, rounds=5)
        with FleetService(FleetConfig(worker_count=1)) as fleet:
            key = fleet.open_portal(
                "f", "p", channel_index=6, fault_spec=FaultSpec(seed=1)
            )
            for batch in batches:
                fleet.ingest(key, batch)
            final = fleet.finalize(key)
            snap = fleet.portal_stats(key)
        assert snap.faults_injected == 0
        expected = _standalone_final(batches)
        assert final.result.x_ordering == expected.result.x_ordering
        assert final.result.y_ordering == expected.result.y_ordering
        assert final.reads_ingested == expected.reads_ingested

    def test_distinct_portals_degrade_decorrelated(self):
        batches = _batches(12, rounds=5)
        with FleetService(FleetConfig(worker_count=1)) as fleet:
            keys = [
                fleet.open_portal("f", name, channel_index=6,
                                  fault_spec=self.SPEC)
                for name in ("p1", "p2")
            ]
            for key in keys:
                for batch in batches:
                    fleet.ingest(key, batch)
            finals = [fleet.finalize(key) for key in keys]
        # Same spec, different portal keys: different survivor sets.
        assert finals[0].reads_ingested != finals[1].reads_ingested


# ---------------------------------------------------------------------------
# Stats edge: p95 with zero samples
# ---------------------------------------------------------------------------


class TestLatencyStatsEdge:
    def test_p95_is_none_not_a_crash_at_zero_samples(self):
        """A portal that never served a provisional has no latency samples;
        both the portal snapshot and the fleet roll-up must report None."""
        with FleetService(FleetConfig(worker_count=1)) as fleet:
            key = fleet.open_portal("f", "p", channel_index=6)
            fleet.ingest(key, _batches(13, rounds=1)[0])
            assert fleet.portal_stats(key).provisional_latency_p95_s is None
            assert fleet.stats().provisional_latency_p95_s is None
            # After one provisional the sample window is non-empty.
            fleet.provisional(key)
            assert fleet.portal_stats(key).provisional_latency_p95_s is not None
            assert fleet.stats().provisional_latency_p95_s is not None


# ---------------------------------------------------------------------------
# Shed policies under a full queue
# ---------------------------------------------------------------------------


class TestShedPolicies:
    def test_reject_raises_and_counts(self):
        batches = _batches(0, rounds=4)
        with FleetService(FleetConfig(worker_count=1, queue_capacity=2)) as fleet:
            fleet.pause()
            key = fleet.open_portal("f", "p", channel_index=6, shed_policy="reject")
            fleet.ingest(key, batches[0])
            fleet.ingest(key, batches[1])
            with pytest.raises(PortalOverloadError, match="queue full"):
                fleet.ingest(key, batches[2])
            snap = fleet.portal_stats(key)
            assert snap.shed_batches == 1
            assert snap.shed_reads == len(batches[2])
            assert snap.queue_depth == 2
            # An overload is not a fault: the portal stays open and, once
            # drained, still matches a standalone session fed what it kept.
            fleet.resume()
            final = fleet.finalize(key)
            expected = _standalone_final(batches[:2])
            assert final.result.x_ordering == expected.result.x_ordering
            assert final.reads_ingested == expected.reads_ingested

    def test_drop_oldest_sheds_and_counts(self):
        batches = _batches(1, rounds=4)
        with FleetService(FleetConfig(worker_count=1, queue_capacity=2)) as fleet:
            fleet.pause()
            key = fleet.open_portal("f", "p", channel_index=6, shed_policy="drop_oldest")
            for batch in batches[:3]:  # third arrival evicts the first
                fleet.ingest(key, batch)
            snap = fleet.portal_stats(key)
            assert snap.shed_batches == 1
            assert snap.shed_reads == len(batches[0])
            assert snap.queue_depth == 2
            fleet.resume()
            final = fleet.finalize(key)
            # The session saw exactly the surviving suffix.
            expected = _standalone_final(batches[1:3])
            assert final.result.x_ordering == expected.result.x_ordering
            assert final.reads_ingested == expected.reads_ingested

    def test_block_applies_backpressure_and_never_drops(self):
        batches = _batches(2, rounds=3)
        config = FleetConfig(worker_count=1, queue_capacity=2, block_poll_s=0.02)
        with FleetService(config) as fleet:
            fleet.pause()
            key = fleet.open_portal("f", "p", channel_index=6, shed_policy="block")
            done = threading.Event()

            def produce():
                for batch in batches:
                    fleet.ingest(key, batch)
                done.set()

            producer = threading.Thread(target=produce)
            producer.start()
            # With workers paused and capacity 2, the third ingest must block.
            assert not done.wait(0.3), "block policy failed to backpressure"
            assert fleet.portal_stats(key).queue_depth == 2
            fleet.resume()
            producer.join(timeout=10.0)
            assert not producer.is_alive()
            final = fleet.finalize(key)
            snap = fleet.portal_stats(key)
            assert snap.shed_batches == 0 and snap.shed_reads == 0
            expected = _standalone_final(batches)
            assert final.result.x_ordering == expected.result.x_ordering
            assert final.reads_ingested == expected.reads_ingested


# ---------------------------------------------------------------------------
# Lifecycle errors
# ---------------------------------------------------------------------------


class TestLifecycleErrors:
    def test_double_finalize_raises_cleanly(self):
        with FleetService(FleetConfig(worker_count=1)) as fleet:
            key = fleet.open_portal("f", "p", channel_index=6)
            fleet.ingest(key, _batches(3, rounds=1)[0])
            fleet.finalize(key)
            with pytest.raises(PortalStateError, match="already finalized"):
                fleet.finalize(key)

    def test_ingest_after_finalize_raises_cleanly(self):
        batches = _batches(4, rounds=2)
        with FleetService(FleetConfig(worker_count=1)) as fleet:
            key = fleet.open_portal("f", "p", channel_index=6)
            fleet.ingest(key, batches[0])
            fleet.finalize(key)
            with pytest.raises(PortalStateError, match="finalized"):
                fleet.ingest(key, batches[1])
            # The recorded final result is unaffected by the failed ingest.
            assert fleet.portal_stats(key).state == "finalized"

    def test_provisional_after_finalize_raises_cleanly(self):
        with FleetService(FleetConfig(worker_count=1)) as fleet:
            key = fleet.open_portal("f", "p", channel_index=6)
            fleet.finalize(key)
            with pytest.raises(PortalStateError):
                fleet.provisional(key)
