"""Unit tests for phase profiles, segmentation, and the DTW variants."""

import numpy as np
import pytest

from repro.core.dtw import (
    dtw_align,
    segmented_dtw_align,
    subsequence_dtw,
    warp_query_to_reference,
)
from repro.core.phase_profile import PhaseProfile, ProfileSet
from repro.core.segmentation import (
    CoarseRepresentation,
    coarse_representation,
    segment_distance_matrix,
    segment_profile,
    segment_range_distance,
)
from repro.rf.constants import TWO_PI


def make_profile(times, phases, tag_id="t"):
    return PhaseProfile(tag_id=tag_id, timestamps_s=np.asarray(times, float), phases_rad=np.asarray(phases, float))


class TestPhaseProfile:
    def test_basic_properties(self):
        profile = make_profile([0.0, 0.1, 0.2], [1.0, 2.0, 3.0])
        assert len(profile) == 3
        assert profile.duration_s == pytest.approx(0.2)
        assert profile.mean_sample_rate_hz() == pytest.approx(10.0)
        assert not profile.is_empty

    def test_validation(self):
        with pytest.raises(ValueError):
            make_profile([0.0, 0.1], [1.0])
        with pytest.raises(ValueError):
            make_profile([0.1, 0.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            make_profile([0.0], [7.0])  # out of [0, 2*pi)

    def test_slice_time(self):
        profile = make_profile([0.0, 0.1, 0.2, 0.3], [1.0, 2.0, 3.0, 4.0])
        window = profile.slice_time(0.05, 0.25)
        assert len(window) == 2
        assert window.phases_rad.tolist() == [2.0, 3.0]
        with pytest.raises(ValueError):
            profile.slice_time(0.3, 0.1)

    def test_slice_index(self):
        profile = make_profile([0.0, 0.1, 0.2], [1.0, 2.0, 3.0])
        assert len(profile.slice_index(1, 3)) == 2

    def test_from_reads_sorts_and_wraps(self):
        profile = PhaseProfile.from_reads("t", [0.2, 0.0], [7.0, 1.0])
        assert profile.timestamps_s.tolist() == [0.0, 0.2]
        assert profile.phases_rad[1] == pytest.approx(7.0 % TWO_PI)

    def test_empty_profile_properties(self):
        profile = make_profile([], [])
        assert profile.is_empty
        assert profile.duration_s == 0.0
        with pytest.raises(ValueError):
            _ = profile.start_time_s

    def test_metadata_merge(self):
        profile = make_profile([0.0], [1.0]).with_metadata(source="test")
        assert profile.metadata["source"] == "test"

    def test_profile_set(self):
        profiles = ProfileSet()
        profiles.add(make_profile([0.0], [1.0], "a"))
        profiles.add(make_profile([], [], "b"))
        assert len(profiles) == 2
        assert "a" in profiles
        assert profiles.non_empty().tag_ids() == ["a"]
        assert profiles.min_samples() == 0


class TestSegmentation:
    def test_segment_count_and_coverage(self):
        profile = make_profile(np.linspace(0, 1, 20), np.linspace(0.5, 1.5, 20))
        segments = segment_profile(profile, window_size=5)
        assert sum(s.sample_count for s in segments) == 20
        assert len(segments) == 4

    def test_segments_split_at_phase_jumps(self):
        phases = [0.2, 0.1, 6.2, 6.1, 6.0]
        profile = make_profile(np.linspace(0, 1, 5), phases)
        segments = segment_profile(profile, window_size=5)
        assert len(segments) == 2
        assert segments[0].sample_count == 2

    def test_segment_ranges(self):
        profile = make_profile(np.linspace(0, 1, 10), np.linspace(1.0, 2.0, 10))
        segments = segment_profile(profile, window_size=10)
        assert segments[0].min_phase_rad == pytest.approx(1.0)
        assert segments[0].max_phase_rad == pytest.approx(2.0)

    def test_segment_range_distance(self):
        profile = make_profile(np.linspace(0, 1, 10), np.concatenate([np.full(5, 1.0), np.full(5, 3.0)]))
        segments = segment_profile(profile, window_size=5)
        assert segment_range_distance(segments[0], segments[1]) == pytest.approx(2.0)
        assert segment_range_distance(segments[0], segments[0]) == 0.0

    def test_distance_matrix_shape(self):
        profile = make_profile(np.linspace(0, 1, 20), np.linspace(0.5, 1.5, 20))
        segments = segment_profile(profile, window_size=4)
        matrix = segment_distance_matrix(segments, segments)
        assert matrix.shape == (len(segments), len(segments))
        assert np.allclose(np.diag(matrix), 0.0)

    def test_invalid_window_size(self):
        profile = make_profile([0.0], [1.0])
        with pytest.raises(ValueError):
            segment_profile(profile, 0)

    def test_coarse_representation_means(self):
        values = np.arange(20, dtype=float)
        rep = coarse_representation("t", values, 4)
        assert rep.segment_count == 4
        assert rep.segment_means_rad[0] == pytest.approx(np.mean(values[:5]))

    def test_coarse_representation_validation(self):
        with pytest.raises(ValueError):
            coarse_representation("t", np.arange(3.0), 5)
        with pytest.raises(ValueError):
            CoarseRepresentation("t", np.arange(3.0), 4)


def segment_profile_per_sample(profile, window_size, jump_threshold_rad=0.75 * TWO_PI):
    """The historical sample-by-sample segmentation loop, kept as the oracle
    for the vectorized (boundary-walk + reduceat) implementation."""
    from repro.core.segmentation import Segment, _phase_jump_indices

    if profile.is_empty:
        return []
    phases = profile.phases_rad
    times = profile.timestamps_s
    jump_set = set(int(i) for i in _phase_jump_indices(phases, jump_threshold_rad))
    segments = []
    start = 0
    for index in range(1, len(profile) + 1):
        window_full = (index - start) >= window_size
        if not (window_full or index in jump_set or index == len(profile)):
            continue
        chunk = phases[start:index]
        segments.append(
            Segment(
                start_index=start,
                end_index=index,
                start_time_s=float(times[start]),
                end_time_s=float(times[index - 1]),
                min_phase_rad=float(np.min(chunk)),
                max_phase_rad=float(np.max(chunk)),
            )
        )
        start = index
        if index == len(profile):
            break
    return segments


class TestVectorizedSegmentation:
    """The vectorized segment_profile equals the per-sample loop exactly."""

    def test_randomised_equivalence(self):
        rng = np.random.default_rng(7)
        for _ in range(200):
            count = int(rng.integers(1, 60))
            window = int(rng.integers(1, 9))
            times = np.sort(rng.uniform(0, 10, count))
            phases = np.mod(rng.uniform(-10, 10, count), TWO_PI)
            profile = make_profile(times, phases)
            assert segment_profile(profile, window) == segment_profile_per_sample(
                profile, window
            )

    def test_arrays_form_matches_object_form(self):
        from repro.core.segmentation import segment_profile_arrays

        rng = np.random.default_rng(8)
        times = np.sort(rng.uniform(0, 10, 45))
        phases = np.mod(rng.uniform(-10, 10, 45), TWO_PI)
        profile = make_profile(times, phases)
        segments = segment_profile(profile, 5)
        arrays = segment_profile_arrays(profile, 5)
        assert arrays.to_segments() == segments
        assert len(arrays) == len(segments)
        assert arrays[0] == segments[0]
        assert list(arrays) == segments
        mins, maxs = arrays.bounds()
        assert mins.tolist() == [s.min_phase_rad for s in segments]
        assert maxs.tolist() == [s.max_phase_rad for s in segments]
        assert arrays.durations().tolist() == [
            max(s.duration_s, 1e-6) for s in segments
        ]

    def test_empty_profile(self):
        from repro.core.segmentation import segment_profile_arrays

        profile = PhaseProfile("t", np.empty(0), np.empty(0))
        assert segment_profile(profile, 5) == []
        assert len(segment_profile_arrays(profile, 5)) == 0

    def test_slice_views_match_masked_slicing(self):
        rng = np.random.default_rng(9)
        times = np.sort(rng.uniform(0, 10, 30))
        phases = np.mod(rng.uniform(-10, 10, 30), TWO_PI)
        rssi = rng.uniform(-60, -40, 30)
        profile = PhaseProfile("t", times, phases, rssi_dbm=rssi)
        window = profile.slice_index(4, 17)
        assert window.timestamps_s.tolist() == times[4:17].tolist()
        assert window.phases_rad.tolist() == phases[4:17].tolist()
        assert window.rssi_dbm.tolist() == rssi[4:17].tolist()
        by_time = profile.slice_time(times[4], times[16])
        assert by_time.timestamps_s.tolist() == times[4:17].tolist()
        # Out-of-range windows clamp exactly like the mask filter did.
        assert len(profile.slice_time(11.0, 12.0)) == 0
        assert len(profile.slice_index(0, len(profile))) == 30


class TestDTW:
    def test_identical_sequences_zero_cost(self):
        seq = np.array([1.0, 2.0, 3.0, 2.0, 1.0])
        result = dtw_align(seq, seq)
        assert result.cost == pytest.approx(0.0)
        assert result.path[0] == (0, 0)
        assert result.path[-1] == (4, 4)

    def test_warping_absorbs_stretch(self):
        reference = np.array([0.0, 1.0, 2.0, 1.0, 0.0])
        stretched = np.repeat(reference, 3)
        result = dtw_align(reference, stretched)
        assert result.cost == pytest.approx(0.0)

    def test_path_monotone(self):
        rng = np.random.default_rng(0)
        result = dtw_align(rng.random(20), rng.random(30))
        rs = [r for r, _ in result.path]
        qs = [q for _, q in result.path]
        assert rs == sorted(rs)
        assert qs == sorted(qs)

    def test_subsequence_finds_embedded_pattern(self):
        pattern = np.array([3.0, 1.0, 3.0])
        query = np.concatenate([np.full(10, 5.0), pattern, np.full(10, 5.0)])
        result = subsequence_dtw(pattern, query)
        assert 9 <= result.query_start <= 11
        assert 11 <= result.query_end <= 13

    def test_query_indices_for_reference_range(self):
        reference = np.array([0.0, 1.0, 2.0, 3.0])
        query = np.array([0.0, 1.0, 2.0, 3.0])
        result = dtw_align(reference, query)
        assert result.query_indices_for_reference_range(1, 2) == (1, 2)
        with pytest.raises(ValueError):
            result.query_indices_for_reference_range(10, 12)

    def test_empty_sequences_rejected(self):
        with pytest.raises(ValueError):
            dtw_align(np.array([]), np.array([1.0]))
        with pytest.raises(ValueError):
            subsequence_dtw(np.array([1.0]), np.array([]))

    def test_segmented_dtw_prefers_matching_shape(self):
        times = np.linspace(0, 2, 100)
        v_shape = np.abs(times - 1.0) * 3.0 + 0.5
        profile = make_profile(times, np.minimum(v_shape, 6.2))
        segments = segment_profile(profile, 5)
        result = segmented_dtw_align(segments, segments, subsequence=False)
        assert result.cost == pytest.approx(0.0)

    def test_segmented_dtw_requires_segments(self):
        with pytest.raises(ValueError):
            segmented_dtw_align([], [])

    def test_warp_query_to_reference_shape(self):
        reference = np.array([0.0, 1.0, 2.0])
        query = np.array([0.0, 0.5, 1.0, 1.5, 2.0])
        result = dtw_align(reference, query)
        warped = warp_query_to_reference(result, query)
        assert warped.shape == (3,)
