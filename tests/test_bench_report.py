"""Warehouse reporting: trend tables, leaderboard rendering, doc generation.

Includes the rot test for ``docs/figures.md``: the committed status tables
must equal what the generator emits from the committed records, so the doc
cannot drift from the registry or the recorded leaderboard by hand-editing.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.bench.registry import ARTIFACTS, artifacts_in
from repro.bench.report import (
    DOC_BEGIN,
    DOC_END,
    figures_status_block,
    format_leaderboard,
    format_trends,
    load_accuracy,
    main,
    trend_table,
    update_figures_doc,
)
from repro.bench.store import BenchHistory, record_run

REPO = Path(__file__).resolve().parents[1]


@pytest.fixture()
def history(tmp_path):
    path = tmp_path / "hist.jsonl"
    for sha, value in (("aaaa111aaaa", 4.0), ("bbbb222bbbb", 5.5)):
        record_run(
            source="bench_dtw",
            metrics={"speedup_vs_python_loop": {"batched": value}},
            scale={"tags": 120},
            history=path,
            git_sha=sha,
            timestamp="2026-08-08T00:00:00+00:00",
            platform="test-host",
        )
    return BenchHistory(path)


class TestTrends:
    def test_trend_table_shows_values_sha_and_scale(self, history):
        table = trend_table(
            history.read(), "bench_dtw", "speedup_vs_python_loop.batched"
        )
        assert "4.000" in table and "5.500" in table
        assert "aaaa111aa" in table  # sha shortened to 9 chars
        assert "tags=120" in table

    def test_trend_table_honours_last(self, history):
        table = trend_table(
            history.read(), "bench_dtw", "speedup_vs_python_loop.batched", last=1
        )
        assert "5.500" in table and "4.000" not in table

    def test_headline_trends_skip_unrecorded_metrics(self, history):
        text = format_trends(history)
        assert "bench_dtw :: speedup_vs_python_loop.batched" in text
        assert "bench_sweep" not in text  # no rows recorded for it

    def test_all_metrics_mode_lists_every_recorded_metric(self, history):
        assert "speedup_vs_python_loop.batched" in format_trends(history, all_metrics=True)

    def test_empty_history_reports_itself(self, tmp_path):
        assert "no history rows" in format_trends(BenchHistory(tmp_path / "none.jsonl"))


class TestAccuracyRendering:
    def test_load_accuracy_returns_none_when_absent(self, tmp_path):
        assert load_accuracy(tmp_path / "missing.json") is None

    def test_load_accuracy_raises_on_schema_violation(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"generated_at": "now"}))
        with pytest.raises(ValueError, match="schema"):
            load_accuracy(path)

    def test_format_leaderboard_lists_every_scheme(self):
        accuracy = load_accuracy(REPO / "BENCH_accuracy.json")
        if accuracy is None:
            pytest.skip("BENCH_accuracy.json not recorded in this checkout")
        table = format_leaderboard(accuracy)
        for scheme in accuracy["schemes"]:
            assert scheme in table


class TestRegistry:
    def test_every_section_has_artifacts(self):
        for section in ("figure", "table", "case", "extension"):
            assert artifacts_in(section)

    def test_accuracy_keys_point_at_recorded_sections(self):
        keys = {a.accuracy_key for a in ARTIFACTS if a.accuracy_key}
        assert "fig17" in keys and "warehouse" in keys


class TestDocGeneration:
    def test_block_carries_markers_and_all_tables(self):
        block = figures_status_block(None)
        assert block.startswith(DOC_BEGIN) and block.endswith(DOC_END)
        for heading in ("## Paper figures", "## Paper tables", "## Scenario extensions"):
            assert heading in block

    def test_recorded_accuracy_annotates_statuses(self):
        accuracy = load_accuracy(REPO / "BENCH_accuracy.json")
        if accuracy is None:
            pytest.skip("BENCH_accuracy.json not recorded in this checkout")
        block = figures_status_block(accuracy)
        assert "## Recorded accuracy leaderboard" in block
        assert "(recorded)" in block

    def test_update_requires_markers(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text("# No markers here\n")
        with pytest.raises(ValueError, match="markers"):
            update_figures_doc(doc, None)

    def test_update_is_idempotent(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text(f"# Title\n\npreamble\n\n{DOC_BEGIN}\nstale\n{DOC_END}\n\ntail\n")
        _, changed = update_figures_doc(doc, None)
        assert changed
        text, changed = update_figures_doc(doc, None)
        assert not changed
        assert text.startswith("# Title") and text.endswith("tail\n")
        assert "stale" not in text

    def test_committed_figures_doc_matches_generator(self):
        """The rot test: docs/figures.md must equal the generator's output."""
        doc = (REPO / "docs" / "figures.md").read_text()
        begin, end = doc.find(DOC_BEGIN), doc.find(DOC_END)
        assert begin >= 0 and end > begin, "docs/figures.md lost its generation markers"
        committed_block = doc[begin : end + len(DOC_END)]
        accuracy = load_accuracy(REPO / "BENCH_accuracy.json")
        assert committed_block == figures_status_block(accuracy), (
            "docs/figures.md is stale — run `make bench-report` to regenerate"
        )


class TestCli:
    def test_main_prints_trends_and_updates_docs(self, tmp_path, capsys, history):
        doc = tmp_path / "doc.md"
        doc.write_text(f"{DOC_BEGIN}\nstale\n{DOC_END}\n")
        exit_code = main(
            [
                "--history", str(history.path),
                "--accuracy", str(tmp_path / "missing.json"),
                "--write-docs", str(doc),
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "bench_dtw" in out and "updated" in out
        assert "stale" not in doc.read_text()
