"""Golden accuracy pins for the recorded leaderboard (tier-1 regression gate).

The leaderboard is a deterministic function of the code at a fixed seed, so
its values are pinnable: a scheme drifting out of its band means the scheme
adapter — or the shared pipeline under all five — changed behaviour.  The
bands are deliberately wider than zero (a legitimate algorithm improvement
may move accuracy a little) but far narrower than the gap an actual
regression opens (e.g. STPP degrading toward BackPos-level).
"""

from __future__ import annotations

import pytest

from repro.bench.leaderboard import (
    DEFAULT_SEED,
    SCENARIOS,
    SCHEMES,
    compute_leaderboard,
    leaderboard_history_metrics,
    scenario_plans,
)

# Recorded at repetitions=1, seed 2015 (the CI smoke scale) on the reference
# pipeline, averaged over every scenario in the declarative matrix (legacy
# trio + the five committed spec-only deployments).  Scenario means use a
# wider band than Figure 17: single-sweep scenario scores move in
# 1/8-to-1/10 quanta per swapped pair.
GOLDEN_MEAN_COMBINED = {
    "STPP": 0.721,
    "BackPos": 0.418,
    "OTrack": 0.524,
    "Landmarc": 0.611,
    "G-RSSI": 0.606,
}
MEAN_TOLERANCE = 0.15

GOLDEN_FIG17_COMBINED = {
    "STPP": 0.770,
    "BackPos": 0.555,
    "Landmarc": 0.520,
    "OTrack": 0.425,
    "G-RSSI": 0.330,
}
FIG17_TOLERANCE = 0.10


@pytest.fixture(scope="module")
def leaderboard():
    return compute_leaderboard(repetitions=1, seed=DEFAULT_SEED)


class TestGoldenPins:
    @pytest.mark.parametrize("scheme", sorted(GOLDEN_MEAN_COMBINED))
    def test_mean_combined_within_pinned_band(self, leaderboard, scheme):
        assert leaderboard["mean_combined"][scheme] == pytest.approx(
            GOLDEN_MEAN_COMBINED[scheme], abs=MEAN_TOLERANCE
        )

    @pytest.mark.parametrize("scheme", sorted(GOLDEN_FIG17_COMBINED))
    def test_fig17_combined_within_pinned_band(self, leaderboard, scheme):
        assert leaderboard["fig17"][scheme] == pytest.approx(
            GOLDEN_FIG17_COMBINED[scheme], abs=FIG17_TOLERANCE
        )

    def test_stpp_tops_every_baseline_on_fig17(self, leaderboard):
        fig17 = leaderboard["fig17"]
        for scheme in SCHEMES:
            if scheme != "STPP":
                assert fig17["STPP"] > fig17[scheme]

    def test_stpp_scenario_floors(self, leaderboard):
        stpp = {
            scenario: leaderboard["scenarios"][scenario]["STPP"]["combined"]
            for scenario in SCENARIOS
        }
        assert stpp["library"] >= 0.85
        assert stpp["airport"] >= 0.35
        assert stpp["warehouse"] >= 0.40
        assert stpp["cold_chain_tunnel"] >= 0.70
        assert stpp["robot_aisle_scan"] >= 0.85


class TestPayloadShape:
    def test_all_schemes_scored_on_all_scenarios(self, leaderboard):
        assert tuple(leaderboard["schemes"]) == SCHEMES
        for scenario in SCENARIOS:
            per_scheme = leaderboard["scenarios"][scenario]
            assert set(per_scheme) == set(SCHEMES)
            for axes in per_scheme.values():
                assert set(axes) == {"x", "y", "combined"}
                assert all(0.0 <= value <= 1.0 for value in axes.values())

    def test_scale_records_the_comparability_knobs(self, leaderboard):
        assert leaderboard["scale"]["repetitions"] == 1
        assert leaderboard["scale"]["fig17_repetitions"] == 1
        assert leaderboard["seed"] == DEFAULT_SEED
        # One tag count per registered scenario, straight from its spec.
        assert set(leaderboard["scale"]["scenario_tags"]) == set(SCENARIOS)
        assert leaderboard["scale"]["scenario_tags"]["library"] == 12

    def test_history_metrics_cover_scenario_mean_and_fig17(self, leaderboard):
        metrics = leaderboard_history_metrics(leaderboard)
        # len(SCENARIOS) scenarios x 5 schemes + 5 means + 5 fig17 values
        assert len(metrics) == len(SCENARIOS) * 5 + 10
        assert metrics["mean.STPP.combined"] == leaderboard["mean_combined"]["STPP"]
        assert metrics["fig17.STPP.combined"] == leaderboard["fig17"]["STPP"]
        assert (
            metrics["library.STPP.combined"]
            == leaderboard["scenarios"]["library"]["STPP"]["combined"]
        )


class TestDeterminism:
    def test_plans_resolve_identical_seed_lists(self):
        first = [plan.resolved_seeds() for plan in scenario_plans(repetitions=2)]
        second = [plan.resolved_seeds() for plan in scenario_plans(repetitions=2)]
        assert first == second
        # Scenarios must not share seeds, or their sweeps would be correlated.
        flat = [seed for seeds in first for seed in seeds]
        assert len(flat) == len(set(flat))
