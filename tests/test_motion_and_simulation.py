"""Unit tests for the motion substrate and the scene/collector glue."""

import numpy as np
import pytest

from repro.motion.scenarios import (
    antenna_moving_scenario,
    equivalent_antenna_motion,
    tag_moving_scenario,
)
from repro.motion.speed_profiles import (
    ConstantSpeedProfile,
    PiecewiseSpeedProfile,
    jittered_speed_profile,
)
from repro.motion.trajectory import LinearTrajectory, WaypointTrajectory
from repro.rf.geometry import Point3D
from repro.rfid.tag import make_tags
from repro.simulation.collector import collect_sweep, profiles_from_read_log
from repro.simulation.presets import (
    SweepGeometry,
    clean_channel,
    indoor_channel,
    standard_antenna_moving_scene,
    standard_tag_moving_scene,
)
from repro.simulation.scene import Scene


class TestSpeedProfiles:
    def test_constant_profile(self):
        profile = ConstantSpeedProfile(0.5)
        assert profile.distance_at(2.0) == pytest.approx(1.0)
        assert profile.time_to_cover(1.0) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            ConstantSpeedProfile(0.0)

    def test_piecewise_profile_integrates(self):
        profile = PiecewiseSpeedProfile([(1.0, 0.1), (1.0, 0.3)])
        assert profile.distance_at(1.0) == pytest.approx(0.1)
        assert profile.distance_at(2.0) == pytest.approx(0.4)
        # beyond definition: continues at the last speed
        assert profile.distance_at(3.0) == pytest.approx(0.7)

    def test_piecewise_time_to_cover_inverse(self):
        profile = PiecewiseSpeedProfile([(1.0, 0.1), (2.0, 0.2)])
        for distance in (0.05, 0.1, 0.3, 0.6):
            assert profile.distance_at(profile.time_to_cover(distance)) == pytest.approx(distance)

    def test_piecewise_validation(self):
        with pytest.raises(ValueError):
            PiecewiseSpeedProfile([])
        with pytest.raises(ValueError):
            PiecewiseSpeedProfile([(1.0, 0.0)])

    def test_jittered_profile_monotone_distance(self):
        profile = jittered_speed_profile(0.3, 10.0, rng=np.random.default_rng(0))
        times = np.linspace(0, 10, 50)
        distances = [profile.distance_at(t) for t in times]
        assert all(b >= a for a, b in zip(distances, distances[1:]))

    def test_jittered_profile_bounded_speeds(self):
        profile = jittered_speed_profile(0.3, 5.0, jitter_fraction=0.3, rng=np.random.default_rng(1))
        for _, speed in profile.segments:
            assert 0.3 * 0.3 <= speed <= 2.0 * 0.3


class TestTrajectories:
    def test_linear_trajectory_endpoints(self):
        trajectory = LinearTrajectory(Point3D(0, 0, 0), Point3D(1, 0, 0), ConstantSpeedProfile(0.5))
        assert trajectory.duration_s == pytest.approx(2.0)
        assert trajectory.position(0.0) == Point3D(0, 0, 0)
        assert trajectory.position(10.0) == Point3D(1, 0, 0)
        assert trajectory.position(1.0).x == pytest.approx(0.5)

    def test_linear_trajectory_progress_inverse(self):
        trajectory = LinearTrajectory(Point3D(0, 0, 0), Point3D(2, 0, 0), ConstantSpeedProfile(0.4))
        t = trajectory.time_at_progress(0.25)
        assert trajectory.progress(t) == pytest.approx(0.25)

    def test_degenerate_trajectory_rejected(self):
        with pytest.raises(ValueError):
            LinearTrajectory(Point3D(0, 0, 0), Point3D(0, 0, 0))

    def test_waypoint_trajectory_path_length(self):
        trajectory = WaypointTrajectory(
            [Point3D(0, 0, 0), Point3D(1, 0, 0), Point3D(1, 1, 0)], ConstantSpeedProfile(1.0)
        )
        assert trajectory.path_length_m == pytest.approx(2.0)
        assert trajectory.position(1.5) == Point3D(1, 0.5, 0)

    def test_waypoint_validation(self):
        with pytest.raises(ValueError):
            WaypointTrajectory([Point3D(0, 0, 0)])
        with pytest.raises(ValueError):
            WaypointTrajectory([Point3D(0, 0, 0), Point3D(0, 0, 0)])


class TestScenarios:
    def test_antenna_moving_scenario_static_tags(self):
        trajectory = LinearTrajectory(Point3D(0, 0, 0.3), Point3D(1, 0, 0.3), ConstantSpeedProfile(0.5))
        scenario = antenna_moving_scenario(trajectory, {"t": Point3D(0.5, 0.1, 0)})
        assert scenario.tag_position("t", 0.0) == scenario.tag_position("t", 1.0)
        assert scenario.antenna_position(0.0) != scenario.antenna_position(1.0)

    def test_tag_moving_scenario_preserves_relative_geometry(self):
        positions = {"a": Point3D(0, 0, 0), "b": Point3D(0.1, 0.05, 0)}
        scenario = tag_moving_scenario(Point3D(-0.3, -0.15, 0.3), positions, (-1, 0, 0), 0.3, 5.0)
        for t in (0.0, 1.0, 3.0):
            a = scenario.tag_position("a", t)
            b = scenario.tag_position("b", t)
            assert a.distance_to(b) == pytest.approx(positions["a"].distance_to(positions["b"]))

    def test_equivalence_of_moving_cases(self):
        # The antenna-to-tag distance over time must be identical whether we
        # describe the sweep as antenna-moving or tag-moving (paper §1.3).
        positions = {"a": Point3D(0.4, 0.1, 0.0)}
        scenario = tag_moving_scenario(Point3D(-0.3, -0.15, 0.3), positions, (-1, 0, 0), 0.3, 5.0)
        relative = equivalent_antenna_motion(scenario, "a")
        for t in np.linspace(0, 5, 11):
            direct = scenario.antenna_position(t).distance_to(scenario.tag_position("a", t))
            rel = relative(t).distance_to(positions["a"])
            assert direct == pytest.approx(rel, abs=1e-9)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            tag_moving_scenario(Point3D(0, 0, 0), {"a": Point3D(0, 0, 0)}, (0, 0, 0), 0.3, 1.0)
        with pytest.raises(ValueError):
            tag_moving_scenario(Point3D(0, 0, 0), {"a": Point3D(0, 0, 0)}, (1, 0, 0), -0.3, 1.0)


class TestSceneAndCollector:
    def test_scene_requires_tags(self):
        trajectory = LinearTrajectory(Point3D(0, 0, 0.3), Point3D(1, 0, 0.3), ConstantSpeedProfile(0.3))
        scenario = antenna_moving_scenario(trajectory, {})
        from repro.rfid.tag import TagCollection

        with pytest.raises(ValueError):
            Scene(tags=TagCollection([]), scenario=scenario)

    def test_collect_sweep_profiles_match_read_log(self, small_row_sweep):
        _tags, scene, sweep = small_row_sweep
        rebuilt = profiles_from_read_log(sweep.read_log)
        for tag_id in sweep.profiles.tag_ids():
            assert len(rebuilt[tag_id]) == len(sweep.profiles[tag_id])

    def test_profiles_derive_channel_from_reads(self):
        # Regression: the old channel_index=6 default mislabelled profiles
        # whenever the scene's reader used a different channel; the channel is
        # now read off the log itself.
        from repro.rfid.reading import ReadLog, TagRead

        log = ReadLog([TagRead(0.1 * i, "a", 1.0, -50.0, channel_index=11) for i in range(4)])
        profiles = profiles_from_read_log(log)
        assert profiles["a"].channel_index == 11
        # An explicit override still wins.
        assert profiles_from_read_log(log, channel_index=3)["a"].channel_index == 3

    def test_profiles_reject_mixed_channel_log(self):
        from repro.rfid.reading import ReadLog, TagRead

        log = ReadLog(
            [
                TagRead(0.0, "a", 1.0, -50.0, channel_index=6),
                TagRead(0.1, "a", 1.1, -50.0, channel_index=7),
            ]
        )
        with pytest.raises(ValueError, match="multiple reader channels"):
            profiles_from_read_log(log)
        # Explicit channel resolves the ambiguity.
        assert profiles_from_read_log(log, channel_index=6)["a"].channel_index == 6

    def test_standard_scene_geometry(self):
        tags = make_tags([Point3D(0, 0, 0), Point3D(0.5, 0.1, 0)], seed=0)
        geometry = SweepGeometry()
        start, end = geometry.trajectory_endpoints(tags)
        assert start.z == pytest.approx(geometry.standoff_m)
        assert start.y < 0.0
        assert end.x > 0.5

    def test_standard_scenes_reproducible(self):
        tags = make_tags([Point3D(i * 0.1, 0, 0) for i in range(3)], seed=5)
        scene_a = standard_antenna_moving_scene(tags, seed=5)
        scene_b = standard_antenna_moving_scene(tags, seed=5)
        sweep_a = collect_sweep(scene_a)
        sweep_b = collect_sweep(scene_b)
        assert len(sweep_a.read_log) == len(sweep_b.read_log)
        first_a = sweep_a.read_log.reads[0]
        first_b = sweep_b.read_log.reads[0]
        assert first_a.phase_rad == pytest.approx(first_b.phase_rad)

    def test_tag_moving_scene_runs(self, staircase_sweep):
        tags, _scene, sweep = staircase_sweep
        assert set(sweep.read_log.tag_ids()) == set(tags.ids())

    def test_clean_channel_has_no_noise(self):
        channel = clean_channel()
        rng = np.random.default_rng(0)
        obs1 = channel.observe(Point3D(0, 0, 0), Point3D(0, 0, 1.0), rng)
        obs2 = channel.observe(Point3D(0, 0, 0), Point3D(0, 0, 1.0), rng)
        assert obs1.phase_rad == pytest.approx(obs2.phase_rad)

    def test_indoor_channel_requires_positions(self):
        with pytest.raises(ValueError):
            indoor_channel([])
