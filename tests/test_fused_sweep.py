"""Equivalence, property, and rollback tests for the fused two-phase sweep.

The fused engine (phase 1: rng-owning scheduling loop emitting a whole-sweep
event table; phase 2: one fused physics pass) must be **bit-identical** to
both the per-round batched engine and the scalar reference loop on every
workload — including channels whose deep fades force the optimistic noise
schedule to roll back, and pathological ones that push it into the exact
per-round fallback.  A seeded golden trace pins the fused output
independently, and a property test pins the ``sweep_stream`` ↔ event-table
replay contract.
"""

import dataclasses

import numpy as np
import pytest

from repro.motion.scenarios import StaticAntennaPosition, SweepScenario
from repro.rf.geometry import Point3D
from repro.rf.noise import NOISELESS, NoiseModel
from repro.rfid.aloha import FrameSlottedAloha, SlotOutcome
from repro.rfid.coupling import NeighborGrid
from repro.rfid.reader import RFIDReader
from repro.rfid.reading import ReadLog
from repro.rfid.tag import make_tags
from repro.simulation.collector import collect_sweep
from repro.simulation.presets import (
    standard_antenna_moving_scene,
    standard_reader_config,
    standard_tag_moving_scene,
)
from repro.simulation.scene import Scene
from repro.workloads.airport import MORNING_PEAK, baggage_batch
from repro.workloads.library import generate_bookshelf
from repro.workloads.warehouse import ConveyorConfig, conveyor_batch, conveyor_scene

ENGINES = ("fused", "round", "scalar")


def sweep_logs(make_scene) -> dict[str, ReadLog]:
    """One read log per engine, each from an identically seeded fresh scene."""
    return {
        engine: collect_sweep(make_scene(), engine=engine).read_log
        for engine in ENGINES
    }


def assert_all_identical(logs: dict[str, ReadLog]) -> None:
    reference = logs["scalar"]
    assert len(reference) > 0
    for engine in ("fused", "round"):
        assert len(logs[engine]) == len(reference), engine
        for index, (a, b) in enumerate(zip(logs[engine].reads, reference.reads)):
            assert a == b, f"{engine} read {index} diverged: {a} vs {b}"


class TestThreeWayEquivalence:
    """fused == round == scalar, field for field, on every workload."""

    def test_library_workload(self):
        shelf = generate_bookshelf(levels=2, books_per_level=6, seed=21)
        tags = shelf.to_tags(seed=21)
        assert_all_identical(
            sweep_logs(lambda: standard_antenna_moving_scene(tags, seed=21))
        )

    def test_airport_workload(self):
        batch = baggage_batch(MORNING_PEAK, bag_count=6, seed=22)
        assert_all_identical(
            sweep_logs(lambda: standard_tag_moving_scene(batch.tags, seed=22))
        )

    def test_warehouse_workload(self):
        config = ConveyorConfig(lanes=2, cartons_per_lane=3)
        assert_all_identical(
            sweep_logs(
                lambda: conveyor_scene(conveyor_batch(config, seed=23), seed=23)
            )
        )

    def test_moving_tags_with_coupling_disabled(self):
        batch = baggage_batch(MORNING_PEAK, bag_count=5, seed=31)

        def make_scene():
            scene = standard_tag_moving_scene(batch.tags, seed=31)
            return dataclasses.replace(
                scene,
                reader_config=dataclasses.replace(
                    scene.reader_config, tag_coupling_coefficient=0.0
                ),
            )

        assert_all_identical(sweep_logs(make_scene))

    def test_plain_callable_positions(self):
        tags = make_tags([Point3D(i * 0.07, 0.0, 0.0) for i in range(4)], seed=4)
        starts = tags.positions()

        def wobble(tag_id, t):
            start = starts[tag_id]
            return Point3D(start.x - 0.25 * t, start.y + 0.01 * np.sin(t), start.z)

        def make_scene():
            scenario = SweepScenario(
                antenna_position=StaticAntennaPosition(Point3D(-0.2, -0.15, 0.3)),
                tag_position=wobble,
                duration_s=3.0,
                description="custom closure",
            )
            return Scene(
                tags=tags,
                scenario=scenario,
                reader_config=standard_reader_config(tags, seed=4),
                seed=4,
            )

        assert_all_identical(sweep_logs(make_scene))


class TestFusedGoldenTrace:
    """Seeded golden trace through the fused (default) engine.

    Same numbers as the per-round engine's golden trace in
    ``tests/test_batch_sweep.py`` — the point of pinning them here too is
    that a divergence report names the engine that moved.
    """

    def test_standard_scene_trace(self):
        positions = [Point3D(i * 0.08, 0.06 * (i % 2), 0.0) for i in range(8)]
        tags = make_tags(positions, seed=2015)
        scene = standard_antenna_moving_scene(tags, seed=2015)
        log = collect_sweep(scene, engine="fused").read_log
        columns = log.columns()
        assert len(log) == 807
        assert len(log.tag_ids()) == 8
        assert columns["timestamp_s"][0] == pytest.approx(0.00565, abs=1e-12)
        assert columns["timestamp_s"][-1] == pytest.approx(3.79815, abs=1e-9)
        assert float(np.sum(columns["phase_rad"])) == pytest.approx(
            2705.4266922855413, rel=1e-9
        )
        assert float(np.mean(columns["rssi_dbm"])) == pytest.approx(
            -52.325700729690084, rel=1e-9
        )


def fused_reader_and_scene(threshold_db: float, dropout_p: float = 0.10):
    """A seeded scene whose noise model uses the given deep-fade threshold."""
    noise = NoiseModel(
        phase_noise_std_rad=0.25,
        rssi_noise_std_db=2.0,
        random_dropout_probability=dropout_p,
        fade_dropout_threshold_db=threshold_db,
    )
    positions = [Point3D(i * 0.08, 0.06 * (i % 2), 0.0) for i in range(8)]
    tags = make_tags(positions, seed=2015)
    scene = standard_antenna_moving_scene(tags, seed=2015, noise=noise)
    reader = RFIDReader(config=scene.reader_config, protocol=scene.protocol)
    return reader, scene


def run_fused(reader: RFIDReader, scene: Scene) -> ReadLog:
    return reader.sweep(
        scene.tags,
        scene.scenario.antenna_position,
        scene.scenario.duration_s,
        scene.scenario.tag_position,
        scene.rng(),
        engine="fused",
    )


class TestOptimisticScheduleRollback:
    """The schedule/verify/rollback machinery stays exact under deep fades."""

    def test_default_channel_needs_one_attempt(self):
        reader, scene = fused_reader_and_scene(threshold_db=-10.0)
        log = run_fused(reader, scene)
        assert len(log) > 0
        stats = reader.last_sweep_stats
        assert stats["attempts"] == 1
        assert stats["rolled_back_rounds"] == 0
        assert stats["per_round_fallback"] is False
        # PR 8: the stats also name the physics backend and the wall split.
        # The backend may come from REPRO_PHYSICS_BACKEND (CI forces threads),
        # so pin against the reader's resolved backend, not a literal.
        assert stats["backend"] == reader.physics_backend.name
        assert stats["physics_chunks"] >= 1
        assert stats["scheduling_s"] > 0.0
        assert stats["physics_s"] > 0.0

    @pytest.mark.parametrize("threshold_db", [-6.0, -2.0, 0.0, 3.0])
    def test_deep_fades_stay_bit_identical(self, threshold_db):
        reader, scene = fused_reader_and_scene(threshold_db)
        fused = run_fused(reader, scene)
        _, scalar_scene = fused_reader_and_scene(threshold_db)
        scalar = collect_sweep(scalar_scene, engine="scalar").read_log
        assert fused.reads == scalar.reads
        # The thresholds are deep enough into the fade distribution that the
        # optimistic first attempt cannot have been clean.
        stats = reader.last_sweep_stats
        assert stats["attempts"] >= 1
        assert stats["rolled_back_rounds"] > 0 or stats["per_round_fallback"]

    def test_pathological_channel_uses_per_round_fallback(self):
        reader, scene = fused_reader_and_scene(threshold_db=3.0)
        fused = run_fused(reader, scene)
        assert reader.last_sweep_stats["per_round_fallback"]
        _, scalar_scene = fused_reader_and_scene(threshold_db=3.0)
        scalar = collect_sweep(scalar_scene, engine="scalar").read_log
        assert fused.reads == scalar.reads

    def test_deep_fades_without_dropouts_never_roll_back(self):
        # With p == 0 no dropout uniform is ever drawn, so deep fades cannot
        # shift the rng stream — one attempt, with dropped |= deep applied
        # in the physics pass.
        reader, scene = fused_reader_and_scene(threshold_db=0.0, dropout_p=0.0)
        fused = run_fused(reader, scene)
        stats = reader.last_sweep_stats
        assert stats["attempts"] == 1
        assert stats["rolled_back_rounds"] == 0
        assert stats["per_round_fallback"] is False
        _, scalar_scene = fused_reader_and_scene(threshold_db=0.0, dropout_p=0.0)
        scalar = collect_sweep(scalar_scene, engine="scalar").read_log
        assert fused.reads == scalar.reads

    def test_noiseless_channel(self):
        positions = [Point3D(i * 0.08, 0.0, 0.0) for i in range(6)]
        tags = make_tags(positions, seed=11)
        logs = sweep_logs(
            lambda: standard_antenna_moving_scene(tags, seed=11, noise=NOISELESS)
        )
        assert_all_identical(logs)


class TestEventTableContract:
    """The event table is the schema both sweep() and sweep_stream() replay."""

    def _scene(self):
        positions = [Point3D(i * 0.08, 0.06 * (i % 2), 0.0) for i in range(8)]
        tags = make_tags(positions, seed=2015)
        return standard_antenna_moving_scene(tags, seed=2015)

    def _table(self):
        scene = self._scene()
        reader = RFIDReader(config=scene.reader_config, protocol=scene.protocol)
        return reader.sweep_events(
            scene.tags,
            scene.scenario.antenna_position,
            scene.scenario.duration_s,
            scene.scenario.tag_position,
            scene.rng(),
        )

    def test_stream_batches_concatenate_to_event_table(self):
        # Property: the concatenation of sweep_stream's per-round batches is
        # exactly the table's readable rows — same timestamps, tags, phases,
        # RSSI, and per-round grouping.
        table = self._table()
        scene = self._scene()
        reader = RFIDReader(config=scene.reader_config, protocol=scene.protocol)
        batches = list(
            reader.sweep_stream(
                scene.tags,
                scene.scenario.antenna_position,
                scene.scenario.duration_s,
                scene.scenario.tag_position,
                scene.rng(),
            )
        )
        readable = np.nonzero(table.readable)[0]
        streamed_times = np.concatenate([b.timestamps_s for b in batches])
        streamed_ids = [tag_id for b in batches for tag_id in b.tag_ids]
        streamed_phases = np.concatenate([b.phases_rad for b in batches])
        streamed_rssis = np.concatenate([b.rssi_dbm for b in batches])
        # Within a round the batch is time-sorted while the table is in slot
        # order; sorting each round's table rows the same way must reproduce
        # the stream exactly.
        expected_rows = []
        for round_id in dict.fromkeys(table.round_ids[readable].tolist()):
            rows = readable[table.round_ids[readable] == round_id]
            expected_rows.extend(rows[np.argsort(table.times_s[rows], kind="stable")])
        expected_rows = np.array(expected_rows, dtype=np.intp)
        ids = table.tag_ids
        assert streamed_times.tolist() == table.times_s[expected_rows].tolist()
        assert streamed_ids == [ids[table.tag_indices[i]] for i in expected_rows]
        assert streamed_phases.tolist() == table.phase_rad[expected_rows].tolist()
        assert streamed_rssis.tolist() == table.rssi_dbm[expected_rows].tolist()
        assert len(batches) == len(set(table.round_ids[readable].tolist()))
        assert [b.round_index for b in batches] == list(range(len(batches)))

    def test_table_rows_are_round_major(self):
        table = self._table()
        assert len(table) > 0
        assert np.all(np.diff(table.round_ids) >= 0)
        # Within a round, slot end times are increasing.
        for round_id in np.unique(table.round_ids):
            times = table.times_s[table.round_ids == round_id]
            assert np.all(np.diff(times) > 0)
        assert table.round_count >= int(table.round_ids[-1]) + 1
        assert table.observed
        assert table.deep_fade.shape == table.times_s.shape
        # No deep fades in the standard scene: the drawn dropout decisions
        # are the final ones and readable == ~dropped (link budget allowing).
        assert not table.deep_fade.any()

    def test_to_read_log_matches_sweep(self):
        table = self._table()
        log = collect_sweep(self._scene(), engine="fused").read_log
        assert table.to_read_log() == log
        assert table.event_tag_ids()[:3] == [
            table.tag_ids[i] for i in table.tag_indices[:3]
        ]

    def test_unobserved_table_refuses_replay(self):
        from repro.rfid.event_table import SweepEventTable

        table = SweepEventTable(tag_ids=["a"], channel_index=6, antenna_port=1)
        with pytest.raises(ValueError, match="no observables"):
            table.to_read_log()
        with pytest.raises(ValueError, match="no observables"):
            list(table.iter_round_batches())


class TestRunRoundSchedule:
    """The scheduling-only round is the exact twin of run_round."""

    @pytest.mark.parametrize("population", [0, 1, 3, 17, 60])
    def test_matches_run_round(self, population):
        tag_ids = [f"tag-{i:03d}" for i in range(population)]
        start = 1.2345

        reference = FrameSlottedAloha()
        rng_a = np.random.default_rng(99)
        events = reference.run_round(tag_ids, start, rng_a)
        expected_ids: list[str] = []
        expected_ends: list[float] = []
        for event in events:
            if event.outcome is SlotOutcome.SUCCESS and event.tag_id is not None:
                expected_ids.append(event.tag_id)
                expected_ends.append(event.end_time_s)
        expected_duration = reference.round_duration_s(events)

        scheduled = FrameSlottedAloha()
        rng_b = np.random.default_rng(99)
        success_ids, success_ends, duration = scheduled.run_round_schedule(
            tag_ids, start, rng_b
        )

        assert list(success_ids) == expected_ids
        assert success_ends.tolist() == expected_ends
        assert duration == expected_duration
        # Identical protocol state and rng state afterwards.
        assert scheduled.scheduling_checkpoint() == reference.scheduling_checkpoint()
        assert rng_a.bit_generator.state == rng_b.bit_generator.state

    def test_multi_round_state_walk(self):
        # Alternate implementations across rounds: every prefix through
        # either implementation leaves the same Q and rng state.
        tag_ids = [f"t{i}" for i in range(9)]
        via_events = FrameSlottedAloha()
        via_schedule = FrameSlottedAloha()
        rng_a = np.random.default_rng(5)
        rng_b = np.random.default_rng(5)
        clock_a = clock_b = 0.0
        for _ in range(12):
            events = via_events.run_round(tag_ids, clock_a, rng_a)
            clock_a += via_events.round_duration_s(events)
            _, _, duration = via_schedule.run_round_schedule(tag_ids, clock_b, rng_b)
            clock_b += duration
            assert clock_a == clock_b
            assert (
                via_events.scheduling_checkpoint()
                == via_schedule.scheduling_checkpoint()
            )
            assert rng_a.bit_generator.state == rng_b.bit_generator.state


class TestNeighborCSR:
    """The CSR packing reproduces per-index neighbour lookups exactly."""

    def test_packed_matches_neighbors_of(self):
        rng = np.random.default_rng(3)
        positions = rng.uniform(-0.4, 0.4, size=(40, 3))
        grid = NeighborGrid(positions, 0.15)
        counts, offsets, flat = grid.packed_neighbors()
        for index in range(len(positions)):
            packed = flat[offsets[index] : offsets[index] + counts[index]]
            assert packed.tolist() == grid.neighbors_of(index).tolist()

    def test_neighbors_for_events(self):
        rng = np.random.default_rng(4)
        positions = rng.uniform(-0.3, 0.3, size=(25, 3))
        grid = NeighborGrid(positions, 0.15)
        tag_indices = np.array([3, 3, 17, 0, 24, 3], dtype=np.intp)
        event_index, neighbor_index = grid.neighbors_for_events(tag_indices)
        expected_events: list[int] = []
        expected_neighbors: list[int] = []
        for event, tag in enumerate(tag_indices):
            for neighbor in grid.neighbors_of(int(tag)):
                expected_events.append(event)
                expected_neighbors.append(int(neighbor))
        assert event_index.tolist() == expected_events
        assert neighbor_index.tolist() == expected_neighbors

    def test_no_neighbors(self):
        grid = NeighborGrid(np.array([[0.0, 0, 0], [5.0, 0, 0]]), 0.1)
        event_index, neighbor_index = grid.neighbors_for_events(
            np.array([0, 1], dtype=np.intp)
        )
        assert event_index.size == 0
        assert neighbor_index.size == 0


class TestPairedPositionQueries:
    """Native paired queries equal the cross-product diagonal bitwise."""

    def test_providers(self):
        from repro.motion.scenarios import (
            BeltTagPositions,
            ConstantVelocityTagPositions,
            StaticTagPositions,
            _TagPositionsBase,
        )
        from repro.motion.speed_profiles import jittered_speed_profile

        points = {
            "a": Point3D(0.0, 0.1, 0.0),
            "b": Point3D(0.4, -0.1, 0.0),
            "c": Point3D(-0.2, 0.05, 0.1),
        }
        providers = [
            StaticTagPositions(points),
            ConstantVelocityTagPositions(points, (-0.3, 0.02, 0.01)),
            BeltTagPositions(
                points,
                jittered_speed_profile(0.25, 5.0, rng=np.random.default_rng(9)),
            ),
        ]
        event_ids = ["a", "c", "c", "b", "a"]
        times = np.array([0.0, 0.7, 1.3, 2.9, 4.1])
        for provider in providers:
            native = provider.positions_paired(event_ids, times)
            diagonal = _TagPositionsBase.positions_paired(provider, event_ids, times)
            assert native.shape == (5, 3)
            assert (native == diagonal).all(), type(provider).__name__
