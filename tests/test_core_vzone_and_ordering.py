"""Unit tests for reference profiles, fitting, V-zone detection, and ordering."""

import numpy as np
import pytest

from repro.core.fitting import fit_vzone, fit_vzone_profile
from repro.core.localizer import STPPConfig, STPPLocalizer
from repro.core.ordering_x import bottom_time_gaps, order_tags_x
from repro.core.ordering_y import (
    YOrderingConfig,
    build_representations,
    gap_metric,
    order_metric,
    order_tags_y,
    pairwise_gaps,
    signed_gap,
)
from repro.core.phase_profile import PhaseProfile
from repro.core.reference import canonical_reference, reference_profile
from repro.core.fitting import QuadraticFit
from repro.core.segmentation import coarse_representation
from repro.core.vzone import VZone, VZoneDetector
from repro.rf.constants import TWO_PI, channel_wavelength_m


def synthetic_profile(bottom_time, perpendicular_distance, speed=0.3, duration=4.0, tag_id="t", noise=0.0, seed=0):
    """Clean synthetic V profile with known geometry."""
    rng = np.random.default_rng(seed)
    times = np.linspace(0.0, duration, int(duration * 100))
    wavelength = channel_wavelength_m(6)
    distance = np.sqrt((speed * (times - bottom_time)) ** 2 + perpendicular_distance**2)
    phases = 4 * np.pi * distance / wavelength
    if noise:
        phases = phases + rng.normal(0, noise, phases.shape)
    return PhaseProfile(tag_id=tag_id, timestamps_s=times, phases_rad=np.mod(phases, TWO_PI))


class TestReferenceProfiles:
    def test_vzone_bottom_at_perpendicular_time(self):
        ref = reference_profile(1.5, 1.0, 0.0, 3.0, speed_mps=0.1)
        assert ref.perpendicular_time_s == pytest.approx(15.0)
        vzone = ref.vzone_profile
        assert vzone.start_time_s <= ref.perpendicular_time_s <= vzone.end_time_s

    def test_bottom_separation_grows_with_spacing(self):
        ref_a = reference_profile(1.45, 1.0, 0.0, 3.0)
        ref_b5 = reference_profile(1.50, 1.0, 0.0, 3.0)
        ref_b10 = reference_profile(1.55, 1.0, 0.0, 3.0)
        gap5 = ref_b5.perpendicular_time_s - ref_a.perpendicular_time_s
        gap10 = ref_b10.perpendicular_time_s - ref_a.perpendicular_time_s
        assert gap10 > gap5 > 0

    def test_farther_tag_has_shallower_vzone(self):
        near = reference_profile(1.5, 0.5, 0.0, 3.0)
        far = reference_profile(1.5, 1.0, 0.0, 3.0)
        fit_near = fit_vzone_profile(near.vzone_profile)
        fit_far = fit_vzone_profile(far.vzone_profile)
        assert fit_near.curvature > fit_far.curvature > 0

    def test_canonical_reference_periods(self):
        ref = canonical_reference(periods=4)
        # The unwrapped phase rises periods/2 full turns on each side of the
        # bottom, so the profile shows ~4 partial/complete periods in total.
        unwrapped = np.unwrap(ref.profile.phases_rad)
        span = unwrapped.max() - unwrapped.min()
        assert 1.8 * TWO_PI < span < 2.3 * TWO_PI
        jumps = np.sum(np.abs(np.diff(ref.profile.phases_rad)) > 0.75 * TWO_PI)
        assert 3 <= jumps + 1 <= 5

    def test_canonical_reference_bottom_phase_pinned(self):
        ref = canonical_reference(bottom_phase_rad=0.5)
        vzone = ref.vzone_profile
        assert float(np.min(vzone.phases_rad)) == pytest.approx(0.5, abs=0.05)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            reference_profile(0.5, -1.0, 0.0, 1.0)
        with pytest.raises(ValueError):
            canonical_reference(periods=0)


class TestQuadraticFitting:
    def test_recovers_bottom_time(self):
        profile = synthetic_profile(2.0, 0.35)
        vzone = profile.slice_time(1.3, 2.7)
        fit = fit_vzone(vzone.timestamps_s, vzone.phases_rad)
        assert fit.valid
        assert fit.bottom_time_s == pytest.approx(2.0, abs=0.05)

    def test_handles_wraparound_at_nadir(self):
        # Shift phases so the nadir dips through 0 and wraps to ~2*pi.
        profile = synthetic_profile(2.0, 0.35)
        shifted = np.mod(profile.phases_rad - float(profile.phases_rad.min()) - 0.1, TWO_PI)
        wrapped = PhaseProfile("t", profile.timestamps_s, shifted)
        vzone = wrapped.slice_time(1.5, 2.5)
        fit = fit_vzone(vzone.timestamps_s, vzone.phases_rad)
        assert fit.valid
        assert fit.bottom_time_s == pytest.approx(2.0, abs=0.08)

    def test_curvature_larger_for_closer_tag(self):
        near = synthetic_profile(2.0, 0.33)
        far = synthetic_profile(2.0, 0.45)
        fit_near = fit_vzone(*_window(near))
        fit_far = fit_vzone(*_window(far))
        assert fit_near.curvature > fit_far.curvature

    def test_too_few_samples_invalid(self):
        fit = fit_vzone(np.array([0.0, 1.0]), np.array([1.0, 2.0]))
        assert not fit.valid

    def test_empty_input(self):
        fit = fit_vzone(np.array([]), np.array([]))
        assert not fit.valid
        assert fit.sample_count == 0

    def test_monotone_data_marked_invalid_or_clamped(self):
        times = np.linspace(0, 1, 50)
        phases = np.linspace(0.5, 2.5, 50)
        fit = fit_vzone(times, phases)
        assert (not fit.valid) or (times[0] <= fit.bottom_time_s <= times[-1])

    def test_halfwidth_from_curvature(self):
        profile = synthetic_profile(2.0, 0.35)
        fit = fit_vzone(*_window(profile))
        assert 0.3 < fit.vzone_halfwidth_s() < 3.0


def _window(profile, halfwidth=0.7, centre=2.0):
    window = profile.slice_time(centre - halfwidth, centre + halfwidth)
    return window.timestamps_s, window.phases_rad


class TestVZoneDetection:
    @pytest.mark.parametrize("method", ["segmented_dtw", "full_dtw", "longest_run"])
    def test_detects_bottom_on_clean_profile(self, method):
        profile = synthetic_profile(2.0, 0.35)
        detector = VZoneDetector(method=method)
        vzone = detector.detect(profile)
        assert vzone is not None
        assert vzone.bottom_time_s == pytest.approx(2.0, abs=0.15)

    def test_detects_bottom_with_noise(self):
        # 0.1 rad is the phase jitter a COTS reader exhibits (DESIGN.md).
        profile = synthetic_profile(2.0, 0.35, noise=0.1, seed=3)
        vzone = VZoneDetector().detect(profile)
        assert vzone is not None
        assert vzone.bottom_time_s == pytest.approx(2.0, abs=0.2)

    def test_short_profile_rejected(self):
        profile = synthetic_profile(2.0, 0.35).slice_index(0, 5)
        assert VZoneDetector().detect(profile) is None

    def test_detect_all_skips_unusable(self):
        good = synthetic_profile(2.0, 0.35, tag_id="good")
        bad = good.slice_index(0, 4)
        bad = PhaseProfile("bad", bad.timestamps_s, bad.phases_rad)
        detections = VZoneDetector().detect_all({"good": good, "bad": bad})
        assert "good" in detections
        assert "bad" not in detections

    def test_invalid_method_rejected(self):
        with pytest.raises(ValueError):
            VZoneDetector(method="nonsense")


def _vzone_with_fit(valid: bool, tag_id: str = "t", residual: float = 0.1) -> VZone:
    """A minimal VZone whose fit validity drives _better_of selection."""
    fit = QuadraticFit(
        curvature=5.0,
        bottom_time_s=2.0,
        bottom_phase_rad=0.5,
        residual_rms_rad=residual,
        sample_count=30,
        valid=valid,
    )
    return VZone(
        tag_id=tag_id,
        start_index=10,
        end_index=40,
        start_time_s=1.5,
        end_time_s=2.5,
        fit=fit,
        method="segmented_dtw",
    )


class TestBetterOf:
    """Fallback selection between the primary detection and longest-run."""

    def test_missing_primary_falls_back(self):
        secondary = _vzone_with_fit(valid=True)
        assert VZoneDetector._better_of(None, secondary) is secondary

    def test_missing_secondary_keeps_primary(self):
        primary = _vzone_with_fit(valid=False)
        assert VZoneDetector._better_of(primary, None) is primary

    def test_both_missing(self):
        assert VZoneDetector._better_of(None, None) is None

    def test_invalid_primary_loses_to_valid_fallback(self):
        primary = _vzone_with_fit(valid=False)
        secondary = _vzone_with_fit(valid=True)
        assert VZoneDetector._better_of(primary, secondary) is secondary

    def test_valid_primary_beats_valid_fallback(self):
        # Residuals are NOT compared across windows of different widths: a
        # valid primary wins even when the fallback fits more tightly.
        primary = _vzone_with_fit(valid=True, residual=0.5)
        secondary = _vzone_with_fit(valid=True, residual=0.01)
        assert VZoneDetector._better_of(primary, secondary) is primary

    def test_both_invalid_keeps_primary(self):
        primary = _vzone_with_fit(valid=False)
        secondary = _vzone_with_fit(valid=False)
        assert VZoneDetector._better_of(primary, secondary) is primary

    def test_detect_applies_fallback_on_degenerate_primary(self):
        # End-to-end: with fallback enabled, detection on a clean V never
        # returns an invalid fit when the longest-run fallback finds a valid
        # one — the selection rule above is what detect() relies on.
        profile = synthetic_profile(2.0, 0.35)
        vzone = VZoneDetector(method="segmented_dtw", fallback_to_longest_run=True).detect(profile)
        assert vzone is not None
        assert vzone.fit.valid


class TestOrderingX:
    def test_orders_by_bottom_time(self):
        profiles = {f"t{i}": synthetic_profile(1.0 + 0.4 * i, 0.35, tag_id=f"t{i}") for i in range(4)}
        vzones = VZoneDetector().detect_all(profiles)
        ordering = order_tags_x(vzones, all_tag_ids=list(profiles))
        assert list(ordering.ordered_ids) == [f"t{i}" for i in range(4)]
        assert ordering.unordered_ids == ()

    def test_gap_grows_with_spacing(self):
        profiles = {
            "a": synthetic_profile(1.0, 0.35, tag_id="a"),
            "b": synthetic_profile(1.3, 0.35, tag_id="b"),
            "c": synthetic_profile(2.0, 0.35, tag_id="c"),
        }
        ordering = order_tags_x(VZoneDetector().detect_all(profiles), all_tag_ids=list(profiles))
        gaps = bottom_time_gaps(ordering)
        assert gaps[("b", "c")] > gaps[("a", "b")]

    def test_missing_tags_reported(self):
        profiles = {"a": synthetic_profile(1.0, 0.35, tag_id="a")}
        vzones = VZoneDetector().detect_all(profiles)
        ordering = order_tags_x(vzones, all_tag_ids=["a", "ghost"])
        assert "ghost" in ordering.unordered_ids
        with pytest.raises(KeyError):
            ordering.position_of("ghost")


class TestOrderingY:
    def _profiles_and_vzones(self, distances):
        profiles = {
            f"t{i}": synthetic_profile(2.0, d, tag_id=f"t{i}")
            for i, d in enumerate(distances)
        }
        vzones = VZoneDetector().detect_all(profiles)
        return profiles, vzones

    def test_orders_by_distance_from_trajectory(self):
        distances = [0.33, 0.40, 0.48, 0.57]
        profiles, vzones = self._profiles_and_vzones(distances)
        ordering = order_tags_y(profiles, vzones, all_tag_ids=list(profiles))
        assert list(ordering.ordered_ids) == [f"t{i}" for i in range(4)]

    def test_curvature_mode_agrees_on_clean_data(self):
        distances = [0.33, 0.45, 0.60]
        profiles, vzones = self._profiles_and_vzones(distances)
        ordering = order_tags_y(
            profiles, vzones, config=YOrderingConfig(value_mode="curvature"),
            all_tag_ids=list(profiles),
        )
        assert list(ordering.ordered_ids) == ["t0", "t1", "t2"]

    def test_metrics_definitions(self):
        p = coarse_representation("p", np.array([4.0, 3.0, 2.0, 1.0]), 4)
        q = coarse_representation("q", np.array([2.0, 1.5, 1.0, 0.5]), 4)
        assert order_metric(p, q) > 0
        assert gap_metric(p, q) == pytest.approx(5.0)
        assert signed_gap(p, q) == pytest.approx(5.0)
        with pytest.raises(ValueError):
            order_metric(p, coarse_representation("r", np.arange(3.0), 3))

    def test_pairwise_gaps_requires_valid_pivot(self):
        p = coarse_representation("p", np.arange(4.0), 4)
        with pytest.raises(KeyError):
            pairwise_gaps({"p": p}, "missing")

    def test_all_pairs_comparison_matches_pivot_on_clean_data(self):
        distances = [0.33, 0.42, 0.52]
        profiles, vzones = self._profiles_and_vzones(distances)
        pivot_order = order_tags_y(profiles, vzones, config=YOrderingConfig(comparison="pivot"))
        all_pairs_order = order_tags_y(profiles, vzones, config=YOrderingConfig(comparison="all_pairs"))
        assert pivot_order.ordered_ids == all_pairs_order.ordered_ids

    def test_build_representations_segment_count(self):
        distances = [0.35, 0.45]
        profiles, vzones = self._profiles_and_vzones(distances)
        reps = build_representations(profiles, vzones, YOrderingConfig(segment_count=8))
        assert all(rep.segment_count == 8 for rep in reps.values())

    def test_config_validation(self):
        with pytest.raises(ValueError):
            YOrderingConfig(segment_count=1)
        with pytest.raises(ValueError):
            YOrderingConfig(value_mode="bogus")
        with pytest.raises(ValueError):
            YOrderingConfig(comparison="bogus")


class TestLocalizer:
    def test_localize_synthetic_grid(self):
        profiles = {}
        for ix in range(3):
            for iy in range(2):
                tag_id = f"t{ix}{iy}"
                profiles[tag_id] = synthetic_profile(
                    1.0 + 0.5 * ix, 0.35 + 0.1 * iy, tag_id=tag_id
                )
        localizer = STPPLocalizer(STPPConfig())
        result = localizer.localize(profiles)
        x_ranks = {tid: result.x_ordering.position_of(tid) for tid in profiles}
        assert x_ranks["t00"] < x_ranks["t10"] < x_ranks["t20"]
        y_ranks = {tid: result.y_ordering.position_of(tid) for tid in profiles}
        assert y_ranks["t00"] < y_ranks["t01"]

    def test_expected_ids_filtering(self):
        profiles = {
            "keep": synthetic_profile(1.5, 0.35, tag_id="keep"),
            "ignore": synthetic_profile(2.5, 0.35, tag_id="ignore"),
        }
        result = STPPLocalizer().localize(profiles, expected_tag_ids=["keep"])
        assert "ignore" not in result.x_ordering.ordered_ids

    def test_config_validation(self):
        with pytest.raises(ValueError):
            STPPConfig(detection_method="bogus")
        with pytest.raises(ValueError):
            STPPConfig(window_size=0)

    def test_relative_position_roundtrip(self):
        profiles = {
            "a": synthetic_profile(1.0, 0.35, tag_id="a"),
            "b": synthetic_profile(2.0, 0.45, tag_id="b"),
        }
        result = STPPLocalizer().localize(profiles)
        assert result.relative_position("a") == (0, 0)
        assert result.relative_position("b") == (1, 1)
        assert result.ordered_tag_count == 2
