"""Batched localization engine: equivalence with the sequential path.

The vectorized/batched DTW kernels are required to be *bit-identical* to the
seed's pure-Python double loop — batching is a throughput optimisation, never
a behavioural one.  These tests pin that contract at every level: the raw
accumulation kernel, the batch aligners, and the end-to-end localizer on a
seeded scene.  They also cover the degenerate-shape behaviour of the
backtracker and the error contract of
:meth:`DTWResult.query_indices_for_reference_range`.
"""

import math

import numpy as np
import pytest

from repro.core.dtw import (
    DTWResult,
    _accumulate_python,
    _backtrack,
    accumulate_cost,
    accumulate_cost_batch,
    dtw_align,
    segmented_dtw_align,
    segmented_dtw_align_batch,
    subsequence_dtw,
    subsequence_dtw_batch,
)
from repro.core.localizer import BatchLocalizer, STPPConfig, STPPLocalizer
from repro.core.reference import shared_canonical_reference
from repro.core.segmentation import segment_profile
from repro.evaluation.runner import standard_experiment
from repro.simulation.collector import profiles_from_read_log
from repro.workloads.airport import MORNING_PEAK, baggage_batch, order_bags
from repro.workloads.layouts import random_spacing_row
from repro.workloads.library import audit_shelf, generate_bookshelf, misplace_books


class TestVectorizedKernelEquivalence:
    def test_matches_python_loop_bit_for_bit(self):
        rng = np.random.default_rng(7)
        for trial in range(60):
            rows = int(rng.integers(1, 30))
            cols = int(rng.integers(1, 45))
            distance = rng.random((rows, cols))
            weights = rng.random((rows, cols)) + 0.1 if trial % 2 else None
            for free_start in (False, True):
                expected = _accumulate_python(distance, weights, free_start)
                actual = accumulate_cost(distance, weights, free_start)
                assert np.array_equal(expected, actual)

    def test_batch_matches_single_across_mixed_shapes_and_chunks(self):
        rng = np.random.default_rng(11)
        matrices = [
            rng.random((int(rng.integers(1, 40)), int(rng.integers(1, 60))))
            for _ in range(23)
        ]
        for free_start in (False, True):
            # A tiny chunk budget forces several padded chunks of mixed shapes.
            batched = accumulate_cost_batch(
                matrices, free_query_start=free_start, max_cells=4000
            )
            for matrix, cost in zip(matrices, batched):
                assert np.array_equal(
                    cost, accumulate_cost(matrix, None, free_start)
                )

    def test_subsequence_batch_equals_sequential(self):
        rng = np.random.default_rng(3)
        reference = rng.random(25)
        queries = [rng.random(int(rng.integers(5, 90))) for _ in range(15)]
        batched = subsequence_dtw_batch(reference, queries)
        for query, result in zip(queries, batched):
            assert result == subsequence_dtw(reference, query)

    def test_segmented_batch_equals_sequential(self):
        reference = shared_canonical_reference()
        ref_segments = segment_profile(reference.profile, 5)
        rng = np.random.default_rng(5)
        positions = random_spacing_row(6, 0.06, 0.18, rng=rng)
        experiment = standard_experiment(positions, seed=21)
        profiles = profiles_from_read_log(experiment.read_log)
        segmentations = [
            segment_profile(profile, 5)
            for profile in profiles.profiles.values()
            if len(profile) >= 12
        ]
        assert len(segmentations) >= 2
        batched = segmented_dtw_align_batch(ref_segments, segmentations)
        for segments, result in zip(segmentations, batched):
            assert result == segmented_dtw_align(ref_segments, segments)

    def test_batch_rejects_empty_segmentations(self):
        reference = shared_canonical_reference()
        ref_segments = segment_profile(reference.profile, 5)
        with pytest.raises(ValueError):
            segmented_dtw_align_batch(ref_segments, [[]])
        with pytest.raises(ValueError):
            segmented_dtw_align_batch([], [ref_segments])


class TestBacktrackDegenerateShapes:
    def test_single_row_full_alignment_walks_all_columns(self):
        result = dtw_align(np.array([1.0]), np.array([1.0, 2.0, 3.0]))
        assert result.path == ((0, 0), (0, 1), (0, 2))
        assert (result.query_start, result.query_end) == (0, 2)

    def test_single_column_full_alignment_walks_all_rows(self):
        result = dtw_align(np.array([1.0, 2.0, 3.0]), np.array([1.0]))
        assert result.path == ((0, 0), (1, 0), (2, 0))
        assert (result.query_start, result.query_end) == (0, 0)

    def test_single_row_subsequence_is_single_cell(self):
        # A free query start on a one-row matrix stops immediately: the match
        # is the single cheapest column.
        result = subsequence_dtw(np.array([2.0]), np.array([5.0, 2.5, 9.0]))
        assert result.path == ((0, 1),)
        assert result.cost == pytest.approx(0.5)

    def test_backtrack_1x1(self):
        path = _backtrack(np.array([[3.0]]))
        assert path == ((0, 0),)


class TestQueryIndicesContract:
    def _result(self) -> DTWResult:
        return dtw_align(np.array([0.0, 1.0, 2.0]), np.array([0.0, 1.0, 2.0]))

    def test_inclusive_range(self):
        result = self._result()
        assert result.query_indices_for_reference_range(0, 2) == (0, 2)
        assert result.query_indices_for_reference_range(1, 1) == (1, 1)

    def test_inverted_range_raises(self):
        with pytest.raises(ValueError, match="inverted"):
            self._result().query_indices_for_reference_range(2, 1)

    def test_negative_bound_raises(self):
        with pytest.raises(ValueError, match="non-negative"):
            self._result().query_indices_for_reference_range(-1, 2)

    def test_uncovered_range_raises_with_covered_rows(self):
        with pytest.raises(ValueError, match=r"path covers reference rows \[0, 2\]"):
            self._result().query_indices_for_reference_range(5, 9)


def _assert_vzones_equal(left, right):
    assert set(left) == set(right)
    for tag_id in left:
        a, b = left[tag_id], right[tag_id]
        assert (a.start_index, a.end_index, a.method) == (
            b.start_index,
            b.end_index,
            b.method,
        )
        assert a.bottom_time_s == b.bottom_time_s
        assert a.dtw_cost == b.dtw_cost or (
            math.isnan(a.dtw_cost) and math.isnan(b.dtw_cost)
        )


class TestBatchLocalizerEquivalence:
    @pytest.mark.parametrize("method", ["segmented_dtw", "full_dtw"])
    def test_matches_per_tag_sequential_localization(self, method):
        rng = np.random.default_rng(3)
        positions = random_spacing_row(8, 0.05, 0.2, rng=rng)
        experiment = standard_experiment(positions, seed=3)
        profiles = profiles_from_read_log(experiment.read_log)
        config = STPPConfig(detection_method=method)

        sequential = STPPLocalizer(config, batched=False).localize(
            profiles, expected_tag_ids=experiment.target_ids
        )
        batched = BatchLocalizer(config).localize(
            profiles, expected_tag_ids=experiment.target_ids
        )

        assert sequential.x_ordering.ordered_ids == batched.x_ordering.ordered_ids
        assert sequential.y_ordering.ordered_ids == batched.y_ordering.ordered_ids
        assert sequential.x_ordering.unordered_ids == batched.x_ordering.unordered_ids
        _assert_vzones_equal(sequential.vzones, batched.vzones)
        assert batched.metadata["batched"] is True
        assert sequential.metadata["batched"] is False

    def test_detector_batched_flag_is_pure_throughput(self):
        rng = np.random.default_rng(9)
        positions = random_spacing_row(5, 0.06, 0.15, rng=rng)
        experiment = standard_experiment(positions, seed=9)
        profiles = profiles_from_read_log(experiment.read_log)
        detector = STPPLocalizer(STPPConfig()).detector
        profile_map = dict(profiles.profiles)
        _assert_vzones_equal(
            detector.detect_all(profile_map, batched=False),
            detector.detect_all(profile_map, batched=True),
        )

    def test_localize_many_matches_individual_calls(self):
        engine = BatchLocalizer(STPPConfig())
        profile_sets = []
        expected = []
        for seed in (31, 32):
            positions = random_spacing_row(
                4, 0.07, 0.2, rng=np.random.default_rng(seed)
            )
            experiment = standard_experiment(positions, seed=seed)
            profile_sets.append(profiles_from_read_log(experiment.read_log))
            expected.append(experiment.target_ids)
        many = engine.localize_many(profile_sets, expected_tag_ids=expected)
        for profiles, tag_ids, result in zip(profile_sets, expected, many):
            single = engine.localize(profiles, expected_tag_ids=tag_ids)
            assert single.x_ordering.ordered_ids == result.x_ordering.ordered_ids
            assert single.y_ordering.ordered_ids == result.y_ordering.ordered_ids

    def test_localize_many_validates_lengths(self):
        engine = BatchLocalizer(STPPConfig())
        with pytest.raises(ValueError, match="one entry per profile set"):
            engine.localize_many([], expected_tag_ids=[["a"]])

    def test_shared_reference_is_cached(self):
        first = BatchLocalizer(STPPConfig())
        second = BatchLocalizer(STPPConfig())
        assert first.reference is second.reference


class TestWorkloadEntryPoints:
    def test_audit_shelf_flags_misplaced_books(self):
        shelf = generate_bookshelf(levels=1, books_per_level=10, seed=42)
        shuffled, misplaced = misplace_books(
            shelf, 1, rng=np.random.default_rng(42)
        )
        flagged = audit_shelf(shuffled, seed=42)
        assert all(book in flagged for book in misplaced)

    def test_order_bags_recovers_belt_order(self):
        batch = baggage_batch(MORNING_PEAK, bag_count=5, seed=13)
        detected = order_bags(batch, seed=13)
        label_by_id = {tag.tag_id: tag.label for tag in batch.tags}
        true_labels = [label_by_id[tid] for tid in batch.ground_truth_order()]
        assert detected == true_labels
