"""Streaming subsystem: incremental engines, the session facade, and the
batch-convergence pin.

The contract under test everywhere here: every incremental engine
(IncrementalSegmenter, ResumableSegmentAligner, StreamingCollector) is
bit-identical to its batch counterpart at every intermediate size, and a
LocalizationSession fed a completed read stream finalizes to exactly the
ordering the batch pipeline computes from the same reads.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    BatchLocalizer,
    IncrementalSegmenter,
    PhaseProfile,
    ResumableSegmentAligner,
    STPPConfig,
    segment_profile,
    segmented_dtw_align,
)
from repro.core.reference import shared_canonical_reference
from repro.evaluation.metrics import ordering_agreement
from repro.rf.geometry import Point3D
from repro.rfid import FrameSlottedAloha, ReadLog, RFIDReader, TagRead, make_tags
from repro.rfid.reading import ReadBatch
from repro.simulation import (
    StreamingCollector,
    collect_sweep,
    standard_antenna_moving_scene,
    standard_tag_moving_scene,
)
from repro.simulation.collector import profiles_from_read_log
from repro.service import LocalizationSession
from repro.workloads import baggage_batch, conveyor_batch, conveyor_scene, MORNING_PEAK
from repro.workloads.library import generate_bookshelf


def _assert_profiles_identical(a, b):
    assert a.tag_ids() == b.tag_ids()
    for tag_id in a.tag_ids():
        pa, pb = a[tag_id], b[tag_id]
        assert np.array_equal(pa.timestamps_s, pb.timestamps_s)
        assert np.array_equal(pa.phases_rad, pb.phases_rad)
        assert np.array_equal(pa.rssi_dbm, pb.rssi_dbm)
        assert pa.channel_index == pb.channel_index


def _assert_results_identical(streaming, batch):
    """Orderings bit-identical; vzones identical modulo NaN dtw_cost."""
    assert streaming.x_ordering == batch.x_ordering
    assert streaming.y_ordering == batch.y_ordering
    assert set(streaming.vzones) == set(batch.vzones)
    for tag_id, expected in batch.vzones.items():
        actual = streaming.vzones[tag_id]
        assert actual.fit == expected.fit
        assert (actual.start_index, actual.end_index) == (
            expected.start_index,
            expected.end_index,
        )
        assert actual.method == expected.method
        # dtw_cost is NaN for fallback detections; NaN-aware comparison.
        assert actual.dtw_cost == expected.dtw_cost or (
            np.isnan(actual.dtw_cost) and np.isnan(expected.dtw_cost)
        )


# ---------------------------------------------------------------------------
# Incremental segmentation
# ---------------------------------------------------------------------------


class TestIncrementalSegmenter:
    @pytest.mark.parametrize("window_size", [1, 3, 5, 8])
    def test_matches_batch_under_chunked_feeding(self, small_row_sweep, window_size):
        _, _, sweep = small_row_sweep
        rng = np.random.default_rng(7)
        for tag_id in sweep.profiles.tag_ids():
            profile = sweep.profiles[tag_id]
            segmenter = IncrementalSegmenter(window_size)
            index = 0
            while index < len(profile):
                chunk = int(rng.integers(1, 9))
                segmenter.extend(
                    profile.timestamps_s[index : index + chunk],
                    profile.phases_rad[index : index + chunk],
                )
                index += chunk
                # Equivalence must hold at EVERY intermediate size, not just
                # at the end — that is what makes mid-sweep orderings valid.
                partial = PhaseProfile(
                    tag_id=tag_id,
                    timestamps_s=profile.timestamps_s[:index],
                    phases_rad=profile.phases_rad[:index],
                )
                assert segmenter.segments() == segment_profile(partial, window_size)
                assert segmenter.stable_count() <= len(segmenter.segments())

    def test_jump_splits_match_batch(self):
        # A profile with explicit 0/2π wraps between samples 3-4 and 7-8.
        phases = np.array([0.2, 0.1, 0.05, 0.02, 6.2, 6.1, 6.0, 5.9, 0.3, 0.4])
        times = np.arange(phases.size, dtype=float) * 0.1
        profile = PhaseProfile(tag_id="t", timestamps_s=times, phases_rad=phases)
        for window in (2, 3, 5):
            segmenter = IncrementalSegmenter(window)
            for t, p in zip(times, phases):
                segmenter.append(t, p)
            assert segmenter.segments() == segment_profile(profile, window)

    def test_stable_prefix_never_changes(self, small_row_sweep):
        _, _, sweep = small_row_sweep
        profile = next(iter(sweep.profiles))
        segmenter = IncrementalSegmenter(5)
        seen: list = []
        for index in range(len(profile)):
            segmenter.append(profile.timestamps_s[index], profile.phases_rad[index])
            stable = segmenter.stable_count()
            current = segmenter.segments()[:stable]
            assert current[: len(seen)] == seen
            seen = current

    def test_rejects_invalid_window(self):
        with pytest.raises(ValueError, match="window size"):
            IncrementalSegmenter(0)


# ---------------------------------------------------------------------------
# Resumable DTW
# ---------------------------------------------------------------------------


class TestResumableSegmentAligner:
    def test_matches_batch_at_every_growth_step(self, small_row_sweep):
        _, _, sweep = small_row_sweep
        reference_segments = segment_profile(shared_canonical_reference().profile, 5)
        rng = np.random.default_rng(11)
        for tag_id in sweep.profiles.tag_ids():
            profile = sweep.profiles[tag_id]
            aligner = ResumableSegmentAligner(reference_segments)
            segmenter = IncrementalSegmenter(5)
            index = 0
            while index < len(profile):
                chunk = int(rng.integers(4, 40))
                segmenter.extend(
                    profile.timestamps_s[index : index + chunk],
                    profile.phases_rad[index : index + chunk],
                )
                index += chunk
                segments = segmenter.segments()
                if not segments:
                    continue
                resumed = aligner.align(segments, segmenter.stable_count())
                batch = segmented_dtw_align(
                    reference_segments, segments, subsequence=True
                )
                assert resumed.cost == batch.cost
                assert resumed.path == batch.path
                assert (resumed.query_start, resumed.query_end) == (
                    batch.query_start,
                    batch.query_end,
                )

    def test_cache_grows_monotonically(self, small_row_sweep):
        _, _, sweep = small_row_sweep
        profile = next(iter(sweep.profiles))
        reference_segments = segment_profile(shared_canonical_reference().profile, 5)
        aligner = ResumableSegmentAligner(reference_segments)
        segmenter = IncrementalSegmenter(5)
        cached = 0
        for index in range(len(profile)):
            segmenter.append(profile.timestamps_s[index], profile.phases_rad[index])
            segments = segmenter.segments()
            if not segments:
                continue
            aligner.align(segments, segmenter.stable_count())
            assert aligner.cached_columns >= cached
            cached = aligner.cached_columns
        assert cached > 0

    def test_rejects_shrinking_stable_prefix(self):
        reference_segments = segment_profile(shared_canonical_reference().profile, 5)
        aligner = ResumableSegmentAligner(reference_segments)
        segmenter = IncrementalSegmenter(2)
        times = np.arange(20, dtype=float)
        phases = np.linspace(1.0, 2.0, 20)
        segmenter.extend(times, phases)
        aligner.align(segmenter.segments(), segmenter.stable_count())
        with pytest.raises(ValueError, match="stable prefix shrank"):
            aligner.align(segmenter.segments()[:1], 0)
        aligner.reset()
        aligner.align(segmenter.segments()[:1], 0)  # fine after reset

    def test_rejects_empty_inputs(self):
        reference_segments = segment_profile(shared_canonical_reference().profile, 5)
        with pytest.raises(ValueError, match="reference"):
            ResumableSegmentAligner([])
        aligner = ResumableSegmentAligner(reference_segments)
        with pytest.raises(ValueError, match="query"):
            aligner.align([], 0)


# ---------------------------------------------------------------------------
# Streaming collector
# ---------------------------------------------------------------------------


class TestStreamingCollector:
    def test_replayed_log_matches_batch_profiles(self, small_row_sweep):
        _, scene, sweep = small_row_sweep
        channel = scene.reader_config.channel.channel_index
        collector = StreamingCollector(channel_index=channel)
        for batch in sweep.read_log.iter_batches(57):
            collector.ingest_batch(batch)
        assert collector.read_count == len(sweep.read_log)
        _assert_profiles_identical(
            collector.profiles(),
            profiles_from_read_log(sweep.read_log, channel_index=channel),
        )

    def test_single_reads_match_column_ingestion(self, small_row_sweep):
        _, _, sweep = small_row_sweep
        by_read = StreamingCollector()
        by_read.ingest(sweep.read_log.reads)
        by_batch = StreamingCollector()
        for batch in sweep.read_log.iter_batches(64):
            by_batch.ingest_batch(batch)
        _assert_profiles_identical(by_read.profiles(), by_batch.profiles())

    def test_out_of_order_reorder_is_deterministic(self, small_row_sweep):
        _, scene, sweep = small_row_sweep
        channel = scene.reader_config.channel.channel_index
        reads = list(sweep.read_log.reads)
        shuffled = list(reads)
        np.random.default_rng(3).shuffle(shuffled)
        collector = StreamingCollector(channel_index=channel)
        collector.ingest(shuffled)
        for stream in collector.streams():
            assert stream.reorders > 0 or len(stream) < 2
        # Snapshots are timestamp-sorted, so each tag's profile is identical
        # whatever the arrival order (only the first-seen *tag* order shifts).
        batch = profiles_from_read_log(sweep.read_log, channel_index=channel)
        streamed = collector.profiles()
        assert sorted(streamed.tag_ids()) == sorted(batch.tag_ids())
        for tag_id in batch.tag_ids():
            assert np.array_equal(
                streamed[tag_id].timestamps_s, batch[tag_id].timestamps_s
            )
            assert np.array_equal(
                streamed[tag_id].phases_rad, batch[tag_id].phases_rad
            )
            assert np.array_equal(
                streamed[tag_id].rssi_dbm, batch[tag_id].rssi_dbm
            )

    def test_reads_between_stale_tail_and_chunk_max_count_as_reorders(self):
        """Regression: after an internally disordered chunk, the high-water
        mark must be the chunk *max*, not its last element — otherwise a
        later read landing between the two dodges reorder detection and a
        session would never rebuild that tag's incremental state."""
        collector = StreamingCollector(channel_index=6)
        times = np.array([0.0, 1.0, 20.0, 13.0])  # disordered; max is 20.0
        collector.ingest_columns(
            times, ["t"] * 4, np.full(4, 0.5), np.full(4, -60.0)
        )
        stream = collector.stream("t")
        assert stream.reorders == 1
        assert stream.last_timestamp_s == 20.0
        # 14.0 precedes the already-seen 20.0: it must register as a reorder.
        collector.ingest_read(TagRead(14.0, "t", 0.5, -60.0))
        assert stream.reorders == 2
        assert np.array_equal(
            stream.sorted_arrays()[0], np.array([0.0, 1.0, 13.0, 14.0, 20.0])
        )

    def test_session_converges_after_internally_disordered_chunk(self):
        """End-to-end version of the regression above: the session must
        rebuild the tag's incremental state and still match the batch
        pipeline over the same arrival order."""
        times = np.array([0.0, 0.1, 0.2, 0.3, 0.4, 2.0, 0.5])  # 2.0 early
        phases = np.linspace(1.0, 1.6, 7)
        late_times = np.arange(0.6, 2.0, 0.1)  # all precede the seen 2.0
        late_phases = np.linspace(1.7, 3.0, late_times.size)

        session = LocalizationSession(expected_tag_ids=["t"], channel_index=6)
        session.ingest_columns(times, ["t"] * 7, phases, np.full(7, -60.0))
        session.provisional()  # builds incremental state over the prefix
        session.ingest_columns(
            late_times, ["t"] * late_times.size, late_phases,
            np.full(late_times.size, -60.0),
        )
        final = session.finalize()

        log = ReadLog.from_columns(
            np.concatenate([times, late_times]),
            ["t"] * (7 + late_times.size),
            np.concatenate([phases, late_phases]),
            [-60.0] * (7 + late_times.size),
            [6] * (7 + late_times.size),
            [1] * (7 + late_times.size),
        )
        batch = BatchLocalizer(STPPConfig()).localize(
            profiles_from_read_log(log, channel_index=6),
            expected_tag_ids=["t"],
        )
        _assert_results_identical(final.result, batch)

    def test_out_of_order_raise_policy(self):
        collector = StreamingCollector(out_of_order="raise")
        collector.ingest_read(TagRead(1.0, "tag", 0.5, -60.0))
        with pytest.raises(ValueError, match="out-of-order"):
            collector.ingest_read(TagRead(0.5, "tag", 0.6, -61.0))
        with pytest.raises(ValueError, match="out_of_order"):
            StreamingCollector(out_of_order="banana")

    def test_mixed_channels_require_explicit_label(self):
        collector = StreamingCollector()
        collector.ingest_read(TagRead(0.0, "a", 0.5, -60.0, channel_index=6))
        collector.ingest_read(TagRead(1.0, "a", 0.6, -61.0, channel_index=7))
        with pytest.raises(ValueError, match="multiple reader channels"):
            collector.profiles()
        explicit = StreamingCollector(channel_index=6)
        explicit.ingest_read(TagRead(0.0, "a", 0.5, -60.0, channel_index=6))
        explicit.ingest_read(TagRead(1.0, "a", 0.6, -61.0, channel_index=7))
        assert explicit.profiles()["a"].channel_index == 6

    def test_empty_collector(self):
        collector = StreamingCollector()
        assert collector.read_count == 0
        assert collector.tag_ids() == []
        assert len(collector.profiles()) == 0


# ---------------------------------------------------------------------------
# Read batches and the streaming reader
# ---------------------------------------------------------------------------


class TestReadBatches:
    def test_iter_batches_round_trips(self, small_row_sweep):
        _, _, sweep = small_row_sweep
        replayed = ReadLog()
        for batch in sweep.read_log.iter_batches(33):
            assert len(batch) <= 33
            replayed.extend_batch(batch)
        assert replayed == sweep.read_log

    def test_batch_validation(self):
        with pytest.raises(ValueError, match="column lengths"):
            ReadBatch(
                timestamps_s=np.array([0.0, 1.0]),
                tag_ids=("a",),
                phases_rad=np.array([0.1]),
                rssi_dbm=np.array([-60.0]),
                channel_index=6,
            )

    def test_sweep_stream_reassembles_to_sweep_log(self):
        # Moving-tag scene so the streamed path covers the dynamic-geometry
        # branch of the round kernel too.
        batch = baggage_batch(MORNING_PEAK, bag_count=6, seed=5)
        scene = standard_tag_moving_scene(batch.tags, seed=5)

        def fresh_reader():
            # The adaptive ALOHA Q-state lives on the protocol object, so
            # each sweep needs a fresh protocol to start from the same state.
            return RFIDReader(
                config=scene.reader_config, protocol=FrameSlottedAloha()
            )

        def sweep_kwargs():
            return dict(
                tags=scene.tags,
                antenna_position=scene.scenario.antenna_position,
                duration_s=scene.scenario.duration_s,
                tag_position=scene.scenario.tag_position,
            )

        log = fresh_reader().sweep(rng=scene.rng(), **sweep_kwargs())
        streamed = ReadLog()
        rounds = 0
        for read_batch in fresh_reader().sweep_stream(
            rng=scene.rng(), **sweep_kwargs()
        ):
            assert read_batch.round_index >= rounds - 1
            assert np.all(np.diff(read_batch.timestamps_s) >= 0)
            streamed.extend_batch(read_batch)
            rounds += 1
        assert rounds > 1
        assert streamed.sorted_by_time() == log


# ---------------------------------------------------------------------------
# The session facade
# ---------------------------------------------------------------------------


class TestLocalizationSession:
    def test_empty_stream(self):
        expected = ["tag-a", "tag-b"]
        session = LocalizationSession(expected_tag_ids=expected)
        update = session.provisional()
        assert update.result.x_ordering.ordered_ids == ()
        assert update.result.x_ordering.unordered_ids == tuple(expected)
        assert update.ordered_fraction == 0.0
        assert update.confidence == 0.0
        final = session.finalize()
        assert final.final
        assert final.result.x_ordering.ordered_ids == ()

    def test_single_read_tag_reported_unordered(self):
        session = LocalizationSession(expected_tag_ids=["lonely"])
        session.ingest_read(TagRead(0.5, "lonely", 1.0, -55.0))
        update = session.provisional()
        assert "lonely" in update.result.x_ordering.unordered_ids
        assert update.result.x_ordering.ordered_ids == ()

    def test_requires_segmented_dtw(self):
        with pytest.raises(ValueError, match="segmented_dtw"):
            LocalizationSession(config=STPPConfig(detection_method="full_dtw"))

    def test_finalize_blocks_further_ingestion(self, small_row_sweep):
        _, _, sweep = small_row_sweep
        session = LocalizationSession()
        for batch in sweep.read_log.iter_batches(128):
            session.ingest_batch(batch)
        first = session.finalize()
        assert session.finalize() is first  # idempotent
        with pytest.raises(RuntimeError, match="finalized"):
            session.ingest_read(TagRead(99.0, "late", 0.1, -70.0))
        with pytest.raises(RuntimeError, match="finalized"):
            session.provisional()

    def test_confidence_converges_upward(self, small_row_sweep):
        tags, scene, sweep = small_row_sweep
        session = LocalizationSession(
            expected_tag_ids=tags.ids(),
            channel_index=scene.reader_config.channel.channel_index,
        )
        confidences = []
        for batch in sweep.read_log.iter_batches(120):
            session.ingest_batch(batch)
            confidences.append(session.provisional().confidence)
        final = session.finalize()
        assert final.confidence == 1.0  # all tags ordered, ordering settled
        assert confidences[-1] >= confidences[0]

    def test_gap_spanning_segment_boundary_resumes(self, small_row_sweep):
        """A quiet gap mid-stream (reader saw nothing for a while) must not
        perturb the incremental state: resuming afterwards still converges to
        the batch result, even when the pause lands inside an open segment."""
        tags, scene, sweep = small_row_sweep
        channel = scene.reader_config.channel.channel_index
        reads = sweep.read_log.reads
        # Split at an uneven index so per-tag buffers pause mid-segment.
        split = len(reads) // 2 + 3
        session = LocalizationSession(
            expected_tag_ids=tags.ids(), channel_index=channel
        )
        session.ingest_reads(reads[:split])
        session.provisional()  # forces segmentation state over the prefix
        session.ingest_reads(reads[split:])
        final = session.finalize()
        batch = BatchLocalizer(STPPConfig()).localize(
            profiles_from_read_log(sweep.read_log, channel_index=channel),
            expected_tag_ids=tags.ids(),
        )
        _assert_results_identical(final.result, batch)

    def test_out_of_order_stream_converges_after_rebuild(self, small_row_sweep):
        tags, scene, sweep = small_row_sweep
        channel = scene.reader_config.channel.channel_index
        reads = list(sweep.read_log.reads)
        shuffled = list(reads)
        np.random.default_rng(13).shuffle(shuffled)
        session = LocalizationSession(
            expected_tag_ids=tags.ids(), channel_index=channel
        )
        chunk = max(1, len(shuffled) // 7)
        for start in range(0, len(shuffled), chunk):
            session.ingest_reads(shuffled[start : start + chunk])
            session.provisional()
        final = session.finalize()
        # The convergence contract is "same reads in the same arrival order":
        # the batch comparator consumes a log holding the shuffled order (the
        # per-tag profiles are identical either way — both paths stable-sort
        # by timestamp — but the default Y pivot is the first-seen tag, which
        # legitimately follows arrival order in both paths).
        batch = BatchLocalizer(STPPConfig()).localize(
            profiles_from_read_log(ReadLog(shuffled), channel_index=channel),
            expected_tag_ids=tags.ids(),
        )
        _assert_results_identical(final.result, batch)
        # The X ordering does not depend on arrival order at all.
        batch_sorted = BatchLocalizer(STPPConfig()).localize(
            profiles_from_read_log(sweep.read_log, channel_index=channel),
            expected_tag_ids=tags.ids(),
        )
        assert final.result.x_ordering == batch_sorted.x_ordering


# ---------------------------------------------------------------------------
# The "dedupe" ingest policy
# ---------------------------------------------------------------------------


class TestDedupePolicy:
    def test_exact_duplicates_dropped_and_counted(self):
        collector = StreamingCollector(out_of_order="dedupe")
        read = TagRead(1.0, "tag", 0.5, -60.0, channel_index=6)
        collector.ingest_read(read)
        collector.ingest_read(read)  # exact duplicate: dropped
        collector.ingest_read(TagRead(1.0, "tag", 0.6, -60.0, channel_index=6))
        assert collector.read_count == 2
        assert collector.duplicates_dropped == 1
        assert collector.stream("tag").duplicates_dropped == 1

    def test_signal_bearing_differences_are_kept(self):
        # The duplicate key is (timestamp, wrapped phase, channel): a read
        # differing in either is a legitimate re-observation and is kept.
        collector = StreamingCollector(out_of_order="dedupe")
        collector.ingest_read(TagRead(1.0, "tag", 0.5, -60.0))
        collector.ingest_read(TagRead(1.001, "tag", 0.5, -60.0))  # new time
        collector.ingest_read(TagRead(1.0, "tag", 0.6, -60.0))  # new phase
        assert collector.read_count == 3
        assert collector.duplicates_dropped == 0

    def test_wrapped_phase_aliases_count_as_duplicates(self):
        # Phases are wrapped before comparison, so a 2π alias of an already
        # ingested read is signal-wise the same observation.
        collector = StreamingCollector(out_of_order="dedupe")
        collector.ingest_read(TagRead(1.0, "tag", 0.5, -60.0))
        collector.ingest_read(TagRead(1.0, "tag", 0.5 + 2.0 * np.pi, -60.0))
        assert collector.read_count == 1
        assert collector.duplicates_dropped == 1

    def test_reorder_policy_keeps_duplicates(self):
        collector = StreamingCollector(out_of_order="reorder")
        read = TagRead(1.0, "tag", 0.5, -60.0)
        collector.ingest_read(read)
        collector.ingest_read(read)
        assert collector.read_count == 2
        assert collector.duplicates_dropped == 0

    def test_dedupe_recovers_the_clean_result_under_duplication(self, small_row_sweep):
        """A duplicated feed through a dedupe session finalizes to exactly
        the clean batch result: the duplicates are provably removed, and
        only the quality/confidence grade records that they ever existed."""
        from repro.faults import FaultSpec

        tags, scene, sweep = small_row_sweep
        channel = scene.reader_config.channel.channel_index
        pipeline = FaultSpec.from_json(
            {"seed": 3, "injectors": [{"kind": "duplicate", "rate": 0.15}]}
        ).build()
        session = LocalizationSession(
            expected_tag_ids=tags.ids(),
            channel_index=channel,
            out_of_order="dedupe",
        )
        for batch in pipeline.apply(sweep.read_log.iter_batches(100)):
            session.ingest_batch(batch)
        duplicated = pipeline.counters()["reads_duplicated"]
        assert duplicated > 0
        assert session.collector.duplicates_dropped == duplicated
        final = session.finalize()

        batch_result = BatchLocalizer(STPPConfig()).localize(
            profiles_from_read_log(sweep.read_log, channel_index=channel),
            expected_tag_ids=tags.ids(),
        )
        _assert_results_identical(final.result, batch_result)
        # The anomaly evidence is surfaced, and only through quality.
        quality = session.stream_quality()
        assert quality["duplicates_dropped"] == duplicated
        assert 0.0 < final.quality < 1.0
        assert final.confidence == pytest.approx(
            final.ordered_fraction * final.agreement * final.quality
        )


# ---------------------------------------------------------------------------
# Batch-equivalence pin across the three workloads
# ---------------------------------------------------------------------------


def _library_case():
    shelf = generate_bookshelf(levels=1, books_per_level=10, seed=21)
    tags = shelf.to_tags(seed=21)
    return tags, standard_antenna_moving_scene(tags, seed=21)


def _airport_case():
    batch = baggage_batch(MORNING_PEAK, bag_count=8, seed=22)
    return batch.tags, standard_tag_moving_scene(batch.tags, seed=22)


def _warehouse_case():
    batch = conveyor_batch(batch_index=0, seed=23)
    return batch.tags, conveyor_scene(batch, seed=23)


@pytest.mark.parametrize(
    "case", [_library_case, _airport_case, _warehouse_case],
    ids=["library", "airport", "warehouse"],
)
def test_streaming_final_ordering_is_bit_identical_to_batch(case):
    """The acceptance pin: across all three workloads, a session fed the
    completed stream produces exactly the batch pipeline's orderings."""
    tags, scene = case()
    sweep = collect_sweep(scene)
    channel = scene.reader_config.channel.channel_index

    batch_result = BatchLocalizer(STPPConfig()).localize(
        profiles_from_read_log(sweep.read_log, channel_index=channel),
        expected_tag_ids=tags.ids(),
    )

    session = LocalizationSession(
        expected_tag_ids=tags.ids(), channel_index=channel
    )
    for read_batch in sweep.read_log.iter_batches(100):
        session.ingest_batch(read_batch)
        session.provisional()  # exercise the mid-stream path, not just finalize
    final = session.finalize()

    assert final.final
    _assert_results_identical(final.result, batch_result)
    assert final.result.x_ordering.ordered_ids  # non-degenerate sweep


# ---------------------------------------------------------------------------
# Live streaming portal (warehouse conveyor)
# ---------------------------------------------------------------------------


class TestConveyorPortal:
    def test_portal_streams_and_converges(self):
        from repro.workloads import ConveyorConfig, conveyor_portal

        portal = conveyor_portal(
            config=ConveyorConfig(lanes=2, cartons_per_lane=3),
            seed=31,
            update_every_rounds=20,
        )
        updates = list(portal.updates())
        assert len(updates) >= 2
        assert not updates[0].final and updates[-1].final
        # Reads flowed in while updates were being emitted.
        assert updates[-1].reads_ingested > updates[0].reads_ingested
        # Confidence is 1.0 once every carton is ordered and the ordering
        # has stopped moving; the full sweep must get there.
        assert updates[-1].confidence == 1.0
        assert portal.belt_order_accuracy() >= 0.5

        # The final update equals the batch pipeline over the session's reads
        # (the portal's convergence guarantee, on live-streamed data).
        channel = portal.scene.reader_config.channel.channel_index
        log = ReadLog()
        for tag_id in portal.session.collector.tag_ids():
            stream = portal.session.collector.stream(tag_id)
            times, phases, rssis = stream.sorted_arrays()
            log.extend_columns(
                times, [tag_id] * len(stream), phases, rssis,
                channel_index=channel, antenna_port=1,
            )
        batch = BatchLocalizer(STPPConfig()).localize(
            profiles_from_read_log(log, channel_index=channel),
            expected_tag_ids=portal.batch.tags.ids(),
        )
        assert updates[-1].result.x_ordering.ordered_ids == batch.x_ordering.ordered_ids
        assert updates[-1].result.x_ordering.scores == batch.x_ordering.scores

    def test_portal_validates_update_cadence(self):
        from repro.workloads import conveyor_portal

        with pytest.raises(ValueError, match="update_every_rounds"):
            conveyor_portal(update_every_rounds=0)


# ---------------------------------------------------------------------------
# Ordering agreement metric
# ---------------------------------------------------------------------------


class TestOrderingAgreement:
    def test_identical_orders_agree_fully(self):
        assert ordering_agreement(["a", "b", "c"], ["a", "b", "c"]) == 1.0

    def test_reversed_orders_fully_disagree(self):
        assert ordering_agreement(["a", "b", "c"], ["c", "b", "a"]) == 0.0

    def test_partial_overlap_counts_common_pairs_only(self):
        # Common tags: a, b (in order) and c missing from previous.
        assert ordering_agreement(["a", "b"], ["a", "c", "b"]) == 1.0
        assert ordering_agreement(["a", "b"], ["b", "c", "a"]) == 0.0

    def test_fewer_than_two_common_tags_is_vacuously_stable(self):
        assert ordering_agreement([], ["a", "b"]) == 1.0
        assert ordering_agreement(["a"], ["a"]) == 1.0
        assert ordering_agreement(["a", "b"], ["c"]) == 1.0
