"""Warehouse conveyor workload: generation, belt motion, end-to-end scoring.

The acceptance test for the workload lives here: one sweep-engine plan runs
conveyor batches through the full simulation and scores **all five** baseline
schemes on them, serially and sharded.
"""

import numpy as np
import pytest

from repro.evaluation.sweep import SweepService
from repro.workloads.warehouse import (
    ConveyorBatch,
    ConveyorConfig,
    conveyor_batch,
    conveyor_experiment,
    conveyor_scenario,
    warehouse_sweep_plan,
)

FIVE_SCHEMES = ["G-RSSI", "OTrack", "Landmarc", "BackPos", "STPP"]


class TestConveyorBatch:
    def test_carton_count_and_lanes(self):
        config = ConveyorConfig(lanes=3, cartons_per_lane=4)
        batch = conveyor_batch(config, seed=1)
        assert len(batch.tags.ids()) == 12
        lanes = {batch.lane_of(tid) for tid in batch.tags.ids()}
        assert lanes == {0, 1, 2}

    def test_lane_geometry(self):
        config = ConveyorConfig(lanes=2, lane_pitch_m=0.2, lateral_jitter_m=0.05)
        batch = conveyor_batch(config, seed=2)
        for tag in batch.tags:
            lane = batch.lane_of(tag.tag_id)
            assert abs(tag.position.y - lane * 0.2) <= 0.05 + 1e-9

    def test_within_lane_gaps_in_range(self):
        config = ConveyorConfig(lanes=1, cartons_per_lane=6, min_gap_m=0.10, max_gap_m=0.20)
        batch = conveyor_batch(config, seed=3)
        xs = sorted(tag.position.x for tag in batch.tags)
        gaps = np.diff(xs)
        assert np.all(gaps >= 0.10 - 1e-9)
        assert np.all(gaps <= 0.20 + 1e-9)

    def test_deterministic_per_seed(self):
        a = conveyor_batch(seed=7)
        b = conveyor_batch(seed=7)
        assert [t.position for t in a.tags] == [t.position for t in b.tags]
        assert a.tags.ids() == b.tags.ids()

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ConveyorConfig(lanes=0)
        with pytest.raises(ValueError):
            ConveyorConfig(min_gap_m=0.3, max_gap_m=0.2)
        with pytest.raises(ValueError):
            ConveyorConfig(speed_jitter_fraction=1.5)
        with pytest.raises(ValueError):
            ConveyorConfig(lane_pitch_m=0.1, lateral_jitter_m=0.06)


class TestConveyorScenario:
    def test_relative_geometry_preserved(self):
        # The precondition of the paper's tag-moving equivalence (§1.3): all
        # cartons share the belt motion, so pairwise distances never change.
        batch = conveyor_batch(seed=4)
        scenario = conveyor_scenario(batch, rng=np.random.default_rng(4))
        ids = batch.tags.ids()
        for t in (0.0, 2.5, scenario.duration_s):
            d = scenario.tag_position(ids[0], t).distance_to(scenario.tag_position(ids[5], t))
            d0 = scenario.tag_position(ids[0], 0.0).distance_to(
                scenario.tag_position(ids[5], 0.0)
            )
            assert d == pytest.approx(d0, abs=1e-9)

    def test_variable_belt_speed_is_nonuniform(self):
        config = ConveyorConfig(speed_jitter_fraction=0.3)
        batch = conveyor_batch(config, seed=5)
        scenario = conveyor_scenario(batch, rng=np.random.default_rng(5))
        tag = batch.tags.ids()[0]
        times = np.linspace(0.0, scenario.duration_s, 40)
        xs = np.array([scenario.tag_position(tag, t).x for t in times])
        speeds = -np.diff(xs) / np.diff(times)
        assert np.all(speeds > 0)  # the belt never stops or reverses
        assert speeds.max() / speeds.min() > 1.05  # ...but it is not constant

    def test_constant_belt_when_jitter_zero(self):
        config = ConveyorConfig(speed_jitter_fraction=0.0)
        batch = conveyor_batch(config, seed=5)
        scenario = conveyor_scenario(batch)
        tag = batch.tags.ids()[0]
        times = np.linspace(0.0, scenario.duration_s, 20)
        xs = np.array([scenario.tag_position(tag, t).x for t in times])
        speeds = -np.diff(xs) / np.diff(times)
        assert speeds == pytest.approx(config.nominal_speed_mps)

    def test_every_carton_passes_the_antenna(self):
        batch = conveyor_batch(seed=6)
        scenario = conveyor_scenario(batch, rng=np.random.default_rng(6))
        antenna_x = scenario.antenna_position(0.0).x
        for tid in batch.tags.ids():
            assert scenario.tag_position(tid, 0.0).x > antenna_x
            assert scenario.tag_position(tid, scenario.duration_s).x < antenna_x


class TestWarehouseEndToEnd:
    """All five baselines score the conveyor workload through the engine."""

    @pytest.fixture(scope="class")
    def outcome(self):
        plan = warehouse_sweep_plan(
            repetitions=2,
            config=ConveyorConfig(lanes=2, cartons_per_lane=4),
            base_seed=2015,
        )
        return SweepService(parallel=False).run(plan)

    def test_all_five_schemes_scored(self, outcome):
        assert outcome.schemes() == FIVE_SCHEMES
        for name in FIVE_SCHEMES:
            evaluations = outcome.evaluations(name)
            assert len(evaluations) == 2
            for evaluation in evaluations:
                assert 0.0 <= evaluation.accuracy_x <= 1.0
                assert 0.0 <= evaluation.accuracy_y <= 1.0
                assert evaluation.total_tags == 8

    def test_stpp_recovers_arrival_order(self, outcome):
        # STPP's headline ability on a conveyor: the per-lane arrival order.
        assert outcome.mean_accuracy("STPP")["x"] >= 0.6

    def test_stpp_beats_absolute_localization_schemes(self, outcome):
        stpp = outcome.mean_accuracy("STPP")["x"]
        assert stpp >= outcome.mean_accuracy("Landmarc")["x"]
        assert stpp >= outcome.mean_accuracy("BackPos")["x"]

    def test_sharded_run_matches_serial(self, outcome):
        plan = warehouse_sweep_plan(
            repetitions=2,
            config=ConveyorConfig(lanes=2, cartons_per_lane=4),
            base_seed=2015,
        )
        sharded = SweepService(max_workers=2, parallel=True).run(plan)
        for name in FIVE_SCHEMES:
            assert sharded.evaluations(name) == outcome.evaluations(name)

    def test_experiments_generator(self):
        from repro.evaluation.experiments import warehouse_conveyor_accuracy

        result = warehouse_conveyor_accuracy(
            repetitions=1, config=ConveyorConfig(lanes=2, cartons_per_lane=3)
        )
        assert set(result) == set(FIVE_SCHEMES)
        for accuracy in result.values():
            assert set(accuracy) == {"x", "y", "combined"}
