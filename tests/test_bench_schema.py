"""Schema validation: history rows and every ``BENCH_*.json`` snapshot kind."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.bench.schema import (
    SNAPSHOT_SCHEMAS,
    BenchRecord,
    SchemaError,
    validate_snapshot,
)

REPO = Path(__file__).resolve().parents[1]

GOOD_ROW = dict(
    run_id="run-1",
    git_sha="abc1234",
    timestamp="2026-08-08T00:00:00+00:00",
    platform="test-host",
    source="bench_test",
    metric="speedup",
    value=2.0,
    scale={"tags": 8},
)


class TestBenchRecord:
    def test_json_round_trip(self):
        record = BenchRecord(**GOOD_ROW)
        assert BenchRecord.from_json(record.to_json()) == record

    @pytest.mark.parametrize(
        "field", ["run_id", "git_sha", "timestamp", "platform", "source", "metric"]
    )
    def test_empty_string_fields_rejected(self, field):
        with pytest.raises(SchemaError, match=field):
            BenchRecord(**{**GOOD_ROW, field: ""})

    @pytest.mark.parametrize(
        "bad", [True, "2.0", None, float("nan"), float("inf"), float("-inf")]
    )
    def test_non_finite_or_non_numeric_values_rejected(self, bad):
        with pytest.raises(SchemaError):
            BenchRecord(**{**GOOD_ROW, "value": bad})

    def test_scale_must_be_a_mapping(self):
        with pytest.raises(SchemaError, match="scale"):
            BenchRecord(**{**GOOD_ROW, "scale": [1, 2]})

    def test_from_json_rejects_missing_and_unknown_fields(self):
        row = BenchRecord(**GOOD_ROW).to_json()
        missing = {k: v for k, v in row.items() if k != "metric"}
        with pytest.raises(SchemaError, match="metric"):
            BenchRecord.from_json(missing)
        with pytest.raises(SchemaError, match="unknown"):
            BenchRecord.from_json({**row, "extra": 1})


# Minimal valid payload per snapshot kind — the smallest record each
# checker must accept (optional fields absent on purpose).
MINIMAL_SNAPSHOTS: dict[str, dict] = {
    "sweep": {
        "generated_at": "2026-08-08T00:00:00+00:00",
        "platform": "test",
        "seed": 2015,
        "scenes": {"static": {"speedup_batched_vs_scalar": 10.0}},
        "speedup_batched_vs_scalar": 10.0,
    },
    "dtw": {
        "generated_at": "2026-08-08T00:00:00+00:00",
        "platform": "test",
        "tag_count": 120,
        "timings_s": {"python_loop_per_tag": 1.0, "batched": 0.1},
        "speedup_vs_python_loop": {"batched": 10.0},
    },
    "experiments": {
        "generated_at": "2026-08-08T00:00:00+00:00",
        "platform": "test",
        "cpu_count": 1,
        "workload": {"spacings_m": [0.04]},
        "timings_s": {"serial": 5.0, "sharded": None},
        "results_bit_identical": True,
    },
    "streaming": {
        "generated_at": "2026-08-08T00:00:00+00:00",
        "platform": "test",
        "seed": 2015,
        "ingest_reads_per_s": 50_000.0,
        "results_bit_identical": True,
    },
    "accuracy": {
        "generated_at": "2026-08-08T00:00:00+00:00",
        "platform": "test",
        "seed": 2015,
        "schemes": ["STPP"],
        "scenarios": {"library": {"STPP": {"combined": 1.0}}},
        "mean_combined": {"STPP": 1.0},
        "fig17": {"STPP": 0.77},
        "scale": {"repetitions": 2},
    },
    "robustness": {
        "generated_at": "2026-08-08T00:00:00+00:00",
        "platform": "test",
        "seed": 2015,
        "schemes": ["STPP"],
        "scenarios": ["library"],
        "ladders": {
            "loss": {"rates": [0.0], "curves": {"library": {"STPP": [1.0]}}}
        },
        "zero_fault_bit_identical": True,
        "stpp_min_lead": 0.1,
        "stpp_min_accuracy": 1.0,
        "scale": {"repetitions": 1},
    },
}

ALL_REQUIRED_KEYS = [
    (kind, key)
    for kind, payload in MINIMAL_SNAPSHOTS.items()
    for key in SNAPSHOT_SCHEMAS[kind].required
]


class TestSnapshotValidation:
    @pytest.mark.parametrize("kind", sorted(MINIMAL_SNAPSHOTS))
    def test_minimal_payload_validates_clean(self, kind):
        assert validate_snapshot(kind, MINIMAL_SNAPSHOTS[kind]) == []

    @pytest.mark.parametrize("kind,key", ALL_REQUIRED_KEYS)
    def test_each_missing_required_key_is_caught(self, kind, key):
        payload = {k: v for k, v in MINIMAL_SNAPSHOTS[kind].items() if k != key}
        problems = validate_snapshot(kind, payload)
        assert problems, f"{kind} without {key!r} validated clean"
        assert any(key in problem for problem in problems)

    def test_wrong_type_is_caught(self):
        payload = {**MINIMAL_SNAPSHOTS["accuracy"], "scenarios": ["library"]}
        assert any("scenarios" in p for p in validate_snapshot("accuracy", payload))

    def test_bool_field_rejects_truthy_int(self):
        payload = {**MINIMAL_SNAPSHOTS["experiments"], "results_bit_identical": 1}
        problems = validate_snapshot("experiments", payload)
        assert any("results_bit_identical" in p for p in problems)

    def test_bool_rejected_where_a_number_is_required(self):
        payload = {**MINIMAL_SNAPSHOTS["streaming"], "ingest_reads_per_s": True}
        problems = validate_snapshot("streaming", payload)
        assert any("ingest_reads_per_s" in p for p in problems)

    def test_numeric_path_rejects_strings_and_nan(self):
        corrupted = {
            **MINIMAL_SNAPSHOTS["dtw"],
            "speedup_vs_python_loop": {"batched": "fast"},
        }
        assert any(
            "speedup_vs_python_loop.batched" in p
            for p in validate_snapshot("dtw", corrupted)
        )
        nan = {**MINIMAL_SNAPSHOTS["streaming"], "ingest_reads_per_s": float("nan")}
        assert validate_snapshot("streaming", nan)

    def test_null_on_a_numeric_path_means_not_measured(self):
        payload = {
            **MINIMAL_SNAPSHOTS["experiments"],
            "speedup_sharded_vs_serial": None,
        }
        assert validate_snapshot("experiments", payload) == []

    def test_non_object_payload_is_one_clear_problem(self):
        problems = validate_snapshot("sweep", [1, 2, 3])
        assert len(problems) == 1 and "object" in problems[0]


@pytest.mark.parametrize(
    "kind,filename",
    [
        ("sweep", "BENCH_sweep.json"),
        ("dtw", "BENCH_dtw.json"),
        ("experiments", "BENCH_experiments.json"),
        ("streaming", "BENCH_streaming.json"),
        ("accuracy", "BENCH_accuracy.json"),
        ("robustness", "BENCH_robustness.json"),
    ],
)
def test_committed_snapshots_validate_clean(kind, filename):
    path = REPO / filename
    if not path.exists():
        pytest.skip(f"{filename} not recorded in this checkout")
    assert validate_snapshot(kind, json.loads(path.read_text())) == []
