"""Property and equivalence tests for the pluggable physics backends.

The fused engine's physics phase is rng-free and per-event independent, so
evaluating the event table in row chunks — any chunk size, any executor —
must reproduce the serial pass **bitwise**.  These tests pin that contract:

* chunked == unchunked for random chunk sizes (including ``chunk == 1`` and
  ``chunk > M``) across the library/airport/warehouse workloads and a
  coupling-on moving scene;
* read logs are bit-identical across ``serial``/``threads``/``process`` on
  the leaderboard scenarios at their exact leaderboard seeds;
* backend resolution (names, env var, instances, duck typing) and the
  process backend's in-process fallback for unpicklable sweep state.
"""

import dataclasses

import numpy as np
import pytest

from repro.motion.scenarios import StaticAntennaPosition, SweepScenario
from repro.rf.geometry import Point3D
from repro.rfid.backends import (
    PHYSICS_BACKEND_ENV,
    PHYSICS_BACKENDS,
    ProcessPhysicsBackend,
    SerialPhysicsBackend,
    ThreadPhysicsBackend,
    _chunk_bounds,
    resolve_physics_backend,
)
from repro.rfid.reader import RFIDReader
from repro.rfid.tag import make_tags
from repro.scenarios import DEFAULT_SEED, default_registry
from repro.scenarios.builders import scenario_experiment
from repro.simulation.collector import collect_sweep
from repro.simulation.presets import (
    standard_antenna_moving_scene,
    standard_reader_config,
    standard_tag_moving_scene,
)
from repro.simulation.scene import Scene
from repro.workloads.airport import MORNING_PEAK, baggage_batch
from repro.workloads.library import generate_bookshelf
from repro.workloads.warehouse import ConveyorConfig, conveyor_batch, conveyor_scene


def library_scene():
    shelf = generate_bookshelf(levels=2, books_per_level=6, seed=21)
    return standard_antenna_moving_scene(shelf.to_tags(seed=21), seed=21)


def airport_scene():
    batch = baggage_batch(MORNING_PEAK, bag_count=6, seed=22)
    return standard_tag_moving_scene(batch.tags, seed=22)


def warehouse_scene():
    config = ConveyorConfig(lanes=2, cartons_per_lane=3)
    return conveyor_scene(conveyor_batch(config, seed=23), seed=23)


def coupling_on_moving_scene():
    """Moving tags with coupling active: the dense-filter physics path."""
    batch = baggage_batch(MORNING_PEAK, bag_count=5, seed=31)
    scene = standard_tag_moving_scene(batch.tags, seed=31)
    assert scene.reader_config.tag_coupling_coefficient > 0.0
    return scene


WORKLOADS = {
    "library": library_scene,
    "airport": airport_scene,
    "warehouse": warehouse_scene,
    "coupling_on_moving": coupling_on_moving_scene,
}


def backend_log(make_scene, backend):
    """One fused-engine read log through the given backend instance."""
    return collect_sweep(make_scene(), engine="fused", physics_backend=backend).read_log


class TestChunkBounds:
    """The chunking helper partitions [0, count) exactly, in order."""

    @pytest.mark.parametrize("count", [0, 1, 7, 4096, 10_001])
    @pytest.mark.parametrize("chunk", [1, 3, 4096, 100_000])
    def test_partition_covers_rows_once(self, count, chunk):
        bounds = _chunk_bounds(count, chunk)
        assert all(start < stop for start, stop in bounds)
        flat = [row for start, stop in bounds for row in range(start, stop)]
        assert flat == list(range(count))

    def test_serial_backend_is_one_chunk(self):
        backend = SerialPhysicsBackend()
        assert backend.chunk_bounds(0) == []
        assert backend.chunk_bounds(123) == [(0, 123)]


class TestChunkedPhysicsEquivalence:
    """Chunked physics == unchunked physics, bitwise, for any chunk size."""

    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    def test_random_chunk_sizes(self, workload):
        make_scene = WORKLOADS[workload]
        reference = backend_log(make_scene, SerialPhysicsBackend())
        assert len(reference) > 0
        # Event tables here run a few hundred to ~1000 rows, so chunk > M is
        # exercised by the large size and chunk == 1 by the degenerate one.
        rng = np.random.default_rng(hash(workload) % 2**32)
        sizes = [1, int(rng.integers(2, 40)), int(rng.integers(40, 400)), 1_000_000]
        for chunk_events in sizes:
            chunked = backend_log(
                make_scene,
                ThreadPhysicsBackend(workers=1, chunk_events=chunk_events),
            )
            assert chunked.reads == reference.reads, (
                f"{workload}: chunk_events={chunk_events} diverged from serial"
            )

    def test_threaded_execution_matches_serial(self):
        # Actual concurrent chunk execution (not the workers==1 shortcut),
        # on the dense coupling path — exercises the provider caches under
        # concurrency.
        make_scene = coupling_on_moving_scene
        reference = backend_log(make_scene, SerialPhysicsBackend())
        threaded = backend_log(
            make_scene, ThreadPhysicsBackend(workers=4, chunk_events=16)
        )
        assert threaded.reads == reference.reads


class TestBackendBitIdentityAtLeaderboardSeeds:
    """serial == threads == process on the leaderboard scenarios and seeds."""

    @pytest.mark.parametrize("scenario", ["library", "airport", "warehouse"])
    def test_leaderboard_scenario(self, scenario, monkeypatch):
        registry = default_registry()
        index = registry.names().index(scenario)
        seed = DEFAULT_SEED + 31 * index  # repetition 0's leaderboard seed
        spec = registry.get(scenario)
        logs = {}
        for backend in PHYSICS_BACKENDS:
            monkeypatch.setenv(PHYSICS_BACKEND_ENV, backend)
            logs[backend] = scenario_experiment(0, seed, spec).read_log
        monkeypatch.delenv(PHYSICS_BACKEND_ENV)
        assert len(logs["serial"]) > 0
        for backend in PHYSICS_BACKENDS[1:]:
            assert logs[backend].reads == logs["serial"].reads, backend


class TestBackendResolution:
    """Name, environment, and instance resolution of physics backends."""

    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(PHYSICS_BACKEND_ENV, raising=False)
        assert isinstance(resolve_physics_backend(None), SerialPhysicsBackend)

    def test_names_resolve(self):
        assert isinstance(resolve_physics_backend("serial"), SerialPhysicsBackend)
        assert isinstance(resolve_physics_backend("threads"), ThreadPhysicsBackend)
        assert isinstance(resolve_physics_backend("process"), ProcessPhysicsBackend)

    def test_env_var_is_consulted(self, monkeypatch):
        monkeypatch.setenv(PHYSICS_BACKEND_ENV, "threads")
        assert isinstance(resolve_physics_backend(None), ThreadPhysicsBackend)
        # An explicit argument wins over the environment.
        assert isinstance(resolve_physics_backend("serial"), SerialPhysicsBackend)

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="serial"):
            resolve_physics_backend("gpu")

    def test_instance_passes_through(self):
        backend = ThreadPhysicsBackend(workers=2, chunk_events=64)
        assert resolve_physics_backend(backend) is backend

    def test_non_backend_object_raises(self):
        with pytest.raises(TypeError, match="backend interface"):
            resolve_physics_backend(object())

    def test_reader_resolves_env_backend(self, monkeypatch):
        monkeypatch.setenv(PHYSICS_BACKEND_ENV, "threads")
        reader = RFIDReader()
        assert reader.physics_backend.name == "threads"

    @pytest.mark.parametrize("factory", [ThreadPhysicsBackend, ProcessPhysicsBackend])
    def test_invalid_parameters_raise(self, factory):
        with pytest.raises(ValueError, match="workers"):
            factory(workers=0)
        with pytest.raises(ValueError, match="chunk_events"):
            factory(chunk_events=0)


class TestProcessBackendFallback:
    """Unpicklable sweep state falls back in-process, bit-identically."""

    def _closure_scene(self):
        tags = make_tags([Point3D(i * 0.07, 0.0, 0.0) for i in range(4)], seed=4)
        starts = tags.positions()

        def wobble(tag_id, t):
            start = starts[tag_id]
            return Point3D(start.x - 0.25 * t, start.y + 0.01 * np.sin(t), start.z)

        scenario = SweepScenario(
            antenna_position=StaticAntennaPosition(Point3D(-0.2, -0.15, 0.3)),
            tag_position=wobble,
            duration_s=3.0,
            description="custom closure",
        )
        return Scene(
            tags=tags,
            scenario=scenario,
            reader_config=standard_reader_config(tags, seed=4),
            seed=4,
        )

    def test_closure_provider_falls_back(self):
        reference = backend_log(self._closure_scene, SerialPhysicsBackend())
        # Force real multi-chunk pool dispatch even on single-core hosts so
        # the pickling of the closure-held sweep state is actually attempted.
        backend = ProcessPhysicsBackend(workers=2, chunk_events=32)
        try:
            log = backend_log(self._closure_scene, backend)
        finally:
            backend.close()
        assert log.reads == reference.reads
        assert backend.last_fallback_reason is not None

    def test_picklable_scene_does_not_fall_back(self):
        def make_scene():
            positions = [Point3D(i * 0.08, 0.06 * (i % 2), 0.0) for i in range(8)]
            tags = make_tags(positions, seed=2015)
            return standard_antenna_moving_scene(tags, seed=2015)

        reference = backend_log(make_scene, SerialPhysicsBackend())
        backend = ProcessPhysicsBackend(workers=2, chunk_events=64)
        try:
            log = backend_log(make_scene, backend)
        finally:
            backend.close()
        assert log.reads == reference.reads
        assert backend.last_fallback_reason is None


class TestCouplingDisabledStaysIdentical:
    """The no-coupling moving path (paired queries) also chunks safely."""

    def test_chunked_matches_serial(self):
        batch = baggage_batch(MORNING_PEAK, bag_count=5, seed=31)

        def make_scene():
            scene = standard_tag_moving_scene(batch.tags, seed=31)
            return dataclasses.replace(
                scene,
                reader_config=dataclasses.replace(
                    scene.reader_config, tag_coupling_coefficient=0.0
                ),
            )

        reference = backend_log(make_scene, SerialPhysicsBackend())
        chunked = backend_log(
            make_scene, ThreadPhysicsBackend(workers=2, chunk_events=25)
        )
        assert chunked.reads == reference.reads
