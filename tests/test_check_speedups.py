"""The CI speedup gate, exercised through its argparse entrypoint.

Each test runs ``benchmarks/check_speedups.py`` as a subprocess against
fixture ``BENCH_*.json`` files in a temp directory — the exact interface CI
uses — and asserts on the exit code, so a refactor that breaks the gate's
wiring (not just its floor arithmetic) fails here.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
SCRIPT = REPO / "benchmarks" / "check_speedups.py"


def run_checker(cwd: Path, *argv: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(SCRIPT), *argv],
        cwd=cwd,
        capture_output=True,
        text=True,
        timeout=60,
    )


def experiments_payload(**overrides) -> dict:
    payload = {
        "generated_at": "2026-08-08T00:00:00+00:00",
        "platform": "test-host",
        "cpu_count": 4,
        "workload": {"spacings_m": [0.04], "repetitions_per_spacing": 8},
        "timings_s": {"serial": 10.0, "sharded": 2.5},
        "results_bit_identical": True,
        "sharded_comparison_conclusive": True,
        "sharded_skipped": False,
        "speedup_sharded_vs_serial": 4.0,
    }
    payload.update(overrides)
    return payload


def write_experiments(tmp_path: Path, **overrides) -> None:
    (tmp_path / "BENCH_experiments.json").write_text(
        json.dumps(experiments_payload(**overrides))
    )


def test_missing_files_skip_gracefully(tmp_path):
    proc = run_checker(tmp_path)
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "skip" in proc.stdout
    assert "not found" in proc.stdout


def test_healthy_record_passes(tmp_path):
    write_experiments(tmp_path)
    proc = run_checker(tmp_path, "--only", "experiments")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "FAIL" not in proc.stdout


def test_regressed_speedup_fails(tmp_path):
    write_experiments(tmp_path, speedup_sharded_vs_serial=0.62)
    proc = run_checker(tmp_path, "--only", "experiments")
    assert proc.returncode == 1
    assert "FAIL" in proc.stdout
    assert "0.62" in proc.stdout


def test_divergent_results_fail_even_with_good_speedups(tmp_path):
    write_experiments(tmp_path, results_bit_identical=False)
    proc = run_checker(tmp_path, "--only", "experiments")
    assert proc.returncode == 1
    assert "bit-identical" in proc.stdout


def test_sharded_skipped_single_core_record_is_not_a_failure(tmp_path):
    write_experiments(
        tmp_path,
        cpu_count=1,
        timings_s={"serial": 10.0, "sharded": None},
        sharded_comparison_conclusive=False,
        sharded_skipped=True,
        speedup_sharded_vs_serial=None,
    )
    proc = run_checker(tmp_path, "--only", "experiments")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "skip" in proc.stdout


def test_schema_corruption_fails_before_any_floor(tmp_path):
    payload = experiments_payload()
    del payload["timings_s"]
    (tmp_path / "BENCH_experiments.json").write_text(json.dumps(payload))
    proc = run_checker(tmp_path, "--only", "experiments")
    assert proc.returncode == 1
    assert "schema" in proc.stdout
    assert "timings_s" in proc.stdout


def test_floor_override_is_respected(tmp_path):
    write_experiments(tmp_path, speedup_sharded_vs_serial=0.62)
    proc = run_checker(
        tmp_path, "--only", "experiments", "--experiments-floor", "0.5"
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_committed_records_pass_the_default_floors():
    proc = run_checker(REPO)
    assert proc.returncode == 0, proc.stdout + proc.stderr
