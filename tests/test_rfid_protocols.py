"""Unit tests for the C1G2 substrate: EPC, tags, ALOHA, tree walking, reader."""

import numpy as np
import pytest

from repro.rf.geometry import Point3D
from repro.rfid.aloha import (
    AlohaTimings,
    FrameSlottedAloha,
    QAlgorithm,
    SlotOutcome,
    expected_success_rate,
)
from repro.rfid.epc import EPC, generate_epcs
from repro.rfid.reader import ReaderConfig, RFIDReader
from repro.rfid.tag import PAPER_TAG_MODELS, Tag, TagCollection, make_tags
from repro.rfid.tree_walking import identification_order, query_overhead, tree_walk


class TestEPC:
    def test_roundtrip_hex(self):
        epc = EPC.from_fields(0x123456, 0x7, 42)
        assert EPC.from_hex(str(epc)) == epc

    def test_bits_length(self):
        assert len(EPC.from_fields(1, 1, 1).bits()) == 96

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            EPC(1 << 96)
        with pytest.raises(ValueError):
            EPC.from_fields(1 << 24, 0, 0)

    def test_generate_unique(self):
        epcs = generate_epcs(50, rng=np.random.default_rng(0))
        assert len(set(epcs)) == 50

    def test_generate_serials_not_sequential_in_position(self):
        # Identification order must not encode spatial placement; random
        # serials are what guarantees that.
        epcs = generate_epcs(20, rng=np.random.default_rng(1))
        serials = [e.serial for e in epcs]
        assert serials == sorted(serials)  # generator returns sorted for determinism
        assert len(set(serials)) == 20


class TestTags:
    def test_make_tags_positions_and_labels(self):
        positions = [Point3D(0, 0, 0), Point3D(0.1, 0, 0)]
        tags = make_tags(positions, labels=["a", "b"], seed=0)
        assert len(tags) == 2
        assert tags[0].label == "a"
        assert tags.positions()[tags[1].tag_id] == positions[1]

    def test_duplicate_epc_rejected(self):
        tags = make_tags([Point3D(0, 0, 0)], seed=0)
        with pytest.raises(ValueError):
            tags.add(tags[0])

    def test_order_along_axes(self):
        positions = [Point3D(0.2, 0.0, 0), Point3D(0.0, 0.1, 0), Point3D(0.1, 0.2, 0)]
        tags = make_tags(positions, seed=0)
        order_x = tags.order_along("x")
        assert [tags.by_id(t).position.x for t in order_x] == sorted(p.x for p in positions)
        order_y = tags.order_along("y")
        assert [tags.by_id(t).position.y for t in order_y] == sorted(p.y for p in positions)

    def test_order_along_invalid_axis(self):
        tags = make_tags([Point3D(0, 0, 0)], seed=0)
        with pytest.raises(ValueError):
            tags.order_along("w")

    def test_paper_tag_models_present(self):
        assert len(PAPER_TAG_MODELS) == 4

    def test_mismatched_labels_rejected(self):
        with pytest.raises(ValueError):
            make_tags([Point3D(0, 0, 0)], labels=["a", "b"])


class TestAloha:
    def test_round_reads_at_most_one_per_slot(self):
        aloha = FrameSlottedAloha(initial_q=3, adaptive=False)
        rng = np.random.default_rng(0)
        events = aloha.run_round(["t1", "t2", "t3"], 0.0, rng)
        successes = [e for e in events if e.outcome is SlotOutcome.SUCCESS]
        assert len(events) == 8
        assert all(e.tag_id is not None for e in successes)
        assert len(successes) <= 3

    def test_round_times_increase(self):
        aloha = FrameSlottedAloha(initial_q=2, adaptive=False)
        events = aloha.run_round(["a", "b"], 1.0, np.random.default_rng(1))
        starts = [e.start_time_s for e in events]
        assert starts == sorted(starts)
        assert starts[0] >= 1.0

    def test_empty_population_round(self):
        aloha = FrameSlottedAloha()
        events = aloha.run_round([], 0.0, np.random.default_rng(0))
        assert len(events) == 1
        assert events[0].outcome is SlotOutcome.EMPTY

    def test_q_algorithm_adapts(self):
        q = QAlgorithm(q_fp=4.0)
        for _ in range(10):
            q.on_slot(SlotOutcome.COLLISION)
        assert q.q > 4
        for _ in range(30):
            q.on_slot(SlotOutcome.EMPTY)
        assert q.q < 7

    def test_expected_success_rate_peak_near_frame_equal_population(self):
        # Slotted ALOHA throughput peaks when population ~= frame size.
        rates = {n: expected_success_rate(n, 16) for n in (4, 16, 64)}
        assert rates[16] > rates[4]
        assert rates[16] > rates[64]

    def test_identification_order_is_random_not_spatial(self):
        # Over one round, successful tag order should not follow insertion order
        # systematically; just verify all successes are valid tag ids.
        aloha = FrameSlottedAloha(initial_q=4, adaptive=False)
        tags = [f"tag{i}" for i in range(10)]
        events = aloha.run_round(tags, 0.0, np.random.default_rng(3))
        success_ids = [e.tag_id for e in events if e.outcome is SlotOutcome.SUCCESS]
        assert set(success_ids) <= set(tags)

    def test_timings_validation(self):
        with pytest.raises(ValueError):
            AlohaTimings(empty_slot_s=0.0)


class TestTreeWalking:
    def test_order_is_lexicographic(self):
        ids = {"a": "0010", "b": "0001", "c": "1000"}
        assert identification_order(ids) == ["b", "a", "c"]

    def test_all_tags_identified(self):
        rng = np.random.default_rng(0)
        ids = {f"t{i}": format(int(rng.integers(0, 2**16)), "016b") for i in range(20)}
        result = tree_walk(ids)
        assert sorted(result.identified_order) == sorted(ids)

    def test_query_overhead_at_least_one(self):
        ids = {"a": "00", "b": "01", "c": "11"}
        assert query_overhead(ids) >= 1.0

    def test_mixed_lengths_rejected(self):
        with pytest.raises(ValueError):
            tree_walk({"a": "00", "b": "000"})

    def test_empty_population(self):
        assert tree_walk({}).identified_order == []


class TestReader:
    def test_sweep_produces_reads_for_all_tags(self, small_row_sweep):
        tags, _scene, sweep = small_row_sweep
        counts = sweep.read_log.read_counts()
        assert set(counts) == set(tags.ids())
        assert all(count > 20 for count in counts.values())

    def test_reads_sorted_and_in_range(self, small_row_sweep):
        _tags, scene, sweep = small_row_sweep
        times = [r.timestamp_s for r in sweep.read_log]
        assert times == sorted(times)
        assert times[-1] <= scene.scenario.duration_s

    def test_phases_wrapped(self, small_row_sweep):
        _tags, _scene, sweep = small_row_sweep
        phases = [r.phase_rad for r in sweep.read_log]
        assert all(0.0 <= p < 2 * np.pi for p in phases)

    def test_invalid_duration_rejected(self):
        reader = RFIDReader(ReaderConfig())
        tags = make_tags([Point3D(0, 0, 0)], seed=0)
        with pytest.raises(ValueError):
            reader.sweep(tags, lambda t: Point3D(0, 0, 0.3), duration_s=0.0)

    def test_coupling_disabled_returns_no_scatterers(self):
        config = ReaderConfig(tag_coupling_coefficient=0.0)
        reader = RFIDReader(config)
        tags = make_tags([Point3D(0, 0, 0), Point3D(0.01, 0, 0)], seed=0)
        tags_by_id = {t.tag_id: t for t in tags}
        scatterers = reader._coupling_scatterers(
            tags.ids()[0],
            Point3D(0, 0, 0),
            tags_by_id,
            lambda tid, t: tags_by_id[tid].position,
            0.0,
        )
        assert scatterers == ()

    def test_coupling_includes_only_nearby_tags(self):
        config = ReaderConfig(tag_coupling_radius_m=0.05)
        reader = RFIDReader(config)
        tags = make_tags(
            [Point3D(0, 0, 0), Point3D(0.02, 0, 0), Point3D(0.5, 0, 0)], seed=0
        )
        tags_by_id = {t.tag_id: t for t in tags}
        scatterers = reader._coupling_scatterers(
            tags.ids()[0],
            Point3D(0, 0, 0),
            tags_by_id,
            lambda tid, t: tags_by_id[tid].position,
            0.0,
        )
        assert len(scatterers) == 1
