"""Property tests for the facility-keyed reference-profile cache.

Three contracts of :class:`~repro.service.ProfileCacheRegistry`:

* eviction respects capacity and strict LRU order (checked against a model);
* concurrent get-or-build from many threads builds each key exactly once and
  every caller receives the *same* fully-constructed object (no duplicate
  construction, no torn publication);
* facility isolation — the same reference configuration under two facility
  ids yields two distinct entries.

Plus the PR's session regression: two :class:`LocalizationSession`\\ s sharing
a registry never rebuild the same facility's profile, and a cache-served
session finalizes bit-identically to a cache-less one.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict

import numpy as np
import pytest

from repro.core import BatchLocalizer, STPPConfig
from repro.service import LocalizationSession, ProfileCacheRegistry
from repro.simulation.collector import profiles_from_read_log


# ---------------------------------------------------------------------------
# LRU eviction
# ---------------------------------------------------------------------------


class TestLRUEviction:
    def test_capacity_is_enforced_in_lru_order(self):
        registry = ProfileCacheRegistry(capacity=3)
        for name in "abcd":
            registry.get_or_build(name, lambda name=name: name.upper())
        # "a" was least recently used when "d" arrived.
        assert registry.keys() == ("b", "c", "d")
        assert "a" not in registry
        assert registry.stats()["evictions"] == 1

    def test_hit_promotes_to_most_recently_used(self):
        registry = ProfileCacheRegistry(capacity=3)
        for name in "abc":
            registry.get_or_build(name, lambda name=name: name.upper())
        registry.get_or_build("a", lambda: pytest.fail("must be a hit"))
        registry.get_or_build("d", lambda: "D")  # evicts "b", not "a"
        assert registry.keys() == ("c", "a", "d")

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            ProfileCacheRegistry(capacity=0)

    def test_random_op_sequence_matches_lru_model(self):
        """Property: the registry's contents and eviction order always equal
        an OrderedDict-based LRU model under a random get-or-build stream."""
        rng = np.random.default_rng(2015)
        capacity = 4
        registry = ProfileCacheRegistry(capacity=capacity)
        model: "OrderedDict[int, str]" = OrderedDict()
        for step in range(400):
            key = int(rng.integers(0, 10))
            value = registry.get_or_build(key, lambda key=key: f"built-{key}")
            assert value == f"built-{key}"
            if key in model:
                model.move_to_end(key)
            else:
                model[key] = value
                while len(model) > capacity:
                    model.popitem(last=False)
            assert registry.keys() == tuple(model), f"diverged at step {step}"

    def test_clear_preserves_counters(self):
        registry = ProfileCacheRegistry(capacity=2)
        registry.get_or_build("a", lambda: 1)
        registry.clear()
        assert len(registry) == 0
        assert registry.stats()["builds"] == 1


# ---------------------------------------------------------------------------
# Concurrent build-once
# ---------------------------------------------------------------------------


class TestConcurrentGetOrBuild:
    def test_each_key_built_exactly_once_across_threads(self):
        registry = ProfileCacheRegistry(capacity=16)
        keys = ["k0", "k1", "k2", "k3"]
        build_counts = {key: 0 for key in keys}
        count_lock = threading.Lock()
        barrier = threading.Barrier(16)
        results: dict[int, object] = {}

        def build(key: str) -> object:
            with count_lock:
                build_counts[key] += 1
            time.sleep(0.01)  # widen the duplicate-construction window
            return object()

        def worker(index: int) -> None:
            barrier.wait()
            key = keys[index % len(keys)]
            results[index] = registry.get_or_build(key, lambda: build(key))

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(16)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10.0)
            assert not thread.is_alive()

        assert build_counts == {key: 1 for key in keys}
        assert registry.stats()["builds"] == len(keys)
        # No torn publication: every caller of a key got the identical object.
        for index, value in results.items():
            expected = registry.get_or_build(keys[index % len(keys)], object)
            assert value is expected

    def test_builder_failure_is_not_cached_and_releases_waiters(self):
        registry = ProfileCacheRegistry(capacity=4)
        attempts = {"count": 0}

        def flaky() -> str:
            attempts["count"] += 1
            if attempts["count"] == 1:
                raise RuntimeError("first build fails")
            return "ok"

        with pytest.raises(RuntimeError, match="first build fails"):
            registry.get_or_build("k", flaky)
        assert "k" not in registry
        assert registry.get_or_build("k", flaky) == "ok"
        assert attempts["count"] == 2


# ---------------------------------------------------------------------------
# Facility isolation
# ---------------------------------------------------------------------------


class TestFacilityIsolation:
    def test_same_layout_in_two_facilities_is_two_entries(self):
        registry = ProfileCacheRegistry(capacity=8)
        config = STPPConfig()
        ref_a = registry.reference_for("facility-a", config)
        ref_b = registry.reference_for("facility-b", config)
        assert registry.stats()["builds"] == 2
        assert len(registry) == 2
        assert ref_a is not ref_b
        # Identical parameters build identical (deterministic) profiles —
        # isolation costs nothing in correctness.
        assert np.array_equal(
            ref_a.profile.phases_rad, ref_b.profile.phases_rad
        )

    def test_same_facility_is_one_entry(self):
        registry = ProfileCacheRegistry(capacity=8)
        config = STPPConfig()
        ref_1 = registry.reference_for("facility-a", config)
        ref_2 = registry.reference_for("facility-a", config)
        assert ref_1 is ref_2
        assert registry.stats()["builds"] == 1
        assert registry.stats()["hits"] == 1

    def test_distinct_reference_parameters_are_distinct_entries(self):
        registry = ProfileCacheRegistry(capacity=8)
        registry.reference_for("f", STPPConfig())
        registry.reference_for("f", STPPConfig(reference_periods=6))
        assert registry.stats()["builds"] == 2


# ---------------------------------------------------------------------------
# Session integration (the PR's single-session-assumption regression)
# ---------------------------------------------------------------------------


class TestSessionsShareCache:
    def test_two_sessions_never_rebuild_the_same_facility_profile(self):
        registry = ProfileCacheRegistry(capacity=8)
        LocalizationSession(profile_cache=registry, facility_id="library-north")
        LocalizationSession(profile_cache=registry, facility_id="library-north")
        stats = registry.stats()
        assert stats["builds"] == 1
        assert stats["hits"] == 1

    def test_cache_served_session_is_bit_identical(self, small_row_sweep):
        tags, scene, sweep = small_row_sweep
        channel = scene.reader_config.channel.channel_index
        registry = ProfileCacheRegistry(capacity=8)

        def run(**session_kwargs):
            session = LocalizationSession(
                expected_tag_ids=tags.ids(), channel_index=channel, **session_kwargs
            )
            for batch in sweep.read_log.iter_batches(100):
                session.ingest_batch(batch)
            return session.finalize()

        plain = run()
        cached = run(profile_cache=registry, facility_id="f")
        assert cached.result.x_ordering == plain.result.x_ordering
        assert cached.result.y_ordering == plain.result.y_ordering

        # And both equal the batch pipeline (the PR-4 convergence contract
        # survives reference injection).
        batch_result = BatchLocalizer(STPPConfig()).localize(
            profiles_from_read_log(sweep.read_log, channel_index=channel),
            expected_tag_ids=tags.ids(),
        )
        assert cached.result.x_ordering == batch_result.x_ordering
        assert cached.result.y_ordering == batch_result.y_ordering
