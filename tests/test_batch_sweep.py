"""Equivalence and regression tests for the round-batched sweep engine.

The batched reader path (structure-of-arrays RF kernel, spatial-hash coupling
lookups, array-native motion sampling, columnar read log) must be
**bit-identical** to the scalar read-at-a-time reference loop for every
workload — same discipline as ``tests/test_batch_localizer.py`` pins for the
DTW engine.  A seeded golden trace additionally tripwires the sweep output
independently of the batched-vs-scalar comparison.
"""

import numpy as np
import pytest

from repro.motion.scenarios import (
    BeltTagPositions,
    ConstantVelocityTagPositions,
    StaticAntennaPosition,
    StaticTagPositions,
)
from repro.motion.speed_profiles import (
    ConstantSpeedProfile,
    PiecewiseSpeedProfile,
    jittered_speed_profile,
)
from repro.motion.trajectory import LinearTrajectory, WaypointTrajectory
from repro.rf.channel import BackscatterChannel
from repro.rf.geometry import Point3D, euclidean_distances
from repro.rf.multipath import Reflector
from repro.rf.noise import NoiseModel
from repro.rf.phase_model import wrap_phase
from repro.rfid.coupling import NeighborGrid
from repro.rfid.reading import ReadLog, TagRead
from repro.rfid.tag import make_tags
from repro.simulation.collector import collect_sweep
from repro.simulation.presets import (
    standard_antenna_moving_scene,
    standard_tag_moving_scene,
)
from repro.workloads.airport import MORNING_PEAK, baggage_batch
from repro.workloads.library import generate_bookshelf
from repro.workloads.warehouse import ConveyorConfig, conveyor_batch, conveyor_scene


def assert_logs_identical(batched: ReadLog, scalar: ReadLog) -> None:
    """Field-by-field exact equality of two read logs."""
    assert len(batched) == len(scalar)
    for index, (a, b) in enumerate(zip(batched.reads, scalar.reads)):
        assert a == b, f"read {index} diverged: {a} vs {b}"


class TestBatchedScalarEquivalence:
    """Batched sweeps are bit-identical to the scalar loop on all workloads."""

    def test_library_workload(self):
        # The librarian case: hand-pushed antenna over a static bookshelf.
        shelf = generate_bookshelf(levels=2, books_per_level=6, seed=21)
        tags = shelf.to_tags(seed=21)
        batched = collect_sweep(
            standard_antenna_moving_scene(tags, seed=21), batched=True
        )
        scalar = collect_sweep(
            standard_antenna_moving_scene(tags, seed=21), batched=False
        )
        assert len(batched.read_log) > 0
        assert_logs_identical(batched.read_log, scalar.read_log)

    def test_airport_workload(self):
        # The baggage case: static antenna, bags riding a constant-speed belt.
        batch = baggage_batch(MORNING_PEAK, bag_count=6, seed=22)
        batched = collect_sweep(
            standard_tag_moving_scene(batch.tags, seed=22), batched=True
        )
        scalar = collect_sweep(
            standard_tag_moving_scene(batch.tags, seed=22), batched=False
        )
        assert len(batched.read_log) > 0
        assert_logs_identical(batched.read_log, scalar.read_log)

    def test_warehouse_workload(self):
        # The sortation case: multi-lane cartons on a surging/crawling belt.
        config = ConveyorConfig(lanes=2, cartons_per_lane=3)
        batched = collect_sweep(
            conveyor_scene(conveyor_batch(config, seed=23), seed=23), batched=True
        )
        scalar = collect_sweep(
            conveyor_scene(conveyor_batch(config, seed=23), seed=23), batched=False
        )
        assert len(batched.read_log) > 0
        assert_logs_identical(batched.read_log, scalar.read_log)

    def test_moving_tags_with_coupling_disabled(self):
        # Coupling off on a moving layout takes the diagonal-only position
        # query (no full-population cross product); must stay bit-identical.
        import dataclasses

        from repro.simulation.presets import standard_tag_moving_scene

        batch = baggage_batch(MORNING_PEAK, bag_count=5, seed=31)

        def make_scene():
            scene = standard_tag_moving_scene(batch.tags, seed=31)
            return dataclasses.replace(
                scene,
                reader_config=dataclasses.replace(
                    scene.reader_config, tag_coupling_coefficient=0.0
                ),
            )

        batched = collect_sweep(make_scene(), batched=True)
        scalar = collect_sweep(make_scene(), batched=False)
        assert len(batched.read_log) > 0
        assert_logs_identical(batched.read_log, scalar.read_log)

    def test_plain_callable_positions_fall_back_correctly(self):
        # A caller-supplied closure (no array-native provider) must still be
        # simulated identically by both paths.
        from repro.motion.scenarios import SweepScenario
        from repro.simulation.presets import standard_reader_config
        from repro.simulation.scene import Scene

        tags = make_tags([Point3D(i * 0.07, 0.0, 0.0) for i in range(4)], seed=4)
        starts = tags.positions()

        def wobble(tag_id, t):
            start = starts[tag_id]
            return Point3D(start.x - 0.25 * t, start.y + 0.01 * np.sin(t), start.z)

        def make_scene():
            scenario = SweepScenario(
                antenna_position=StaticAntennaPosition(Point3D(-0.2, -0.15, 0.3)),
                tag_position=wobble,
                duration_s=3.0,
                description="custom closure",
            )
            return Scene(
                tags=tags,
                scenario=scenario,
                reader_config=standard_reader_config(tags, seed=4),
                seed=4,
            )

        batched = collect_sweep(make_scene(), batched=True)
        scalar = collect_sweep(make_scene(), batched=False)
        assert len(batched.read_log) > 0
        assert_logs_identical(batched.read_log, scalar.read_log)


class TestSweepGoldenTrace:
    """Seeded golden trace: a tripwire independent of the equivalence tests."""

    def test_standard_scene_trace(self):
        positions = [Point3D(i * 0.08, 0.06 * (i % 2), 0.0) for i in range(8)]
        tags = make_tags(positions, seed=2015)
        scene = standard_antenna_moving_scene(tags, seed=2015)
        log = collect_sweep(scene).read_log
        columns = log.columns()
        assert len(log) == 807
        assert len(log.tag_ids()) == 8
        assert columns["timestamp_s"][0] == pytest.approx(0.00565, abs=1e-12)
        assert columns["timestamp_s"][-1] == pytest.approx(3.79815, abs=1e-9)
        # A checksum over every reported phase pins the whole RF pipeline
        # (geometry, multipath, noise draws, quantisation) for this seed.
        assert float(np.sum(columns["phase_rad"])) == pytest.approx(
            2705.4266922855413, rel=1e-9
        )
        assert float(np.mean(columns["rssi_dbm"])) == pytest.approx(
            -52.325700729690084, rel=1e-9
        )


class TestObserveBatchKernel:
    """The scalar observe() delegates to the batched kernel."""

    def test_sequential_observes_match_batch(self):
        channel = BackscatterChannel()
        antenna = Point3D(0.0, -0.1, 0.3)
        tag_rows = np.array([[0.1 * i, 0.0, 0.0] for i in range(6)])
        batch = channel.observe_batch(
            np.broadcast_to(antenna.as_array(), (6, 3)),
            tag_rows,
            np.random.default_rng(5),
        )
        rng = np.random.default_rng(5)
        for i in range(6):
            single = channel.observe(antenna, Point3D(*tag_rows[i]), rng)
            assert single.phase_rad == batch.phase_rad[i]
            assert single.rssi_dbm == batch.rssi_dbm[i]
            assert single.true_distance_m == batch.true_distance_m[i]
            assert single.readable == batch.readable[i]

    def test_extra_scatterers_match_scalar_reflectors(self):
        channel = BackscatterChannel(quantise=False)
        antenna = Point3D(0.0, 0.0, 0.3)
        tag_rows = np.array([[0.0, 0.0, 0.0], [0.05, 0.0, 0.0]])
        extras = (
            Reflector(Point3D(0.03, 0.0, 0.0), reflection_coefficient=0.75,
                      scattering_decay_m=0.022),
        )
        batch = channel.observe_batch(
            np.broadcast_to(antenna.as_array(), (2, 3)),
            tag_rows,
            np.random.default_rng(6),
            extra_positions=np.array([[0.03, 0.0, 0.0], [0.03, 0.0, 0.0]]),
            extra_coefficients=np.array([0.75, 0.75]),
            extra_decays=np.array([0.022, 0.022]),
            extra_event_index=np.array([0, 1]),
        )
        rng = np.random.default_rng(6)
        for i in range(2):
            single = channel.observe(
                antenna, Point3D(*tag_rows[i]), rng, extra_reflectors=extras
            )
            assert single.phase_rad == batch.phase_rad[i]
            assert single.rssi_dbm == batch.rssi_dbm[i]


class TestReaderConfigValidation:
    def test_rejects_nonsensical_coupling_parameters(self):
        # A non-positive radius used to crash only the batched path (the
        # NeighborGrid constructor); both paths now reject it up front.
        from repro.rfid.reader import ReaderConfig

        with pytest.raises(ValueError, match="radius"):
            ReaderConfig(tag_coupling_radius_m=0.0)
        with pytest.raises(ValueError, match="decay"):
            ReaderConfig(tag_coupling_decay_m=-0.01)
        with pytest.raises(ValueError, match="coefficient"):
            ReaderConfig(tag_coupling_coefficient=1.5)
        assert ReaderConfig(tag_coupling_coefficient=0.0) is not None


class TestNoiseDrawContract:
    """draw_event_noise is the production copy of the scalar methods' draws."""

    @pytest.mark.parametrize(
        "noise",
        [
            NoiseModel(),
            NoiseModel(phase_noise_std_rad=0.0),
            NoiseModel(rssi_noise_std_db=0.0),
            NoiseModel(random_dropout_probability=0.0),
            NoiseModel(
                phase_noise_std_rad=0.0,
                rssi_noise_std_db=0.0,
                random_dropout_probability=0.0,
            ),
        ],
    )
    def test_matches_scalar_method_sequence(self, noise):
        # Fades straddling the -12 dB dropout threshold exercise both the
        # forced-drop path (no uniform draw) and the random-dropout path.
        fades = np.array([-20.0, -3.0, 0.0, -12.0, -11.9, -1.0])
        dropped, phase_noise, rssi_noise = noise.draw_event_noise(
            fades, np.random.default_rng(11)
        )
        rng = np.random.default_rng(11)
        for i, fade in enumerate(fades):
            assert noise.read_dropped(float(fade), rng) == dropped[i]
            assert noise.noisy_phase(0.3, rng) == wrap_phase(0.3 + phase_noise[i])
            assert noise.noisy_rssi(-50.0, rng) == -50.0 + rssi_noise[i]


class TestNeighborGrid:
    def test_matches_brute_force_scan(self):
        rng = np.random.default_rng(0)
        positions = rng.uniform(-0.5, 0.5, size=(60, 3))
        radius = 0.15
        grid = NeighborGrid(positions, radius)
        for index in range(len(positions)):
            brute = [
                j
                for j in range(len(positions))
                if j != index
                and not euclidean_distances(positions[index], positions[j]) > radius
            ]
            assert grid.neighbors_of(index).tolist() == brute

    def test_neighbors_sorted_and_cached(self):
        positions = np.array([[0.0, 0, 0], [0.1, 0, 0], [0.05, 0, 0], [2.0, 0, 0]])
        grid = NeighborGrid(positions, 0.15)
        first = grid.neighbors_of(0)
        assert first.tolist() == [1, 2]
        assert grid.neighbors_of(0) is first
        assert grid.neighbors_of(3).tolist() == []

    def test_validation(self):
        with pytest.raises(ValueError):
            NeighborGrid(np.zeros((2, 3)), 0.0)
        with pytest.raises(ValueError):
            NeighborGrid(np.zeros((2, 2)), 0.1)


class TestArrayNativeMotion:
    """positions_at must be bitwise-identical to repeated scalar sampling."""

    def test_linear_trajectory_piecewise_profile(self):
        profile = jittered_speed_profile(0.3, 5.0, rng=np.random.default_rng(3))
        trajectory = LinearTrajectory(Point3D(0, 0, 0.3), Point3D(2, 0, 0.3), profile)
        times = np.linspace(-0.5, trajectory.duration_s + 1.0, 97)
        rows = trajectory.positions_at(times)
        for t, row in zip(times, rows):
            point = trajectory.position(float(t))
            assert (row == [point.x, point.y, point.z]).all()

    def test_waypoint_trajectory(self):
        trajectory = WaypointTrajectory(
            [Point3D(0, 0, 0), Point3D(1, 0, 0), Point3D(1, 1, 0)],
            ConstantSpeedProfile(0.7),
        )
        times = np.linspace(-0.2, trajectory.duration_s + 0.5, 53)
        rows = trajectory.positions_at(times)
        for t, row in zip(times, rows):
            point = trajectory.position(float(t))
            assert (row == [point.x, point.y, point.z]).all()

    def test_piecewise_profile_distances(self):
        profile = PiecewiseSpeedProfile([(1.0, 0.1), (0.5, 0.4), (2.0, 0.2)])
        times = np.array([-1.0, 0.0, 0.3, 1.0, 1.2, 1.5, 3.0, 10.0])
        vectorized = profile.distances_at(times)
        for t, d in zip(times, vectorized):
            assert d == profile.distance_at(float(t))

    def test_tag_position_providers(self):
        points = {"a": Point3D(0.0, 0.1, 0.0), "b": Point3D(0.4, -0.1, 0.0)}
        ids = ["a", "b"]
        times = np.linspace(0.0, 4.0, 11)
        providers = [
            StaticTagPositions(points),
            ConstantVelocityTagPositions(points, (-0.3, 0.0, 0.01)),
            BeltTagPositions(
                points, jittered_speed_profile(0.25, 5.0, rng=np.random.default_rng(9))
            ),
        ]
        for provider in providers:
            rows = provider.positions_at(ids, times)
            assert rows.shape == (times.size, 2, 3)
            for t_index, t in enumerate(times):
                for n_index, tag_id in enumerate(ids):
                    point = provider(tag_id, float(t))
                    assert (
                        rows[t_index, n_index] == [point.x, point.y, point.z]
                    ).all()

    def test_static_antenna_positions(self):
        antenna = StaticAntennaPosition(Point3D(1.0, 2.0, 3.0))
        rows = antenna.positions_at(np.array([0.0, 1.0, 2.0]))
        assert rows.shape == (3, 3)
        assert (rows == [1.0, 2.0, 3.0]).all()


class TestColumnarReadLog:
    def test_extend_columns_matches_appends(self):
        reads = [
            TagRead(0.2, "b", 1.0, -51.0, channel_index=6, antenna_port=2),
            TagRead(0.1, "a", 2.0, -52.0, channel_index=6, antenna_port=2),
            TagRead(0.3, "a", 3.0, -53.0, channel_index=6, antenna_port=2),
        ]
        appended = ReadLog(reads)
        columnar = ReadLog()
        columnar.extend_columns(
            np.array([0.2, 0.1, 0.3]),
            ["b", "a", "a"],
            np.array([1.0, 2.0, 3.0]),
            np.array([-51.0, -52.0, -53.0]),
            channel_index=6,
            antenna_port=2,
        )
        assert appended == columnar
        assert columnar.reads == reads

    def test_extend_columns_length_mismatch(self):
        log = ReadLog()
        with pytest.raises(ValueError, match="column lengths"):
            log.extend_columns(
                np.array([0.1]), ["a", "b"], np.array([1.0]), np.array([-50.0]), 6, 1
            )

    def test_per_tag_views_are_time_sorted(self):
        log = ReadLog(
            [
                TagRead(0.3, "a", 3.0, -53.0),
                TagRead(0.1, "a", 1.0, -51.0),
                TagRead(0.2, "b", 2.0, -52.0),
            ]
        )
        assert log.timestamps("a").tolist() == [0.1, 0.3]
        assert log.phases("a").tolist() == [1.0, 3.0]
        assert log.rssis("b").tolist() == [-52.0]
        assert [r.timestamp_s for r in log.for_tag("a")] == [0.1, 0.3]
        assert log.timestamps("missing").size == 0

    def test_sorted_by_time_is_stable(self):
        log = ReadLog(
            [
                TagRead(0.2, "a", 1.0, -50.0),
                TagRead(0.1, "b", 2.0, -51.0),
                TagRead(0.2, "c", 3.0, -52.0),
            ]
        )
        ordered = log.sorted_by_time()
        assert [r.tag_id for r in ordered.reads] == ["b", "a", "c"]

    def test_for_antenna_filters_ports(self):
        log = ReadLog(
            [
                TagRead(0.1, "a", 1.0, -50.0, antenna_port=1),
                TagRead(0.2, "a", 2.0, -51.0, antenna_port=2),
            ]
        )
        filtered = log.for_antenna(2)
        assert len(filtered) == 1
        assert filtered.reads[0].antenna_port == 2

    def test_mutation_invalidates_caches(self):
        log = ReadLog([TagRead(0.1, "a", 1.0, -50.0)])
        assert len(log.reads) == 1
        assert log.read_counts() == {"a": 1}
        log.append(TagRead(0.2, "a", 2.0, -51.0))
        assert len(log.reads) == 2
        assert log.timestamps("a").tolist() == [0.1, 0.2]
        assert log.channel_indices() == {6}
