"""Integration tests: full pipeline from scene simulation to relative order."""

import numpy as np
import pytest

from repro.core.localizer import STPPConfig, STPPLocalizer
from repro.evaluation.metrics import evaluate_ordering, ordering_accuracy
from repro.evaluation.runner import run_stpp, standard_experiment
from repro.rf.geometry import Point3D
from repro.rf.noise import NOISELESS
from repro.rfid.tag import make_tags
from repro.simulation.collector import collect_sweep
from repro.simulation.presets import (
    standard_antenna_moving_scene,
    standard_tag_moving_scene,
)
from repro.workloads.layouts import staircase_layout
from repro.workloads.library import generate_bookshelf


class TestCleanChannelEndToEnd:
    """With no noise and no multipath, STPP must order tags perfectly."""

    @pytest.mark.parametrize("tag_moving", [False, True])
    def test_perfect_ordering_on_clean_channel(self, tag_moving):
        positions = staircase_layout(6, 0.10, 0.10, levels=3)
        tags = make_tags(positions, seed=3)
        builder = standard_tag_moving_scene if tag_moving else standard_antenna_moving_scene
        kwargs = dict(seed=3, noise=NOISELESS, reflector_count=0)
        if not tag_moving:
            kwargs["jitter_fraction"] = 0.0
        scene = builder(tags, **kwargs)
        # Disable tag coupling so the channel is perfectly clean.
        scene.reader_config = type(scene.reader_config)(
            channel=scene.reader_config.channel,
            reading_zone=scene.reader_config.reading_zone,
            tag_coupling_coefficient=0.0,
        )
        sweep = collect_sweep(scene)
        result = STPPLocalizer(STPPConfig()).localize(sweep.profiles, expected_tag_ids=tags.ids())
        true_x = {t.tag_id: t.position.x for t in tags}
        true_y = {t.tag_id: t.position.y for t in tags}
        assert ordering_accuracy(true_x, result.x_ordering.ordered_ids) == 1.0
        assert ordering_accuracy(true_y, result.y_ordering.ordered_ids) == 1.0


class TestDefaultChannelEndToEnd:
    def test_10cm_spacing_high_accuracy(self):
        evaluations = []
        for seed in range(3):
            experiment = standard_experiment(
                staircase_layout(8, 0.10, 0.10), seed=seed, tag_moving=True
            )
            evaluation, _ = run_stpp(experiment)
            evaluations.append(evaluation)
        assert np.mean([e.accuracy_x for e in evaluations]) >= 0.85
        assert np.mean([e.accuracy_y for e in evaluations]) >= 0.6

    def test_accuracy_improves_with_spacing(self):
        def mean_combined(spacing):
            values = []
            for seed in range(3):
                experiment = standard_experiment(
                    staircase_layout(8, spacing, spacing), seed=seed, tag_moving=True
                )
                evaluation, _ = run_stpp(experiment)
                values.append(evaluation.combined)
            return float(np.mean(values))

        assert mean_combined(0.10) >= mean_combined(0.02) - 0.05

    def test_library_shelf_sweep(self):
        shelf = generate_bookshelf(levels=2, books_per_level=8, seed=9)
        tags = shelf.to_tags(seed=9)
        scene = standard_antenna_moving_scene(tags, seed=9)
        sweep = collect_sweep(scene)
        result = STPPLocalizer().localize(sweep.profiles, expected_tag_ids=tags.ids())
        # Per-level X ordering should be mostly right for 3-8 cm thick books.
        label_by_id = {t.tag_id: t.label for t in tags}
        level_by_label = {b.call_number: b.level for b in shelf.books}
        x_by_id = {t.tag_id: t.position.x for t in tags}
        # Books are only 3-8 cm apart and 16 tags share the reading zone, so
        # per-level accuracy sits well below the isolated-row numbers; the
        # paper reports 0.84 on real hardware, our simulated shelf is harsher
        # (see EXPERIMENTS.md).  The pipeline must still do far better than a
        # random order (expected Eq.2 accuracy ~1/n ≈ 0.12).
        for level in shelf.levels:
            ids = [tid for tid in tags.ids() if level_by_label[label_by_id[tid]] == level]
            truth = {tid: x_by_id[tid] for tid in ids}
            detected = [tid for tid in result.x_ordering.ordered_ids if tid in truth]
            assert ordering_accuracy(truth, detected) >= 0.25

    def test_evaluation_round_trip(self):
        experiment = standard_experiment(staircase_layout(5, 0.1, 0.1), seed=2)
        evaluation, latency = run_stpp(experiment)
        assert 0.0 <= evaluation.accuracy_x <= 1.0
        assert latency > 0.0
        full = evaluate_ordering(
            experiment.true_x, experiment.true_y,
            list(experiment.true_x), list(experiment.true_y),
        )
        assert full.accuracy_x >= 0.0


class TestExperimentFunctions:
    """Smoke tests for the per-figure experiment functions (tiny scales)."""

    def test_fig02(self):
        from repro.evaluation import experiments as E

        result = E.fig02_rssi_limitation()
        assert set(result.times_ms) == set(result.physical_order)

    def test_fig03_fig04(self):
        from repro.evaluation import experiments as E

        fig3 = E.fig03_reference_profiles_x()
        assert fig3[0.10].bottom_gap_s > fig3[0.05].bottom_gap_s > 0
        fig4 = E.fig04_reference_profiles_y()
        assert fig4[0.10].bottom_gap_s < 0.05  # same X => same bottom time

    def test_fig12_structure(self):
        from repro.evaluation import experiments as E

        result = E.fig12_window_size(window_sizes=(3, 5), repetitions=1, tag_count=5)
        assert set(result) == {"tag_moving", "antenna_moving"}
        assert set(result["tag_moving"]) == {3, 5}

    def test_table1_structure(self):
        from repro.evaluation import experiments as E

        result = E.table1_population(populations=(5,), repetitions=1)
        assert "tag_moving" in result and 5 in result["tag_moving"]
        assert 0.0 <= result["tag_moving"][5]["x"] <= 1.0

    def test_ablation_functions(self):
        from repro.evaluation import experiments as E

        result = E.ablation_pivot_vs_all_pairs(repetitions=1, tag_count=5)
        assert set(result) == {"pivot", "all_pairs"}
        speedup = E.dtw_speedup_measurement()
        assert speedup["speedup"] > 1.0
