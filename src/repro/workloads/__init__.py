"""Workload generators: tag layouts, the library shelf, the airport conveyor."""

from .airport import (
    BELT_SPEED_MPS,
    BaggageBatch,
    EVENING_PEAK,
    MIDDAY_OFF_PEAK,
    MORNING_PEAK,
    PAPER_PERIODS,
    TrafficPeriod,
    baggage_batch,
    period_batches,
)
from .layouts import (
    column_layout,
    grid_layout,
    paper_test_cases,
    random_spacing_row,
    reference_tag_grid,
    row_layout,
    staircase_layout,
)
from .library import (
    Book,
    Bookshelf,
    detect_misplaced_books,
    generate_bookshelf,
    misplace_books,
)

__all__ = [
    "BELT_SPEED_MPS",
    "BaggageBatch",
    "Book",
    "Bookshelf",
    "EVENING_PEAK",
    "MIDDAY_OFF_PEAK",
    "MORNING_PEAK",
    "PAPER_PERIODS",
    "TrafficPeriod",
    "baggage_batch",
    "column_layout",
    "detect_misplaced_books",
    "generate_bookshelf",
    "grid_layout",
    "misplace_books",
    "paper_test_cases",
    "period_batches",
    "random_spacing_row",
    "reference_tag_grid",
    "row_layout",
    "staircase_layout",
]
