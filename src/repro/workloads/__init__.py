"""Workload generators: tag layouts, library shelf, airport + warehouse conveyors."""

from .warehouse import (
    ConveyorBatch,
    ConveyorConfig,
    ConveyorPortal,
    conveyor_batch,
    conveyor_experiment,
    conveyor_portal,
    conveyor_scene,
    conveyor_scenario,
    warehouse_sweep_plan,
)
from .airport import (
    BaggageBatch,
    EVENING_PEAK,
    MIDDAY_OFF_PEAK,
    MORNING_PEAK,
    PAPER_PERIODS,
    TrafficPeriod,
    baggage_batch,
    period_batches,
)
from .layouts import (
    column_layout,
    grid_layout,
    paper_test_cases,
    random_spacing_row,
    reference_tag_grid,
    row_layout,
    staircase_layout,
)
from .library import (
    Book,
    Bookshelf,
    detect_misplaced_books,
    generate_bookshelf,
    misplace_books,
)


def __getattr__(name: str):
    # Deprecated belt-speed aliases: resolved lazily so importing the package
    # does not emit the DeprecationWarning, only actually touching the names.
    if name == "BELT_SPEED_MPS":
        from . import airport

        return airport.BELT_SPEED_MPS
    if name == "NOMINAL_BELT_SPEED_MPS":
        from . import warehouse

        return warehouse.NOMINAL_BELT_SPEED_MPS
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "BELT_SPEED_MPS",
    "BaggageBatch",
    "Book",
    "Bookshelf",
    "ConveyorBatch",
    "ConveyorConfig",
    "EVENING_PEAK",
    "MIDDAY_OFF_PEAK",
    "MORNING_PEAK",
    "NOMINAL_BELT_SPEED_MPS",
    "PAPER_PERIODS",
    "TrafficPeriod",
    "baggage_batch",
    "column_layout",
    "conveyor_batch",
    "conveyor_experiment",
    "conveyor_scene",
    "conveyor_scenario",
    "detect_misplaced_books",
    "generate_bookshelf",
    "grid_layout",
    "misplace_books",
    "paper_test_cases",
    "period_batches",
    "random_spacing_row",
    "reference_tag_grid",
    "row_layout",
    "staircase_layout",
    "warehouse_sweep_plan",
]
