"""Tag layout generators for the micro- and macro-benchmarks.

The paper evaluates STPP over several tag arrangements: evenly spaced rows
and grids for the micro-benchmarks (Figures 12–14, Table 1), five mixed
layouts for the scheme comparison (Figure 16/17), and reference-tag grids for
the Landmarc baseline.  All generators return plain lists of
:class:`~repro.rf.geometry.Point3D` in the tag plane (z = 0) so they can be
fed straight into :func:`repro.rfid.make_tags`.
"""

from __future__ import annotations

import numpy as np

from ..rf.geometry import Point3D


def row_layout(count: int, spacing_m: float, y_m: float = 0.0) -> list[Point3D]:
    """``count`` tags in a single row along X, ``spacing_m`` apart."""
    if count < 1:
        raise ValueError("count must be >= 1")
    if spacing_m <= 0:
        raise ValueError("spacing must be positive")
    return [Point3D(i * spacing_m, y_m, 0.0) for i in range(count)]


def column_layout(count: int, spacing_m: float, x_m: float = 0.0) -> list[Point3D]:
    """``count`` tags in a single column along Y, ``spacing_m`` apart."""
    if count < 1:
        raise ValueError("count must be >= 1")
    if spacing_m <= 0:
        raise ValueError("spacing must be positive")
    return [Point3D(x_m, i * spacing_m, 0.0) for i in range(count)]


def grid_layout(
    columns: int, rows: int, x_spacing_m: float, y_spacing_m: float
) -> list[Point3D]:
    """A ``columns`` x ``rows`` grid (the Figure 1 arrangement is 3 x 2)."""
    if columns < 1 or rows < 1:
        raise ValueError("grid dimensions must be >= 1")
    if x_spacing_m <= 0 or y_spacing_m <= 0:
        raise ValueError("spacings must be positive")
    return [
        Point3D(ix * x_spacing_m, iy * y_spacing_m, 0.0)
        for iy in range(rows)
        for ix in range(columns)
    ]


def staircase_layout(
    count: int, x_spacing_m: float, y_spacing_m: float, levels: int = 4
) -> list[Point3D]:
    """Tags with strictly increasing X and cyclically increasing Y.

    Every tag has a distinct X *and* a distinct position within its Y level,
    which makes the layout convenient for evaluating both orderings without
    ties.
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    if levels < 1:
        raise ValueError("levels must be >= 1")
    return [
        Point3D(i * x_spacing_m, (i % levels) * y_spacing_m, 0.0) for i in range(count)
    ]


def random_spacing_row(
    count: int,
    min_spacing_m: float,
    max_spacing_m: float,
    rng: np.random.Generator | None = None,
    y_jitter_m: float = 0.0,
) -> list[Point3D]:
    """A row whose adjacent spacings are drawn uniformly from a range.

    Matches the Table 1 setup, where "the distance between two adjacent tags
    is randomly chosen in the range [2cm, 10cm]".  Optional Y jitter models
    tags not being mounted at exactly the same height.
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    if not 0 < min_spacing_m <= max_spacing_m:
        raise ValueError("need 0 < min_spacing <= max_spacing")
    rng = rng if rng is not None else np.random.default_rng()
    spacings = rng.uniform(min_spacing_m, max_spacing_m, size=count - 1)
    xs = np.concatenate([[0.0], np.cumsum(spacings)])
    ys = (
        rng.uniform(-y_jitter_m, y_jitter_m, size=count)
        if y_jitter_m > 0
        else np.zeros(count)
    )
    return [Point3D(float(x), float(y), 0.0) for x, y in zip(xs, ys)]


def reference_tag_grid(
    x_span_m: float,
    y_span_m: float,
    spacing_m: float = 0.2,
    origin: Point3D = Point3D(0.0, 0.0, 0.0),
) -> list[Point3D]:
    """A regular grid of reference-tag positions for the Landmarc baseline."""
    if spacing_m <= 0:
        raise ValueError("spacing must be positive")
    xs = np.arange(origin.x, origin.x + x_span_m + 1e-9, spacing_m)
    ys = np.arange(origin.y, origin.y + y_span_m + 1e-9, spacing_m)
    return [Point3D(float(x), float(y), 0.0) for y in ys for x in xs]


def paper_test_cases(spacing_m: float = 0.06) -> dict[str, list[Point3D]]:
    """The five layout settings of Figure 16 (approximated).

    The paper shows the five arrangements only as photographs; the five
    generators below cover the same qualitative variety — a sparse row, a
    dense row, a two-row grid, a staircase, and clustered pairs — with the
    adjacent-tag distance controlled by ``spacing_m``.
    """
    clustered: list[Point3D] = []
    for pair_index in range(5):
        base_x = pair_index * 4.0 * spacing_m
        clustered.append(Point3D(base_x, 0.0, 0.0))
        clustered.append(Point3D(base_x + spacing_m / 2.0, spacing_m / 2.0, 0.0))
    return {
        "case1_sparse_row": row_layout(8, spacing_m * 2.0),
        "case2_dense_row": row_layout(12, spacing_m),
        "case3_grid": grid_layout(6, 2, spacing_m * 1.5, spacing_m * 1.5),
        "case4_staircase": staircase_layout(10, spacing_m, spacing_m, levels=3),
        "case5_clustered_pairs": clustered,
    }
