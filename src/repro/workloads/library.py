"""Library case study: locating misplaced books on a shelf (paper §5.1).

The deployment: 90 tagged books on a three-level shelf, book thicknesses
between 3 cm and 8 cm, one RFID tag per book, an antenna on a cart pushed
across the shelf.  Books are catalogued in a strict call-number order; a
*misplaced* book is one whose physical position does not match its catalogue
position.  STPP recovers the physical order of the tags; comparing it with
the catalogue order reveals which books are misplaced.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..rf.geometry import Point3D
from ..rfid.tag import TagCollection, make_tags

DEFAULT_BOOK_THICKNESS_RANGE_M = (0.03, 0.08)
"""Book thickness range used in the paper's deployment (3–8 cm)."""

DEFAULT_LEVEL_HEIGHT_M = 0.35
"""Vertical distance between shelf levels."""


@dataclass(frozen=True, slots=True)
class Book:
    """One catalogued book on the shelf."""

    call_number: str
    """Catalogue identifier; the catalogue order is the lexicographic order."""

    thickness_m: float
    level: int
    """Shelf level, 0 = bottom."""

    slot: int
    """Physical slot index within the level (left to right)."""


@dataclass
class Bookshelf:
    """A shelf of catalogued books with their physical arrangement."""

    books: list[Book]
    level_height_m: float = DEFAULT_LEVEL_HEIGHT_M

    def books_on_level(self, level: int) -> list[Book]:
        """Books on ``level`` in physical (slot) order."""
        return sorted(
            (book for book in self.books if book.level == level),
            key=lambda book: book.slot,
        )

    @property
    def levels(self) -> list[int]:
        """The shelf levels present, bottom to top."""
        return sorted({book.level for book in self.books})

    def spine_positions(self) -> dict[str, Point3D]:
        """Tag position (spine centre) of every book, keyed by call number."""
        positions: dict[str, Point3D] = {}
        for level in self.levels:
            x_cursor = 0.0
            for book in self.books_on_level(level):
                positions[book.call_number] = Point3D(
                    x_cursor + book.thickness_m / 2.0,
                    level * self.level_height_m,
                    0.0,
                )
                x_cursor += book.thickness_m
        return positions

    def catalogue_order(self, level: int | None = None) -> list[str]:
        """Call numbers in catalogue order (optionally restricted to a level)."""
        books = self.books if level is None else self.books_on_level(level)
        return sorted(book.call_number for book in books)

    def physical_order(self, level: int) -> list[str]:
        """Call numbers in physical left-to-right order on ``level``."""
        return [book.call_number for book in self.books_on_level(level)]

    def misplaced_books(self) -> list[str]:
        """Books whose physical order deviates from the catalogue order.

        A book is misplaced when it does not belong to the longest common
        subsequence of the physical and catalogue orders of its level — i.e.
        the smallest set of books one would have to move to restore order.
        """
        misplaced: list[str] = []
        for level in self.levels:
            physical = self.physical_order(level)
            catalogue = self.catalogue_order(level)
            keep = set(_longest_common_subsequence(physical, catalogue))
            misplaced.extend(book for book in physical if book not in keep)
        return misplaced

    def to_tags(self, seed: int | None = None) -> TagCollection:
        """Tag collection with one tag per book spine."""
        positions = self.spine_positions()
        call_numbers = list(positions)
        return make_tags(
            [positions[cn] for cn in call_numbers],
            labels=call_numbers,
            seed=seed,
        )


def generate_bookshelf(
    levels: int = 3,
    books_per_level: int = 30,
    thickness_range_m: tuple[float, float] = DEFAULT_BOOK_THICKNESS_RANGE_M,
    seed: int | None = None,
) -> Bookshelf:
    """Generate a fully ordered bookshelf (no misplaced books yet)."""
    if levels < 1 or books_per_level < 1:
        raise ValueError("levels and books_per_level must be >= 1")
    low, high = thickness_range_m
    if not 0 < low <= high:
        raise ValueError("thickness range must satisfy 0 < low <= high")
    rng = np.random.default_rng(seed)
    books: list[Book] = []
    for level in range(levels):
        for slot in range(books_per_level):
            index = level * books_per_level + slot
            books.append(
                Book(
                    call_number=f"QA{index:04d}",
                    thickness_m=float(rng.uniform(low, high)),
                    level=level,
                    slot=slot,
                )
            )
    return Bookshelf(books=books)


def misplace_books(
    shelf: Bookshelf,
    count: int,
    min_offset: int = 2,
    max_offset: int = 10,
    rng: np.random.Generator | None = None,
) -> tuple[Bookshelf, list[str]]:
    """Move ``count`` randomly chosen books to a wrong slot on their level.

    Each chosen book is re-inserted between ``min_offset`` and ``max_offset``
    slots away from its correct place (the paper's §5.1 protocol).  Returns
    the modified shelf and the call numbers of the misplaced books.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    rng = rng if rng is not None else np.random.default_rng()
    per_level: dict[int, list[Book]] = {
        level: shelf.books_on_level(level) for level in shelf.levels
    }
    movable = [book for books in per_level.values() for book in books]
    if count > len(movable):
        raise ValueError("cannot misplace more books than the shelf holds")
    chosen = rng.choice(len(movable), size=count, replace=False)
    misplaced_calls = [movable[int(i)].call_number for i in chosen]

    for call_number in misplaced_calls:
        book = next(b for books in per_level.values() for b in books if b.call_number == call_number)
        level_books = per_level[book.level]
        index = next(i for i, b in enumerate(level_books) if b.call_number == call_number)
        offset = int(rng.integers(min_offset, max_offset + 1))
        direction = 1 if rng.random() < 0.5 else -1
        new_index = int(np.clip(index + direction * offset, 0, len(level_books) - 1))
        level_books.pop(index)
        level_books.insert(new_index, book)

    rebuilt: list[Book] = []
    for level, level_books in per_level.items():
        for slot, book in enumerate(level_books):
            rebuilt.append(
                Book(
                    call_number=book.call_number,
                    thickness_m=book.thickness_m,
                    level=level,
                    slot=slot,
                )
            )
    return Bookshelf(books=rebuilt, level_height_m=shelf.level_height_m), misplaced_calls


def audit_shelf(
    shelf: Bookshelf,
    seed: int | None = None,
    localizer=None,
) -> list[str]:
    """Sweep ``shelf`` once and flag misplaced books (paper §5.1, end to end).

    Simulates the librarian's cart sweep over the whole shelf, localizes every
    book's tag through the batched STPP engine (one DTW accumulation for all
    books), and returns the call numbers whose detected physical order
    contradicts the catalogue order.

    ``localizer`` accepts a pre-built
    :class:`~repro.core.localizer.BatchLocalizer` so repeated audits (e.g. a
    nightly inventory pass over many shelves) share one cached reference
    profile; a default engine is created otherwise.
    """
    from ..core.localizer import BatchLocalizer
    from ..simulation.collector import collect_sweep
    from ..simulation.presets import standard_antenna_moving_scene

    tags = shelf.to_tags(seed=seed)
    scene = standard_antenna_moving_scene(tags, seed=seed)
    sweep = collect_sweep(scene)
    engine = localizer if localizer is not None else BatchLocalizer()
    result = engine.localize(sweep.profiles, expected_tag_ids=tags.ids())
    label_by_id = {tag.tag_id: tag.label for tag in tags}
    detected_physical = [label_by_id[tid] for tid in result.x_ordering.ordered_ids]
    return detect_misplaced_books(shelf.catalogue_order(), detected_physical)


def detect_misplaced_books(
    catalogue_order: list[str], detected_physical_order: list[str]
) -> list[str]:
    """Flag books whose detected physical order contradicts the catalogue.

    The books *not* in the longest common subsequence of the detected order
    and the catalogue order are flagged as misplaced — the minimal set of
    moves that would reconcile the two orders.
    """
    keep = set(_longest_common_subsequence(detected_physical_order, catalogue_order))
    return [book for book in detected_physical_order if book not in keep]


def _longest_common_subsequence(left: list[str], right: list[str]) -> list[str]:
    """Classic O(len(left)*len(right)) LCS, returning one optimal subsequence."""
    rows, cols = len(left), len(right)
    lengths = np.zeros((rows + 1, cols + 1), dtype=int)
    for i in range(rows - 1, -1, -1):
        for j in range(cols - 1, -1, -1):
            if left[i] == right[j]:
                lengths[i, j] = lengths[i + 1, j + 1] + 1
            else:
                lengths[i, j] = max(lengths[i + 1, j], lengths[i, j + 1])
    result: list[str] = []
    i = j = 0
    while i < rows and j < cols:
        if left[i] == right[j]:
            result.append(left[i])
            i += 1
            j += 1
        elif lengths[i + 1, j] >= lengths[i, j + 1]:
            i += 1
        else:
            j += 1
    return result
