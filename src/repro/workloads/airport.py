"""Airport case study: baggage ordering on a conveyor belt (paper §5.2).

The deployment at Sanya Phoenix airport: tagged baggage items ride a conveyor
belt past fixed reader antennas; the system must recover the order of the
bags.  Traffic differs across the day — during peak hours the gap between
adjacent bags is typically below 20 cm, while off-peak traffic is sparser —
which is what differentiates the three measurement periods of Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..motion.speed_profiles import DEFAULT_BELT_SPEED_MPS
from ..rf.geometry import Point3D
from ..rfid.tag import TagCollection, make_tags


def __getattr__(name: str):
    if name == "BELT_SPEED_MPS":
        # Deprecated alias: the belt speed now lives with the scenario spec's
        # motion config (repro.motion.speed_profiles.DEFAULT_BELT_SPEED_MPS).
        import warnings

        warnings.warn(
            "repro.workloads.airport.BELT_SPEED_MPS is deprecated; use "
            "repro.motion.speed_profiles.DEFAULT_BELT_SPEED_MPS",
            DeprecationWarning,
            stacklevel=2,
        )
        return DEFAULT_BELT_SPEED_MPS
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


@dataclass(frozen=True, slots=True)
class TrafficPeriod:
    """One of the three measurement periods of Table 3."""

    name: str
    start_hour: int
    end_hour: int
    baggage_count: int
    """Bags handled during the period in the paper's measurement."""

    min_gap_m: float
    max_gap_m: float
    """Range of gaps between adjacent bags on the belt."""

    @property
    def is_peak(self) -> bool:
        """Peak periods have adjacent gaps typically below 20 cm."""
        return self.max_gap_m <= 0.20


MORNING_PEAK = TrafficPeriod(
    name="07:00-09:00", start_hour=7, end_hour=9, baggage_count=400,
    min_gap_m=0.05, max_gap_m=0.20,
)
MIDDAY_OFF_PEAK = TrafficPeriod(
    name="13:00-15:00", start_hour=13, end_hour=15, baggage_count=230,
    min_gap_m=0.20, max_gap_m=0.60,
)
EVENING_PEAK = TrafficPeriod(
    name="19:00-21:00", start_hour=19, end_hour=21, baggage_count=440,
    min_gap_m=0.05, max_gap_m=0.18,
)

PAPER_PERIODS: tuple[TrafficPeriod, ...] = (MORNING_PEAK, MIDDAY_OFF_PEAK, EVENING_PEAK)
"""The three measurement periods of Table 3."""


@dataclass(frozen=True)
class BaggageBatch:
    """A contiguous run of bags that passes the antenna together."""

    tags: TagCollection
    period: TrafficPeriod
    batch_index: int

    def ground_truth_order(self) -> list[str]:
        """Bag order along the belt (increasing X = order of arrival)."""
        return self.tags.order_along("x")


def baggage_batch(
    period: TrafficPeriod,
    bag_count: int,
    batch_index: int = 0,
    lateral_jitter_m: float = 0.10,
    seed: int | None = None,
) -> BaggageBatch:
    """Generate one batch of bags for ``period``.

    Adjacent gaps are drawn from the period's gap range; each bag's tag sits
    at a slightly different lateral position on the belt (bags are dropped on
    the belt in arbitrary orientation), which is the ``lateral_jitter_m``.
    """
    if bag_count < 1:
        raise ValueError("bag_count must be >= 1")
    rng = np.random.default_rng(None if seed is None else seed + batch_index)
    gaps = rng.uniform(period.min_gap_m, period.max_gap_m, size=bag_count - 1)
    xs = np.concatenate([[0.0], np.cumsum(gaps)])
    ys = rng.uniform(0.0, lateral_jitter_m, size=bag_count)
    positions = [Point3D(float(x), float(y), 0.0) for x, y in zip(xs, ys)]
    labels = [f"BAG-{period.start_hour:02d}-{batch_index:03d}-{i:03d}" for i in range(bag_count)]
    tags = make_tags(positions, labels=labels, seed=seed)
    return BaggageBatch(tags=tags, period=period, batch_index=batch_index)


def order_bags(
    batch: BaggageBatch,
    seed: int | None = None,
    localizer=None,
) -> list[str]:
    """Recover the belt order of one baggage batch (paper §5.2, end to end).

    Simulates the batch riding the conveyor past the fixed antenna, localizes
    all bags through the batched STPP engine in one DTW pass, and returns the
    bag labels in detected belt order (first bag past the antenna first).

    Pass a shared :class:`~repro.core.localizer.BatchLocalizer` as
    ``localizer`` when processing a stream of batches — e.g. via
    ``BatchLocalizer.localize_many`` — so every batch reuses the cached
    reference profile instead of rebuilding it.
    """
    from ..core.localizer import BatchLocalizer
    from ..simulation.collector import collect_sweep
    from ..simulation.presets import standard_tag_moving_scene

    scene = standard_tag_moving_scene(
        batch.tags, belt_speed_mps=DEFAULT_BELT_SPEED_MPS, seed=seed
    )
    sweep = collect_sweep(scene)
    engine = localizer if localizer is not None else BatchLocalizer()
    result = engine.localize(sweep.profiles, expected_tag_ids=batch.tags.ids())
    label_by_id = {tag.tag_id: tag.label for tag in batch.tags}
    return [label_by_id[tid] for tid in result.x_ordering.ordered_ids]


def period_batches(
    period: TrafficPeriod,
    bags_per_batch: int = 20,
    total_bags: int | None = None,
    seed: int | None = None,
) -> list[BaggageBatch]:
    """Split a period's baggage volume into conveyor batches.

    ``total_bags`` defaults to the paper's per-period count; reduce it to keep
    benchmark runtimes manageable (the benchmarks use a scaled-down count and
    report the scaling in EXPERIMENTS.md).
    """
    if bags_per_batch < 1:
        raise ValueError("bags_per_batch must be >= 1")
    total = period.baggage_count if total_bags is None else total_bags
    if total < 1:
        raise ValueError("total bag count must be >= 1")
    batches: list[BaggageBatch] = []
    remaining = total
    index = 0
    while remaining > 0:
        count = min(bags_per_batch, remaining)
        batches.append(
            baggage_batch(period, count, batch_index=index, seed=seed)
        )
        remaining -= count
        index += 1
    return batches
