"""Warehouse case study: multi-lane conveyor sortation (scenario extension).

A sortation conveyor in a fulfilment warehouse carries tagged cartons past a
fixed reader antenna in **multiple parallel lanes**.  Downstream diverters
need to know, per lane, which carton arrives first — exactly the relative
ordering problem STPP solves — and across lanes, which lane a carton travels
in (the Y axis).  Unlike the airport belt (:mod:`repro.workloads.airport`),
the belt speed here is **variable**: accumulation zones and merge gates
upstream make the belt surge and crawl, which stretches and compresses the
phase profiles — the situation STPP's DTW matching is designed for.

The geometry mirrors the paper's tag-moving equivalence (§1.3): the antenna
is static, every carton translates along −X with the *same* time-varying belt
motion (a :func:`~repro.motion.speed_profiles.jittered_speed_profile`), so
the relative carton geometry is preserved and, in the antenna's frame, the
sweep looks like an antenna moving at the belt's (variable) speed.

The workload plugs into the sharded experiment engine: use
:func:`conveyor_experiment` as a :class:`~repro.evaluation.sweep.SweepPlan`
scene factory, or :func:`warehouse_sweep_plan` for the ready-made plan scored
by all five baseline schemes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..motion.scenarios import (
    BeltTagPositions,
    StaticAntennaPosition,
    SweepScenario,
)
from ..motion.speed_profiles import (
    DEFAULT_BELT_SPEED_MPS,
    ConstantSpeedProfile,
    jittered_speed_profile,
)
from ..rf.geometry import Point3D
from ..rfid.aloha import FrameSlottedAloha
from ..rfid.tag import TagCollection, make_tags
from ..simulation.presets import SweepGeometry, standard_reader_config
from ..simulation.scene import Scene

def __getattr__(name: str):
    if name == "NOMINAL_BELT_SPEED_MPS":
        # Deprecated alias: the belt speed now lives with the scenario spec's
        # motion config (repro.motion.speed_profiles.DEFAULT_BELT_SPEED_MPS).
        import warnings

        warnings.warn(
            "repro.workloads.warehouse.NOMINAL_BELT_SPEED_MPS is deprecated; "
            "use repro.motion.speed_profiles.DEFAULT_BELT_SPEED_MPS",
            DeprecationWarning,
            stacklevel=2,
        )
        return DEFAULT_BELT_SPEED_MPS
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


@dataclass(frozen=True, slots=True)
class ConveyorConfig:
    """Parameters of one sortation-conveyor deployment."""

    lanes: int = 3
    """Parallel lanes on the belt."""

    lane_pitch_m: float = 0.15
    """Centre-to-centre lane separation (the Y-axis signal)."""

    cartons_per_lane: int = 4
    """Cartons per lane in one batch."""

    min_gap_m: float = 0.06
    max_gap_m: float = 0.25
    """Range of gaps between consecutive cartons within a lane."""

    nominal_speed_mps: float = DEFAULT_BELT_SPEED_MPS
    """Average belt speed."""

    speed_jitter_fraction: float = 0.15
    """Belt speed variability (0 = constant belt); redrawn every ~0.8 s."""

    lateral_jitter_m: float = 0.03
    """How far a carton's tag may sit off its lane centre."""

    def __post_init__(self) -> None:
        if self.lanes < 1:
            raise ValueError(f"need at least one lane, got {self.lanes}")
        if self.cartons_per_lane < 1:
            raise ValueError(f"need at least one carton per lane, got {self.cartons_per_lane}")
        if self.lane_pitch_m <= 0:
            raise ValueError(f"lane pitch must be positive, got {self.lane_pitch_m}")
        if not 0 < self.min_gap_m <= self.max_gap_m:
            raise ValueError(
                f"need 0 < min_gap <= max_gap, got [{self.min_gap_m}, {self.max_gap_m}]"
            )
        if self.nominal_speed_mps <= 0:
            raise ValueError(f"belt speed must be positive, got {self.nominal_speed_mps}")
        if not 0.0 <= self.speed_jitter_fraction < 1.0:
            raise ValueError(
                f"speed jitter must be in [0, 1), got {self.speed_jitter_fraction}"
            )
        if self.lateral_jitter_m < 0 or self.lateral_jitter_m >= self.lane_pitch_m / 2.0:
            raise ValueError("lateral jitter must be non-negative and below half the lane pitch")

    @property
    def carton_count(self) -> int:
        """Total cartons in one batch."""
        return self.lanes * self.cartons_per_lane


@dataclass(frozen=True)
class ConveyorBatch:
    """One batch of cartons riding the belt together."""

    tags: TagCollection
    config: ConveyorConfig
    batch_index: int

    def ground_truth_order(self) -> list[str]:
        """Carton order along the belt (increasing X = order of arrival)."""
        return self.tags.order_along("x")

    def lane_of(self, tag_id: str) -> int:
        """Lane index of one carton (encoded in its label at generation)."""
        for tag in self.tags:
            if tag.tag_id == tag_id:
                return int(tag.label.split("-")[2])
        raise KeyError(tag_id)


def conveyor_batch(
    config: ConveyorConfig = ConveyorConfig(),
    batch_index: int = 0,
    seed: int | None = None,
) -> ConveyorBatch:
    """Generate one multi-lane batch of tagged cartons.

    Within each lane, consecutive cartons are separated by gaps drawn from the
    config's range; each carton's tag sits near (not exactly on) its lane
    centre.  Labels encode ``CART-<batch>-<lane>-<position>`` so ground truth
    is recoverable from the label alone.
    """
    rng = np.random.default_rng(None if seed is None else seed + batch_index)
    positions: list[Point3D] = []
    labels: list[str] = []
    for lane in range(config.lanes):
        gaps = rng.uniform(
            config.min_gap_m, config.max_gap_m, size=config.cartons_per_lane - 1
        )
        xs = np.concatenate([[0.0], np.cumsum(gaps)])
        # Lanes are staggered: cartons in different lanes rarely align.
        xs = xs + rng.uniform(0.0, config.max_gap_m)
        lateral = rng.uniform(
            -config.lateral_jitter_m, config.lateral_jitter_m, size=config.cartons_per_lane
        )
        for position_index, (x, dy) in enumerate(zip(xs, lateral)):
            positions.append(
                Point3D(float(x), lane * config.lane_pitch_m + float(dy), 0.0)
            )
            labels.append(f"CART-{batch_index:03d}-{lane}-{position_index:03d}")
    tags = make_tags(positions, labels=labels, seed=seed)
    return ConveyorBatch(tags=tags, config=config, batch_index=batch_index)


def conveyor_scenario(
    batch: ConveyorBatch,
    geometry: SweepGeometry = SweepGeometry(),
    rng: np.random.Generator | None = None,
) -> SweepScenario:
    """The belt motion: static antenna, cartons translate along −X together.

    With ``speed_jitter_fraction > 0`` the belt follows a
    :func:`~repro.motion.speed_profiles.jittered_speed_profile` — all cartons
    share the one profile, so their relative geometry is preserved (the
    precondition of the paper's tag-moving equivalence) while the phase
    profiles get stretched/compressed over time.
    """
    config = batch.config
    xs = [tag.position.x for tag in batch.tags]
    ys = [tag.position.y for tag in batch.tags]
    antenna_y = min(ys) - geometry.antenna_clearance_m
    span = (max(xs) - min(xs)) + 2.0 * geometry.sweep_margin_m
    antenna_pos = Point3D(
        min(xs) - geometry.sweep_margin_m, antenna_y, geometry.standoff_m
    )
    nominal_duration = span / config.nominal_speed_mps + 1.0
    if config.speed_jitter_fraction > 0:
        # The jittered profile's speed is bounded below at 0.3x nominal, so
        # stretching the schedule by the reciprocal guarantees the slowest
        # possible belt still carries every carton past the antenna.
        profile = jittered_speed_profile(
            config.nominal_speed_mps,
            nominal_duration / 0.3,
            jitter_fraction=config.speed_jitter_fraction,
            rng=rng if rng is not None else np.random.default_rng(),
        )
        duration = profile.time_to_cover(span) + 1.0
    else:
        profile = ConstantSpeedProfile(config.nominal_speed_mps)
        duration = nominal_duration
    starts = {tag.tag_id: tag.position for tag in batch.tags}

    return SweepScenario(
        antenna_position=StaticAntennaPosition(antenna_pos),
        tag_position=BeltTagPositions(starts, profile),
        duration_s=duration,
        description=f"warehouse conveyor, {config.lanes} lanes",
    )


def conveyor_scene(
    batch: ConveyorBatch,
    seed: int | None = None,
    geometry: SweepGeometry = SweepGeometry(),
    extra_tags: TagCollection | None = None,
    noise=None,
    reflector_count: int | None = None,
) -> Scene:
    """Simulation scene for one conveyor batch.

    ``extra_tags`` (e.g. Landmarc reference tags riding the belt) join the
    sweep; they move with the same belt profile as the cartons.  ``noise``
    and ``reflector_count`` override the channel preset (scenario specs pin
    them explicitly); ``None`` keeps the calibrated defaults.
    """
    from ..simulation.presets import DEFAULT_NOISE, DEFAULT_REFLECTOR_COUNT

    all_tags = TagCollection(list(batch.tags.tags))
    if extra_tags is not None:
        for tag in extra_tags:
            all_tags.add(tag)
    rng = np.random.default_rng(seed)
    combined = ConveyorBatch(tags=all_tags, config=batch.config, batch_index=batch.batch_index)
    scenario = conveyor_scenario(combined, geometry=geometry, rng=rng)
    reader_config = standard_reader_config(
        all_tags,
        seed=seed,
        noise=noise if noise is not None else DEFAULT_NOISE,
        reflector_count=(
            reflector_count if reflector_count is not None else DEFAULT_REFLECTOR_COUNT
        ),
    )
    return Scene(
        tags=all_tags,
        scenario=scenario,
        reader_config=reader_config,
        protocol=FrameSlottedAloha(),
        seed=None if seed is None else seed + 1,
        description=scenario.description,
    )


def conveyor_experiment(
    rep_index: int,
    seed: int,
    config: ConveyorConfig = ConveyorConfig(),
    reference_spacing_m: float = 0.30,
    geometry: SweepGeometry = SweepGeometry(),
    noise=None,
    reflector_count: int | None = None,
):
    """Sweep-plan scene factory: one scored conveyor batch per repetition.

    Adds a sparse grid of Landmarc reference tags around the carton footprint
    (they ride the belt with the cartons, so their relative geometry — which
    is what a single-antenna Landmarc adaptation compares — is preserved).
    Module-level and picklable, as the sweep engine requires.
    """
    from ..evaluation.runner import build_experiment, make_reference_tags
    from .layouts import reference_tag_grid

    batch = conveyor_batch(config, batch_index=rep_index, seed=seed)
    xs = [tag.position.x for tag in batch.tags]
    ys = [tag.position.y for tag in batch.tags]
    grid = reference_tag_grid(
        max(xs) - min(xs) + 0.2,
        max(ys) - min(ys) + 0.2,
        spacing_m=reference_spacing_m,
        origin=Point3D(min(xs) - 0.1, min(ys) - 0.1, 0.0),
    )
    reference_tags, reference_positions = make_reference_tags(grid, seed)
    scene = conveyor_scene(
        batch,
        seed=seed,
        geometry=geometry,
        extra_tags=reference_tags,
        noise=noise,
        reflector_count=reflector_count,
    )
    return build_experiment(
        scene, target_tags=batch.tags, reference_positions=reference_positions
    )


@dataclass
class ConveyorPortal:
    """A live streaming portal over one conveyor batch.

    Wraps a :class:`~repro.service.LocalizationSession` around the streaming
    reader (:meth:`~repro.rfid.reader.RFIDReader.sweep_stream`): the belt
    carries the cartons past the antenna, reads flow into the session round
    by round, and :meth:`updates` yields provisional orderings while cartons
    are still in front of the antenna — the deployment shape of the paper's
    conveyor scenarios, where diverters need answers before the batch has
    fully passed.
    """

    batch: ConveyorBatch
    scene: Scene
    session: "LocalizationSession"
    update_every_rounds: int = 5

    def updates(self):
        """Drive the sweep; yield provisional updates, then the final one.

        The final update's orderings are bit-identical to running the batch
        pipeline over the completed sweep's read log (the session's
        convergence guarantee — see ``docs/streaming.md``).
        """
        from ..rfid.reader import RFIDReader

        reader = RFIDReader(
            config=self.scene.reader_config, protocol=self.scene.protocol
        )
        for read_batch in reader.sweep_stream(
            tags=self.scene.tags,
            antenna_position=self.scene.scenario.antenna_position,
            duration_s=self.scene.scenario.duration_s,
            tag_position=self.scene.scenario.tag_position,
            rng=self.scene.rng(),
        ):
            self.session.ingest_batch(read_batch)
            if (read_batch.round_index + 1) % self.update_every_rounds == 0:
                yield self.session.provisional()
        yield self.session.finalize()

    def belt_order_accuracy(self, update=None) -> float:
        """Ordering accuracy of an update's X ordering vs the true belt order.

        With ``update=None`` this scores the **final** ordering — it calls
        ``session.finalize()``, which freezes the session, so only use that
        form after :meth:`updates` has been fully consumed.  To score a
        provisional ordering mid-stream, pass that
        :class:`~repro.service.StreamingUpdate` explicitly (the session is
        left untouched).
        """
        from ..evaluation.metrics import strict_ordering_accuracy

        if update is None:
            update = self.session.finalize()
        return strict_ordering_accuracy(
            self.batch.ground_truth_order(),
            list(update.result.x_ordering.ordered_ids),
        )


def conveyor_portal(
    config: ConveyorConfig = ConveyorConfig(),
    batch_index: int = 0,
    seed: int | None = None,
    geometry: SweepGeometry = SweepGeometry(),
    update_every_rounds: int = 5,
) -> ConveyorPortal:
    """Build a streaming portal over one freshly generated conveyor batch.

    The portal's session expects exactly the batch's cartons and is labelled
    with the scene's reader channel; consume :meth:`ConveyorPortal.updates`
    to run the sweep live.
    """
    from ..service import LocalizationSession

    if update_every_rounds < 1:
        raise ValueError(
            f"update_every_rounds must be >= 1, got {update_every_rounds}"
        )
    batch = conveyor_batch(config, batch_index=batch_index, seed=seed)
    scene = conveyor_scene(batch, seed=seed, geometry=geometry)
    session = LocalizationSession(
        expected_tag_ids=batch.tags.ids(),
        channel_index=scene.reader_config.channel.channel_index,
    )
    return ConveyorPortal(
        batch=batch,
        scene=scene,
        session=session,
        update_every_rounds=update_every_rounds,
    )


def warehouse_sweep_plan(
    repetitions: int = 3,
    config: ConveyorConfig = ConveyorConfig(),
    base_seed: int = 2015,
    name: str = "warehouse",
):
    """The ready-made engine plan: conveyor batches scored by all five schemes.

    Seeds derive from ``np.random.SeedSequence(base_seed)`` (the engine's
    default derivation); pass the plan to a
    :class:`~repro.evaluation.sweep.SweepService` to run it sharded.
    """
    from functools import partial

    from ..evaluation.runner import standard_scheme_suite
    from ..evaluation.sweep import scheme_sweep_plan, score_schemes

    return scheme_sweep_plan(
        name=name,
        scene_factory=partial(conveyor_experiment, config=config),
        scorer=partial(score_schemes, scheme_factory=standard_scheme_suite),
        repetitions=repetitions,
        base_seed=base_seed,
    )
