"""Evaluation metrics, foremost the paper's ordering accuracy (Equation 2).

    Ordering Accuracy = (# of tags ordered correctly) / (# of tags in total)

A tag is ordered correctly when its detected rank equals its actual rank.
Two practical refinements are needed to apply the metric to arbitrary layouts:

* **ties** — tags that share the same true coordinate along an axis (e.g. the
  books of one shelf level all share a Y coordinate) are interchangeable:
  any of the ranks occupied by the tie group counts as correct;
* **missing tags** — tags the scheme failed to order at all count as ordered
  incorrectly (they certainly are not at their correct rank).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

DEFAULT_COORDINATE_TOLERANCE_M = 1e-6
"""Coordinates closer than this are treated as tied."""


def _tie_groups(
    true_coordinates: Mapping[str, float],
    tolerance: float,
) -> dict[str, tuple[int, int]]:
    """Map each tag to the inclusive rank range its tie group occupies."""
    ordered = sorted(true_coordinates, key=lambda tag_id: true_coordinates[tag_id])
    ranges: dict[str, tuple[int, int]] = {}
    index = 0
    while index < len(ordered):
        group = [ordered[index]]
        while (
            index + len(group) < len(ordered)
            and abs(
                true_coordinates[ordered[index + len(group)]]
                - true_coordinates[group[0]]
            )
            <= tolerance
        ):
            group.append(ordered[index + len(group)])
        low, high = index, index + len(group) - 1
        for tag_id in group:
            ranges[tag_id] = (low, high)
        index += len(group)
    return ranges


def ordering_accuracy(
    true_coordinates: Mapping[str, float],
    predicted_order: Sequence[str],
    tolerance: float = DEFAULT_COORDINATE_TOLERANCE_M,
) -> float:
    """The paper's ordering accuracy (Eq. 2), tie-aware.

    Parameters
    ----------
    true_coordinates:
        Ground-truth coordinate of every tag along the evaluated axis.
    predicted_order:
        Tag ids in the order the scheme reported (smallest coordinate first).
        Tags missing from this sequence are counted as incorrect.  Ids that do
        not appear in ``true_coordinates`` (e.g. a stray non-target tag a
        scheme picked up) are ignored: ranks are computed over the ground-truth
        tags only, so an extraneous id cannot shift every tag behind it out of
        its correct rank.
    tolerance:
        Coordinates closer than this are considered tied.
    """
    if not true_coordinates:
        raise ValueError("true_coordinates must not be empty")
    ranges = _tie_groups(true_coordinates, tolerance)
    known_order = [tag_id for tag_id in predicted_order if tag_id in true_coordinates]
    predicted_rank = {tag_id: rank for rank, tag_id in enumerate(known_order)}
    correct = 0
    for tag_id, (low, high) in ranges.items():
        rank = predicted_rank.get(tag_id)
        if rank is not None and low <= rank <= high:
            correct += 1
    return correct / len(true_coordinates)


def strict_ordering_accuracy(
    true_order: Sequence[str], predicted_order: Sequence[str]
) -> float:
    """Eq. 2 against an explicit ground-truth order (no ties).

    Like :func:`ordering_accuracy`, predicted ids outside ``true_order`` are
    dropped before ranking so an extraneous id cannot shift every tag behind
    it out of its correct rank.
    """
    if not true_order:
        raise ValueError("true_order must not be empty")
    known = set(true_order)
    filtered = [tag_id for tag_id in predicted_order if tag_id in known]
    predicted_rank = {tag_id: rank for rank, tag_id in enumerate(filtered)}
    correct = sum(
        1
        for rank, tag_id in enumerate(true_order)
        if predicted_rank.get(tag_id) == rank
    )
    return correct / len(true_order)


def pairwise_order_accuracy(
    true_coordinates: Mapping[str, float],
    predicted_order: Sequence[str],
    tolerance: float = DEFAULT_COORDINATE_TOLERANCE_M,
) -> float:
    """Fraction of tag pairs whose relative order is reported correctly.

    A Kendall-tau-style metric: less punishing than Eq. 2 for a single
    misplaced tag, used in tests as a secondary check.
    Tied pairs are excluded from the count; pairs involving a missing tag
    count as incorrect.
    """
    tags = list(true_coordinates)
    if len(tags) < 2:
        raise ValueError("need at least two tags for a pairwise metric")
    predicted_rank = {tag_id: rank for rank, tag_id in enumerate(predicted_order)}
    correct = 0
    total = 0
    for i, tag_a in enumerate(tags):
        for tag_b in tags[i + 1 :]:
            delta = true_coordinates[tag_a] - true_coordinates[tag_b]
            if abs(delta) <= tolerance:
                continue
            total += 1
            rank_a = predicted_rank.get(tag_a)
            rank_b = predicted_rank.get(tag_b)
            if rank_a is None or rank_b is None:
                continue
            if (delta < 0) == (rank_a < rank_b):
                correct += 1
    if total == 0:
        return 1.0
    return correct / total


@dataclass(frozen=True, slots=True)
class OrderingEvaluation:
    """Accuracy of one localization run along both axes."""

    accuracy_x: float
    accuracy_y: float
    pairwise_x: float
    pairwise_y: float
    ordered_tags: int
    total_tags: int

    @property
    def combined(self) -> float:
        """Mean of the two axis accuracies (the 'combined' bar of Figure 17)."""
        return (self.accuracy_x + self.accuracy_y) / 2.0


def evaluate_ordering(
    true_x: Mapping[str, float],
    true_y: Mapping[str, float],
    predicted_x: Sequence[str],
    predicted_y: Sequence[str],
) -> OrderingEvaluation:
    """Evaluate a run's X and Y orderings against ground-truth coordinates."""
    return OrderingEvaluation(
        accuracy_x=ordering_accuracy(true_x, predicted_x),
        accuracy_y=ordering_accuracy(true_y, predicted_y),
        pairwise_x=pairwise_order_accuracy(true_x, predicted_x),
        pairwise_y=pairwise_order_accuracy(true_y, predicted_y),
        ordered_tags=len(predicted_x),
        total_tags=len(true_x),
    )


def ordering_agreement(
    previous_order: Sequence[str], current_order: Sequence[str]
) -> float:
    """Pairwise agreement between two reported orderings of the same tags.

    The fraction of tag pairs present in **both** orderings whose relative
    order is the same — a Kendall-tau-style stability signal with no ground
    truth involved.  The streaming session uses it to grade how much a
    provisional ordering is still moving between refreshes: 1.0 means the
    common tags kept their relative order, 0.0 means it fully reversed.
    Returns 1.0 when fewer than two tags are common (nothing to disagree on).
    """
    previous_rank = {tag_id: rank for rank, tag_id in enumerate(previous_order)}
    common = [tag_id for tag_id in current_order if tag_id in previous_rank]
    if len(common) < 2:
        return 1.0
    agreeing = 0
    total = 0
    for i, tag_a in enumerate(common):
        for tag_b in common[i + 1 :]:
            total += 1
            if previous_rank[tag_a] < previous_rank[tag_b]:
                agreeing += 1
    return agreeing / total


def detection_success_rate(successes: Sequence[bool]) -> float:
    """Fraction of trials flagged as successful (Table 2)."""
    if not successes:
        raise ValueError("need at least one trial")
    return float(np.mean([1.0 if s else 0.0 for s in successes]))


def summarise(values: Sequence[float]) -> dict[str, float]:
    """Mean / median / quartiles / IQR of a sequence (for the box-plot figures)."""
    if not values:
        raise ValueError("need at least one value")
    arr = np.asarray(values, dtype=float)
    q1 = float(np.percentile(arr, 25))
    q3 = float(np.percentile(arr, 75))
    return {
        "mean": float(np.mean(arr)),
        "median": float(np.median(arr)),
        "q1": q1,
        "q3": q3,
        "iqr": q3 - q1,
        "min": float(np.min(arr)),
        "max": float(np.max(arr)),
    }
