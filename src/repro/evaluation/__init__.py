"""Evaluation harness: metrics, experiment runner, and per-figure experiments."""

from . import experiments
from .latency import LatencySample, latency_cdf, measure_scheme_latency
from .metrics import (
    OrderingEvaluation,
    detection_success_rate,
    evaluate_ordering,
    ordering_accuracy,
    pairwise_order_accuracy,
    strict_ordering_accuracy,
    summarise,
)
from .runner import (
    SchemeRun,
    SweepExperiment,
    build_experiment,
    mean_accuracy,
    run_stpp,
    standard_experiment,
    standard_scheme_suite,
)
from .sweep import (
    RepetitionResult,
    SchemeScore,
    SweepOutcome,
    SweepPlan,
    SweepService,
    default_sweep_service,
    run_plans,
    scheme_sweep_plan,
    score_schemes,
    score_stpp,
)

__all__ = [
    "LatencySample",
    "OrderingEvaluation",
    "RepetitionResult",
    "SchemeRun",
    "SchemeScore",
    "SweepExperiment",
    "SweepOutcome",
    "SweepPlan",
    "SweepService",
    "build_experiment",
    "default_sweep_service",
    "detection_success_rate",
    "evaluate_ordering",
    "experiments",
    "latency_cdf",
    "mean_accuracy",
    "measure_scheme_latency",
    "ordering_accuracy",
    "pairwise_order_accuracy",
    "run_plans",
    "run_stpp",
    "scheme_sweep_plan",
    "score_schemes",
    "score_stpp",
    "standard_experiment",
    "standard_scheme_suite",
    "strict_ordering_accuracy",
    "summarise",
]
