"""Evaluation harness: metrics, experiment runner, and per-figure experiments."""

from . import experiments
from .latency import LatencySample, latency_cdf, measure_scheme_latency
from .metrics import (
    OrderingEvaluation,
    detection_success_rate,
    evaluate_ordering,
    ordering_accuracy,
    pairwise_order_accuracy,
    strict_ordering_accuracy,
    summarise,
)
from .runner import (
    SchemeRun,
    SweepExperiment,
    build_experiment,
    mean_accuracy,
    run_stpp,
    standard_experiment,
)

__all__ = [
    "LatencySample",
    "OrderingEvaluation",
    "SchemeRun",
    "SweepExperiment",
    "build_experiment",
    "detection_success_rate",
    "evaluate_ordering",
    "experiments",
    "latency_cdf",
    "mean_accuracy",
    "measure_scheme_latency",
    "ordering_accuracy",
    "pairwise_order_accuracy",
    "run_stpp",
    "standard_experiment",
    "strict_ordering_accuracy",
    "summarise",
]
