"""Ordering latency measurement (paper Figure 23).

The paper measures, for each baggage item, how long the scheme takes to emit
its order once its reads are available.  We reproduce the distribution by
timing each scheme on per-batch read logs and attributing the batch's
processing time plus the residual tail of the data-collection window to each
bag, which is what dominates the paper's ~1.5 s average for STPP.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..baselines.base import OrderingScheme
from ..rfid.reading import ReadLog


@dataclass(frozen=True, slots=True)
class LatencySample:
    """Latency attributed to ordering one tag."""

    tag_id: str
    latency_s: float
    scheme: str


def measure_scheme_latency(
    scheme: OrderingScheme,
    read_log: ReadLog,
    expected_tag_ids: list[str],
    collection_tail_s: float = 1.0,
    repeats: int = 3,
) -> list[LatencySample]:
    """Per-tag ordering latency of ``scheme`` on one batch.

    ``collection_tail_s`` models the data the scheme still needs to wait for
    after a tag has passed the antenna before its order can be fixed (for
    STPP: the back half of the V-zone; for OTrack: the end of the active
    window).  The computation time is measured by running the scheme
    ``repeats`` times and taking the median.

    The per-tag compute share divides the batch time by the number of
    *processed* tags (expected tags present in the read log) — not by
    ``len(expected_tag_ids)``, which skews the share whenever the log contains
    fewer (dropouts) or extra (non-target) tags.  One sample is still emitted
    per expected tag, but ranks advance only through processed tags (so the
    total attributed compute never exceeds the measured batch time): a tag
    whose reads were lost waits for the whole pipeline to drain before its
    absence is reported, i.e. it sees the tail plus the full batch compute.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    durations = []
    for _ in range(repeats):
        started = time.perf_counter()
        scheme.order(read_log, expected_tag_ids)
        durations.append(time.perf_counter() - started)
    compute_s = float(np.median(durations))
    # Attribute the batch's compute time to the tags the scheme actually
    # processed: the expected tags that appear in the read log (a scheme does
    # no per-tag work for a tag it never heard, and extra non-target tags in
    # the log do not get latency samples).  Dividing by len(expected_tag_ids)
    # would under-state per-tag latency whenever some expected tags were never
    # read, and a log with extra tags would not correct for it either.
    heard = set(read_log.tag_ids())
    processed = [tag_id for tag_id in expected_tag_ids if tag_id in heard]
    per_tag_compute = compute_s / max(len(processed), 1)
    # A tag's order is finalised once the collection tail has elapsed and the
    # pipeline has worked through the tags ahead of it, so later tags in the
    # batch see slightly larger latencies — this is what spreads the CDF.
    # Only processed tags advance the pipeline rank; an unheard tag is
    # reported missing once the whole batch has been worked through.
    samples = []
    rank = 0
    for tag_id in expected_tag_ids:
        if tag_id in heard:
            rank += 1
            latency = collection_tail_s + per_tag_compute * rank
        else:
            latency = collection_tail_s + compute_s
        samples.append(LatencySample(tag_id=tag_id, latency_s=latency, scheme=scheme.name))
    return samples


def latency_cdf(samples: list[LatencySample]) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF (x values, cumulative probabilities) of latency samples."""
    if not samples:
        raise ValueError("need at least one latency sample")
    values = np.sort(np.array([s.latency_s for s in samples], dtype=float))
    probabilities = np.arange(1, values.size + 1) / values.size
    return values, probabilities
