"""One function per table/figure of the paper's evaluation.

Every function regenerates the data behind one of the paper's results using
the simulated deployment.  The benchmark suite (``benchmarks/``) calls these
functions and prints the rows/series next to the paper's numbers;
EXPERIMENTS.md records the comparison.

All functions take a ``repetitions`` / scale parameter so the benchmarks can
run at a tractable size; the defaults are chosen to finish in seconds while
still exhibiting the paper's trends.

Every repeated experiment runs through the sharded sweep engine
(:mod:`repro.evaluation.sweep`): the function builds declarative
:class:`~repro.evaluation.sweep.SweepPlan`\\ s (scene factory + schemes to
score + explicit per-repetition seeds preserving the historical values) and
hands them to a :class:`~repro.evaluation.sweep.SweepService`, which shards
the repetitions across worker processes.  Pass ``service=`` to control
parallelism; the results are bit-identical either way.  The repetition tasks
below are module-level functions (combined with :func:`functools.partial`)
because plans must be picklable.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial

import numpy as np

from ..baselines import OTrackScheme, STPPScheme
from ..core.dtw import segmented_dtw_align, subsequence_dtw
from ..core.fitting import fit_vzone_profile
from ..core.localizer import BatchLocalizer, STPPConfig
from ..core.reference import canonical_reference, reference_profile
from ..core.segmentation import segment_profile
from ..core.vzone import VZoneDetector
from ..rf.geometry import Point3D
from ..rfid.tag import make_tags
from ..simulation.collector import collect_sweep, profiles_from_read_log
from ..simulation.presets import (
    standard_antenna_moving_scene,
    standard_tag_moving_scene,
)
from ..workloads.airport import PAPER_PERIODS, TrafficPeriod, baggage_batch
from ..workloads.warehouse import ConveyorConfig, warehouse_sweep_plan
from ..workloads.layouts import (
    paper_test_cases,
    random_spacing_row,
    reference_tag_grid,
    row_layout,
    staircase_layout,
)
from ..workloads.library import (
    audit_shelf,
    generate_bookshelf,
    misplace_books,
)
from .latency import LatencySample, measure_scheme_latency
from .metrics import detection_success_rate, ordering_accuracy, summarise
from .runner import (
    SweepExperiment,
    build_experiment,
    run_stpp,
    standard_experiment,
    standard_scheme_suite,
)
from .sweep import (
    SchemeScore,
    SweepPlan,
    SweepService,
    run_plans,
    scheme_sweep_plan,
    score_schemes,
    score_stpp,
)

# --------------------------------------------------------------------------
# Section 2 figures: motivation and phase-profile anatomy
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class RssiLimitationResult:
    """Data behind Figure 2: peak RSSI order vs physical order."""

    times_ms: dict[str, np.ndarray]
    rssi_dbm: dict[str, np.ndarray]
    peak_time_s: dict[str, float]
    physical_order: list[str]
    peak_order: list[str]

    @property
    def peak_order_matches_physical(self) -> bool:
        """True when ordering by RSSI peaks reproduces the physical order."""
        return self.peak_order == self.physical_order


def fig02_rssi_limitation(seed: int = 3, spacing_m: float = 0.13) -> RssiLimitationResult:
    """Figure 2: RSSI fluctuates under multipath; its peak misorders tags."""
    positions = [Point3D(0.3, 0.0, 0.0), Point3D(0.3 + spacing_m, 0.0, 0.0)]
    tags = make_tags(positions, seed=seed)
    scene = standard_antenna_moving_scene(tags, speed_mps=0.1, seed=seed)
    sweep = collect_sweep(scene)
    times_ms: dict[str, np.ndarray] = {}
    rssi: dict[str, np.ndarray] = {}
    peak_time: dict[str, float] = {}
    for tag in tags:
        profile = sweep.profiles[tag.tag_id]
        times_ms[tag.tag_id] = profile.timestamps_ms()
        rssi[tag.tag_id] = profile.rssi_dbm
        peak_time[tag.tag_id] = float(
            profile.timestamps_s[int(np.argmax(profile.rssi_dbm))]
        )
    physical = tags.order_along("x")
    peak_order = sorted(peak_time, key=lambda tid: peak_time[tid])
    return RssiLimitationResult(
        times_ms=times_ms,
        rssi_dbm=rssi,
        peak_time_s=peak_time,
        physical_order=physical,
        peak_order=peak_order,
    )


@dataclass(frozen=True)
class ReferenceProfilePair:
    """Two reference profiles and the separation of their V-zone bottoms."""

    spacing_m: float
    bottom_gap_s: float
    bottom_phase_gap_rad: float
    profile_lengths: tuple[int, int]


def fig03_reference_profiles_x(
    spacings_m: tuple[float, ...] = (0.05, 0.10)
) -> dict[float, ReferenceProfilePair]:
    """Figure 3: X spacing separates reference V-zone bottoms in *time*."""
    results: dict[float, ReferenceProfilePair] = {}
    for spacing in spacings_m:
        ref_a = reference_profile(
            tag_x_m=1.45, perpendicular_distance_m=1.118,
            sweep_start_x_m=0.0, sweep_end_x_m=3.0, speed_mps=0.1,
        )
        ref_b = reference_profile(
            tag_x_m=1.45 + spacing, perpendicular_distance_m=1.118,
            sweep_start_x_m=0.0, sweep_end_x_m=3.0, speed_mps=0.1,
        )
        results[spacing] = ReferenceProfilePair(
            spacing_m=spacing,
            bottom_gap_s=ref_b.perpendicular_time_s - ref_a.perpendicular_time_s,
            bottom_phase_gap_rad=abs(
                float(ref_b.profile.phases_rad[ref_b.vzone_start_index:ref_b.vzone_end_index].min())
                - float(ref_a.profile.phases_rad[ref_a.vzone_start_index:ref_a.vzone_end_index].min())
            ),
            profile_lengths=(len(ref_a.profile), len(ref_b.profile)),
        )
    return results


def fig04_reference_profiles_y(
    spacings_m: tuple[float, ...] = (0.05, 0.10)
) -> dict[float, ReferenceProfilePair]:
    """Figure 4: Y spacing changes the V-zone *depth/shape*, not its time."""
    results: dict[float, ReferenceProfilePair] = {}
    base_distance = 1.0
    for spacing in spacings_m:
        ref_a = reference_profile(
            tag_x_m=1.5, perpendicular_distance_m=np.hypot(base_distance, 0.5),
            sweep_start_x_m=0.0, sweep_end_x_m=3.0, speed_mps=0.1,
        )
        ref_b = reference_profile(
            tag_x_m=1.5, perpendicular_distance_m=np.hypot(base_distance, 0.5 + spacing),
            sweep_start_x_m=0.0, sweep_end_x_m=3.0, speed_mps=0.1,
        )
        fit_a = fit_vzone_profile(ref_a.vzone_profile)
        fit_b = fit_vzone_profile(ref_b.vzone_profile)
        results[spacing] = ReferenceProfilePair(
            spacing_m=spacing,
            bottom_gap_s=abs(ref_b.perpendicular_time_s - ref_a.perpendicular_time_s),
            bottom_phase_gap_rad=abs(fit_a.curvature - fit_b.curvature),
            profile_lengths=(len(ref_a.profile), len(ref_b.profile)),
        )
    return results


@dataclass(frozen=True)
class MeasuredProfileResult:
    """Data behind Figures 5/6: measured (noisy, fragmentary) phase profiles."""

    spacing_m: float
    bottom_gap_s: float
    sample_counts: tuple[int, ...]
    dropout_fraction: float
    """Fraction of inventory opportunities lost to fades/dropouts (fragmentation)."""


def _measured_pair(
    positions: list[Point3D], seed: int, speed_mps: float = 0.1
) -> tuple[MeasuredProfileResult, SweepExperiment]:
    experiment = standard_experiment(positions, seed=seed, speed_mps=speed_mps)
    localizer = BatchLocalizer(STPPConfig(reference_speed_mps=speed_mps))
    profiles = profiles_from_read_log(experiment.read_log)
    result = localizer.localize(profiles, expected_tag_ids=experiment.target_ids)
    bottoms = [vz.bottom_time_s for vz in result.vzones.values()]
    counts = tuple(len(profiles[tid]) for tid in experiment.target_ids if tid in profiles)
    duration = experiment.read_log.duration_s()
    expected_reads = duration * 120.0
    total_reads = len(experiment.read_log)
    dropout = max(0.0, 1.0 - total_reads / max(expected_reads, 1.0))
    measured = MeasuredProfileResult(
        spacing_m=abs(positions[1].x - positions[0].x) or abs(positions[1].y - positions[0].y),
        bottom_gap_s=abs(bottoms[1] - bottoms[0]) if len(bottoms) >= 2 else float("nan"),
        sample_counts=counts,
        dropout_fraction=float(dropout),
    )
    return measured, experiment


def fig05_measured_profiles_x(
    spacings_m: tuple[float, ...] = (0.05, 0.10), seed: int = 1
) -> dict[float, MeasuredProfileResult]:
    """Figure 5: measured profiles along X still separate in bottom time."""
    results = {}
    for spacing in spacings_m:
        positions = [Point3D(0.4, 0.0, 0.0), Point3D(0.4 + spacing, 0.0, 0.0)]
        results[spacing], _ = _measured_pair(positions, seed)
    return results


def fig06_measured_profiles_y(
    spacings_m: tuple[float, ...] = (0.05, 0.10), seed: int = 1
) -> dict[float, MeasuredProfileResult]:
    """Figure 6: measured profiles along Y differ in V-zone shape."""
    results = {}
    for spacing in spacings_m:
        positions = [Point3D(0.4, 0.0, 0.0), Point3D(0.4, spacing, 0.0)]
        # The standard micro-benchmark sweep speed keeps the profiles short
        # enough for a clean side-by-side V-zone comparison.
        results[spacing], _ = _measured_pair(positions, seed, speed_mps=0.3)
    return results


# --------------------------------------------------------------------------
# Section 3 figures: the STPP machinery itself
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class DTWAlignmentResult:
    """Data behind Figure 7: V-zone located by (segmented) DTW."""

    dtw_cost: float
    detected_bottom_time_s: float
    true_perpendicular_time_s: float
    bottom_error_s: float
    detected_window_s: tuple[float, float]


def fig07_dtw_alignment(seed: int = 2) -> DTWAlignmentResult:
    """Figure 7: match the reference profile into a measured profile via DTW."""
    positions = row_layout(3, 0.15)
    experiment = standard_experiment(positions, seed=seed)
    profiles = profiles_from_read_log(experiment.read_log)
    detector = VZoneDetector(method="segmented_dtw", fallback_to_longest_run=False)
    middle_tag = experiment.target_ids[1]
    vzone = detector.detect(profiles[middle_tag])
    if vzone is None:
        raise RuntimeError("V-zone detection failed on the Figure 7 scenario")
    true_x = experiment.true_x[middle_tag]
    # Recover the true perpendicular time by scanning the known trajectory.
    times = np.linspace(0.0, experiment.scene.scenario.duration_s, 2000)
    antenna_x = np.array(
        [experiment.scene.scenario.antenna_position(t).x for t in times]
    )
    true_time = float(times[int(np.argmin(np.abs(antenna_x - true_x)))])
    return DTWAlignmentResult(
        dtw_cost=vzone.dtw_cost,
        detected_bottom_time_s=vzone.bottom_time_s,
        true_perpendicular_time_s=true_time,
        bottom_error_s=abs(vzone.bottom_time_s - true_time),
        detected_window_s=(vzone.start_time_s, vzone.end_time_s),
    )


@dataclass(frozen=True)
class SegmentationResult:
    """Data behind Figure 8: the coarse segment representation."""

    sample_count: int
    segment_count: int
    window_size: int
    compression_ratio: float
    wrap_splits: int


def fig08_segmentation(seed: int = 2, window_size: int = 5) -> SegmentationResult:
    """Figure 8: a measured profile reduced to range/interval segments."""
    experiment = standard_experiment(row_layout(1, 0.1), seed=seed, speed_mps=0.1)
    profiles = profiles_from_read_log(experiment.read_log)
    profile = profiles[experiment.target_ids[0]]
    segments = segment_profile(profile, window_size)
    plain_segment_count = int(np.ceil(len(profile) / window_size))
    return SegmentationResult(
        sample_count=len(profile),
        segment_count=len(segments),
        window_size=window_size,
        compression_ratio=len(profile) / max(len(segments), 1),
        wrap_splits=len(segments) - plain_segment_count,
    )


@dataclass(frozen=True)
class QuadraticFittingResult:
    """Data behind Figure 9: three tags ordered by fitted bottom times."""

    detected_order: list[str]
    true_order: list[str]
    bottom_times_s: dict[str, float]
    correct: bool


def fig09_quadratic_fitting(seed: int = 5) -> QuadraticFittingResult:
    """Figure 9: quadratic fits order tags 15 cm and 2 cm apart."""
    # Tag 03 -- 15cm -- Tag 01 -- 2cm -- Tag 02, matching the paper's example.
    positions = [Point3D(0.15, 0.0, 0.0), Point3D(0.17, 0.0, 0.0), Point3D(0.0, 0.0, 0.0)]
    experiment = standard_experiment(positions, seed=seed, speed_mps=0.1)
    evaluation, _ = run_stpp(experiment, STPPConfig(reference_speed_mps=0.1))
    localizer = BatchLocalizer(STPPConfig(reference_speed_mps=0.1))
    profiles = profiles_from_read_log(experiment.read_log)
    result = localizer.localize(profiles, expected_tag_ids=experiment.target_ids)
    true_order = sorted(experiment.target_ids, key=lambda tid: experiment.true_x[tid])
    return QuadraticFittingResult(
        detected_order=list(result.x_ordering.ordered_ids),
        true_order=true_order,
        bottom_times_s=dict(result.x_ordering.scores),
        correct=evaluation.accuracy_x == 1.0,
    )


# --------------------------------------------------------------------------
# Sweep-plan building blocks (module-level so plans stay picklable)
# --------------------------------------------------------------------------

_CASES: tuple[tuple[str, bool], ...] = (("tag_moving", True), ("antenna_moving", False))
"""The paper's two deployment cases: conveyor belt vs hand-pushed antenna."""


def _staircase_experiment(
    rep_index: int,
    seed: int,
    tag_count: int,
    spacing_x_m: float,
    spacing_y_m: float,
    tag_moving: bool,
) -> SweepExperiment:
    """One repetition's sweep over a staircase layout."""
    positions = staircase_layout(tag_count, spacing_x_m, spacing_y_m)
    return standard_experiment(positions, seed=seed, tag_moving=tag_moving)


def _population_experiment(
    rep_index: int,
    seed: int,
    population: int,
    tag_moving: bool,
) -> SweepExperiment:
    """One repetition's sweep over a random-spacing row of ``population`` tags."""
    rng = np.random.default_rng(1000 + population * 10 + rep_index)
    positions = random_spacing_row(population, 0.02, 0.10, rng=rng, y_jitter_m=0.05)
    return standard_experiment(positions, seed=seed, tag_moving=tag_moving)


def _stpp_otrack_suite(experiment: SweepExperiment) -> list:
    """The STPP-vs-OTrack pairing of Figure 19."""
    return [STPPScheme(), OTrackScheme()]


_SCORE_FIVE_SCHEMES = partial(score_schemes, scheme_factory=standard_scheme_suite)
_SCORE_STPP_OTRACK = partial(score_schemes, scheme_factory=_stpp_otrack_suite)


# --------------------------------------------------------------------------
# Section 4 micro-benchmarks
# --------------------------------------------------------------------------


def fig12_window_size(
    window_sizes: tuple[int, ...] = (1, 3, 5, 7, 9),
    repetitions: int = 3,
    tag_count: int = 8,
    spacing_m: float = 0.08,
    service: SweepService | None = None,
) -> dict[str, dict[int, float]]:
    """Figure 12: coarse-segment window size vs ordering accuracy."""
    plans = []
    keys: list[tuple[str, int]] = []
    for case, tag_moving in _CASES:
        for window in window_sizes:
            config = STPPConfig(window_size=window, detection_method="segmented_dtw")
            plans.append(
                scheme_sweep_plan(
                    name=f"fig12[{case},w={window}]",
                    scene_factory=partial(
                        _staircase_experiment,
                        tag_count=tag_count,
                        spacing_x_m=spacing_m,
                        spacing_y_m=spacing_m,
                        tag_moving=tag_moving,
                    ),
                    scorer=partial(score_stpp, config=config),
                    repetitions=repetitions,
                    seeds=[100 * window + rep for rep in range(repetitions)],
                )
            )
            keys.append((case, window))
    results: dict[str, dict[int, float]] = {case: {} for case, _ in _CASES}
    for (case, window), outcome in zip(keys, run_plans(plans, service)):
        results[case][window] = outcome.mean_accuracy("STPP")["combined"]
    return results


def _spacing_sweep(
    spacings_m: tuple[float, ...],
    repetitions: int,
    tag_moving: bool,
    tag_count: int = 8,
    service: SweepService | None = None,
) -> dict[float, dict[str, float]]:
    plans = [
        scheme_sweep_plan(
            name=f"spacing[{spacing}]",
            scene_factory=partial(
                _staircase_experiment,
                tag_count=tag_count,
                spacing_x_m=spacing,
                spacing_y_m=spacing,
                tag_moving=tag_moving,
            ),
            scorer=score_stpp,
            repetitions=repetitions,
            seeds=[int(spacing * 1000) * 10 + rep for rep in range(repetitions)],
        )
        for spacing in spacings_m
    ]
    outcomes = run_plans(plans, service)
    return {
        spacing: outcome.mean_accuracy("STPP")
        for spacing, outcome in zip(spacings_m, outcomes)
    }


def fig13_spacing_tag_moving(
    spacings_m: tuple[float, ...] = (0.02, 0.04, 0.06, 0.08, 0.10),
    repetitions: int = 3,
    service: SweepService | None = None,
) -> dict[float, dict[str, float]]:
    """Figure 13: tag-to-tag distance vs accuracy, tag-moving (conveyor) case."""
    return _spacing_sweep(spacings_m, repetitions, tag_moving=True, service=service)


def fig14_spacing_antenna_moving(
    spacings_m: tuple[float, ...] = (0.02, 0.04, 0.06, 0.08, 0.10),
    repetitions: int = 3,
    service: SweepService | None = None,
) -> dict[float, dict[str, float]]:
    """Figure 14: tag-to-tag distance vs accuracy, antenna-moving case."""
    return _spacing_sweep(spacings_m, repetitions, tag_moving=False, service=service)


def table1_population(
    populations: tuple[int, ...] = (5, 10, 15, 20, 25, 30),
    repetitions: int = 2,
    service: SweepService | None = None,
) -> dict[str, dict[int, dict[str, float]]]:
    """Table 1: tag population within the reading zone vs ordering accuracy."""
    plans = []
    keys: list[tuple[str, int]] = []
    for case, tag_moving in _CASES:
        for population in populations:
            plans.append(
                scheme_sweep_plan(
                    name=f"table1[{case},n={population}]",
                    scene_factory=partial(
                        _population_experiment,
                        population=population,
                        tag_moving=tag_moving,
                    ),
                    scorer=score_stpp,
                    repetitions=repetitions,
                    seeds=[population * 100 + rep for rep in range(repetitions)],
                )
            )
            keys.append((case, population))
    results: dict[str, dict[int, dict[str, float]]] = {case: {} for case, _ in _CASES}
    for (case, population), outcome in zip(keys, run_plans(plans, service)):
        results[case][population] = outcome.mean_accuracy("STPP")
    return results


# --------------------------------------------------------------------------
# Section 4 macro-benchmarks: scheme comparison
# --------------------------------------------------------------------------


def _fig17_experiment(
    rep_index: int,
    seed: int,
    layout_spacing_m: float,
    tag_count: int,
) -> SweepExperiment:
    """One (repetition, layout) cell of Figure 17.

    The plan enumerates repetition-major, layout-minor: repetition ``r`` of
    layout ``l`` is plan repetition ``r * len(layouts) + l``.
    """
    layouts = paper_test_cases(spacing_m=layout_spacing_m)
    positions = list(layouts.values())[rep_index % len(layouts)]
    if len(positions) > tag_count:
        positions = positions[:tag_count]
    xs = [p.x for p in positions]
    ys = [p.y for p in positions]
    reference_grid = reference_tag_grid(
        max(xs) - min(xs) + 0.2, max(ys) - min(ys) + 0.2, spacing_m=0.15,
        origin=Point3D(min(xs) - 0.1, min(ys) - 0.1, 0.0),
    )
    return standard_experiment(positions, seed=seed, reference_grid=reference_grid)


def fig17_scheme_comparison(
    repetitions: int = 1,
    layout_spacing_m: float = 0.04,
    tag_count: int = 10,
    service: SweepService | None = None,
) -> dict[str, dict[str, float]]:
    """Figure 17: ordering accuracy of the five schemes over the five layouts.

    The paper places adjacent tags 1–10 cm apart across the five layout
    settings of Figure 16; ``layout_spacing_m`` controls the adjacent-tag
    distance of the approximated layouts.
    """
    layout_count = len(paper_test_cases(spacing_m=layout_spacing_m))
    plan = scheme_sweep_plan(
        name="fig17",
        scene_factory=partial(
            _fig17_experiment, layout_spacing_m=layout_spacing_m, tag_count=tag_count
        ),
        scorer=_SCORE_FIVE_SCHEMES,
        repetitions=repetitions * layout_count,
        seeds=[
            500 + 17 * rep + layout_index
            for rep in range(repetitions)
            for layout_index in range(layout_count)
        ],
    )
    (outcome,) = run_plans([plan], service)
    return {name: outcome.mean_accuracy(name) for name in outcome.schemes()}


def _fig18_experiment(
    rep_index: int, seed: int, spacing_m: float, tag_count: int
) -> SweepExperiment:
    """One repetition of the Figure 18 spacing box plot."""
    positions = staircase_layout(tag_count, spacing_m, min(spacing_m, 0.10))
    xs = [p.x for p in positions]
    ys = [p.y for p in positions]
    # Keep the Landmarc reference deployment sparse (a handful of
    # anchors), otherwise the reference tags dominate the reading
    # zone and starve every scheme of reads on the target tags.
    span_x = max(xs) - min(xs) + 0.2
    span_y = max(ys) - min(ys) + 0.2
    reference_grid = reference_tag_grid(
        span_x, span_y, spacing_m=max(0.25, span_x / 4.0),
        origin=Point3D(min(xs) - 0.1, min(ys) - 0.1, 0.0),
    )
    return standard_experiment(positions, seed=seed, reference_grid=reference_grid)


def fig18_spacing_boxplot(
    spacings_m: tuple[float, ...] = (0.10, 0.25, 0.50),
    repetitions: int = 2,
    tag_count: int = 10,
    service: SweepService | None = None,
) -> dict[str, list[float]]:
    """Figure 18: per-scheme accuracy distribution as spacing shrinks (20→10 tags scaled)."""
    plans = [
        scheme_sweep_plan(
            name=f"fig18[{spacing}]",
            scene_factory=partial(
                _fig18_experiment, spacing_m=spacing, tag_count=tag_count
            ),
            scorer=_SCORE_FIVE_SCHEMES,
            repetitions=repetitions,
            seeds=[int(spacing * 100) * 10 + rep for rep in range(repetitions)],
        )
        for spacing in spacings_m
    ]
    samples: dict[str, list[float]] = {}
    for outcome in run_plans(plans, service):
        for name in outcome.schemes():
            samples.setdefault(name, []).extend(outcome.accuracy_samples(name, "combined"))
    return samples


def fig19_population_boxplot(
    populations: tuple[int, ...] = (5, 10, 20, 30),
    repetitions: int = 2,
    spacing_m: float = 0.10,
    service: SweepService | None = None,
) -> dict[str, list[float]]:
    """Figure 19: STPP vs OTrack accuracy distribution as population grows."""
    plans = [
        scheme_sweep_plan(
            name=f"fig19[n={population}]",
            scene_factory=partial(
                _staircase_experiment,
                tag_count=population,
                spacing_x_m=spacing_m,
                spacing_y_m=spacing_m,
                tag_moving=True,
            ),
            scorer=_SCORE_STPP_OTRACK,
            repetitions=repetitions,
            seeds=[population * 13 + rep for rep in range(repetitions)],
        )
        for population in populations
    ]
    samples: dict[str, list[float]] = {"STPP": [], "OTrack": []}
    for outcome in run_plans(plans, service):
        for name in samples:
            samples[name].extend(outcome.accuracy_samples(name, "accuracy_x"))
    return samples


# --------------------------------------------------------------------------
# Section 5 case studies
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class LibraryLayoutResult:
    """Data behind Figure 21: detected book layout with wrongly ordered books."""

    accuracy: float
    wrong_books: list[str]
    wrong_book_thicknesses_m: list[float]
    median_thickness_m: float
    per_level_accuracy: dict[int, float]


def fig21_library_layout(
    seed: int = 11, books_per_level: int = 15, levels: int = 3
) -> LibraryLayoutResult:
    """Figure 21: one full shelf sweep; errors concentrate on thin books."""
    shelf = generate_bookshelf(levels=levels, books_per_level=books_per_level, seed=seed)
    tags = shelf.to_tags(seed=seed)
    scene = standard_antenna_moving_scene(tags, seed=seed)
    sweep = collect_sweep(scene)
    localizer = BatchLocalizer(STPPConfig())
    result = localizer.localize(sweep.profiles, expected_tag_ids=tags.ids())

    label_by_id = {tag.tag_id: tag.label for tag in tags}
    x_by_id = {tag.tag_id: tag.position.x for tag in tags}
    level_by_label = {book.call_number: book.level for book in shelf.books}
    thickness_by_label = {book.call_number: book.thickness_m for book in shelf.books}

    wrong: list[str] = []
    per_level_accuracy: dict[int, float] = {}
    for level in shelf.levels:
        level_ids = [tid for tid in tags.ids() if level_by_label[label_by_id[tid]] == level]
        truth = {tid: x_by_id[tid] for tid in level_ids}
        detected = [tid for tid in result.x_ordering.ordered_ids if tid in truth]
        accuracy = ordering_accuracy(truth, detected)
        per_level_accuracy[level] = accuracy
        true_rank = {tid: rank for rank, tid in enumerate(sorted(truth, key=truth.get))}
        for rank, tid in enumerate(detected):
            if true_rank[tid] != rank:
                wrong.append(label_by_id[tid])

    # The deployment's relative-localization accuracy is the per-level ordering
    # accuracy (books are only ever reshelved within their level).
    overall = float(np.mean(list(per_level_accuracy.values())))
    return LibraryLayoutResult(
        accuracy=overall,
        wrong_books=wrong,
        wrong_book_thicknesses_m=[thickness_by_label[b] for b in wrong],
        median_thickness_m=float(np.median([b.thickness_m for b in shelf.books])),
        per_level_accuracy=per_level_accuracy,
    )


def _library_sweep_task(
    rep_index: int, seed: int, books_per_level: int, levels: int
) -> tuple[SchemeScore, ...]:
    """One shelf sweep of the §5.1 headline measurement."""
    layout = fig21_library_layout(
        seed=seed, books_per_level=books_per_level, levels=levels
    )
    return (SchemeScore(scheme="library", metrics={"accuracy": layout.accuracy}),)


def case_library_headline(
    sweeps: int = 5,
    books_per_level: int = 15,
    levels: int = 3,
    service: SweepService | None = None,
) -> float:
    """§5.1 headline: mean per-level ordering accuracy over repeated sweeps."""
    plan = SweepPlan(
        name="library_headline",
        repetitions=sweeps,
        task=partial(
            _library_sweep_task, books_per_level=books_per_level, levels=levels
        ),
        seeds=[20 + sweep_index for sweep_index in range(sweeps)],
    )
    (outcome,) = run_plans([plan], service)
    return float(np.mean(outcome.metric_samples("library", "accuracy")))


def _misplaced_books_task(
    rep_index: int, seed: int, count: int, books_per_level: int, levels: int
) -> tuple[SchemeScore, ...]:
    """One Table 2 trial: misplace ``count`` books, audit, check detection.

    Each repetition builds its own :class:`BatchLocalizer`; the reference
    profile and its segmentation are process-wide cached
    (``shared_canonical_reference``), so the engine is still shared within a
    shard worker.
    """
    rng = np.random.default_rng(seed)
    shelf = generate_bookshelf(levels=levels, books_per_level=books_per_level, seed=seed)
    shuffled, misplaced = misplace_books(shelf, count, rng=rng)
    flagged = audit_shelf(shuffled, seed=seed, localizer=BatchLocalizer(STPPConfig()))
    success = all(book in flagged for book in misplaced)
    return (SchemeScore(scheme="detection", metrics={"success": float(success)}),)


def table2_misplaced_books(
    counts: tuple[int, ...] = (1, 2, 3),
    repetitions: int = 5,
    books_per_level: int = 15,
    levels: int = 1,
    service: SweepService | None = None,
) -> dict[int, float]:
    """Table 2: success rate of detecting 1/2/3 misplaced books."""
    plans = [
        SweepPlan(
            name=f"table2[{count}]",
            repetitions=repetitions,
            task=partial(
                _misplaced_books_task,
                count=count,
                books_per_level=books_per_level,
                levels=levels,
            ),
            seeds=[300 + count * 50 + rep for rep in range(repetitions)],
        )
        for count in counts
    ]
    return {
        count: detection_success_rate(
            [value > 0.5 for value in outcome.metric_samples("detection", "success")]
        )
        for count, outcome in zip(counts, run_plans(plans, service))
    }


def _baggage_batch_experiment(
    rep_index: int,
    seed: int,
    period: TrafficPeriod,
    bags_per_batch: int,
    total_bags: int,
) -> SweepExperiment:
    """One conveyor batch of Table 3 (repetition index == batch index)."""
    remaining = total_bags - rep_index * bags_per_batch
    bag_count = min(bags_per_batch, remaining)
    batch = baggage_batch(
        period, bag_count, batch_index=rep_index, seed=period.start_hour
    )
    scene = standard_tag_moving_scene(batch.tags, seed=seed)
    return build_experiment(scene)


def _baggage_scheme_suite(experiment: SweepExperiment) -> list:
    """The three schemes Table 3 compares."""
    from ..baselines import GRssiScheme

    return [STPPScheme(), OTrackScheme(), GRssiScheme()]


def table3_baggage(
    periods: tuple[TrafficPeriod, ...] = PAPER_PERIODS,
    bags_per_batch: int = 15,
    batches_per_period: int = 2,
    service: SweepService | None = None,
) -> dict[str, dict[str, float]]:
    """Table 3: baggage ordering accuracy per scheme and traffic period."""
    plans = [
        scheme_sweep_plan(
            name=f"table3[{period.name}]",
            scene_factory=partial(
                _baggage_batch_experiment,
                period=period,
                bags_per_batch=bags_per_batch,
                total_bags=bags_per_batch * batches_per_period,
            ),
            scorer=partial(score_schemes, scheme_factory=_baggage_scheme_suite),
            repetitions=batches_per_period,
            seeds=[
                batch_index + period.start_hour
                for batch_index in range(batches_per_period)
            ],
        )
        for period in periods
    ]
    results: dict[str, dict[str, float]] = {}
    for period, outcome in zip(periods, run_plans(plans, service)):
        for name in outcome.schemes():
            results.setdefault(name, {})[period.name] = float(
                np.mean(outcome.accuracy_samples(name, "accuracy_x"))
            )
    return results


def fig23_latency_cdf(
    bag_count: int = 30, seed: int = 7
) -> dict[str, list[LatencySample]]:
    """Figure 23: ordering-latency distribution of STPP vs OTrack."""
    positions = random_spacing_row(bag_count, 0.05, 0.20, rng=np.random.default_rng(seed))
    experiment = standard_experiment(positions, seed=seed, tag_moving=True)
    samples: dict[str, list[LatencySample]] = {}
    # STPP must wait for the trailing half of each V-zone before the order is
    # final; OTrack only waits for its active window to close, so its
    # collection tail is shorter.  Both add their own computation time.
    tails = {"STPP": 1.3, "OTrack": 1.2}
    for scheme in (STPPScheme(), OTrackScheme()):
        samples[scheme.name] = measure_scheme_latency(
            scheme,
            experiment.read_log,
            experiment.target_ids,
            collection_tail_s=tails[scheme.name],
        )
    return samples


# --------------------------------------------------------------------------
# Ablations (design choices called out in the paper)
# --------------------------------------------------------------------------


def _config_ablation_plans(
    name: str,
    variants: "dict[str, STPPConfig]",
    repetitions: int,
    tag_count: int,
    spacing_m: float,
    seed_base: int,
    tag_moving: bool,
) -> list[SweepPlan]:
    """One plan per STPPConfig variant, same layouts and seeds for each."""
    return [
        scheme_sweep_plan(
            name=f"{name}[{variant}]",
            scene_factory=partial(
                _staircase_experiment,
                tag_count=tag_count,
                spacing_x_m=spacing_m,
                spacing_y_m=spacing_m,
                tag_moving=tag_moving,
            ),
            scorer=partial(score_stpp, config=config),
            repetitions=repetitions,
            seeds=[seed_base + rep for rep in range(repetitions)],
        )
        for variant, config in variants.items()
    ]


def ablation_segmented_vs_full_dtw(
    repetitions: int = 2,
    tag_count: int = 6,
    spacing_m: float = 0.08,
    service: SweepService | None = None,
) -> dict[str, dict[str, float]]:
    """Segmented DTW (w=5) vs full-sample DTW: accuracy and detection runtime.

    ``runtime_s`` is the localization time (profile grouping excluded), as
    reported by :func:`~repro.evaluation.runner.run_stpp`.
    """
    variants = {
        method: STPPConfig(detection_method=method)
        for method in ("segmented_dtw", "full_dtw", "longest_run")
    }
    plans = _config_ablation_plans(
        "ablation_dtw", variants, repetitions, tag_count, spacing_m,
        seed_base=700, tag_moving=False,
    )
    results: dict[str, dict[str, float]] = {}
    for variant, outcome in zip(variants, run_plans(plans, service)):
        results[variant] = {
            "accuracy": float(np.mean(outcome.accuracy_samples("STPP", "combined"))),
            "runtime_s": float(np.mean(outcome.latencies("STPP"))),
        }
    return results


def ablation_pivot_vs_all_pairs(
    repetitions: int = 3,
    tag_count: int = 8,
    spacing_m: float = 0.08,
    service: SweepService | None = None,
) -> dict[str, dict[str, float]]:
    """Pivot-based Y ordering (M−1 comparisons) vs all-pairs comparison."""
    variants = {
        comparison: STPPConfig(y_comparison=comparison)
        for comparison in ("pivot", "all_pairs")
    }
    plans = _config_ablation_plans(
        "ablation_pivot", variants, repetitions, tag_count, spacing_m,
        seed_base=800, tag_moving=True,
    )
    return {
        variant: {"accuracy_y": float(np.mean(outcome.accuracy_samples("STPP", "accuracy_y")))}
        for variant, outcome in zip(variants, run_plans(plans, service))
    }


def ablation_y_value_mode(
    repetitions: int = 3,
    tag_count: int = 8,
    spacing_m: float = 0.08,
    service: SweepService | None = None,
) -> dict[str, dict[str, float]]:
    """Depth-based (default) vs paper-literal raw vs curvature Y comparison."""
    variants = {mode: STPPConfig(y_value_mode=mode) for mode in ("depth", "raw", "curvature")}
    plans = _config_ablation_plans(
        "ablation_y_mode", variants, repetitions, tag_count, spacing_m,
        seed_base=900, tag_moving=True,
    )
    return {
        variant: {"accuracy_y": float(np.mean(outcome.accuracy_samples("STPP", "accuracy_y")))}
        for variant, outcome in zip(variants, run_plans(plans, service))
    }


def _quadratic_fitting_task(
    rep_index: int, seed: int, tag_count: int, spacing_m: float
) -> tuple[SchemeScore, ...]:
    """One repetition of the quadratic-fit vs raw-minimum ablation."""
    positions = staircase_layout(tag_count, spacing_m, spacing_m)
    experiment = standard_experiment(positions, seed=seed)
    profiles = profiles_from_read_log(experiment.read_log)
    localizer = BatchLocalizer(STPPConfig())
    result = localizer.localize(profiles, expected_tag_ids=experiment.target_ids)
    with_fit = ordering_accuracy(experiment.true_x, result.x_ordering.ordered_ids)
    # Raw-minimum variant: order by the time of the smallest phase sample
    # inside each detected V-zone window, no fitting.
    raw_bottoms = {}
    for tag_id, vzone in result.vzones.items():
        window = profiles[tag_id].slice_index(vzone.start_index, vzone.end_index)
        unwrapped = np.unwrap(window.phases_rad)
        raw_bottoms[tag_id] = float(window.timestamps_s[int(np.argmin(unwrapped))])
    raw_order = sorted(raw_bottoms, key=lambda tid: raw_bottoms[tid])
    without_fit = ordering_accuracy(experiment.true_x, raw_order)
    return (
        SchemeScore(scheme="with_quadratic_fit", metrics={"accuracy": with_fit}),
        SchemeScore(scheme="raw_minimum", metrics={"accuracy": without_fit}),
    )


def ablation_quadratic_fitting(
    repetitions: int = 3,
    tag_count: int = 8,
    spacing_m: float = 0.05,
    service: SweepService | None = None,
) -> dict[str, float]:
    """Quadratic fitting vs raw-minimum bottom picking under dropouts."""
    plan = SweepPlan(
        name="ablation_quadratic",
        repetitions=repetitions,
        task=partial(_quadratic_fitting_task, tag_count=tag_count, spacing_m=spacing_m),
        seeds=[950 + rep for rep in range(repetitions)],
    )
    (outcome,) = run_plans([plan], service)
    return {
        variant: float(np.mean(outcome.metric_samples(variant, "accuracy")))
        for variant in ("with_quadratic_fit", "raw_minimum")
    }


def dtw_speedup_measurement(window_size: int = 5, seed: int = 4) -> dict[str, float]:
    """Measured speed-up of segmented DTW over raw-sample DTW (paper §3.1.2)."""
    import time as _time

    experiment = standard_experiment(row_layout(1, 0.1), seed=seed, speed_mps=0.1)
    profiles = profiles_from_read_log(experiment.read_log)
    profile = profiles[experiment.target_ids[0]]
    reference = canonical_reference(speed_mps=0.1)

    started = _time.perf_counter()
    subsequence_dtw(reference.profile.phases_rad, profile.phases_rad)
    full_runtime = _time.perf_counter() - started

    ref_segments = segment_profile(reference.profile, window_size)
    measured_segments = segment_profile(profile, window_size)
    started = _time.perf_counter()
    segmented_dtw_align(ref_segments, measured_segments)
    segmented_runtime = _time.perf_counter() - started
    return {
        "full_dtw_s": full_runtime,
        "segmented_dtw_s": segmented_runtime,
        "speedup": full_runtime / max(segmented_runtime, 1e-9),
        "theoretical_speedup": float(window_size**2),
    }


# --------------------------------------------------------------------------
# Scenario extensions (beyond the paper's deployments)
# --------------------------------------------------------------------------


def warehouse_conveyor_accuracy(
    repetitions: int = 3,
    config: "ConveyorConfig | None" = None,
    base_seed: int = 2015,
    service: SweepService | None = None,
) -> dict[str, dict[str, float]]:
    """Warehouse sortation conveyor: all five schemes on multi-lane batches.

    Not a paper artifact — a scenario extension: tagged cartons ride a
    variable-speed belt past the fixed antenna in parallel lanes (see
    :mod:`repro.workloads.warehouse`).  Seeds derive from
    ``np.random.SeedSequence(base_seed)``; one repetition is one batch.
    """
    plan = warehouse_sweep_plan(
        repetitions=repetitions,
        config=config if config is not None else ConveyorConfig(),
        base_seed=base_seed,
    )
    (outcome,) = run_plans([plan], service)
    return {name: outcome.mean_accuracy(name) for name in outcome.schemes()}


def summarise_boxplot(samples: dict[str, list[float]]) -> dict[str, dict[str, float]]:
    """Convenience wrapper: five-number summaries per scheme for box plots."""
    return {name: summarise(values) for name, values in samples.items()}
