"""One function per table/figure of the paper's evaluation.

Every function regenerates the data behind one of the paper's results using
the simulated deployment.  The benchmark suite (``benchmarks/``) calls these
functions and prints the rows/series next to the paper's numbers;
EXPERIMENTS.md records the comparison.

All functions take a ``repetitions`` / scale parameter so the benchmarks can
run at a tractable size; the defaults are chosen to finish in seconds while
still exhibiting the paper's trends.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..baselines import (
    BackPosScheme,
    GRssiScheme,
    LandmarcScheme,
    OTrackScheme,
    STPPScheme,
)
from ..core.dtw import segmented_dtw_align, subsequence_dtw
from ..core.fitting import fit_vzone_profile
from ..core.localizer import BatchLocalizer, STPPConfig
from ..core.reference import canonical_reference, reference_profile
from ..core.segmentation import segment_profile
from ..core.vzone import VZoneDetector
from ..rf.geometry import Point3D
from ..rfid.tag import make_tags
from ..simulation.collector import collect_sweep, profiles_from_read_log
from ..simulation.presets import (
    standard_antenna_moving_scene,
    standard_tag_moving_scene,
)
from ..workloads.airport import PAPER_PERIODS, TrafficPeriod, period_batches
from ..workloads.layouts import (
    grid_layout,
    paper_test_cases,
    random_spacing_row,
    reference_tag_grid,
    row_layout,
    staircase_layout,
)
from ..workloads.library import (
    audit_shelf,
    detect_misplaced_books,
    generate_bookshelf,
    misplace_books,
)
from .latency import LatencySample, measure_scheme_latency
from .metrics import detection_success_rate, ordering_accuracy, summarise
from .runner import SweepExperiment, mean_accuracy, run_stpp, standard_experiment

# --------------------------------------------------------------------------
# Section 2 figures: motivation and phase-profile anatomy
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class RssiLimitationResult:
    """Data behind Figure 2: peak RSSI order vs physical order."""

    times_ms: dict[str, np.ndarray]
    rssi_dbm: dict[str, np.ndarray]
    peak_time_s: dict[str, float]
    physical_order: list[str]
    peak_order: list[str]

    @property
    def peak_order_matches_physical(self) -> bool:
        """True when ordering by RSSI peaks reproduces the physical order."""
        return self.peak_order == self.physical_order


def fig02_rssi_limitation(seed: int = 3, spacing_m: float = 0.13) -> RssiLimitationResult:
    """Figure 2: RSSI fluctuates under multipath; its peak misorders tags."""
    positions = [Point3D(0.3, 0.0, 0.0), Point3D(0.3 + spacing_m, 0.0, 0.0)]
    tags = make_tags(positions, seed=seed)
    scene = standard_antenna_moving_scene(tags, speed_mps=0.1, seed=seed)
    sweep = collect_sweep(scene)
    times_ms: dict[str, np.ndarray] = {}
    rssi: dict[str, np.ndarray] = {}
    peak_time: dict[str, float] = {}
    for tag in tags:
        profile = sweep.profiles[tag.tag_id]
        times_ms[tag.tag_id] = profile.timestamps_ms()
        rssi[tag.tag_id] = profile.rssi_dbm
        peak_time[tag.tag_id] = float(
            profile.timestamps_s[int(np.argmax(profile.rssi_dbm))]
        )
    physical = tags.order_along("x")
    peak_order = sorted(peak_time, key=lambda tid: peak_time[tid])
    return RssiLimitationResult(
        times_ms=times_ms,
        rssi_dbm=rssi,
        peak_time_s=peak_time,
        physical_order=physical,
        peak_order=peak_order,
    )


@dataclass(frozen=True)
class ReferenceProfilePair:
    """Two reference profiles and the separation of their V-zone bottoms."""

    spacing_m: float
    bottom_gap_s: float
    bottom_phase_gap_rad: float
    profile_lengths: tuple[int, int]


def fig03_reference_profiles_x(
    spacings_m: tuple[float, ...] = (0.05, 0.10)
) -> dict[float, ReferenceProfilePair]:
    """Figure 3: X spacing separates reference V-zone bottoms in *time*."""
    results: dict[float, ReferenceProfilePair] = {}
    for spacing in spacings_m:
        ref_a = reference_profile(
            tag_x_m=1.45, perpendicular_distance_m=1.118,
            sweep_start_x_m=0.0, sweep_end_x_m=3.0, speed_mps=0.1,
        )
        ref_b = reference_profile(
            tag_x_m=1.45 + spacing, perpendicular_distance_m=1.118,
            sweep_start_x_m=0.0, sweep_end_x_m=3.0, speed_mps=0.1,
        )
        results[spacing] = ReferenceProfilePair(
            spacing_m=spacing,
            bottom_gap_s=ref_b.perpendicular_time_s - ref_a.perpendicular_time_s,
            bottom_phase_gap_rad=abs(
                float(ref_b.profile.phases_rad[ref_b.vzone_start_index:ref_b.vzone_end_index].min())
                - float(ref_a.profile.phases_rad[ref_a.vzone_start_index:ref_a.vzone_end_index].min())
            ),
            profile_lengths=(len(ref_a.profile), len(ref_b.profile)),
        )
    return results


def fig04_reference_profiles_y(
    spacings_m: tuple[float, ...] = (0.05, 0.10)
) -> dict[float, ReferenceProfilePair]:
    """Figure 4: Y spacing changes the V-zone *depth/shape*, not its time."""
    results: dict[float, ReferenceProfilePair] = {}
    base_distance = 1.0
    for spacing in spacings_m:
        ref_a = reference_profile(
            tag_x_m=1.5, perpendicular_distance_m=np.hypot(base_distance, 0.5),
            sweep_start_x_m=0.0, sweep_end_x_m=3.0, speed_mps=0.1,
        )
        ref_b = reference_profile(
            tag_x_m=1.5, perpendicular_distance_m=np.hypot(base_distance, 0.5 + spacing),
            sweep_start_x_m=0.0, sweep_end_x_m=3.0, speed_mps=0.1,
        )
        fit_a = fit_vzone_profile(ref_a.vzone_profile)
        fit_b = fit_vzone_profile(ref_b.vzone_profile)
        results[spacing] = ReferenceProfilePair(
            spacing_m=spacing,
            bottom_gap_s=abs(ref_b.perpendicular_time_s - ref_a.perpendicular_time_s),
            bottom_phase_gap_rad=abs(fit_a.curvature - fit_b.curvature),
            profile_lengths=(len(ref_a.profile), len(ref_b.profile)),
        )
    return results


@dataclass(frozen=True)
class MeasuredProfileResult:
    """Data behind Figures 5/6: measured (noisy, fragmentary) phase profiles."""

    spacing_m: float
    bottom_gap_s: float
    sample_counts: tuple[int, ...]
    dropout_fraction: float
    """Fraction of inventory opportunities lost to fades/dropouts (fragmentation)."""


def _measured_pair(
    positions: list[Point3D], seed: int, speed_mps: float = 0.1
) -> tuple[MeasuredProfileResult, SweepExperiment]:
    experiment = standard_experiment(positions, seed=seed, speed_mps=speed_mps)
    localizer = BatchLocalizer(STPPConfig(reference_speed_mps=speed_mps))
    profiles = profiles_from_read_log(experiment.read_log)
    result = localizer.localize(profiles, expected_tag_ids=experiment.target_ids)
    bottoms = [vz.bottom_time_s for vz in result.vzones.values()]
    counts = tuple(len(profiles[tid]) for tid in experiment.target_ids if tid in profiles)
    duration = experiment.read_log.duration_s()
    expected_reads = duration * 120.0
    total_reads = len(experiment.read_log)
    dropout = max(0.0, 1.0 - total_reads / max(expected_reads, 1.0))
    measured = MeasuredProfileResult(
        spacing_m=abs(positions[1].x - positions[0].x) or abs(positions[1].y - positions[0].y),
        bottom_gap_s=abs(bottoms[1] - bottoms[0]) if len(bottoms) >= 2 else float("nan"),
        sample_counts=counts,
        dropout_fraction=float(dropout),
    )
    return measured, experiment


def fig05_measured_profiles_x(
    spacings_m: tuple[float, ...] = (0.05, 0.10), seed: int = 1
) -> dict[float, MeasuredProfileResult]:
    """Figure 5: measured profiles along X still separate in bottom time."""
    results = {}
    for spacing in spacings_m:
        positions = [Point3D(0.4, 0.0, 0.0), Point3D(0.4 + spacing, 0.0, 0.0)]
        results[spacing], _ = _measured_pair(positions, seed)
    return results


def fig06_measured_profiles_y(
    spacings_m: tuple[float, ...] = (0.05, 0.10), seed: int = 1
) -> dict[float, MeasuredProfileResult]:
    """Figure 6: measured profiles along Y differ in V-zone shape."""
    results = {}
    for spacing in spacings_m:
        positions = [Point3D(0.4, 0.0, 0.0), Point3D(0.4, spacing, 0.0)]
        # The standard micro-benchmark sweep speed keeps the profiles short
        # enough for a clean side-by-side V-zone comparison.
        results[spacing], _ = _measured_pair(positions, seed, speed_mps=0.3)
    return results


# --------------------------------------------------------------------------
# Section 3 figures: the STPP machinery itself
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class DTWAlignmentResult:
    """Data behind Figure 7: V-zone located by (segmented) DTW."""

    dtw_cost: float
    detected_bottom_time_s: float
    true_perpendicular_time_s: float
    bottom_error_s: float
    detected_window_s: tuple[float, float]


def fig07_dtw_alignment(seed: int = 2) -> DTWAlignmentResult:
    """Figure 7: match the reference profile into a measured profile via DTW."""
    positions = row_layout(3, 0.15)
    experiment = standard_experiment(positions, seed=seed)
    profiles = profiles_from_read_log(experiment.read_log)
    detector = VZoneDetector(method="segmented_dtw", fallback_to_longest_run=False)
    middle_tag = experiment.target_ids[1]
    vzone = detector.detect(profiles[middle_tag])
    if vzone is None:
        raise RuntimeError("V-zone detection failed on the Figure 7 scenario")
    true_x = experiment.true_x[middle_tag]
    # Recover the true perpendicular time by scanning the known trajectory.
    times = np.linspace(0.0, experiment.scene.scenario.duration_s, 2000)
    antenna_x = np.array(
        [experiment.scene.scenario.antenna_position(t).x for t in times]
    )
    true_time = float(times[int(np.argmin(np.abs(antenna_x - true_x)))])
    return DTWAlignmentResult(
        dtw_cost=vzone.dtw_cost,
        detected_bottom_time_s=vzone.bottom_time_s,
        true_perpendicular_time_s=true_time,
        bottom_error_s=abs(vzone.bottom_time_s - true_time),
        detected_window_s=(vzone.start_time_s, vzone.end_time_s),
    )


@dataclass(frozen=True)
class SegmentationResult:
    """Data behind Figure 8: the coarse segment representation."""

    sample_count: int
    segment_count: int
    window_size: int
    compression_ratio: float
    wrap_splits: int


def fig08_segmentation(seed: int = 2, window_size: int = 5) -> SegmentationResult:
    """Figure 8: a measured profile reduced to range/interval segments."""
    experiment = standard_experiment(row_layout(1, 0.1), seed=seed, speed_mps=0.1)
    profiles = profiles_from_read_log(experiment.read_log)
    profile = profiles[experiment.target_ids[0]]
    segments = segment_profile(profile, window_size)
    plain_segment_count = int(np.ceil(len(profile) / window_size))
    return SegmentationResult(
        sample_count=len(profile),
        segment_count=len(segments),
        window_size=window_size,
        compression_ratio=len(profile) / max(len(segments), 1),
        wrap_splits=len(segments) - plain_segment_count,
    )


@dataclass(frozen=True)
class QuadraticFittingResult:
    """Data behind Figure 9: three tags ordered by fitted bottom times."""

    detected_order: list[str]
    true_order: list[str]
    bottom_times_s: dict[str, float]
    correct: bool


def fig09_quadratic_fitting(seed: int = 5) -> QuadraticFittingResult:
    """Figure 9: quadratic fits order tags 15 cm and 2 cm apart."""
    # Tag 03 -- 15cm -- Tag 01 -- 2cm -- Tag 02, matching the paper's example.
    positions = [Point3D(0.15, 0.0, 0.0), Point3D(0.17, 0.0, 0.0), Point3D(0.0, 0.0, 0.0)]
    experiment = standard_experiment(positions, seed=seed, speed_mps=0.1)
    evaluation, _ = run_stpp(experiment, STPPConfig(reference_speed_mps=0.1))
    localizer = BatchLocalizer(STPPConfig(reference_speed_mps=0.1))
    profiles = profiles_from_read_log(experiment.read_log)
    result = localizer.localize(profiles, expected_tag_ids=experiment.target_ids)
    true_order = sorted(experiment.target_ids, key=lambda tid: experiment.true_x[tid])
    return QuadraticFittingResult(
        detected_order=list(result.x_ordering.ordered_ids),
        true_order=true_order,
        bottom_times_s=dict(result.x_ordering.scores),
        correct=evaluation.accuracy_x == 1.0,
    )


# --------------------------------------------------------------------------
# Section 4 micro-benchmarks
# --------------------------------------------------------------------------


def fig12_window_size(
    window_sizes: tuple[int, ...] = (1, 3, 5, 7, 9),
    repetitions: int = 3,
    tag_count: int = 8,
    spacing_m: float = 0.08,
) -> dict[str, dict[int, float]]:
    """Figure 12: coarse-segment window size vs ordering accuracy."""
    results: dict[str, dict[int, float]] = {"tag_moving": {}, "antenna_moving": {}}
    for case, tag_moving in (("tag_moving", True), ("antenna_moving", False)):
        for window in window_sizes:
            evaluations = []
            for rep in range(repetitions):
                positions = staircase_layout(tag_count, spacing_m, spacing_m)
                experiment = standard_experiment(
                    positions, seed=100 * window + rep, tag_moving=tag_moving
                )
                config = STPPConfig(window_size=window, detection_method="segmented_dtw")
                evaluation, _ = run_stpp(experiment, config)
                evaluations.append(evaluation)
            results[case][window] = mean_accuracy(evaluations)["combined"]
    return results


def _spacing_sweep(
    spacings_m: tuple[float, ...],
    repetitions: int,
    tag_moving: bool,
    tag_count: int = 8,
) -> dict[float, dict[str, float]]:
    results: dict[float, dict[str, float]] = {}
    for spacing in spacings_m:
        evaluations = []
        for rep in range(repetitions):
            positions = staircase_layout(tag_count, spacing, spacing)
            experiment = standard_experiment(
                positions, seed=int(spacing * 1000) * 10 + rep, tag_moving=tag_moving
            )
            evaluation, _ = run_stpp(experiment)
            evaluations.append(evaluation)
        results[spacing] = mean_accuracy(evaluations)
    return results


def fig13_spacing_tag_moving(
    spacings_m: tuple[float, ...] = (0.02, 0.04, 0.06, 0.08, 0.10),
    repetitions: int = 3,
) -> dict[float, dict[str, float]]:
    """Figure 13: tag-to-tag distance vs accuracy, tag-moving (conveyor) case."""
    return _spacing_sweep(spacings_m, repetitions, tag_moving=True)


def fig14_spacing_antenna_moving(
    spacings_m: tuple[float, ...] = (0.02, 0.04, 0.06, 0.08, 0.10),
    repetitions: int = 3,
) -> dict[float, dict[str, float]]:
    """Figure 14: tag-to-tag distance vs accuracy, antenna-moving case."""
    return _spacing_sweep(spacings_m, repetitions, tag_moving=False)


def table1_population(
    populations: tuple[int, ...] = (5, 10, 15, 20, 25, 30),
    repetitions: int = 2,
) -> dict[str, dict[int, dict[str, float]]]:
    """Table 1: tag population within the reading zone vs ordering accuracy."""
    results: dict[str, dict[int, dict[str, float]]] = {
        "tag_moving": {},
        "antenna_moving": {},
    }
    for case, tag_moving in (("tag_moving", True), ("antenna_moving", False)):
        for population in populations:
            evaluations = []
            for rep in range(repetitions):
                rng = np.random.default_rng(1000 + population * 10 + rep)
                positions = random_spacing_row(
                    population, 0.02, 0.10, rng=rng, y_jitter_m=0.05
                )
                experiment = standard_experiment(
                    positions, seed=population * 100 + rep, tag_moving=tag_moving
                )
                evaluation, _ = run_stpp(experiment)
                evaluations.append(evaluation)
            results[case][population] = mean_accuracy(evaluations)
    return results


# --------------------------------------------------------------------------
# Section 4 macro-benchmarks: scheme comparison
# --------------------------------------------------------------------------


def _schemes_for(experiment: SweepExperiment) -> list:
    """Instantiate the five schemes for one experiment's deployment."""
    xs = [experiment.true_x[tid] for tid in experiment.target_ids]
    ys = [experiment.true_y[tid] for tid in experiment.target_ids]
    margin = 0.3
    backpos = BackPosScheme(
        antenna_position_at=experiment.scene.scenario.antenna_position,
        region_min=Point3D(min(xs) - margin, min(ys) - margin, 0.0),
        region_max=Point3D(max(xs) + margin, max(ys) + margin, 0.0),
    )
    landmarc = LandmarcScheme(reference_positions=experiment.reference_positions)
    return [GRssiScheme(), OTrackScheme(), landmarc, backpos, STPPScheme()]


def fig17_scheme_comparison(
    repetitions: int = 1,
    layout_spacing_m: float = 0.04,
    tag_count: int = 10,
) -> dict[str, dict[str, float]]:
    """Figure 17: ordering accuracy of the five schemes over the five layouts.

    The paper places adjacent tags 1–10 cm apart across the five layout
    settings of Figure 16; ``layout_spacing_m`` controls the adjacent-tag
    distance of the approximated layouts.
    """
    per_scheme: dict[str, list] = {}
    layouts = paper_test_cases(spacing_m=layout_spacing_m)
    for rep in range(repetitions):
        for layout_index, positions in enumerate(layouts.values()):
            if len(positions) > tag_count:
                positions = positions[:tag_count]
            xs = [p.x for p in positions]
            ys = [p.y for p in positions]
            reference_grid = reference_tag_grid(
                max(xs) - min(xs) + 0.2, max(ys) - min(ys) + 0.2, spacing_m=0.15,
                origin=Point3D(min(xs) - 0.1, min(ys) - 0.1, 0.0),
            )
            experiment = standard_experiment(
                positions,
                seed=500 + 17 * rep + layout_index,
                reference_grid=reference_grid,
            )
            for scheme in _schemes_for(experiment):
                run = experiment.run_scheme(scheme)
                per_scheme.setdefault(scheme.name, []).append(run.evaluation)
    return {
        name: mean_accuracy(evaluations) for name, evaluations in per_scheme.items()
    }


def fig18_spacing_boxplot(
    spacings_m: tuple[float, ...] = (0.10, 0.25, 0.50),
    repetitions: int = 2,
    tag_count: int = 10,
) -> dict[str, list[float]]:
    """Figure 18: per-scheme accuracy distribution as spacing shrinks (20→10 tags scaled)."""
    samples: dict[str, list[float]] = {}
    for spacing in spacings_m:
        for rep in range(repetitions):
            positions = staircase_layout(tag_count, spacing, min(spacing, 0.10))
            xs = [p.x for p in positions]
            ys = [p.y for p in positions]
            # Keep the Landmarc reference deployment sparse (a handful of
            # anchors), otherwise the reference tags dominate the reading
            # zone and starve every scheme of reads on the target tags.
            span_x = max(xs) - min(xs) + 0.2
            span_y = max(ys) - min(ys) + 0.2
            reference_grid = reference_tag_grid(
                span_x, span_y, spacing_m=max(0.25, span_x / 4.0),
                origin=Point3D(min(xs) - 0.1, min(ys) - 0.1, 0.0),
            )
            experiment = standard_experiment(
                positions,
                seed=int(spacing * 100) * 10 + rep,
                reference_grid=reference_grid,
            )
            for scheme in _schemes_for(experiment):
                run = experiment.run_scheme(scheme)
                samples.setdefault(scheme.name, []).append(run.evaluation.combined)
    return samples


def fig19_population_boxplot(
    populations: tuple[int, ...] = (5, 10, 20, 30),
    repetitions: int = 2,
    spacing_m: float = 0.10,
) -> dict[str, list[float]]:
    """Figure 19: STPP vs OTrack accuracy distribution as population grows."""
    samples: dict[str, list[float]] = {"STPP": [], "OTrack": []}
    for population in populations:
        for rep in range(repetitions):
            positions = staircase_layout(population, spacing_m, spacing_m)
            experiment = standard_experiment(
                positions, seed=population * 13 + rep, tag_moving=True
            )
            for scheme in (STPPScheme(), OTrackScheme()):
                run = experiment.run_scheme(scheme)
                samples[scheme.name].append(run.evaluation.accuracy_x)
    return samples


# --------------------------------------------------------------------------
# Section 5 case studies
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class LibraryLayoutResult:
    """Data behind Figure 21: detected book layout with wrongly ordered books."""

    accuracy: float
    wrong_books: list[str]
    wrong_book_thicknesses_m: list[float]
    median_thickness_m: float
    per_level_accuracy: dict[int, float]


def fig21_library_layout(
    seed: int = 11, books_per_level: int = 15, levels: int = 3
) -> LibraryLayoutResult:
    """Figure 21: one full shelf sweep; errors concentrate on thin books."""
    shelf = generate_bookshelf(levels=levels, books_per_level=books_per_level, seed=seed)
    tags = shelf.to_tags(seed=seed)
    scene = standard_antenna_moving_scene(tags, seed=seed)
    sweep = collect_sweep(scene)
    localizer = BatchLocalizer(STPPConfig())
    result = localizer.localize(sweep.profiles, expected_tag_ids=tags.ids())

    label_by_id = {tag.tag_id: tag.label for tag in tags}
    x_by_id = {tag.tag_id: tag.position.x for tag in tags}
    level_by_label = {book.call_number: book.level for book in shelf.books}
    thickness_by_label = {book.call_number: book.thickness_m for book in shelf.books}

    wrong: list[str] = []
    per_level_accuracy: dict[int, float] = {}
    for level in shelf.levels:
        level_ids = [tid for tid in tags.ids() if level_by_label[label_by_id[tid]] == level]
        truth = {tid: x_by_id[tid] for tid in level_ids}
        detected = [tid for tid in result.x_ordering.ordered_ids if tid in truth]
        accuracy = ordering_accuracy(truth, detected)
        per_level_accuracy[level] = accuracy
        true_rank = {tid: rank for rank, tid in enumerate(sorted(truth, key=truth.get))}
        for rank, tid in enumerate(detected):
            if true_rank[tid] != rank:
                wrong.append(label_by_id[tid])

    # The deployment's relative-localization accuracy is the per-level ordering
    # accuracy (books are only ever reshelved within their level).
    overall = float(np.mean(list(per_level_accuracy.values())))
    return LibraryLayoutResult(
        accuracy=overall,
        wrong_books=wrong,
        wrong_book_thicknesses_m=[thickness_by_label[b] for b in wrong],
        median_thickness_m=float(np.median([b.thickness_m for b in shelf.books])),
        per_level_accuracy=per_level_accuracy,
    )


def case_library_headline(
    sweeps: int = 5, books_per_level: int = 15, levels: int = 3
) -> float:
    """§5.1 headline: mean per-level ordering accuracy over repeated sweeps."""
    accuracies = []
    for sweep_index in range(sweeps):
        layout = fig21_library_layout(
            seed=20 + sweep_index, books_per_level=books_per_level, levels=levels
        )
        accuracies.append(layout.accuracy)
    return float(np.mean(accuracies))


def table2_misplaced_books(
    counts: tuple[int, ...] = (1, 2, 3),
    repetitions: int = 5,
    books_per_level: int = 15,
    levels: int = 1,
) -> dict[int, float]:
    """Table 2: success rate of detecting 1/2/3 misplaced books."""
    results: dict[int, float] = {}
    # One batched engine audits every shelf; the reference profile and its
    # segmentation are built once and shared across all repetitions.
    engine = BatchLocalizer(STPPConfig())
    for count in counts:
        successes: list[bool] = []
        for rep in range(repetitions):
            seed = 300 + count * 50 + rep
            rng = np.random.default_rng(seed)
            shelf = generate_bookshelf(
                levels=levels, books_per_level=books_per_level, seed=seed
            )
            shuffled, misplaced = misplace_books(shelf, count, rng=rng)
            flagged = audit_shelf(shuffled, seed=seed, localizer=engine)
            successes.append(all(book in flagged for book in misplaced))
        results[count] = detection_success_rate(successes)
    return results


def table3_baggage(
    periods: tuple[TrafficPeriod, ...] = PAPER_PERIODS,
    bags_per_batch: int = 15,
    batches_per_period: int = 2,
) -> dict[str, dict[str, float]]:
    """Table 3: baggage ordering accuracy per scheme and traffic period."""
    results: dict[str, dict[str, float]] = {}
    for period in periods:
        batches = period_batches(
            period,
            bags_per_batch=bags_per_batch,
            total_bags=bags_per_batch * batches_per_period,
            seed=period.start_hour,
        )
        per_scheme_correct: dict[str, list[float]] = {}
        for batch in batches:
            scene = standard_tag_moving_scene(
                batch.tags,
                seed=batch.batch_index + period.start_hour,
            )
            sweep = collect_sweep(scene)
            truth = {tag.tag_id: tag.position.x for tag in batch.tags}
            for scheme in (STPPScheme(), OTrackScheme(), GRssiScheme()):
                scheme_result = scheme.order(sweep.read_log, batch.tags.ids())
                accuracy = ordering_accuracy(truth, scheme_result.x_ordering.ordered_ids)
                per_scheme_correct.setdefault(scheme.name, []).append(accuracy)
        for name, values in per_scheme_correct.items():
            results.setdefault(name, {})[period.name] = float(np.mean(values))
    return results


def fig23_latency_cdf(
    bag_count: int = 30, seed: int = 7
) -> dict[str, list[LatencySample]]:
    """Figure 23: ordering-latency distribution of STPP vs OTrack."""
    positions = random_spacing_row(bag_count, 0.05, 0.20, rng=np.random.default_rng(seed))
    experiment = standard_experiment(positions, seed=seed, tag_moving=True)
    samples: dict[str, list[LatencySample]] = {}
    # STPP must wait for the trailing half of each V-zone before the order is
    # final; OTrack only waits for its active window to close, so its
    # collection tail is shorter.  Both add their own computation time.
    tails = {"STPP": 1.3, "OTrack": 1.2}
    for scheme in (STPPScheme(), OTrackScheme()):
        samples[scheme.name] = measure_scheme_latency(
            scheme,
            experiment.read_log,
            experiment.target_ids,
            collection_tail_s=tails[scheme.name],
        )
    return samples


# --------------------------------------------------------------------------
# Ablations (design choices called out in the paper)
# --------------------------------------------------------------------------


def ablation_segmented_vs_full_dtw(
    repetitions: int = 2, tag_count: int = 6, spacing_m: float = 0.08
) -> dict[str, dict[str, float]]:
    """Segmented DTW (w=5) vs full-sample DTW: accuracy and detection runtime."""
    import time as _time

    results: dict[str, dict[str, float]] = {}
    for method in ("segmented_dtw", "full_dtw", "longest_run"):
        accuracies = []
        runtimes = []
        for rep in range(repetitions):
            positions = staircase_layout(tag_count, spacing_m, spacing_m)
            experiment = standard_experiment(positions, seed=700 + rep)
            config = STPPConfig(detection_method=method)
            started = _time.perf_counter()
            evaluation, _ = run_stpp(experiment, config)
            runtimes.append(_time.perf_counter() - started)
            accuracies.append(evaluation.combined)
        results[method] = {
            "accuracy": float(np.mean(accuracies)),
            "runtime_s": float(np.mean(runtimes)),
        }
    return results


def ablation_pivot_vs_all_pairs(
    repetitions: int = 3, tag_count: int = 8, spacing_m: float = 0.08
) -> dict[str, dict[str, float]]:
    """Pivot-based Y ordering (M−1 comparisons) vs all-pairs comparison."""
    results: dict[str, dict[str, float]] = {}
    for comparison in ("pivot", "all_pairs"):
        accuracies = []
        for rep in range(repetitions):
            positions = staircase_layout(tag_count, spacing_m, spacing_m)
            experiment = standard_experiment(positions, seed=800 + rep, tag_moving=True)
            config = STPPConfig(y_comparison=comparison)
            evaluation, _ = run_stpp(experiment, config)
            accuracies.append(evaluation.accuracy_y)
        results[comparison] = {"accuracy_y": float(np.mean(accuracies))}
    return results


def ablation_y_value_mode(
    repetitions: int = 3, tag_count: int = 8, spacing_m: float = 0.08
) -> dict[str, dict[str, float]]:
    """Depth-based (default) vs paper-literal raw vs curvature Y comparison."""
    results: dict[str, dict[str, float]] = {}
    for mode in ("depth", "raw", "curvature"):
        accuracies = []
        for rep in range(repetitions):
            positions = staircase_layout(tag_count, spacing_m, spacing_m)
            experiment = standard_experiment(positions, seed=900 + rep, tag_moving=True)
            config = STPPConfig(y_value_mode=mode)
            evaluation, _ = run_stpp(experiment, config)
            accuracies.append(evaluation.accuracy_y)
        results[mode] = {"accuracy_y": float(np.mean(accuracies))}
    return results


def ablation_quadratic_fitting(
    repetitions: int = 3, tag_count: int = 8, spacing_m: float = 0.05
) -> dict[str, float]:
    """Quadratic fitting vs raw-minimum bottom picking under dropouts."""
    with_fit: list[float] = []
    without_fit: list[float] = []
    for rep in range(repetitions):
        positions = staircase_layout(tag_count, spacing_m, spacing_m)
        experiment = standard_experiment(positions, seed=950 + rep)
        profiles = profiles_from_read_log(experiment.read_log)
        localizer = BatchLocalizer(STPPConfig())
        result = localizer.localize(profiles, expected_tag_ids=experiment.target_ids)
        with_fit.append(
            ordering_accuracy(experiment.true_x, result.x_ordering.ordered_ids)
        )
        # Raw-minimum variant: order by the time of the smallest phase sample
        # inside each detected V-zone window, no fitting.
        raw_bottoms = {}
        for tag_id, vzone in result.vzones.items():
            window = profiles[tag_id].slice_index(vzone.start_index, vzone.end_index)
            unwrapped = np.unwrap(window.phases_rad)
            raw_bottoms[tag_id] = float(
                window.timestamps_s[int(np.argmin(unwrapped))]
            )
        raw_order = sorted(raw_bottoms, key=lambda tid: raw_bottoms[tid])
        without_fit.append(ordering_accuracy(experiment.true_x, raw_order))
    return {
        "with_quadratic_fit": float(np.mean(with_fit)),
        "raw_minimum": float(np.mean(without_fit)),
    }


def dtw_speedup_measurement(window_size: int = 5, seed: int = 4) -> dict[str, float]:
    """Measured speed-up of segmented DTW over raw-sample DTW (paper §3.1.2)."""
    import time as _time

    experiment = standard_experiment(row_layout(1, 0.1), seed=seed, speed_mps=0.1)
    profiles = profiles_from_read_log(experiment.read_log)
    profile = profiles[experiment.target_ids[0]]
    reference = canonical_reference(speed_mps=0.1)

    started = _time.perf_counter()
    subsequence_dtw(reference.profile.phases_rad, profile.phases_rad)
    full_runtime = _time.perf_counter() - started

    ref_segments = segment_profile(reference.profile, window_size)
    measured_segments = segment_profile(profile, window_size)
    started = _time.perf_counter()
    segmented_dtw_align(ref_segments, measured_segments)
    segmented_runtime = _time.perf_counter() - started
    return {
        "full_dtw_s": full_runtime,
        "segmented_dtw_s": segmented_runtime,
        "speedup": full_runtime / max(segmented_runtime, 1e-9),
        "theoretical_speedup": float(window_size**2),
    }


def summarise_boxplot(samples: dict[str, list[float]]) -> dict[str, dict[str, float]]:
    """Convenience wrapper: five-number summaries per scheme for box plots."""
    return {name: summarise(values) for name, values in samples.items()}
