"""Experiment runner: simulate sweeps and score schemes on them.

The functions here are the glue every experiment in
:mod:`repro.evaluation.experiments` uses: build a scene, run the sweep once,
hand the resulting read log to one or more schemes, and score each scheme's
orderings against the ground-truth tag coordinates.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..baselines.base import OrderingScheme, SchemeResult
from ..core.localizer import BatchLocalizer, STPPConfig
from ..rf.geometry import Point3D
from ..rfid.reading import ReadLog
from ..rfid.tag import Tag, TagCollection, make_tags
from ..simulation.collector import collect_sweep, profiles_from_read_log
from ..simulation.presets import (
    standard_antenna_moving_scene,
    standard_tag_moving_scene,
)
from ..simulation.scene import Scene
from .metrics import OrderingEvaluation, evaluate_ordering


@dataclass(frozen=True)
class SchemeRun:
    """One scheme scored on one sweep."""

    scheme: str
    evaluation: OrderingEvaluation
    latency_s: float
    result: SchemeResult


@dataclass
class SweepExperiment:
    """A simulated sweep plus everything needed to score schemes on it."""

    scene: Scene
    read_log: ReadLog
    target_ids: list[str]
    true_x: dict[str, float]
    true_y: dict[str, float]
    reference_positions: dict[str, Point3D] = field(default_factory=dict)

    def run_scheme(self, scheme: OrderingScheme) -> SchemeRun:
        """Score ``scheme`` on this sweep's read log."""
        started = time.perf_counter()
        result = scheme.order(self.read_log, self.target_ids)
        latency = time.perf_counter() - started
        evaluation = evaluate_ordering(
            self.true_x,
            self.true_y,
            result.x_ordering.ordered_ids,
            result.y_ordering.ordered_ids,
        )
        return SchemeRun(
            scheme=scheme.name,
            evaluation=evaluation,
            latency_s=latency,
            result=result,
        )


def build_experiment(
    scene: Scene,
    target_tags: TagCollection | None = None,
    reference_positions: dict[str, Point3D] | None = None,
) -> SweepExperiment:
    """Simulate ``scene`` once and package it for scheme scoring.

    ``target_tags`` restricts scoring to a subset of the scene's tags (used
    when the scene also contains Landmarc reference tags); it defaults to all
    tags in the scene.
    """
    sweep = collect_sweep(scene)
    targets = target_tags if target_tags is not None else scene.tags
    return SweepExperiment(
        scene=scene,
        read_log=sweep.read_log,
        target_ids=targets.ids(),
        true_x={tag.tag_id: tag.position.x for tag in targets},
        true_y={tag.tag_id: tag.position.y for tag in targets},
        reference_positions=reference_positions or {},
    )


REFERENCE_TAG_SEED_OFFSET = 9973
"""Seed offset separating reference-tag EPCs from same-seed target tags."""


def make_reference_tags(
    grid: list[Point3D], seed: int | None
) -> tuple[TagCollection, dict[str, Point3D]]:
    """Landmarc reference tags for a deployment grid.

    Returns the tags (labelled ``"ref"`` so they are recognisable in scenes
    and read logs) and the id → known-position map the Landmarc scheme needs.
    Shared by :func:`standard_experiment` and the warehouse conveyor workload
    so the seeding and labelling conventions cannot diverge.
    """
    raw = make_tags(grid, seed=None if seed is None else seed + REFERENCE_TAG_SEED_OFFSET)
    relabelled: list[Tag] = []
    positions: dict[str, Point3D] = {}
    for tag in raw:
        relabelled.append(Tag(epc=tag.epc, position=tag.position, model=tag.model, label="ref"))
        positions[tag.tag_id] = tag.position
    return TagCollection(relabelled), positions


def standard_experiment(
    positions: list[Point3D],
    seed: int = 0,
    tag_moving: bool = False,
    speed_mps: float = 0.3,
    reference_grid: list[Point3D] | None = None,
    **scene_kwargs,
) -> SweepExperiment:
    """Build a standard sweep experiment over ``positions``.

    ``reference_grid`` optionally adds Landmarc reference tags at known
    positions; they participate in the sweep but are excluded from scoring.
    """
    target_tags = make_tags(positions, seed=seed)
    all_tags = TagCollection(list(target_tags.tags))
    reference_positions: dict[str, Point3D] = {}
    if reference_grid:
        reference_tags, reference_positions = make_reference_tags(reference_grid, seed)
        for tag in reference_tags:
            all_tags.add(tag)
    if tag_moving:
        scene = standard_tag_moving_scene(
            all_tags, belt_speed_mps=speed_mps, seed=seed, **scene_kwargs
        )
    else:
        scene = standard_antenna_moving_scene(
            all_tags, speed_mps=speed_mps, seed=seed, **scene_kwargs
        )
    return build_experiment(
        scene, target_tags=target_tags, reference_positions=reference_positions
    )


def standard_scheme_suite(experiment: SweepExperiment) -> list[OrderingScheme]:
    """Instantiate the paper's five comparison schemes for one deployment.

    BackPos gets the sweep's antenna trajectory and a search region padded
    around the target tags; Landmarc gets the experiment's reference-tag
    deployment (it raises when the experiment has fewer reference tags than
    its ``k``).  Module-level so sweep plans that score the full suite remain
    picklable.
    """
    from ..baselines import (
        BackPosScheme,
        GRssiScheme,
        LandmarcScheme,
        OTrackScheme,
        STPPScheme,
    )

    xs = [experiment.true_x[tid] for tid in experiment.target_ids]
    ys = [experiment.true_y[tid] for tid in experiment.target_ids]
    margin = 0.3
    backpos = BackPosScheme(
        antenna_position_at=experiment.scene.scenario.antenna_position,
        region_min=Point3D(min(xs) - margin, min(ys) - margin, 0.0),
        region_max=Point3D(max(xs) + margin, max(ys) + margin, 0.0),
    )
    landmarc = LandmarcScheme(reference_positions=experiment.reference_positions)
    return [GRssiScheme(), OTrackScheme(), landmarc, backpos, STPPScheme()]


def run_stpp(
    experiment: SweepExperiment, config: STPPConfig | None = None
) -> tuple[OrderingEvaluation, float]:
    """Run STPP directly on the experiment's profiles; returns (scores, latency).

    Goes through the batched localization engine: all of the experiment's tags
    are DTW-aligned against the shared reference in one accumulation pass.
    """
    config = config if config is not None else STPPConfig()
    localizer = BatchLocalizer(config)
    profiles = profiles_from_read_log(experiment.read_log)
    started = time.perf_counter()
    result = localizer.localize(profiles, expected_tag_ids=experiment.target_ids)
    latency = time.perf_counter() - started
    evaluation = evaluate_ordering(
        experiment.true_x,
        experiment.true_y,
        result.x_ordering.ordered_ids,
        result.y_ordering.ordered_ids,
    )
    return evaluation, latency


def mean_accuracy(runs: list[OrderingEvaluation]) -> dict[str, float]:
    """Average the axis accuracies of several runs."""
    if not runs:
        raise ValueError("need at least one run")
    return {
        "x": float(np.mean([r.accuracy_x for r in runs])),
        "y": float(np.mean([r.accuracy_y for r in runs])),
        "combined": float(np.mean([r.combined for r in runs])),
    }
