"""Declarative sweep plans and a sharded parallel execution service.

Before this module, every figure/table generator in
:mod:`repro.evaluation.experiments` carried its own ``for rep in
range(repetitions)`` loop, re-simulating sweeps one at a time.  Since the STPP
core itself is batched and fast, those serial loops dominate the cost of
regenerating the paper's results.  This module replaces them with one engine:

* :class:`SweepPlan` describes a sweep declaratively — how many repetitions,
  how each repetition derives its seed, and what work one repetition performs
  (build a scene, score schemes on it).
* :class:`SweepService` executes plans.  Repetitions are split into shards and
  run across a :class:`concurrent.futures.ProcessPoolExecutor`; the serial
  fallback runs the very same shard function in-process, so serial and
  sharded execution are **bit-identical** (pinned by
  ``tests/test_sweep_service.py``).

Determinism is anchored in the plan, not the executor: each repetition's seed
is fixed up front — either an explicit per-repetition ``seeds`` tuple, or
children spawned from ``np.random.SeedSequence(base_seed)`` — so the result of
repetition *i* is a pure function of ``(i, seed_i)`` and cannot depend on
shard size, worker count, or scheduling order.

Everything a plan carries must be picklable: tasks are module-level functions
(or :func:`functools.partial` of them), never closures or lambdas.
"""

from __future__ import annotations

import os
from collections import deque
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field
from functools import partial
from typing import Callable, Iterable, Mapping, Sequence

import numpy as np

from ..rfid.backends import PHYSICS_BACKEND_ENV
from .metrics import OrderingEvaluation
from .runner import SweepExperiment

_WORKERS_ENV = "REPRO_SWEEP_WORKERS"
"""Environment override for the default worker count (e.g. CI pins it to 1)."""


# --------------------------------------------------------------------------
# Results
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class SchemeScore:
    """One scheme's score on one repetition of a sweep.

    ``evaluation`` is the tie-aware ordering evaluation for scheme-style
    repetitions; ``metrics`` carries free-form scalars for repetitions that do
    not reduce to an :class:`OrderingEvaluation` (e.g. a detection success
    flag, a runtime).
    """

    scheme: str
    evaluation: OrderingEvaluation | None = None
    latency_s: float = float("nan")
    metrics: Mapping[str, float] = field(default_factory=dict)


@dataclass(frozen=True)
class RepetitionResult:
    """Everything one repetition of a plan produced."""

    plan: str
    rep_index: int
    seed: int
    scores: tuple[SchemeScore, ...]


@dataclass(frozen=True)
class SweepOutcome:
    """All repetitions of one plan, in repetition order."""

    plan: str
    results: tuple[RepetitionResult, ...]

    def schemes(self) -> list[str]:
        """Scheme names present in the results, in first-seen order."""
        seen: dict[str, None] = {}
        for result in self.results:
            for score in result.scores:
                seen.setdefault(score.scheme, None)
        return list(seen)

    def scores_for(self, scheme: str) -> list[SchemeScore]:
        """Every repetition's score entry for ``scheme``."""
        return [
            score
            for result in self.results
            for score in result.scores
            if score.scheme == scheme
        ]

    def evaluations(self, scheme: str) -> list[OrderingEvaluation]:
        """Ordering evaluations of ``scheme`` across repetitions."""
        return [s.evaluation for s in self.scores_for(scheme) if s.evaluation is not None]

    def mean_accuracy(self, scheme: str) -> dict[str, float]:
        """Mean x/y/combined accuracy of ``scheme`` (see runner.mean_accuracy)."""
        from .runner import mean_accuracy

        return mean_accuracy(self.evaluations(scheme))

    def accuracy_samples(self, scheme: str, attribute: str = "combined") -> list[float]:
        """Per-repetition accuracy samples of ``scheme`` (for box plots)."""
        return [float(getattr(e, attribute)) for e in self.evaluations(scheme)]

    def latencies(self, scheme: str) -> list[float]:
        """Per-repetition latency of ``scheme``, seconds."""
        return [float(s.latency_s) for s in self.scores_for(scheme)]

    def metric_samples(self, scheme: str, key: str) -> list[float]:
        """Per-repetition free-form metric values of ``scheme``."""
        return [float(s.metrics[key]) for s in self.scores_for(scheme) if key in s.metrics]


# --------------------------------------------------------------------------
# Plans
# --------------------------------------------------------------------------

RepetitionTask = Callable[[int, int], "Sequence[SchemeScore]"]
"""``task(rep_index, seed)`` -> the scores of one repetition (picklable)."""

ExperimentFactory = Callable[[int, int], SweepExperiment]
"""``factory(rep_index, seed)`` -> one simulated sweep (picklable)."""

ExperimentScorer = Callable[[SweepExperiment], "Sequence[SchemeScore]"]
"""``scorer(experiment)`` -> scheme scores on that sweep (picklable)."""


@dataclass(frozen=True)
class SweepPlan:
    """A declarative description of one repeated sweep.

    Parameters
    ----------
    name:
        Identifies the plan in results and logs.
    repetitions:
        How many independent repetitions to run.
    task:
        The work of one repetition: ``task(rep_index, seed)`` returns the
        repetition's :class:`SchemeScore` entries.  Must be picklable (a
        module-level function or a partial of one).
    base_seed:
        Root of the deterministic seed derivation when ``seeds`` is not given:
        repetition *i* receives the first ``uint32`` drawn from the *i*-th
        child of ``np.random.SeedSequence(base_seed).spawn(repetitions)``.
    seeds:
        Explicit per-repetition seeds (overrides the derivation).  Used by the
        ported paper experiments to preserve their historical seed values.
    """

    name: str
    repetitions: int
    task: RepetitionTask
    base_seed: int = 0
    seeds: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        if self.repetitions < 1:
            raise ValueError(f"repetitions must be >= 1, got {self.repetitions}")
        if self.seeds is not None and len(self.seeds) != self.repetitions:
            raise ValueError(
                f"plan {self.name!r}: got {len(self.seeds)} seeds "
                f"for {self.repetitions} repetitions"
            )

    def resolved_seeds(self) -> tuple[int, ...]:
        """The seed of every repetition, fixed before any shard runs."""
        if self.seeds is not None:
            return tuple(int(s) for s in self.seeds)
        children = np.random.SeedSequence(self.base_seed).spawn(self.repetitions)
        return tuple(int(child.generate_state(1, dtype=np.uint32)[0]) for child in children)


def _scene_task(
    rep_index: int,
    seed: int,
    scene_factory: ExperimentFactory,
    scorer: ExperimentScorer,
) -> tuple[SchemeScore, ...]:
    """The canonical repetition task: build one sweep, score schemes on it."""
    return tuple(scorer(scene_factory(rep_index, seed)))


def scheme_sweep_plan(
    name: str,
    scene_factory: ExperimentFactory,
    scorer: ExperimentScorer,
    repetitions: int,
    base_seed: int = 0,
    seeds: Sequence[int] | None = None,
) -> SweepPlan:
    """Build the common plan shape: scene factory + schemes to score."""
    return SweepPlan(
        name=name,
        repetitions=repetitions,
        task=partial(_scene_task, scene_factory=scene_factory, scorer=scorer),
        base_seed=base_seed,
        seeds=None if seeds is None else tuple(int(s) for s in seeds),
    )


# --------------------------------------------------------------------------
# Scorers (module-level, picklable)
# --------------------------------------------------------------------------


def score_schemes(experiment: SweepExperiment, scheme_factory) -> tuple[SchemeScore, ...]:
    """Score every scheme ``scheme_factory(experiment)`` yields on the sweep."""
    scores = []
    for scheme in scheme_factory(experiment):
        run = experiment.run_scheme(scheme)
        scores.append(
            SchemeScore(scheme=run.scheme, evaluation=run.evaluation, latency_s=run.latency_s)
        )
    return tuple(scores)


def score_stpp(experiment: SweepExperiment, config=None) -> tuple[SchemeScore, ...]:
    """Score STPP directly through the batched localization engine."""
    from .runner import run_stpp

    evaluation, latency = run_stpp(experiment, config)
    return (SchemeScore(scheme="STPP", evaluation=evaluation, latency_s=latency),)


# --------------------------------------------------------------------------
# Execution
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class _Shard:
    """A contiguous slice of one plan's repetitions."""

    plan_index: int
    rep_indices: tuple[int, ...]
    seeds: tuple[int, ...]


def _run_shard(plan: SweepPlan, shard: _Shard) -> list[RepetitionResult]:
    """Execute one shard (in-process or inside a pool worker)."""
    results = []
    for rep_index, seed in zip(shard.rep_indices, shard.seeds):
        scores = tuple(plan.task(rep_index, seed))
        results.append(
            RepetitionResult(plan=plan.name, rep_index=rep_index, seed=seed, scores=scores)
        )
    return results


def _apply_backend_env(backend: str | None) -> None:
    """Pool-worker initializer: point fresh workers at ``backend``.

    Tasks construct their own :class:`~repro.rfid.reader.RFIDReader` deep
    inside picklable factories, so the only seam that reaches every reader
    without threading a parameter through each experiment is the
    ``REPRO_PHYSICS_BACKEND`` environment variable that
    :func:`~repro.rfid.backends.resolve_physics_backend` consults.
    """
    if backend is not None:
        os.environ[PHYSICS_BACKEND_ENV] = backend


@contextmanager
def _scoped_backend_env(backend: str | None):
    """Temporarily apply ``backend`` via the environment (serial path)."""
    if backend is None:
        yield
        return
    previous = os.environ.get(PHYSICS_BACKEND_ENV)
    os.environ[PHYSICS_BACKEND_ENV] = backend
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(PHYSICS_BACKEND_ENV, None)
        else:
            os.environ[PHYSICS_BACKEND_ENV] = previous


def default_worker_count() -> int:
    """Worker count: ``REPRO_SWEEP_WORKERS`` env var, else the CPU count."""
    env = os.environ.get(_WORKERS_ENV)
    if env:
        try:
            return max(1, int(env))
        except ValueError as exc:
            raise ValueError(f"{_WORKERS_ENV} must be an integer, got {env!r}") from exc
    return os.cpu_count() or 1


@dataclass
class SweepService:
    """Executes :class:`SweepPlan`\\ s, sharded across worker processes.

    Parameters
    ----------
    max_workers:
        Pool size.  ``None`` defers to :func:`default_worker_count`.
    shard_size:
        Repetitions per shard.  The default of 1 maximises load balance
        (repetitions are heavyweight simulations, so per-task overhead is
        negligible); seeds are fixed per repetition, so shard size never
        affects results.
    parallel:
        ``True``/``False`` forces the pool / the serial path; ``None`` uses
        the pool only when more than one worker is available.
    physics_backend:
        Physics backend name (``"serial"``/``"threads"``/``"process"``)
        applied to every repetition this service runs — scoped through the
        ``REPRO_PHYSICS_BACKEND`` environment variable (restored afterwards
        on the serial path; set via the pool initializer for workers).
        ``None`` leaves whatever the environment already says.
    pipeline:
        Overlap consecutive repetitions on the serial path: a two-thread
        double buffer keeps at most two shards in flight, so sweep *N+1*'s
        sequential (rng-owning) scheduling runs while sweep *N*'s order-free
        NumPy physics holds the released GIL.  Results are keyed per shard
        and re-ordered by repetition index, and every repetition is a pure
        function of ``(rep_index, seed)`` — so pipelining is bit-identical
        to the plain serial loop (pinned by ``tests/test_sweep_service.py``).
    """

    max_workers: int | None = None
    shard_size: int = 1
    parallel: bool | None = None
    physics_backend: str | None = None
    pipeline: bool = False

    def __post_init__(self) -> None:
        if self.shard_size < 1:
            raise ValueError(f"shard_size must be >= 1, got {self.shard_size}")
        if self.max_workers is not None and self.max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {self.max_workers}")

    def worker_count(self) -> int:
        """The effective pool size."""
        return self.max_workers if self.max_workers is not None else default_worker_count()

    def _use_pool(self) -> bool:
        if self.parallel is not None:
            return self.parallel and self.worker_count() >= 1
        return self.worker_count() > 1

    def run(self, plan: SweepPlan) -> SweepOutcome:
        """Execute one plan."""
        return self.run_many([plan])[0]

    def run_many(self, plans: Sequence[SweepPlan]) -> list[SweepOutcome]:
        """Execute several plans, sharding across all of them at once.

        Sharding across plans (not per plan) keeps the pool saturated when
        individual plans have fewer repetitions than there are workers — the
        common case for the paper's sweeps.
        """
        plans = list(plans)
        shards: list[_Shard] = []
        for plan_index, plan in enumerate(plans):
            seeds = plan.resolved_seeds()
            for start in range(0, plan.repetitions, self.shard_size):
                stop = min(start + self.shard_size, plan.repetitions)
                shards.append(
                    _Shard(
                        plan_index=plan_index,
                        rep_indices=tuple(range(start, stop)),
                        seeds=seeds[start:stop],
                    )
                )

        per_plan: dict[int, list[RepetitionResult]] = {i: [] for i in range(len(plans))}
        if self._use_pool() and len(shards) > 1:
            with ProcessPoolExecutor(
                max_workers=self.worker_count(),
                initializer=_apply_backend_env,
                initargs=(self.physics_backend,),
            ) as pool:
                shard_results = pool.map(
                    _run_shard, [plans[s.plan_index] for s in shards], shards
                )
                for shard, results in zip(shards, shard_results):
                    per_plan[shard.plan_index].extend(results)
        elif self.pipeline and len(shards) > 1:
            with _scoped_backend_env(self.physics_backend):
                for shard, results in self._run_pipelined(plans, shards):
                    per_plan[shard.plan_index].extend(results)
        else:
            with _scoped_backend_env(self.physics_backend):
                for shard in shards:
                    per_plan[shard.plan_index].extend(
                        _run_shard(plans[shard.plan_index], shard)
                    )

        outcomes = []
        for plan_index, plan in enumerate(plans):
            ordered = sorted(per_plan[plan_index], key=lambda r: r.rep_index)
            outcomes.append(SweepOutcome(plan=plan.name, results=tuple(ordered)))
        return outcomes

    def _run_pipelined(
        self, plans: Sequence[SweepPlan], shards: Sequence[_Shard]
    ) -> Iterable[tuple[_Shard, list[RepetitionResult]]]:
        """Double-buffered serial execution: at most two shards in flight.

        While shard *N*'s physics phase sits in GIL-releasing NumPy kernels,
        shard *N+1*'s pure-Python scheduling makes progress on the second
        thread.  The window never exceeds two shards, so memory stays flat
        and results drain in submission order.
        """
        with ThreadPoolExecutor(max_workers=2, thread_name_prefix="sweep-pipeline") as pool:
            window: deque[tuple[_Shard, object]] = deque()
            for shard in shards:
                window.append(
                    (shard, pool.submit(_run_shard, plans[shard.plan_index], shard))
                )
                if len(window) == 2:
                    done_shard, future = window.popleft()
                    yield done_shard, future.result()
            while window:
                done_shard, future = window.popleft()
                yield done_shard, future.result()


_default_service: SweepService | None = None


def default_sweep_service() -> SweepService:
    """The process-wide service the ported experiments use by default."""
    global _default_service
    if _default_service is None:
        _default_service = SweepService()
    return _default_service


def run_plans(
    plans: Iterable[SweepPlan], service: SweepService | None = None
) -> list[SweepOutcome]:
    """Run ``plans`` on ``service`` (or the default service)."""
    service = service if service is not None else default_sweep_service()
    return service.run_many(list(plans))
