"""Streaming localization service: sessions over live read streams.

The serving layer of the repository: where :mod:`repro.core` is the paper's
algorithm and :mod:`repro.evaluation` the offline harness, this package is
the long-running entry point a deployment would embed — ingest reads as the
reader reports them, emit provisional orderings mid-sweep, converge to the
exact batch result when the sweep completes.  See ``docs/streaming.md``.
"""

from .session import LocalizationSession, StreamingUpdate

__all__ = [
    "LocalizationSession",
    "StreamingUpdate",
]
