"""Streaming localization service: sessions over live read streams.

The serving layer of the repository: where :mod:`repro.core` is the paper's
algorithm and :mod:`repro.evaluation` the offline harness, this package is
the long-running entry point a deployment would embed — ingest reads as the
reader reports them, emit provisional orderings mid-sweep, converge to the
exact batch result when the sweep completes.  See ``docs/streaming.md``.

Two tiers:

* :class:`LocalizationSession` — one portal's stream (PR 4);
* :class:`FleetService` — many concurrent portals multiplexed behind bounded
  queues with shed policies, transient-fault recovery
  (restart-from-checkpoint), fault quarantine, and a shared facility-keyed
  :class:`ProfileCacheRegistry` (see ``docs/service.md`` and
  ``docs/robustness.md``).
"""

from .cache import ProfileCacheRegistry
from .fleet import (
    DEFAULT_TRANSIENT_ERRORS,
    FleetConfig,
    FleetError,
    FleetService,
    FleetStats,
    PortalKey,
    PortalOverloadError,
    PortalQuarantinedError,
    PortalStateError,
    PortalStats,
    SHED_POLICIES,
    TransientFaultError,
    UnknownPortalError,
)
from .session import CHECKPOINT_VERSION, LocalizationSession, StreamingUpdate

__all__ = [
    "CHECKPOINT_VERSION",
    "DEFAULT_TRANSIENT_ERRORS",
    "FleetConfig",
    "FleetError",
    "FleetService",
    "FleetStats",
    "LocalizationSession",
    "PortalKey",
    "PortalOverloadError",
    "PortalQuarantinedError",
    "PortalStateError",
    "PortalStats",
    "ProfileCacheRegistry",
    "SHED_POLICIES",
    "StreamingUpdate",
    "TransientFaultError",
    "UnknownPortalError",
]
