"""Multi-portal fleet service: concurrent session multiplexing.

A real STPP deployment is not one portal — a facility runs readers at every
library shelf row, airport belt, and warehouse conveyor lane, all streaming
reads at once.  :class:`FleetService` is the serving front end over the
streaming engine: it multiplexes many concurrent
:class:`~repro.service.session.LocalizationSession` instances behind
queue-based ingest, routing reads by ``(facility_id, portal_id)``.

Design (see ``docs/service.md`` for the lifecycle and decision tables):

* **Per-portal routing.**  Every portal owns one session, one bounded FIFO
  queue of :class:`~repro.rfid.reading.ReadBatch` objects, and its own
  lock/condition — portals never contend with each other on the hot path.
* **Bounded queues with explicit shed policies.**  When a portal's queue is
  full, the configured policy decides: ``"block"`` applies backpressure to
  the producer (no read is ever lost), ``"drop_oldest"`` evicts the oldest
  queued batch and counts it as shed, ``"reject"`` refuses the new batch
  with :class:`PortalOverloadError`.  Shed counters are per portal.
* **Worker-pool dispatch.**  A small thread pool drains dirty portals.  Each
  portal is serviced by **at most one worker at a time** and its batches are
  ingested in arrival order — which is what makes the fleet's core contract
  hold: for every portal, :meth:`FleetService.finalize` returns output
  bit-identical to a standalone session fed the same batches.  Concurrency
  never changes results, only wall clock.
* **Fault isolation with recovery.**  A session that raises mid-ingest is
  first *classified*: a *transient* fault (``TransientFaultError``,
  ``TimeoutError``, ``ConnectionError`` — configurable via
  ``FleetConfig.transient_errors``) triggers seeded exponential-backoff
  retries, each of which **restarts the session from its last checkpoint**
  (:meth:`LocalizationSession.restore`), replays the journal of batches
  ingested since, and re-attempts the failed batch — restart-then-replay is
  the only retry that preserves bit-identity, because a half-ingested batch
  cannot simply be fed again.  Only when retries are exhausted (or the fault
  is fatal) is the portal *quarantined*: the error is captured, the queue
  discarded, and further ingest/finalize raise
  :class:`PortalQuarantinedError` carrying the original exception.  Sibling
  portals keep ingesting and finalize bit-identically either way.
* **Fault injection seam.**  ``open_portal(..., fault_spec=FaultSpec(...))``
  arms a portal with a seeded :class:`~repro.faults.FaultPipeline` applied
  to every batch *before* it is queued — the deterministic degraded-feed
  harness the robustness benchmark and chaos tests drive; the per-portal
  ``faults_injected`` counter reports what the pipeline actually did.
* **Lifecycle + stats.**  Portals are opened, finalized (drain, then the
  session's batch-exact :meth:`~LocalizationSession.finalize`), and evicted;
  :meth:`evict_idle` finalizes-and-evicts portals that stopped receiving
  traffic.  :meth:`stats` reports per-portal and fleet-wide counters
  (sessions by state, reads ingested, shed, queue depths, p95 provisional
  latency).

All sessions share one :class:`~repro.service.cache.ProfileCacheRegistry`,
so a facility's reference profile is built once no matter how many of its
portals open.
"""

from __future__ import annotations

import queue
import threading
import time
import zlib
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping

import numpy as np

from ..core.localizer import STPPConfig
from ..faults import FaultPipeline, FaultSpec
from ..rfid.reading import ReadBatch
from .cache import DEFAULT_CACHE_CAPACITY, ProfileCacheRegistry
from .session import LocalizationSession, StreamingUpdate

SHED_POLICIES: tuple[str, ...] = ("block", "drop_oldest", "reject")
"""Queue-full behaviours a portal can be opened with."""

# Portal lifecycle states (PortalStats.state / FleetStats.sessions keys).
STATE_OPEN = "open"
STATE_FINALIZED = "finalized"
STATE_QUARANTINED = "quarantined"


class FleetError(RuntimeError):
    """Base class for fleet-service errors."""


class UnknownPortalError(FleetError):
    """The ``(facility_id, portal_id)`` key is not an open portal."""


class PortalStateError(FleetError):
    """An operation is illegal in the portal's current lifecycle state
    (ingest after finalize, double finalize, duplicate open)."""


class PortalOverloadError(FleetError):
    """A ``"reject"``-policy portal refused a batch because its queue is full."""


class PortalQuarantinedError(FleetError):
    """The portal's session raised; the original exception is ``__cause__``."""


class TransientFaultError(FleetError):
    """A session fault known to be recoverable (a glitching reader link, a
    momentary resource failure).  Raising it from a session's ingest path
    asks the fleet for a retry with restart-from-checkpoint instead of
    immediate quarantine; it is also the conventional type for injected
    transient faults in chaos tests."""


DEFAULT_TRANSIENT_ERRORS: tuple[type[BaseException], ...] = (
    TransientFaultError,
    TimeoutError,
    ConnectionError,
)
"""Exception types the fleet treats as transient (retry before quarantine)."""


@dataclass(frozen=True, slots=True)
class PortalKey:
    """Routing key of one portal: a reader position within a facility."""

    facility_id: str
    portal_id: str

    def __str__(self) -> str:  # "library-north/shelf-07" in errors and logs
        return f"{self.facility_id}/{self.portal_id}"


@dataclass(frozen=True, slots=True)
class FleetConfig:
    """Fleet-wide defaults (per-portal knobs can override at ``open_portal``)."""

    queue_capacity: int = 64
    """Maximum queued (not yet ingested) batches per portal."""

    shed_policy: str = "block"
    """Queue-full behaviour: one of :data:`SHED_POLICIES`."""

    worker_count: int = 4
    """Dispatch threads draining portal queues."""

    idle_timeout_s: float = 300.0
    """Default idleness threshold for :meth:`FleetService.evict_idle`."""

    cache_capacity: int = DEFAULT_CACHE_CAPACITY
    """Capacity of the shared reference-profile cache (when fleet-built)."""

    max_latency_samples: int = 512
    """Provisional-latency samples retained per portal (ring buffer)."""

    block_poll_s: float = 0.1
    """Condition re-check period for blocked producers (bounds shutdown lag)."""

    session_factory: Callable[..., LocalizationSession] | None = None
    """Override how portal sessions are built (fault-injection seam for
    tests).  Called as ``factory(key=PortalKey, **session_kwargs)``; the
    default builds a plain :class:`LocalizationSession`.  Note that a session
    recovered by restart-from-checkpoint is always rebuilt as a base
    :class:`LocalizationSession` (see :meth:`LocalizationSession.restore`)."""

    max_retries: int = 2
    """Retry attempts (each a restart-from-checkpoint) granted to a transient
    ingest fault before the portal is quarantined.  0 disables recovery."""

    retry_backoff_s: float = 0.05
    """Base of the exponential retry backoff: attempt ``n`` sleeps
    ``retry_backoff_s * 2**(n-1)`` scaled by a seeded jitter in [0.5, 1.5)."""

    retry_seed: int = 0
    """Seed of the per-portal backoff-jitter RNG (mixed with the portal key),
    so chaos runs sleep reproducibly."""

    checkpoint_every: int = 16
    """Checkpoint cadence in successfully ingested batches.  Between
    checkpoints the portal journals its batches, so a restart replays at most
    this many; smaller values cheapen recovery, larger cheapen the happy
    path."""

    transient_errors: tuple[type[BaseException], ...] = DEFAULT_TRANSIENT_ERRORS
    """Exception types classified transient (retried); anything else raised
    by a session is fatal and quarantines the portal immediately."""

    def __post_init__(self) -> None:
        if self.queue_capacity < 1:
            raise ValueError(f"queue_capacity must be >= 1, got {self.queue_capacity}")
        if self.shed_policy not in SHED_POLICIES:
            raise ValueError(
                f"shed_policy must be one of {SHED_POLICIES}, got {self.shed_policy!r}"
            )
        if self.worker_count < 1:
            raise ValueError(f"worker_count must be >= 1, got {self.worker_count}")
        if self.idle_timeout_s <= 0:
            raise ValueError(f"idle_timeout_s must be positive, got {self.idle_timeout_s}")
        if self.max_latency_samples < 1:
            raise ValueError(
                f"max_latency_samples must be >= 1, got {self.max_latency_samples}"
            )
        if self.block_poll_s <= 0:
            raise ValueError(f"block_poll_s must be positive, got {self.block_poll_s}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.retry_backoff_s < 0:
            raise ValueError(
                f"retry_backoff_s must be >= 0, got {self.retry_backoff_s}"
            )
        if self.checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1, got {self.checkpoint_every}"
            )
        for entry in self.transient_errors:
            if not (isinstance(entry, type) and issubclass(entry, BaseException)):
                raise ValueError(
                    f"transient_errors must hold exception types, got {entry!r}"
                )


@dataclass(frozen=True)
class PortalStats:
    """Counter snapshot of one portal (a point-in-time copy, never live)."""

    key: PortalKey
    state: str
    shed_policy: str
    queue_capacity: int
    queue_depth: int
    reads_enqueued: int
    reads_ingested: int
    batches_enqueued: int
    batches_ingested: int
    shed_batches: int
    shed_reads: int
    provisional_count: int
    provisional_latency_p95_s: float | None
    """p95 of the portal's provisional-refresh latencies; ``None`` (never a
    crash) while the portal has zero provisional samples."""
    idle_s: float
    retries: int = 0
    """Transient-fault retry attempts performed for this portal."""
    restarts: int = 0
    """Successful restart-from-checkpoint recoveries (session replaced)."""
    faults_injected: int = 0
    """Fault events applied by the portal's armed injection pipeline."""


@dataclass(frozen=True)
class FleetStats:
    """Fleet-wide roll-up plus the per-portal snapshots it was built from."""

    sessions: Mapping[str, int]
    """Portal count per lifecycle state (open / finalized / quarantined)."""

    evicted: int
    """Portals evicted over the fleet's lifetime (no longer routable)."""

    reads_ingested: int
    shed_reads: int
    queue_depth: int
    provisional_latency_p95_s: float | None
    retries: int = 0
    restarts: int = 0
    faults_injected: int = 0
    portals: Mapping[PortalKey, PortalStats] = field(default_factory=dict)


class _Portal:
    """Internal per-portal state; all mutation happens under ``cond``'s lock
    except session calls, which serialize on ``session_lock``."""

    __slots__ = (
        "key", "session", "cond", "session_lock", "queue", "state",
        "shed_policy", "queue_capacity", "error", "scheduled", "in_flight",
        "reads_enqueued", "reads_ingested", "batches_enqueued",
        "batches_ingested", "shed_batches", "shed_reads", "latencies",
        "provisional_count", "last_activity", "final_update",
        "session_kwargs", "checkpoint", "journal", "since_checkpoint",
        "retries", "restarts", "fault_pipeline", "retry_rng",
    )

    def __init__(
        self,
        key: PortalKey,
        session: LocalizationSession,
        shed_policy: str,
        queue_capacity: int,
        max_latency_samples: int,
        session_kwargs: dict[str, Any] | None = None,
        fault_pipeline: FaultPipeline | None = None,
        retry_seed: int = 0,
    ) -> None:
        self.key = key
        self.session = session
        self.cond = threading.Condition()
        self.session_lock = threading.Lock()
        self.queue: deque[ReadBatch] = deque()
        self.state = STATE_OPEN
        self.shed_policy = shed_policy
        self.queue_capacity = queue_capacity
        self.error: BaseException | None = None
        self.scheduled = False   # key is in (or headed to) the dispatch queue
        self.in_flight = False   # a worker is mid-ingest on a popped batch
        self.reads_enqueued = 0
        self.reads_ingested = 0
        self.batches_enqueued = 0
        self.batches_ingested = 0
        self.shed_batches = 0
        self.shed_reads = 0
        self.latencies: deque[float] = deque(maxlen=max_latency_samples)
        self.provisional_count = 0
        self.last_activity = time.monotonic()
        self.final_update: StreamingUpdate | None = None
        self.session_kwargs = dict(session_kwargs or {})
        self.checkpoint: bytes | None = None  # last durable session state
        self.journal: list[ReadBatch] = []    # ingested since the checkpoint
        self.since_checkpoint = 0
        self.retries = 0
        self.restarts = 0
        self.fault_pipeline = fault_pipeline
        # Seeded per portal (key-mixed) so backoff jitter is reproducible.
        self.retry_rng = np.random.default_rng(
            [retry_seed, zlib.crc32(str(key).encode())]
        )

    def snapshot(self, now: float) -> PortalStats:
        latencies = tuple(self.latencies)
        p95 = (
            float(np.percentile(np.asarray(latencies), 95)) if latencies else None
        )
        return PortalStats(
            key=self.key,
            state=self.state,
            shed_policy=self.shed_policy,
            queue_capacity=self.queue_capacity,
            queue_depth=len(self.queue),
            reads_enqueued=self.reads_enqueued,
            reads_ingested=self.reads_ingested,
            batches_enqueued=self.batches_enqueued,
            batches_ingested=self.batches_ingested,
            shed_batches=self.shed_batches,
            shed_reads=self.shed_reads,
            provisional_count=self.provisional_count,
            provisional_latency_p95_s=p95,
            idle_s=max(0.0, now - self.last_activity),
            retries=self.retries,
            restarts=self.restarts,
            faults_injected=(
                self.fault_pipeline.faults_injected if self.fault_pipeline else 0
            ),
        )


class FleetService:
    """Concurrent multiplexer of streaming localization sessions.

    Open portals, route read batches to them, finalize for batch-exact
    results::

        fleet = FleetService()
        key = fleet.open_portal("library-north", "shelf-07",
                                expected_tag_ids=tags.ids(), channel_index=6)
        for batch in reader_stream:
            fleet.ingest(key, batch)          # queued; workers drain it
        final = fleet.finalize(key)           # == standalone session's finalize()
        fleet.evict(key)

    The service is a context manager; leaving the ``with`` block (or calling
    :meth:`close`) stops the worker pool.  Thread-safe throughout: producers,
    workers, and control calls may run concurrently.
    """

    def __init__(
        self,
        config: FleetConfig | None = None,
        profile_cache: ProfileCacheRegistry | None = None,
    ) -> None:
        self.config = config if config is not None else FleetConfig()
        self.profile_cache = (
            profile_cache
            if profile_cache is not None
            else ProfileCacheRegistry(self.config.cache_capacity)
        )
        self._lock = threading.Lock()
        self._portals: dict[PortalKey, _Portal] = {}
        self._evicted = 0
        self._closed = False
        self._resume = threading.Event()
        self._resume.set()
        self._dispatch: "queue.SimpleQueue[PortalKey | None]" = queue.SimpleQueue()
        self._workers = [
            threading.Thread(
                target=self._worker_loop, name=f"fleet-worker-{i}", daemon=True
            )
            for i in range(self.config.worker_count)
        ]
        for worker in self._workers:
            worker.start()

    # -- lifecycle ---------------------------------------------------------

    def __enter__(self) -> "FleetService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def open_portal(
        self,
        facility_id: str,
        portal_id: str,
        config: STPPConfig | None = None,
        expected_tag_ids: "list[str] | None" = None,
        pivot_tag_id: str | None = None,
        channel_index: int | None = None,
        shed_policy: str | None = None,
        queue_capacity: int | None = None,
        fault_spec: FaultSpec | None = None,
        out_of_order: str = "reorder",
    ) -> PortalKey:
        """Open a session for one portal and return its routing key.

        Per-portal ``shed_policy`` / ``queue_capacity`` override the fleet
        defaults.  Re-opening a live key raises :class:`PortalStateError`
        (evict the old portal first); an evicted key may be reused.

        ``fault_spec`` arms the portal with a seeded fault-injection pipeline
        (:meth:`FaultSpec.build`, seed-offset mixed from the portal key):
        every batch routed to this portal is degraded *before* it is queued.
        ``None`` (the default) injects nothing and leaves the ingest path
        byte-for-byte untouched.  ``out_of_order`` selects the session's
        collector policy (``"dedupe"`` drops exact duplicate reads).
        """
        self._check_running()
        policy = shed_policy if shed_policy is not None else self.config.shed_policy
        if policy not in SHED_POLICIES:
            raise ValueError(f"shed_policy must be one of {SHED_POLICIES}, got {policy!r}")
        capacity = (
            queue_capacity if queue_capacity is not None else self.config.queue_capacity
        )
        if capacity < 1:
            raise ValueError(f"queue_capacity must be >= 1, got {capacity}")
        key = PortalKey(str(facility_id), str(portal_id))
        session_kwargs: dict[str, Any] = dict(
            config=config,
            expected_tag_ids=expected_tag_ids,
            pivot_tag_id=pivot_tag_id,
            channel_index=channel_index,
            out_of_order=out_of_order,
            profile_cache=self.profile_cache,
            facility_id=key.facility_id,
        )
        factory = self.config.session_factory
        session = (
            LocalizationSession(**session_kwargs)
            if factory is None
            else factory(key=key, **session_kwargs)
        )
        pipeline = (
            None
            if fault_spec is None
            else fault_spec.build(seed_offset=zlib.crc32(str(key).encode()))
        )
        portal = _Portal(
            key=key,
            session=session,
            shed_policy=policy,
            queue_capacity=capacity,
            max_latency_samples=self.config.max_latency_samples,
            session_kwargs=session_kwargs,
            fault_pipeline=pipeline,
            retry_seed=self.config.retry_seed,
        )
        with self._lock:
            if key in self._portals:
                raise PortalStateError(f"portal {key} is already open")
            self._portals[key] = portal
        return key

    def ingest(self, key: PortalKey, batch: ReadBatch) -> None:
        """Route one read batch to its portal's queue.

        If the portal was opened with a ``fault_spec``, the batch first
        passes through the portal's fault pipeline and only the surviving
        (possibly degraded) batches are queued — ``reads_enqueued`` counts
        what was actually accepted, and the ``faults_injected`` counter in
        the portal's stats accounts for the difference.  Fault-free portals
        take a byte-identical fast path.

        Queue-full behaviour follows the portal's shed policy.  Raises
        :class:`PortalStateError` once the portal is finalized,
        :class:`PortalQuarantinedError` once it is quarantined, and
        :class:`UnknownPortalError` for unknown/evicted keys.
        """
        portal = self._portal(key)
        if portal.fault_pipeline is None:
            self._enqueue(portal, batch)
            return
        with portal.cond:
            self._check_ingestible(portal)
            # A fully-dropped batch still counts as reader contact.
            portal.last_activity = time.monotonic()
        for degraded in portal.fault_pipeline.push(batch):
            self._enqueue(portal, degraded)

    def _enqueue(self, portal: _Portal, batch: ReadBatch) -> None:
        """Queue one (post-fault) batch under the portal's shed policy."""
        with portal.cond:
            self._check_ingestible(portal)
            if len(portal.queue) >= portal.queue_capacity:
                if portal.shed_policy == "reject":
                    portal.shed_batches += 1
                    portal.shed_reads += len(batch)
                    raise PortalOverloadError(
                        f"portal {portal.key} queue full "
                        f"({portal.queue_capacity} batches); batch rejected"
                    )
                if portal.shed_policy == "drop_oldest":
                    while len(portal.queue) >= portal.queue_capacity:
                        dropped = portal.queue.popleft()
                        portal.shed_batches += 1
                        portal.shed_reads += len(dropped)
                else:  # block: backpressure the producer until space frees
                    while (
                        len(portal.queue) >= portal.queue_capacity
                        and portal.state == STATE_OPEN
                        and not self._closed
                    ):
                        portal.cond.wait(self.config.block_poll_s)
                    if self._closed:
                        raise FleetError("fleet service is closed")
                    self._check_ingestible(portal)
            portal.queue.append(batch)
            portal.reads_enqueued += len(batch)
            portal.batches_enqueued += 1
            portal.last_activity = time.monotonic()
            schedule = not portal.scheduled
            if schedule:
                portal.scheduled = True
        if schedule:
            self._dispatch.put(portal.key)

    def ingest_round_robin(
        self, pairs: Iterable[tuple[PortalKey, ReadBatch]]
    ) -> int:
        """Ingest an interleaved ``(key, batch)`` stream; returns batches routed.

        Convenience for load generators and tests that replay mixed portal
        traffic — equivalent to calling :meth:`ingest` per pair.
        """
        count = 0
        for key, batch in pairs:
            self.ingest(key, batch)
            count += 1
        return count

    def provisional(self, key: PortalKey) -> StreamingUpdate:
        """Compute a provisional ordering over what the portal ingested so far.

        Runs in the caller's thread (serialized with worker ingest on the
        session lock); the update's latency is recorded in the portal's
        p95 window.  Batches still queued are *not* reflected — this is the
        low-latency "what do we know now" call, not a drain.
        """
        portal = self._portal(key)
        with portal.cond:
            self._check_ingestible(portal)
        try:
            with portal.session_lock:
                update = portal.session.provisional()
        except BaseException as exc:
            self._quarantine(portal, exc)
            raise PortalQuarantinedError(
                f"portal {key} quarantined: provisional ordering failed"
            ) from exc
        with portal.cond:
            portal.latencies.append(update.elapsed_s)
            portal.provisional_count += 1
        return update

    def finalize(self, key: PortalKey) -> StreamingUpdate:
        """Drain the portal's queue, then return the batch-exact final update.

        Blocks until every accepted batch has been ingested (workers drain
        the queue; the caller waits).  The result is bit-identical to a
        standalone :class:`LocalizationSession` fed the same batches — the
        fleet contract pinned by ``tests/test_fleet_service.py``.  A second
        finalize raises :class:`PortalStateError`; a portal quarantined
        mid-drain raises :class:`PortalQuarantinedError`.
        """
        portal = self._portal(key)
        if portal.fault_pipeline is not None:
            with portal.cond:
                flushable = portal.state == STATE_OPEN
            if flushable:
                # End of stream: release anything injectors still buffer.
                for released in portal.fault_pipeline.flush():
                    self._enqueue(portal, released)
        with portal.cond:
            if portal.state == STATE_FINALIZED:
                raise PortalStateError(f"portal {key} is already finalized")
            if portal.state == STATE_QUARANTINED:
                raise PortalQuarantinedError(
                    f"portal {key} is quarantined"
                ) from portal.error
            while portal.queue or portal.in_flight or portal.scheduled:
                if self._closed:
                    raise FleetError("fleet service is closed")
                portal.cond.wait(self.config.block_poll_s)
                if portal.state == STATE_QUARANTINED:
                    raise PortalQuarantinedError(
                        f"portal {key} quarantined while draining"
                    ) from portal.error
        try:
            with portal.session_lock:
                update = portal.session.finalize()
        except BaseException as exc:
            self._quarantine(portal, exc)
            raise PortalQuarantinedError(
                f"portal {key} quarantined: finalize failed"
            ) from exc
        with portal.cond:
            portal.state = STATE_FINALIZED
            portal.final_update = update
            portal.last_activity = time.monotonic()
            portal.cond.notify_all()
        return update

    def evict(self, key: PortalKey, force: bool = False) -> None:
        """Remove a portal from the routing table.

        Only finalized or quarantined portals are evictable unless ``force``
        — evicting an open portal silently discards its queued reads, which
        must be an explicit decision.
        """
        with self._lock:
            portal = self._portals.get(key)
            if portal is None:
                raise UnknownPortalError(f"no open portal {key}")
            with portal.cond:
                if portal.state == STATE_OPEN and not force:
                    raise PortalStateError(
                        f"portal {key} is still open; finalize it or pass force=True"
                    )
                portal.queue.clear()
                portal.cond.notify_all()
            del self._portals[key]
            self._evicted += 1

    def evict_idle(
        self, idle_timeout_s: float | None = None
    ) -> dict[PortalKey, StreamingUpdate | None]:
        """Finalize-and-evict portals idle longer than the timeout.

        Returns the evicted keys mapped to their final updates (``None`` for
        quarantined portals, whose sessions have no trustworthy result).
        Open portals are finalized first so their converged ordering is not
        lost; a portal with queued or in-flight work is never considered
        idle.
        """
        timeout = (
            idle_timeout_s if idle_timeout_s is not None else self.config.idle_timeout_s
        )
        now = time.monotonic()
        with self._lock:
            candidates = list(self._portals.values())
        evicted: dict[PortalKey, StreamingUpdate | None] = {}
        for portal in candidates:
            with portal.cond:
                busy = portal.queue or portal.in_flight or portal.scheduled
                idle = (now - portal.last_activity) >= timeout
                state = portal.state
            if busy or not idle:
                continue
            if state == STATE_OPEN:
                try:
                    evicted[portal.key] = self.finalize(portal.key)
                except FleetError:
                    evicted[portal.key] = None
            elif state == STATE_FINALIZED:
                evicted[portal.key] = portal.final_update
            else:
                evicted[portal.key] = None
            try:
                self.evict(portal.key)
            except UnknownPortalError:  # concurrently evicted by another caller
                evicted.pop(portal.key, None)
        return evicted

    def close(self) -> None:
        """Stop the worker pool; idempotent.  Queued-but-uningested batches
        are abandoned (finalize portals first for batch-exact results)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            portals = list(self._portals.values())
        self._resume.set()
        for portal in portals:  # release blocked producers and finalize waiters
            with portal.cond:
                portal.cond.notify_all()
        for _ in self._workers:
            self._dispatch.put(None)
        for worker in self._workers:
            worker.join(timeout=5.0)

    # -- observability -----------------------------------------------------

    def portal_keys(self) -> tuple[PortalKey, ...]:
        """Currently routable portal keys."""
        with self._lock:
            return tuple(self._portals)

    def portal_stats(self, key: PortalKey) -> PortalStats:
        """Counter snapshot of one portal."""
        portal = self._portal(key)
        now = time.monotonic()
        with portal.cond:
            return portal.snapshot(now)

    def portal_error(self, key: PortalKey) -> BaseException | None:
        """The exception that quarantined the portal (None while healthy)."""
        portal = self._portal(key)
        with portal.cond:
            return portal.error

    def stats(self) -> FleetStats:
        """Fleet-wide roll-up across every routable portal."""
        with self._lock:
            portals = list(self._portals.values())
            evicted = self._evicted
        now = time.monotonic()
        snapshots: dict[PortalKey, PortalStats] = {}
        latencies: list[float] = []
        sessions = {STATE_OPEN: 0, STATE_FINALIZED: 0, STATE_QUARANTINED: 0}
        for portal in portals:
            with portal.cond:
                snapshots[portal.key] = portal.snapshot(now)
                latencies.extend(portal.latencies)
        for snap in snapshots.values():
            sessions[snap.state] += 1
        p95 = (
            float(np.percentile(np.asarray(latencies), 95)) if latencies else None
        )
        return FleetStats(
            sessions=sessions,
            evicted=evicted,
            reads_ingested=sum(s.reads_ingested for s in snapshots.values()),
            shed_reads=sum(s.shed_reads for s in snapshots.values()),
            queue_depth=sum(s.queue_depth for s in snapshots.values()),
            provisional_latency_p95_s=p95,
            retries=sum(s.retries for s in snapshots.values()),
            restarts=sum(s.restarts for s in snapshots.values()),
            faults_injected=sum(s.faults_injected for s in snapshots.values()),
            portals=snapshots,
        )

    # -- test/maintenance seams --------------------------------------------

    def pause(self) -> None:
        """Suspend the worker pool (queues fill; shed policies engage).

        A maintenance/test seam: with workers paused, queue-full behaviour is
        deterministic.  Batches already popped finish ingesting.
        """
        self._resume.clear()

    def resume(self) -> None:
        """Resume a paused worker pool."""
        self._resume.set()

    # -- internals ---------------------------------------------------------

    def _check_running(self) -> None:
        if self._closed:
            raise FleetError("fleet service is closed")

    @staticmethod
    def _check_ingestible(portal: _Portal) -> None:
        # Callers hold portal.cond.
        if portal.state == STATE_FINALIZED:
            raise PortalStateError(
                f"portal {portal.key} is finalized; no further ingestion"
            )
        if portal.state == STATE_QUARANTINED:
            raise PortalQuarantinedError(
                f"portal {portal.key} is quarantined"
            ) from portal.error

    def _portal(self, key: PortalKey) -> _Portal:
        with self._lock:
            portal = self._portals.get(key)
        if portal is None:
            raise UnknownPortalError(f"no open portal {key}")
        return portal

    def _quarantine(self, portal: _Portal, error: BaseException) -> None:
        with portal.cond:
            if portal.state != STATE_QUARANTINED:
                portal.state = STATE_QUARANTINED
                portal.error = error
            portal.queue.clear()
            portal.in_flight = False
            portal.cond.notify_all()

    def _worker_loop(self) -> None:
        while True:
            key = self._dispatch.get()
            if key is None:
                return
            self._resume.wait()
            with self._lock:
                portal = self._portals.get(key)
            if portal is not None:
                self._service_portal(portal)

    def _service_portal(self, portal: _Portal) -> None:
        """Drain one portal's queue in FIFO order.

        The ``scheduled`` flag guarantees at most one worker runs this per
        portal at a time, so batches are ingested exactly in arrival order —
        the property behind the fleet's bit-identity contract.
        """
        while True:
            if not self._resume.is_set():
                # Paused mid-drain: park the key back in the dispatch queue
                # (scheduled stays True, so producers don't double-enqueue);
                # the next worker to pick it up blocks on the resume gate.
                self._dispatch.put(portal.key)
                return
            with portal.cond:
                if portal.state == STATE_QUARANTINED or not portal.queue:
                    portal.scheduled = False
                    portal.cond.notify_all()
                    return
                batch = portal.queue.popleft()
                portal.in_flight = True
                portal.cond.notify_all()  # queue space freed: wake producers
            try:
                with portal.session_lock:
                    portal.session.ingest_batch(batch)
            except BaseException as exc:
                if not self._recover(portal, batch, exc):
                    return
            # Journal + checkpoint cadence: only this worker touches these
            # (the ``scheduled`` flag serializes draining per portal).
            portal.journal.append(batch)
            portal.since_checkpoint += 1
            if portal.since_checkpoint >= self.config.checkpoint_every:
                try:
                    with portal.session_lock:
                        portal.checkpoint = portal.session.checkpoint()
                except BaseException as exc:
                    self._quarantine(portal, exc)
                    return
                portal.journal.clear()
                portal.since_checkpoint = 0
            with portal.cond:
                portal.reads_ingested += len(batch)
                portal.batches_ingested += 1
                portal.in_flight = False
                portal.last_activity = time.monotonic()
                portal.cond.notify_all()

    def _recover(
        self, portal: _Portal, batch: ReadBatch, exc: BaseException
    ) -> bool:
        """Attempt transient-fault recovery; True iff the batch was ingested.

        Exceptions listed in ``config.transient_errors`` are retried up to
        ``max_retries`` times with seeded exponential backoff; anything else
        is fatal and quarantines immediately.  A failed ``ingest_batch`` may
        have left partial per-tag appends behind, so a retry never re-feeds
        the same session: each attempt rebuilds the session from the last
        checkpoint (or from scratch), replays the journal of batches ingested
        since, and re-attempts the failed batch — the only retry shape that
        preserves the fleet's bit-identity contract.
        """
        if not isinstance(exc, self.config.transient_errors):
            self._quarantine(portal, exc)
            return False
        error = exc
        for attempt in range(1, self.config.max_retries + 1):
            with portal.cond:
                portal.retries += 1
            delay = (
                self.config.retry_backoff_s
                * (2.0 ** (attempt - 1))
                * float(portal.retry_rng.uniform(0.5, 1.5))
            )
            if delay > 0.0:
                time.sleep(delay)
            try:
                session = self._restart_session(portal)
                session.ingest_batch(batch)
            except BaseException as retry_exc:
                error = retry_exc
                if isinstance(retry_exc, self.config.transient_errors):
                    continue
                break
            with portal.session_lock:
                portal.session = session
            with portal.cond:
                portal.restarts += 1
            return True
        self._quarantine(portal, error)
        return False

    def _restart_session(self, portal: _Portal) -> LocalizationSession:
        """Rebuild the portal's session state up to the last ingested batch.

        Restores from the latest checkpoint when one exists, otherwise
        constructs a fresh base session, then replays the journal.  The
        result is always a plain :class:`LocalizationSession` — factory
        wrappers do not survive a restart, which is exactly what clears
        faults injected by a wrapper.
        """
        if portal.checkpoint is not None:
            session = LocalizationSession.restore(
                portal.checkpoint, profile_cache=self.profile_cache
            )
        else:
            session = LocalizationSession(**portal.session_kwargs)
        for replay in portal.journal:
            session.ingest_batch(replay)
        return session
