"""Facility-keyed reference-profile cache with LRU eviction.

Every :class:`~repro.core.localizer.STPPLocalizer` needs a
:class:`~repro.core.reference.ReferenceProfile` — the DTW matching template.
A single session builds it once; a **fleet** of sessions (one per portal,
hundreds per facility) must not: the reference depends only on the facility's
reference configuration, never on the portal, so all of a facility's sessions
can share one immutable profile.

:class:`ProfileCacheRegistry` is that sharing point, generalizing the
process-wide ``functools.lru_cache`` behind
:func:`~repro.core.reference.shared_canonical_reference` (which
:class:`~repro.core.localizer.BatchLocalizer` instances lean on) into an
explicit, injectable object with the properties a serving layer needs:

* **facility-keyed**: entries are keyed by ``(facility_id, <build params>)``
  — two facilities with the *same* reference configuration still get
  *distinct* entries, so one facility's recalibration or eviction can never
  touch another's sessions;
* **bounded, LRU-evicted**: a process serving many facilities holds at most
  ``capacity`` profiles; the least recently *used* entry is evicted first;
* **build-once under concurrency**: when many threads request a missing key
  at once, exactly one runs the builder; the others wait and receive the
  same fully-constructed object (no duplicate construction, no torn
  publication — pinned by ``tests/test_profile_cache.py``);
* **observable**: ``stats()`` reports hits/misses/builds/evictions so tests
  (and dashboards) can assert that sharing actually happens.

The registry is value-agnostic — :meth:`get_or_build` caches anything — but
its fleet-facing entry point is :meth:`reference_for`, which derives the
cache key from a facility id and an :class:`~repro.core.localizer.STPPConfig`
and builds via :func:`~repro.core.reference.canonical_reference`.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Hashable, TYPE_CHECKING

from ..core.reference import ReferenceProfile, canonical_reference

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..core.localizer import STPPConfig

DEFAULT_CACHE_CAPACITY = 32
"""Default number of cached profiles (facilities served without re-builds)."""


class ProfileCacheRegistry:
    """A thread-safe, bounded, LRU get-or-build cache for shared profiles.

    Parameters
    ----------
    capacity:
        Maximum number of cached entries; inserting beyond it evicts the
        least recently used entry.  Must be at least 1.
    """

    def __init__(self, capacity: int = DEFAULT_CACHE_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._capacity = int(capacity)
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._pending: dict[Hashable, threading.Event] = {}
        self._hits = 0
        self._misses = 0
        self._builds = 0
        self._evictions = 0

    # -- introspection -----------------------------------------------------

    @property
    def capacity(self) -> int:
        """Maximum number of cached entries."""
        return self._capacity

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def keys(self) -> tuple[Hashable, ...]:
        """Cached keys in LRU order: the first returned is evicted next."""
        with self._lock:
            return tuple(self._entries)

    def stats(self) -> dict[str, int]:
        """Counters snapshot: hits, misses, builds, evictions, entries."""
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "builds": self._builds,
                "evictions": self._evictions,
                "entries": len(self._entries),
            }

    def clear(self) -> None:
        """Drop every cached entry (counters are preserved)."""
        with self._lock:
            self._entries.clear()

    # -- the cache protocol ------------------------------------------------

    def get_or_build(self, key: Hashable, builder: Callable[[], Any]) -> Any:
        """Return the cached value for ``key``, building it at most once.

        On a hit the entry is promoted to most-recently-used and returned.
        On a miss, the first caller runs ``builder()`` *outside* the registry
        lock (builds can be slow — a reference profile is a full simulated
        sweep) while concurrent callers for the same key wait on an event;
        the value is published to the cache, and only then are waiters
        released — they observe either the complete entry or nothing, never
        a partially-constructed one.  A builder that raises releases the
        waiters (which retry, typically re-raising the same error) and
        caches nothing.
        """
        while True:
            with self._lock:
                if key in self._entries:
                    self._entries.move_to_end(key)
                    self._hits += 1
                    return self._entries[key]
                event = self._pending.get(key)
                if event is None:
                    self._pending[key] = threading.Event()
                    self._misses += 1
                    break  # this caller builds
            # Another thread is building this key: wait for publication,
            # then loop back (hit on success, rebuild on builder failure).
            event.wait()

        try:
            value = builder()
        except BaseException:
            with self._lock:
                self._pending.pop(key).set()
            raise
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            self._builds += 1
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
                self._evictions += 1
            self._pending.pop(key).set()
        return value

    # -- the fleet-facing entry point --------------------------------------

    def reference_for(
        self, facility_id: str, config: "STPPConfig"
    ) -> ReferenceProfile:
        """The facility's shared reference profile for ``config``.

        The key includes ``facility_id`` on purpose: even when two facilities
        run identical reference parameters, their entries stay separate
        (facility isolation — evicting or recalibrating one never invalidates
        the other).  The builder is the *uncached*
        :func:`~repro.core.reference.canonical_reference`, so the registry's
        ``builds`` counter reports real constructions — the regression pin
        that sessions sharing a registry never rebuild a facility's profile.
        """
        key = (
            str(facility_id),
            float(config.reference_perpendicular_distance_m),
            float(config.reference_speed_mps),
            int(config.reference_periods),
        )
        return self.get_or_build(
            key,
            lambda: canonical_reference(
                perpendicular_distance_m=config.reference_perpendicular_distance_m,
                speed_mps=config.reference_speed_mps,
                periods=config.reference_periods,
            ),
        )
