"""The streaming localization service (facade over the incremental engines).

A :class:`LocalizationSession` multiplexes many concurrent tag streams: reads
are ingested as they arrive (singly, or as columnar
:class:`~repro.rfid.reading.ReadBatch` batches straight from
:meth:`RFIDReader.sweep_stream <repro.rfid.reader.RFIDReader.sweep_stream>`),
and at any instant the session can emit a **provisional** ordering of the
tags seen so far, together with a confidence grade.  Three incremental
engines make a refresh cheap:

* the :class:`~repro.simulation.streaming.StreamingCollector` maintains
  per-tag sample buffers with amortized O(1) appends;
* an :class:`~repro.core.segmentation.IncrementalSegmenter` per tag extends
  the coarse segmentation as samples arrive instead of recomputing it;
* a :class:`~repro.core.dtw.ResumableSegmentAligner` per tag reuses the
  cached DTW accumulation prefix over the segments that can no longer change,
  so each refresh pays only for the columns that grew.

**Convergence guarantee**: every engine above is bit-identical to its batch
counterpart, so once the stream ends, :meth:`LocalizationSession.finalize`
produces exactly the ordering the batch pipeline
(:class:`~repro.core.localizer.BatchLocalizer` over
:func:`~repro.simulation.collector.profiles_from_read_log`) computes from the
same reads — pinned across the library, airport, and warehouse workloads by
``tests/test_streaming.py``.
"""

from __future__ import annotations

import pickle
import time
from dataclasses import dataclass, field

import numpy as np

from ..core.dtw import ResumableSegmentAligner
from ..core.localizer import STPPConfig, STPPLocalizer
from ..core.ordering_x import order_tags_x
from ..core.ordering_y import order_tags_y
from ..core.phase_profile import PhaseProfile
from ..core.result import LocalizationResult
from ..core.segmentation import IncrementalSegmenter
from ..core.vzone import VZone
from ..evaluation.metrics import ordering_agreement
from ..rfid.reading import ReadBatch, TagRead
from ..simulation.streaming import StreamingCollector, TagStreamBuffer
from .cache import ProfileCacheRegistry

CHECKPOINT_VERSION = 1
"""Format version stamped into every :meth:`LocalizationSession.checkpoint`."""

GAP_FACTOR = 16.0
"""A silence on the session's pooled read timeline longer than this many
times the median inter-read interval counts as a coverage hole (a reader
stall or disconnect window).  The *global* timeline is the right signal: a
stalled reader silences every tag at once, while per-tag cadences vary wildly
on belt workloads (a tag is only read near the antenna).  Calibrated against
the clean library/airport/warehouse leaderboard streams, whose worst global
gap is ~7x the median (their ~10% random dropout included) versus >100x for
a 0.4 s stall — clean streams must report **zero** holes so the zero-fault
confidence stays bit-identical to pre-robustness behaviour."""

_MIN_GAP_SAMPLES = 16
"""Minimum pooled reads before the stream cadence is considered estimable."""


@dataclass(frozen=True)
class StreamingUpdate:
    """One provisional (or final) localization emitted by a session."""

    update_index: int
    """Sequence number of this update within the session (0-based)."""

    reads_ingested: int
    """Total reads the session had consumed when the update was computed."""

    batches_ingested: int
    """Total read batches (e.g. inventory rounds) consumed so far."""

    result: LocalizationResult
    """Orderings over the tags seen so far (the final batch result once the
    stream has completed and :meth:`LocalizationSession.finalize` ran)."""

    ordered_fraction: float
    """Fraction of the expected population that received an X rank."""

    agreement: float
    """Pairwise agreement of this X ordering with the previous update's
    (1.0 for the first update)."""

    confidence: float
    """``ordered_fraction * agreement * quality`` — 1.0 means every expected
    tag is ordered, the ordering has stopped moving between refreshes, and
    the stream shows no hard degradation evidence."""

    elapsed_s: float
    """Wall-clock cost of computing this update (not of ingestion)."""

    quality: float = 1.0
    """Stream-health grade in [0, 1]: exactly 1.0 on a clean stream, degraded
    by hard anomaly evidence only — duplicates dropped at ingest, out-of-order
    acceptances, and per-tag coverage holes (see
    :meth:`LocalizationSession.stream_quality`)."""

    final: bool = False
    """True for the update returned by :meth:`LocalizationSession.finalize`."""


@dataclass
class _TagPipeline:
    """Incremental per-tag state: segmentation + resumable DTW alignment."""

    segmenter: IncrementalSegmenter
    aligner: ResumableSegmentAligner
    consumed: int = 0
    generation: int = 0
    vzone: VZone | None = None
    vzone_sample_count: int = -1


class LocalizationSession:
    """Streaming relative localization of many concurrent tag streams.

    Parameters
    ----------
    config:
        STPP pipeline parameters.  Streaming requires the paper's default
        ``detection_method="segmented_dtw"`` — the other strategies have no
        incremental alignment state (see ``docs/streaming.md``).
    expected_tag_ids:
        The full tag population, when known up front.  Tags outside it are
        ignored (e.g. Landmarc reference tags sharing the air interface);
        expected tags never seen are reported in ``unordered_ids`` and hold
        the ``ordered_fraction`` below 1.  Defaults to "whatever has been
        seen so far".
    pivot_tag_id:
        Optional pivot for the Y-axis comparison (as in
        :meth:`~repro.core.localizer.STPPLocalizer.localize`).
    channel_index:
        Channel label for profiles; derived from the reads when omitted.
    out_of_order:
        ``"reorder"`` (default) or ``"raise"`` — what to do with a read whose
        timestamp precedes its tag's latest.  Reordering is deterministic
        (stable sort by timestamp, matching the batch path) but rebuilds the
        affected tag's incremental state.
    profile_cache:
        Optional shared :class:`~repro.service.cache.ProfileCacheRegistry`.
        When given, the session's reference profile comes from the registry
        (keyed by ``facility_id`` and the config's reference parameters)
        instead of being built per session — many sessions of one facility
        then share a single immutable template.  Reference construction is
        deterministic, so results are bit-identical either way; sharing only
        removes redundant builds.  Omitted, the session falls back to the
        process-wide :func:`~repro.core.reference.shared_canonical_reference`.
    facility_id:
        The cache key namespace for ``profile_cache`` (ignored without one).
    """

    def __init__(
        self,
        config: STPPConfig | None = None,
        expected_tag_ids: "list[str] | None" = None,
        pivot_tag_id: str | None = None,
        channel_index: int | None = None,
        out_of_order: str = "reorder",
        profile_cache: "ProfileCacheRegistry | None" = None,
        facility_id: str = "default",
    ) -> None:
        config = config if config is not None else STPPConfig()
        if config.detection_method != "segmented_dtw":
            raise ValueError(
                "streaming sessions require detection_method='segmented_dtw' "
                f"(got {config.detection_method!r}); the other strategies have "
                "no incremental alignment state — run them through "
                "BatchLocalizer instead"
            )
        self.config = config
        self.facility_id = facility_id
        reference = (
            None
            if profile_cache is None
            else profile_cache.reference_for(facility_id, config)
        )
        self._localizer = STPPLocalizer(config, reference=reference)
        self._detector = self._localizer.detector
        self._expected = None if expected_tag_ids is None else list(expected_tag_ids)
        self._pivot_tag_id = pivot_tag_id
        self.collector = StreamingCollector(
            channel_index=channel_index, out_of_order=out_of_order
        )
        self._pipelines: dict[str, _TagPipeline] = {}
        self._batches = 0
        self._updates = 0
        self._previous_x: tuple[str, ...] | None = None
        self._finalized: StreamingUpdate | None = None

    # -- ingestion ---------------------------------------------------------

    @property
    def reads_ingested(self) -> int:
        """Total reads consumed so far."""
        return self.collector.read_count

    @property
    def batches_ingested(self) -> int:
        """Total read batches consumed so far."""
        return self._batches

    def _check_open(self) -> None:
        if self._finalized is not None:
            raise RuntimeError("session already finalized; no further ingestion")

    def ingest_batch(self, batch: ReadBatch) -> None:
        """Ingest one columnar read batch (e.g. one inventory round)."""
        self._check_open()
        self.collector.ingest_batch(batch)
        self._batches += 1

    def ingest_columns(
        self,
        timestamps_s: np.ndarray,
        tag_ids: "tuple[str, ...] | list[str]",
        phases_rad: np.ndarray,
        rssi_dbm: np.ndarray,
        channel_index: int = 6,
    ) -> None:
        """Ingest parallel read columns sharing one reader channel."""
        self._check_open()
        self.collector.ingest_columns(
            timestamps_s, tag_ids, phases_rad, rssi_dbm, channel_index=channel_index
        )
        self._batches += 1

    def ingest_read(self, read: TagRead) -> None:
        """Ingest one decoded reply."""
        self._check_open()
        self.collector.ingest_read(read)

    def ingest_reads(self, reads) -> None:
        """Ingest an iterable of reads (arrival order preserved)."""
        self._check_open()
        self.collector.ingest(reads)

    # -- incremental detection --------------------------------------------

    def _pipeline_for(self, tag_id: str) -> _TagPipeline:
        pipeline = self._pipelines.get(tag_id)
        if pipeline is None:
            pipeline = _TagPipeline(
                segmenter=IncrementalSegmenter(self.config.window_size),
                aligner=ResumableSegmentAligner(
                    self._detector.reference_segmentation()
                ),
            )
            self._pipelines[tag_id] = pipeline
        return pipeline

    def _detect(self, tag_id: str, profile: PhaseProfile) -> VZone | None:
        """Incremental V-zone detection for one tag's current profile."""
        stream = self.collector.stream(tag_id)
        pipeline = self._pipeline_for(tag_id)
        if pipeline.generation != stream.reorders:
            # A late read re-sorted this tag's samples: the incremental
            # prefix is void, rebuild it from the (deterministically
            # re-sorted) stream.
            pipeline.segmenter = IncrementalSegmenter(self.config.window_size)
            pipeline.aligner.reset()
            pipeline.consumed = 0
            pipeline.generation = stream.reorders
            pipeline.vzone_sample_count = -1
        total = len(profile)
        if pipeline.consumed < total:
            pipeline.segmenter.extend(
                profile.timestamps_s[pipeline.consumed :],
                profile.phases_rad[pipeline.consumed :],
            )
            pipeline.consumed = total
        if pipeline.vzone_sample_count == total:
            return pipeline.vzone
        segments = pipeline.segmenter.segments()
        if segments:
            result = pipeline.aligner.align(
                segments, pipeline.segmenter.stable_count()
            )
            vzone = self._detector.detect_from_segmented_alignment(
                profile, segments, result
            )
        else:
            vzone = self._detector.detect(profile)
        pipeline.vzone = vzone
        pipeline.vzone_sample_count = total
        return vzone

    def _localize(self) -> LocalizationResult:
        """Run the ordering stages over the current incremental detections.

        Mirrors :meth:`STPPLocalizer.localize` exactly — same profile order,
        same expected-population filtering, same ordering calls — with V-zone
        detection served from the per-tag incremental pipelines.
        """
        expected_set = None if self._expected is None else set(self._expected)
        profile_map: dict[str, PhaseProfile] = {}
        for tag_id in self.collector.tag_ids():
            if expected_set is not None and tag_id not in expected_set:
                continue
            profile_map[tag_id] = self.collector.profile(tag_id)
        expected = self._expected if self._expected is not None else list(profile_map)

        vzones: dict[str, VZone] = {}
        for tag_id, profile in profile_map.items():
            if len(profile) < self.config.min_profile_samples:
                continue
            vzone = self._detect(tag_id, profile)
            if vzone is not None:
                vzones[tag_id] = vzone

        x_ordering = order_tags_x(vzones, all_tag_ids=expected)
        y_ordering = order_tags_y(
            profile_map,
            vzones,
            config=self.config.y_config(),
            all_tag_ids=expected,
            pivot_tag_id=self._pivot_tag_id,
        )
        return LocalizationResult(
            x_ordering=x_ordering,
            y_ordering=y_ordering,
            vzones=vzones,
            metadata={
                "detection_method": self.config.detection_method,
                "window_size": self.config.window_size,
                "y_value_mode": self.config.y_value_mode,
                "profile_count": len(profile_map),
                "streaming": True,
                "reads_ingested": self.reads_ingested,
            },
        )

    # -- stream health -----------------------------------------------------

    def stream_quality(self) -> dict:
        """Hard-evidence degradation report over the expected streams.

        Inspects only what the stream itself proves — no model of what the
        feed *should* look like:

        * ``duplicates_dropped`` — exact duplicates removed at ingest (the
          ``"dedupe"`` policy);
        * ``reorders`` — out-of-order acceptances (late reads);
        * ``gap_seconds`` — coverage holes on the **pooled** timeline of all
          expected tags: silences longer than :data:`GAP_FACTOR` x the median
          inter-read interval (reader stalls, disconnect windows, deep loss
          bursts — anything that silences the whole feed at once).

        ``quality = (1 - anomaly_fraction) * (1 - gap_fraction)``, where
        ``anomaly_fraction`` is anomalous reads over total and
        ``gap_fraction`` is hole time over covered time.  On a clean stream
        every term is identically zero and quality is **exactly** 1.0, which
        keeps the zero-fault confidence bit-identical.
        """
        expected_set = None if self._expected is None else set(self._expected)
        reads = 0
        duplicates = 0
        reorders = 0
        gap_seconds = 0.0
        span_seconds = 0.0
        timelines = []
        for tag_id in self.collector.tag_ids():
            if expected_set is not None and tag_id not in expected_set:
                continue
            stream = self.collector.stream(tag_id)
            reads += len(stream)
            duplicates += stream.duplicates_dropped
            reorders += stream.reorders
            times, _, _ = stream.sorted_arrays()
            timelines.append(times)
        if timelines:
            pooled = np.sort(np.concatenate(timelines))
            if pooled.shape[0] >= _MIN_GAP_SAMPLES:
                diffs = np.diff(pooled)
                median = float(np.median(diffs))
                if median > 0.0:
                    span_seconds = float(pooled[-1] - pooled[0])
                    holes = diffs[diffs > GAP_FACTOR * median]
                    if holes.size:
                        gap_seconds = float(np.sum(holes - median))
        anomalous = duplicates + reorders
        anomaly_fraction = (
            anomalous / (reads + anomalous) if (reads + anomalous) else 0.0
        )
        gap_fraction = gap_seconds / span_seconds if span_seconds > 0.0 else 0.0
        quality = (1.0 - anomaly_fraction) * (1.0 - min(gap_fraction, 1.0))
        return {
            "reads": reads,
            "duplicates_dropped": duplicates,
            "reorders": reorders,
            "gap_seconds": gap_seconds,
            "span_seconds": span_seconds,
            "anomaly_fraction": anomaly_fraction,
            "gap_fraction": gap_fraction,
            "quality": quality,
        }

    # -- updates -----------------------------------------------------------

    def _update(self, final: bool) -> StreamingUpdate:
        started = time.perf_counter()
        result = self._localize()
        elapsed = time.perf_counter() - started

        expected_count = (
            len(self._expected)
            if self._expected is not None
            else max(len(self.collector.tag_ids()), 1)
        )
        ordered_fraction = (
            len(result.x_ordering.ordered_ids) / expected_count
            if expected_count
            else 0.0
        )
        agreement = (
            1.0
            if self._previous_x is None
            else ordering_agreement(self._previous_x, result.x_ordering.ordered_ids)
        )
        self._previous_x = result.x_ordering.ordered_ids
        quality = self.stream_quality()["quality"]

        update = StreamingUpdate(
            update_index=self._updates,
            reads_ingested=self.reads_ingested,
            batches_ingested=self._batches,
            result=result,
            ordered_fraction=ordered_fraction,
            agreement=agreement,
            confidence=ordered_fraction * agreement * quality,
            elapsed_s=elapsed,
            quality=quality,
            final=final,
        )
        self._updates += 1
        return update

    def provisional(self) -> StreamingUpdate:
        """Compute a provisional ordering over everything ingested so far."""
        self._check_open()
        return self._update(final=False)

    def finalize(self) -> StreamingUpdate:
        """Close the stream and return the converged (batch-exact) result.

        Idempotent: repeated calls return the same update.  After
        finalization further ingestion raises ``RuntimeError``.
        """
        if self._finalized is None:
            self._finalized = self._update(final=True)
        return self._finalized

    # -- checkpoint / restore ----------------------------------------------

    def checkpoint(self) -> bytes:
        """Serialize the session's resumable state to bytes.

        The payload captures everything the incremental engines have built —
        per-tag sample buffers, segmenter state (closed segments and the open
        tail), the resumable aligner's cached DTW accumulation prefix, and
        the session's update history — but *not* the localizer or reference
        profile, which :meth:`restore` rebuilds deterministically from the
        config.  **Contract** (pinned by ``tests/test_checkpoint.py``): a
        session restored from a checkpoint and fed the remaining batches
        finalizes bit-identically to the uninterrupted session.

        Raises ``RuntimeError`` after :meth:`finalize` — a finalized session
        has nothing left to resume.
        """
        if self._finalized is not None:
            raise RuntimeError("session already finalized; nothing left to resume")
        collector = self.collector
        streams = []
        for stream in collector.streams():
            count = len(stream)
            streams.append(
                {
                    "tag_id": stream.tag_id,
                    "times": stream._times[:count].copy(),
                    "phases": stream._phases[:count].copy(),
                    "rssis": stream._rssis[:count].copy(),
                    "last_time": stream._last_time,
                    "disordered": stream._disordered,
                    "reorders": stream.reorders,
                    "duplicates_dropped": stream.duplicates_dropped,
                    "seen": None if stream._seen is None else set(stream._seen),
                    "channel_index": stream._channel_index,
                }
            )
        pipelines = {}
        for tag_id, pipeline in self._pipelines.items():
            segmenter = pipeline.segmenter
            aligner = pipeline.aligner
            pipelines[tag_id] = {
                "segmenter": {
                    "window_size": segmenter.window_size,
                    "jump_threshold_rad": segmenter.jump_threshold_rad,
                    "closed": list(segmenter._closed),
                    "count": segmenter._count,
                    "prev_phase": segmenter._prev_phase,
                    "open_start": segmenter._open_start,
                    "open_count": segmenter._open_count,
                    "open_start_time": segmenter._open_start_time,
                    "open_end_time": segmenter._open_end_time,
                    "open_min": segmenter._open_min,
                    "open_max": segmenter._open_max,
                },
                "aligner": {
                    "cached_cols": aligner._cached_cols,
                    "cost_prefix": aligner._cost[:, : aligner._cached_cols].copy(),
                },
                "consumed": pipeline.consumed,
                "generation": pipeline.generation,
            }
        state = {
            "version": CHECKPOINT_VERSION,
            "config": self.config,
            "expected": None if self._expected is None else list(self._expected),
            "pivot": self._pivot_tag_id,
            "channel_index": collector._explicit_channel,
            "out_of_order": collector.out_of_order,
            "facility_id": self.facility_id,
            "channels_seen": set(collector._channels_seen),
            "read_count": collector._read_count,
            "streams": streams,
            "pipelines": pipelines,
            "batches": self._batches,
            "updates": self._updates,
            "previous_x": self._previous_x,
        }
        return pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)

    @classmethod
    def restore(
        cls, data: bytes, profile_cache: "ProfileCacheRegistry | None" = None
    ) -> "LocalizationSession":
        """Rebuild a session from :meth:`checkpoint` bytes.

        The restored session continues exactly where the checkpointed one
        stood: ingesting the remaining batches and finalizing produces output
        bit-identical to the uninterrupted run.  The localizer, detector, and
        reference profile are rebuilt from the checkpointed config (pass
        ``profile_cache`` to share the facility's cached reference); V-zone
        detections are deterministically recomputed at the next update rather
        than serialized.

        Always returns a base :class:`LocalizationSession`, regardless of the
        class the checkpoint was taken from — subclass wrappers (e.g. fleet
        ``session_factory`` test doubles) do not survive a restart, which is
        exactly the semantics a crash-recovery path wants.
        """
        state = pickle.loads(data)
        version = state.get("version")
        if version != CHECKPOINT_VERSION:
            raise ValueError(
                f"unsupported checkpoint version {version!r} "
                f"(this build reads version {CHECKPOINT_VERSION})"
            )
        session = LocalizationSession(
            config=state["config"],
            expected_tag_ids=state["expected"],
            pivot_tag_id=state["pivot"],
            channel_index=state["channel_index"],
            out_of_order=state["out_of_order"],
            profile_cache=profile_cache,
            facility_id=state["facility_id"],
        )
        collector = session.collector
        collector._channels_seen = set(state["channels_seen"])
        collector._read_count = state["read_count"]
        for entry in state["streams"]:
            stream = TagStreamBuffer(entry["tag_id"])
            count = entry["times"].shape[0]
            stream._ensure_capacity(count)
            stream._times[:count] = entry["times"]
            stream._phases[:count] = entry["phases"]
            stream._rssis[:count] = entry["rssis"]
            stream._count = count
            stream._last_time = entry["last_time"]
            stream._disordered = entry["disordered"]
            stream.reorders = entry["reorders"]
            stream.duplicates_dropped = entry["duplicates_dropped"]
            stream._seen = entry["seen"]
            stream._channel_index = entry["channel_index"]
            collector._streams[stream.tag_id] = stream
        for tag_id, saved in state["pipelines"].items():
            pipeline = session._pipeline_for(tag_id)
            seg_state = saved["segmenter"]
            segmenter = IncrementalSegmenter(
                seg_state["window_size"], seg_state["jump_threshold_rad"]
            )
            segmenter._closed = list(seg_state["closed"])
            segmenter._count = seg_state["count"]
            segmenter._prev_phase = seg_state["prev_phase"]
            segmenter._open_start = seg_state["open_start"]
            segmenter._open_count = seg_state["open_count"]
            segmenter._open_start_time = seg_state["open_start_time"]
            segmenter._open_end_time = seg_state["open_end_time"]
            segmenter._open_min = seg_state["open_min"]
            segmenter._open_max = seg_state["open_max"]
            pipeline.segmenter = segmenter
            aligner_state = saved["aligner"]
            cached = aligner_state["cached_cols"]
            aligner = pipeline.aligner
            aligner._ensure_capacity(max(cached, 1))
            if cached:
                aligner._cost[:, :cached] = aligner_state["cost_prefix"]
            aligner._cached_cols = cached
            pipeline.consumed = saved["consumed"]
            pipeline.generation = saved["generation"]
            pipeline.vzone = None
            pipeline.vzone_sample_count = -1
        session._batches = state["batches"]
        session._updates = state["updates"]
        session._previous_x = state["previous_x"]
        return session
