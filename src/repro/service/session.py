"""The streaming localization service (facade over the incremental engines).

A :class:`LocalizationSession` multiplexes many concurrent tag streams: reads
are ingested as they arrive (singly, or as columnar
:class:`~repro.rfid.reading.ReadBatch` batches straight from
:meth:`RFIDReader.sweep_stream <repro.rfid.reader.RFIDReader.sweep_stream>`),
and at any instant the session can emit a **provisional** ordering of the
tags seen so far, together with a confidence grade.  Three incremental
engines make a refresh cheap:

* the :class:`~repro.simulation.streaming.StreamingCollector` maintains
  per-tag sample buffers with amortized O(1) appends;
* an :class:`~repro.core.segmentation.IncrementalSegmenter` per tag extends
  the coarse segmentation as samples arrive instead of recomputing it;
* a :class:`~repro.core.dtw.ResumableSegmentAligner` per tag reuses the
  cached DTW accumulation prefix over the segments that can no longer change,
  so each refresh pays only for the columns that grew.

**Convergence guarantee**: every engine above is bit-identical to its batch
counterpart, so once the stream ends, :meth:`LocalizationSession.finalize`
produces exactly the ordering the batch pipeline
(:class:`~repro.core.localizer.BatchLocalizer` over
:func:`~repro.simulation.collector.profiles_from_read_log`) computes from the
same reads — pinned across the library, airport, and warehouse workloads by
``tests/test_streaming.py``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..core.dtw import ResumableSegmentAligner
from ..core.localizer import STPPConfig, STPPLocalizer
from ..core.ordering_x import order_tags_x
from ..core.ordering_y import order_tags_y
from ..core.phase_profile import PhaseProfile
from ..core.result import LocalizationResult
from ..core.segmentation import IncrementalSegmenter
from ..core.vzone import VZone
from ..evaluation.metrics import ordering_agreement
from ..rfid.reading import ReadBatch, TagRead
from ..simulation.streaming import StreamingCollector
from .cache import ProfileCacheRegistry


@dataclass(frozen=True)
class StreamingUpdate:
    """One provisional (or final) localization emitted by a session."""

    update_index: int
    """Sequence number of this update within the session (0-based)."""

    reads_ingested: int
    """Total reads the session had consumed when the update was computed."""

    batches_ingested: int
    """Total read batches (e.g. inventory rounds) consumed so far."""

    result: LocalizationResult
    """Orderings over the tags seen so far (the final batch result once the
    stream has completed and :meth:`LocalizationSession.finalize` ran)."""

    ordered_fraction: float
    """Fraction of the expected population that received an X rank."""

    agreement: float
    """Pairwise agreement of this X ordering with the previous update's
    (1.0 for the first update)."""

    confidence: float
    """``ordered_fraction * agreement`` — 1.0 means every expected tag is
    ordered and the ordering has stopped moving between refreshes."""

    elapsed_s: float
    """Wall-clock cost of computing this update (not of ingestion)."""

    final: bool = False
    """True for the update returned by :meth:`LocalizationSession.finalize`."""


@dataclass
class _TagPipeline:
    """Incremental per-tag state: segmentation + resumable DTW alignment."""

    segmenter: IncrementalSegmenter
    aligner: ResumableSegmentAligner
    consumed: int = 0
    generation: int = 0
    vzone: VZone | None = None
    vzone_sample_count: int = -1


class LocalizationSession:
    """Streaming relative localization of many concurrent tag streams.

    Parameters
    ----------
    config:
        STPP pipeline parameters.  Streaming requires the paper's default
        ``detection_method="segmented_dtw"`` — the other strategies have no
        incremental alignment state (see ``docs/streaming.md``).
    expected_tag_ids:
        The full tag population, when known up front.  Tags outside it are
        ignored (e.g. Landmarc reference tags sharing the air interface);
        expected tags never seen are reported in ``unordered_ids`` and hold
        the ``ordered_fraction`` below 1.  Defaults to "whatever has been
        seen so far".
    pivot_tag_id:
        Optional pivot for the Y-axis comparison (as in
        :meth:`~repro.core.localizer.STPPLocalizer.localize`).
    channel_index:
        Channel label for profiles; derived from the reads when omitted.
    out_of_order:
        ``"reorder"`` (default) or ``"raise"`` — what to do with a read whose
        timestamp precedes its tag's latest.  Reordering is deterministic
        (stable sort by timestamp, matching the batch path) but rebuilds the
        affected tag's incremental state.
    profile_cache:
        Optional shared :class:`~repro.service.cache.ProfileCacheRegistry`.
        When given, the session's reference profile comes from the registry
        (keyed by ``facility_id`` and the config's reference parameters)
        instead of being built per session — many sessions of one facility
        then share a single immutable template.  Reference construction is
        deterministic, so results are bit-identical either way; sharing only
        removes redundant builds.  Omitted, the session falls back to the
        process-wide :func:`~repro.core.reference.shared_canonical_reference`.
    facility_id:
        The cache key namespace for ``profile_cache`` (ignored without one).
    """

    def __init__(
        self,
        config: STPPConfig | None = None,
        expected_tag_ids: "list[str] | None" = None,
        pivot_tag_id: str | None = None,
        channel_index: int | None = None,
        out_of_order: str = "reorder",
        profile_cache: "ProfileCacheRegistry | None" = None,
        facility_id: str = "default",
    ) -> None:
        config = config if config is not None else STPPConfig()
        if config.detection_method != "segmented_dtw":
            raise ValueError(
                "streaming sessions require detection_method='segmented_dtw' "
                f"(got {config.detection_method!r}); the other strategies have "
                "no incremental alignment state — run them through "
                "BatchLocalizer instead"
            )
        self.config = config
        self.facility_id = facility_id
        reference = (
            None
            if profile_cache is None
            else profile_cache.reference_for(facility_id, config)
        )
        self._localizer = STPPLocalizer(config, reference=reference)
        self._detector = self._localizer.detector
        self._expected = None if expected_tag_ids is None else list(expected_tag_ids)
        self._pivot_tag_id = pivot_tag_id
        self.collector = StreamingCollector(
            channel_index=channel_index, out_of_order=out_of_order
        )
        self._pipelines: dict[str, _TagPipeline] = {}
        self._batches = 0
        self._updates = 0
        self._previous_x: tuple[str, ...] | None = None
        self._finalized: StreamingUpdate | None = None

    # -- ingestion ---------------------------------------------------------

    @property
    def reads_ingested(self) -> int:
        """Total reads consumed so far."""
        return self.collector.read_count

    @property
    def batches_ingested(self) -> int:
        """Total read batches consumed so far."""
        return self._batches

    def _check_open(self) -> None:
        if self._finalized is not None:
            raise RuntimeError("session already finalized; no further ingestion")

    def ingest_batch(self, batch: ReadBatch) -> None:
        """Ingest one columnar read batch (e.g. one inventory round)."""
        self._check_open()
        self.collector.ingest_batch(batch)
        self._batches += 1

    def ingest_columns(
        self,
        timestamps_s: np.ndarray,
        tag_ids: "tuple[str, ...] | list[str]",
        phases_rad: np.ndarray,
        rssi_dbm: np.ndarray,
        channel_index: int = 6,
    ) -> None:
        """Ingest parallel read columns sharing one reader channel."""
        self._check_open()
        self.collector.ingest_columns(
            timestamps_s, tag_ids, phases_rad, rssi_dbm, channel_index=channel_index
        )
        self._batches += 1

    def ingest_read(self, read: TagRead) -> None:
        """Ingest one decoded reply."""
        self._check_open()
        self.collector.ingest_read(read)

    def ingest_reads(self, reads) -> None:
        """Ingest an iterable of reads (arrival order preserved)."""
        self._check_open()
        self.collector.ingest(reads)

    # -- incremental detection --------------------------------------------

    def _pipeline_for(self, tag_id: str) -> _TagPipeline:
        pipeline = self._pipelines.get(tag_id)
        if pipeline is None:
            pipeline = _TagPipeline(
                segmenter=IncrementalSegmenter(self.config.window_size),
                aligner=ResumableSegmentAligner(
                    self._detector.reference_segmentation()
                ),
            )
            self._pipelines[tag_id] = pipeline
        return pipeline

    def _detect(self, tag_id: str, profile: PhaseProfile) -> VZone | None:
        """Incremental V-zone detection for one tag's current profile."""
        stream = self.collector.stream(tag_id)
        pipeline = self._pipeline_for(tag_id)
        if pipeline.generation != stream.reorders:
            # A late read re-sorted this tag's samples: the incremental
            # prefix is void, rebuild it from the (deterministically
            # re-sorted) stream.
            pipeline.segmenter = IncrementalSegmenter(self.config.window_size)
            pipeline.aligner.reset()
            pipeline.consumed = 0
            pipeline.generation = stream.reorders
            pipeline.vzone_sample_count = -1
        total = len(profile)
        if pipeline.consumed < total:
            pipeline.segmenter.extend(
                profile.timestamps_s[pipeline.consumed :],
                profile.phases_rad[pipeline.consumed :],
            )
            pipeline.consumed = total
        if pipeline.vzone_sample_count == total:
            return pipeline.vzone
        segments = pipeline.segmenter.segments()
        if segments:
            result = pipeline.aligner.align(
                segments, pipeline.segmenter.stable_count()
            )
            vzone = self._detector.detect_from_segmented_alignment(
                profile, segments, result
            )
        else:
            vzone = self._detector.detect(profile)
        pipeline.vzone = vzone
        pipeline.vzone_sample_count = total
        return vzone

    def _localize(self) -> LocalizationResult:
        """Run the ordering stages over the current incremental detections.

        Mirrors :meth:`STPPLocalizer.localize` exactly — same profile order,
        same expected-population filtering, same ordering calls — with V-zone
        detection served from the per-tag incremental pipelines.
        """
        expected_set = None if self._expected is None else set(self._expected)
        profile_map: dict[str, PhaseProfile] = {}
        for tag_id in self.collector.tag_ids():
            if expected_set is not None and tag_id not in expected_set:
                continue
            profile_map[tag_id] = self.collector.profile(tag_id)
        expected = self._expected if self._expected is not None else list(profile_map)

        vzones: dict[str, VZone] = {}
        for tag_id, profile in profile_map.items():
            if len(profile) < self.config.min_profile_samples:
                continue
            vzone = self._detect(tag_id, profile)
            if vzone is not None:
                vzones[tag_id] = vzone

        x_ordering = order_tags_x(vzones, all_tag_ids=expected)
        y_ordering = order_tags_y(
            profile_map,
            vzones,
            config=self.config.y_config(),
            all_tag_ids=expected,
            pivot_tag_id=self._pivot_tag_id,
        )
        return LocalizationResult(
            x_ordering=x_ordering,
            y_ordering=y_ordering,
            vzones=vzones,
            metadata={
                "detection_method": self.config.detection_method,
                "window_size": self.config.window_size,
                "y_value_mode": self.config.y_value_mode,
                "profile_count": len(profile_map),
                "streaming": True,
                "reads_ingested": self.reads_ingested,
            },
        )

    # -- updates -----------------------------------------------------------

    def _update(self, final: bool) -> StreamingUpdate:
        started = time.perf_counter()
        result = self._localize()
        elapsed = time.perf_counter() - started

        expected_count = (
            len(self._expected)
            if self._expected is not None
            else max(len(self.collector.tag_ids()), 1)
        )
        ordered_fraction = (
            len(result.x_ordering.ordered_ids) / expected_count
            if expected_count
            else 0.0
        )
        agreement = (
            1.0
            if self._previous_x is None
            else ordering_agreement(self._previous_x, result.x_ordering.ordered_ids)
        )
        self._previous_x = result.x_ordering.ordered_ids

        update = StreamingUpdate(
            update_index=self._updates,
            reads_ingested=self.reads_ingested,
            batches_ingested=self._batches,
            result=result,
            ordered_fraction=ordered_fraction,
            agreement=agreement,
            confidence=ordered_fraction * agreement,
            elapsed_s=elapsed,
            final=final,
        )
        self._updates += 1
        return update

    def provisional(self) -> StreamingUpdate:
        """Compute a provisional ordering over everything ingested so far."""
        self._check_open()
        return self._update(final=False)

    def finalize(self) -> StreamingUpdate:
        """Close the stream and return the converged (batch-exact) result.

        Idempotent: repeated calls return the same update.  After
        finalization further ingestion raises ``RuntimeError``.
        """
        if self._finalized is None:
            self._finalized = self._update(final=True)
        return self._finalized
