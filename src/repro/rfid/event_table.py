"""The whole-sweep event table: the contract between sweep phases.

The fused two-phase sweep engine (:meth:`repro.rfid.reader.RFIDReader.sweep`)
splits simulation into a **scheduling** phase — the sequential round loop
that owns every random draw — and a **physics** phase — one fused NumPy pass
over all rounds' reply attempts.  :class:`SweepEventTable` is the
structure-of-arrays hand-off between them: phase 1 emits one row per
successful slot (timestamp, tag index, inventory round, and the pre-drawn
noise columns), phase 2 fills in the observables (phase, RSSI, readability,
deep-fade booleans).

The table is also the schema the streaming path replays:
:meth:`~repro.rfid.reader.RFIDReader.sweep_stream` yields
:meth:`iter_round_batches`, whose concatenation is exactly the readable rows
of the table — pinned by a property test in ``tests/test_fused_sweep.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from .reading import ReadBatch, ReadLog


def _empty_float() -> np.ndarray:
    return np.empty(0)


@dataclass(slots=True)
class SweepEventTable:
    """Structure-of-arrays record of every successful slot of one sweep.

    Rows are in inventory order: round-major, slot order within each round —
    the order in which the scheduling loop consumed the shared random
    generator.  "Event" means a successful ALOHA slot whose reply the reader
    attempts to decode; whether the decode succeeds is only known after the
    physics phase (:attr:`readable`).
    """

    tag_ids: list[str]
    """The population's tag ids; :attr:`tag_indices` indexes into this."""

    channel_index: int
    antenna_port: int

    round_count: int = 0
    """Total inventory rounds the sweep ran (including event-less rounds)."""

    # -- phase 1: scheduling columns --------------------------------------
    times_s: np.ndarray = field(default_factory=_empty_float)
    """Decode timestamps (slot end times), shape ``(M,)``."""

    tag_indices: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.intp))
    """Index of each event's tag in :attr:`tag_ids`, shape ``(M,)``."""

    round_ids: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.intp))
    """Absolute inventory-round index of each event, shape ``(M,)``."""

    dropped: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=bool))
    """Random-dropout decisions drawn during scheduling.  The *final* dropout
    mask is ``dropped | deep_fade`` (a deep fade always loses the read)."""

    phase_noise_rad: np.ndarray = field(default_factory=_empty_float)
    """Pre-drawn Gaussian phase noise per event."""

    rssi_noise_db: np.ndarray = field(default_factory=_empty_float)
    """Pre-drawn Gaussian RSSI noise per event."""

    assumed_deep: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=bool))
    """The deep-fade booleans the scheduler assumed when drawing noise
    (optimistically all-False, or the exact values after a rollback)."""

    # -- phase 2: physics columns -----------------------------------------
    phase_rad: np.ndarray | None = None
    """Reported phases (noisy, multipath-perturbed, quantised)."""

    rssi_dbm: np.ndarray | None = None
    """Reported RSSI values."""

    readable: np.ndarray | None = None
    """Which events decoded successfully (link budget and dropouts)."""

    deep_fade: np.ndarray | None = None
    """Exact deep-fade booleans from the physics pass."""

    def __len__(self) -> int:
        return int(self.times_s.size)

    @property
    def event_count(self) -> int:
        """Number of scheduled reply attempts (readable or not)."""
        return len(self)

    @property
    def observed(self) -> bool:
        """True once the physics phase has filled the observable columns."""
        return self.phase_rad is not None

    def _require_observed(self) -> None:
        if not self.observed:
            raise ValueError(
                "event table has no observables yet; run the physics phase "
                "(RFIDReader.sweep_events returns a completed table)"
            )

    def event_tag_ids(self) -> list[str]:
        """Tag id of each event, resolved through :attr:`tag_indices`."""
        ids = self.tag_ids
        return [ids[i] for i in self.tag_indices]

    def to_read_log(self) -> ReadLog:
        """The readable events as a time-sorted columnar :class:`ReadLog`.

        Applies the same stable timestamp sort the per-round batched engine
        applies after concatenating its rounds, so the log is bit-identical
        to that engine's output.
        """
        self._require_observed()
        keep = np.nonzero(self.readable)[0]
        timestamps = self.times_s[keep]
        order = np.argsort(timestamps, kind="stable")
        kept = keep[order]
        ids = self.tag_ids
        log = ReadLog()
        log.extend_columns(
            self.times_s[kept],
            [ids[self.tag_indices[i]] for i in kept],
            self.phase_rad[kept],
            self.rssi_dbm[kept],
            channel_index=self.channel_index,
            antenna_port=self.antenna_port,
        )
        return log

    def iter_round_batches(self) -> Iterator[ReadBatch]:
        """Replay the readable events as one :class:`ReadBatch` per round.

        Rounds with no readable event yield nothing; ``round_index`` counts
        the *yielded* batches (matching the live ``sweep_stream`` contract).
        Reads within a batch are stable-sorted by timestamp.
        """
        self._require_observed()
        keep = np.nonzero(self.readable)[0]
        ids = self.tag_ids
        batch_index = 0
        start = 0
        total = keep.size
        while start < total:
            round_id = self.round_ids[keep[start]]
            stop = start
            while stop < total and self.round_ids[keep[stop]] == round_id:
                stop += 1
            rows = keep[start:stop]
            times = self.times_s[rows]
            order = np.argsort(times, kind="stable")
            rows = rows[order]
            yield ReadBatch(
                timestamps_s=self.times_s[rows],
                tag_ids=tuple(ids[self.tag_indices[i]] for i in rows),
                phases_rad=self.phase_rad[rows],
                rssi_dbm=self.rssi_dbm[rows],
                channel_index=self.channel_index,
                antenna_port=self.antenna_port,
                round_index=batch_index,
            )
            batch_index += 1
            start = stop
