"""Passive tag models and tag collections.

The paper tests four commercial tag models (Alien ALR-9610, ALN-9662,
ALN-9634, ALN-9720) of different sizes and shapes.  What differs between
models, from the point of view of the phase/RSSI observables, is the tag
antenna gain and the reflection phase offset ``theta_TAG``; both are captured
in :class:`TagModel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

import numpy as np

from ..rf.geometry import Point3D
from .epc import EPC, generate_epcs


@dataclass(frozen=True, slots=True)
class TagModel:
    """A commercial passive tag model."""

    name: str
    gain_dbi: float = 2.0
    """Gain of the tag antenna in dBi."""

    reflection_phase_rad: float = 0.0
    """Constant reflection phase offset ``theta_TAG`` of this model, radians."""

    size_mm: tuple[float, float] = (95.0, 8.0)
    """Approximate inlay dimensions, millimetres (width, height)."""


ALIEN_ALR_9610 = TagModel("Alien ALR-9610", gain_dbi=2.0, reflection_phase_rad=0.35, size_mm=(94.8, 8.1))
ALIEN_ALN_9662 = TagModel("Alien ALN-9662", gain_dbi=1.8, reflection_phase_rad=0.52, size_mm=(70.0, 17.0))
ALIEN_ALN_9634 = TagModel("Alien ALN-9634", gain_dbi=1.5, reflection_phase_rad=0.41, size_mm=(44.5, 10.4))
ALIEN_ALN_9720 = TagModel("Alien ALN-9720", gain_dbi=2.2, reflection_phase_rad=0.28, size_mm=(50.0, 30.0))

PAPER_TAG_MODELS: tuple[TagModel, ...] = (
    ALIEN_ALR_9610,
    ALIEN_ALN_9662,
    ALIEN_ALN_9634,
    ALIEN_ALN_9720,
)
"""The four tag models evaluated in the paper (Section 4.1)."""


@dataclass(frozen=True, slots=True)
class Tag:
    """A passive tag placed somewhere in the world."""

    epc: EPC
    position: Point3D
    model: TagModel = ALIEN_ALN_9662
    label: str = ""
    """Optional human-readable label (e.g. a book call number or bag id)."""

    @property
    def tag_id(self) -> str:
        """A short unique string identifier derived from the EPC."""
        return str(self.epc)


@dataclass
class TagCollection:
    """An ordered collection of tags with convenient lookups."""

    tags: list[Tag] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._check_unique()

    def _check_unique(self) -> None:
        seen: set[str] = set()
        for tag in self.tags:
            if tag.tag_id in seen:
                raise ValueError(f"duplicate EPC in collection: {tag.tag_id}")
            seen.add(tag.tag_id)

    def __len__(self) -> int:
        return len(self.tags)

    def __iter__(self) -> Iterator[Tag]:
        return iter(self.tags)

    def __getitem__(self, index: int) -> Tag:
        return self.tags[index]

    def add(self, tag: Tag) -> None:
        """Add a tag, enforcing EPC uniqueness."""
        if any(existing.tag_id == tag.tag_id for existing in self.tags):
            raise ValueError(f"duplicate EPC in collection: {tag.tag_id}")
        self.tags.append(tag)

    def ids(self) -> list[str]:
        """All tag identifiers in insertion order."""
        return [tag.tag_id for tag in self.tags]

    def positions(self) -> dict[str, Point3D]:
        """Mapping of tag id to position."""
        return {tag.tag_id: tag.position for tag in self.tags}

    def by_id(self, tag_id: str) -> Tag:
        """Look up a tag by identifier."""
        for tag in self.tags:
            if tag.tag_id == tag_id:
                return tag
        raise KeyError(f"no tag with id {tag_id}")

    def order_along(self, axis: str) -> list[str]:
        """Ground-truth tag order along ``axis`` ('x', 'y', or 'z').

        Ties are broken by the other coordinates so that the ground truth is
        deterministic; evaluation code treats equal-coordinate tags as an
        unordered group via the metrics module.
        """
        axis = axis.lower()
        if axis not in ("x", "y", "z"):
            raise ValueError(f"axis must be 'x', 'y', or 'z', got {axis!r}")
        key_order = {"x": (0, 1, 2), "y": (1, 0, 2), "z": (2, 0, 1)}[axis]

        def sort_key(tag: Tag) -> tuple[float, float, float]:
            coords = (tag.position.x, tag.position.y, tag.position.z)
            return tuple(coords[i] for i in key_order)

        return [tag.tag_id for tag in sorted(self.tags, key=sort_key)]


def make_tags(
    positions: Iterable[Point3D],
    model: TagModel = ALIEN_ALN_9662,
    labels: Iterable[str] | None = None,
    seed: int | None = None,
) -> TagCollection:
    """Create a :class:`TagCollection` with fresh EPCs at the given positions."""
    position_list = list(positions)
    label_list = list(labels) if labels is not None else [""] * len(position_list)
    if len(label_list) != len(position_list):
        raise ValueError("labels and positions must have the same length")
    rng = np.random.default_rng(seed)
    epcs = generate_epcs(len(position_list), rng=rng)
    tags = [
        Tag(epc=epc, position=pos, model=model, label=label)
        for epc, pos, label in zip(epcs, position_list, label_list)
    ]
    return TagCollection(tags)
