"""EPC-96 identifier handling.

EPC Class-1 Generation-2 tags carry a 96-bit Electronic Product Code.  The
library only needs identifiers that are unique, comparable, and convertible to
the bit strings the tree-walking protocol descends over, so we implement the
SGTIN-96-like framing rather than the full GS1 coding tables.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

EPC_BITS = 96
"""Width of an EPC-96 identifier in bits."""

SGTIN96_HEADER = 0x30
"""Header byte value identifying the SGTIN-96 scheme."""


@dataclass(frozen=True, slots=True, order=True)
class EPC:
    """A 96-bit EPC identifier."""

    value: int
    """The identifier as an unsigned 96-bit integer."""

    def __post_init__(self) -> None:
        if not 0 <= self.value < (1 << EPC_BITS):
            raise ValueError(f"EPC value out of 96-bit range: {self.value:#x}")

    def __str__(self) -> str:
        return f"{self.value:024x}"

    @property
    def header(self) -> int:
        """The 8-bit header field (scheme identifier)."""
        return (self.value >> (EPC_BITS - 8)) & 0xFF

    @property
    def serial(self) -> int:
        """The low 38 bits, the per-item serial number in SGTIN-96."""
        return self.value & ((1 << 38) - 1)

    def bits(self) -> str:
        """The identifier as a 96-character bit string (MSB first).

        Tree walking descends over this representation.
        """
        return format(self.value, f"0{EPC_BITS}b")

    @staticmethod
    def from_hex(text: str) -> "EPC":
        """Parse a 24-hex-digit EPC string."""
        cleaned = text.strip().lower().replace(" ", "")
        if len(cleaned) != EPC_BITS // 4:
            raise ValueError(
                f"EPC hex string must have {EPC_BITS // 4} digits, got {len(cleaned)}"
            )
        return EPC(int(cleaned, 16))

    @staticmethod
    def from_fields(company_prefix: int, item_reference: int, serial: int) -> "EPC":
        """Assemble an SGTIN-96-style EPC from its three payload fields."""
        if not 0 <= company_prefix < (1 << 24):
            raise ValueError("company prefix must fit in 24 bits")
        if not 0 <= item_reference < (1 << 20):
            raise ValueError("item reference must fit in 20 bits")
        if not 0 <= serial < (1 << 38):
            raise ValueError("serial must fit in 38 bits")
        value = SGTIN96_HEADER << (EPC_BITS - 8)
        # 3-bit filter + 3-bit partition left at zero for simplicity.
        value |= company_prefix << (20 + 38)
        value |= item_reference << 38
        value |= serial
        return EPC(value)


def generate_epcs(
    count: int,
    company_prefix: int = 0x1F2E3D,
    item_reference: int = 0x5,
    rng: np.random.Generator | None = None,
) -> list[EPC]:
    """Generate ``count`` unique EPCs sharing a company prefix.

    Serial numbers are drawn randomly (without replacement) so that the
    identification order under tree walking does not correlate with spatial
    placement — the property the paper points out makes identification order
    useless for relative localization (Section 2.1).
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if count >= (1 << 20):
        raise ValueError("too many EPCs requested for a single item reference")
    rng = rng if rng is not None else np.random.default_rng()
    serials: set[int] = set()
    while len(serials) < count:
        needed = count - len(serials)
        draws = rng.integers(0, 1 << 38, size=needed, dtype=np.int64)
        serials.update(int(d) for d in draws)
    return [
        EPC.from_fields(company_prefix, item_reference, serial)
        for serial in sorted(serials)[:count]
    ]
