"""COTS RFID reader simulator.

:class:`RFIDReader` reproduces, in simulation, what an ImpinJ R420-class
reader does during a sweep: it runs back-to-back inventory rounds (frame
slotted ALOHA by default), and for every successful slot it attempts to decode
the reply of the winning tag over the backscatter channel.  Each decoded reply
becomes a :class:`~repro.rfid.reading.TagRead` carrying timestamp, phase,
RSSI, and channel — the exact observables the paper's algorithms consume.

The reader is agnostic to *why* geometry changes over time: callers provide
callables mapping time to antenna position and to tag positions, so the same
reader serves the antenna-moving case (librarian pushing a cart) and the
tag-moving case (baggage on a conveyor belt).

Three sweep implementations share one RF kernel:

* the **fused** two-phase engine (default): a scheduling pass runs the
  sequential round loop (zone membership, MAC slotting, per-event noise
  draws) and emits the whole sweep as a structure-of-arrays
  :class:`~repro.rfid.event_table.SweepEventTable`; a physics pass then
  evaluates every round's events in one fused NumPy call
  (:meth:`~repro.rf.channel.BackscatterChannel.observe_sweep`).  Because the
  dropout draw is conditional on deep multipath fades, the scheduler draws
  optimistically and the physics pass verifies, rolling the generator back on
  the (rare) mis-guess — see :meth:`RFIDReader.sweep_events`;
* the **per-round batched** path (``engine="round"``) gathers each round's
  successful slots into per-round batches through
  :meth:`~repro.rf.channel.BackscatterChannel.observe_batch`, with coupling
  neighbours found via a spatial hash
  (:class:`~repro.rfid.coupling.NeighborGrid`) for static layouts;
* the **scalar** path (``batched=False`` / ``engine="scalar"``) is the
  original read-at-a-time reference loop.

All three consume the shared random generator in the identical order (one
``rng.integers`` per round, then the fixed per-event noise-draw sequence), so
their read logs are **bit-identical** — pinned by
``tests/test_batch_sweep.py`` and ``tests/test_fused_sweep.py``.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from functools import partial
from typing import Callable, Mapping, Sequence

import numpy as np

from ..motion.scenarios import StaticTagPositions
from ..rf.antenna import ReadingZone
from ..rf.channel import BackscatterChannel
from ..rf.geometry import Point3D, euclidean_distances
from ..rf.multipath import Reflector
from ..rf.phase_model import DeviceOffsets
from .aloha import FrameSlottedAloha, SlotOutcome
from .backends import resolve_physics_backend
from .coupling import NeighborGrid
from .event_table import SweepEventTable
from .reading import ReadBatch, ReadLog, TagRead
from .tag import Tag, TagCollection

AntennaPositionFn = Callable[[float], Point3D]
"""Maps time (seconds) to the antenna position."""

TagPositionFn = Callable[[str, float], Point3D]
"""Maps (tag id, time in seconds) to that tag's position."""

_SWEEP_ENGINES = ("fused", "round", "scalar")
"""The three sweep implementations; all bit-identical from the same seed."""

_MAX_FUSED_ATTEMPTS = 16
"""Optimistic schedule/verify iterations before the exact per-round fallback.

Each retry replays only the schedule tail after the corrected round plus one
fused physics pass, so attempts are cheap; the cap exists to bound the truly
pathological channels (deep fades on more rounds than this), which drop to
the exact per-round mode instead."""

_COUPLING_CHUNK_CELLS = 262_144
"""Cell budget (events x population) per chunk of the dense coupling filter."""

_PAIRED_FALLBACK_CHUNK = 512
"""Event chunk for the cross-product diagonal of paired-query-less providers."""

_EVENT_INDEX_CACHE = np.arange(64, dtype=np.intp)
_EVENT_INDEX_CACHE.setflags(write=False)


def _event_indices(count: int) -> np.ndarray:
    """``np.arange(count)`` served from a shared grow-only read-only cache.

    The per-round RF kernel used to allocate the same small index ranges
    three times per inventory round; every consumer only reads them, so one
    cached buffer (doubled on demand) serves every round of every sweep.
    """
    global _EVENT_INDEX_CACHE
    if count > _EVENT_INDEX_CACHE.size:
        size = _EVENT_INDEX_CACHE.size
        while size < count:
            size *= 2
        cache = np.arange(size, dtype=np.intp)
        cache.setflags(write=False)
        _EVENT_INDEX_CACHE = cache
    return _EVENT_INDEX_CACHE[:count]


class _CouplingScratch:
    """Per-sweep scratch buffers for the per-round dense coupling filter."""

    __slots__ = ("_within",)

    def __init__(self) -> None:
        self._within: np.ndarray | None = None

    def within_mask(self, distances: np.ndarray, radius: float) -> np.ndarray:
        """``distances <= radius`` written into a reused per-sweep buffer.

        The buffer grows to the largest (events x population) round seen so
        far; every cell of the returned view is overwritten, so stale values
        from previous rounds cannot leak.
        """
        rows, cols = distances.shape
        buffer = self._within
        if buffer is None or buffer.shape[0] < rows or buffer.shape[1] < cols:
            self._within = buffer = np.empty(
                (max(rows, 16), cols), dtype=bool
            )
        view = buffer[:rows, :cols]
        np.less_equal(distances, radius, out=view)
        return view


@dataclass(slots=True)
class _SweepSetup:
    """Per-sweep invariants shared by the batched and fused engines."""

    ids: list[str]
    index_of: dict[str, int]
    mu_by_tag: np.ndarray
    provider: object
    static_layout: bool
    antenna_positions_at: object
    antenna_position_row: object
    coupling_on: bool
    radius: float
    base_positions: np.ndarray | None
    grid: NeighborGrid | None


class _SweepScheduler:
    """Phase 1 of the fused sweep: the rng-owning round loop, resumable.

    Runs the sequential inventory loop — zone membership, MAC slotting (via
    :meth:`~repro.rfid.aloha.FrameSlottedAloha.run_round_schedule`), the
    per-event noise draws — and emits the whole sweep as a
    :class:`~repro.rfid.event_table.SweepEventTable`.  Deep-fade booleans for
    the draws come from ``corrections`` where a prior physics pass computed
    them, and are assumed ``False`` elsewhere.

    Entry state (clock, protocol Q, rng state) is checkpointed every
    :attr:`CHECKPOINT_STRIDE` rounds, so when the physics pass finds a
    mis-guessed round the schedule is :meth:`resume`-d from the nearest
    snapshot — the long unchanged prefix is kept, not replayed.
    """

    CHECKPOINT_STRIDE = 8
    """Rounds between state snapshots.  A resume replays forward from the
    nearest snapshot at or before the corrected round — replayed rounds
    consume the generator identically, so the stride only trades a few
    microseconds of capture per round against a bounded replay on rollback."""

    def __init__(
        self,
        reader: "RFIDReader",
        setup: _SweepSetup,
        antenna_position: AntennaPositionFn,
        duration_s: float,
        rng: np.random.Generator,
    ) -> None:
        self._reader = reader
        self._setup = setup
        self._antenna_position = antenna_position
        self._duration_s = duration_s
        self._rng = rng
        # One entry per event-bearing round: (round id, times, tag indices,
        # dropped, phase noise, rssi noise, assumed deep).
        self._parts: list[tuple] = []
        # Snapshot per CHECKPOINT_STRIDE-th round:
        # round index -> (clock, protocol q_fp, rng state).
        self._checkpoints: dict[int, tuple[float, float, dict]] = {}

    def run(self, corrections: "dict[int, np.ndarray]") -> SweepEventTable:
        """Schedule the whole sweep from the beginning."""
        self._parts.clear()
        self._checkpoints.clear()
        return self._run_from(0, 0.0, corrections)

    def resume(
        self, round_index: int, corrections: "dict[int, np.ndarray]"
    ) -> SweepEventTable:
        """Replay the schedule from ``round_index``'s nearest checkpoint.

        Restores the generator and protocol state captured at the last
        snapshot at or before the corrected round; the replayed rounds
        consume the generator exactly as before (corrections included), so
        only the mis-guessed round's noise actually changes.
        """
        base = (round_index // self.CHECKPOINT_STRIDE) * self.CHECKPOINT_STRIDE
        clock, q_fp, rng_state = self._checkpoints[base]
        self._rng.bit_generator.state = rng_state
        self._reader.protocol.restore_scheduling_checkpoint(q_fp)
        for stale in [key for key in self._checkpoints if key >= base]:
            del self._checkpoints[stale]
        while self._parts and self._parts[-1][0] >= base:
            self._parts.pop()
        return self._run_from(base, clock, corrections)

    def _run_from(
        self, round_index: int, clock: float, corrections: "dict[int, np.ndarray]"
    ) -> SweepEventTable:
        reader = self._reader
        setup = self._setup
        antenna_position = self._antenna_position
        duration_s = self._duration_s
        rng = self._rng
        zone = reader.config.reading_zone
        noise = reader.config.channel.noise
        protocol = reader.protocol
        parts = self._parts
        checkpoints = self._checkpoints
        clock_buffer = np.empty(1)

        stride = self.CHECKPOINT_STRIDE
        while clock < duration_s:
            if round_index % stride == 0:
                checkpoints[round_index] = (
                    clock,
                    protocol.scheduling_checkpoint(),
                    rng.bit_generator.state,
                )
            antenna_row, round_positions = reader._round_start_geometry(
                setup, antenna_position, clock, clock_buffer
            )
            in_zone_mask = zone.contains_many(antenna_row, round_positions)
            # Population indices stand in for the id strings: run_round's rng
            # draw depends only on the participant count, and the winners come
            # back as positions into this array.
            in_zone = np.nonzero(in_zone_mask)[0]

            success_ids, success_ends, round_time = protocol.run_round_schedule(
                in_zone, clock, rng
            )
            if len(success_ids):
                # Slot end times are monotone, so this prefix filter equals
                # the scalar loop's "first read past the deadline breaks".
                count = int(np.searchsorted(success_ends, duration_s, side="right"))
                if count:
                    assumed = corrections.get(round_index)
                    if assumed is None:
                        assumed = np.zeros(count, dtype=bool)
                    dropped, phase_noise, rssi_noise = (
                        noise.draw_event_noise_scheduled(assumed, rng)
                    )
                    parts.append(
                        (
                            round_index,
                            success_ends[:count],
                            np.asarray(success_ids[:count], dtype=np.intp),
                            dropped,
                            phase_noise,
                            rssi_noise,
                            assumed,
                        )
                    )

            if round_time <= 0:
                raise RuntimeError("inventory round produced non-positive duration")
            clock += round_time
            round_index += 1

        return self._build_table(round_index)

    def _build_table(self, round_count: int) -> SweepEventTable:
        parts = self._parts
        if parts:
            round_ids = np.concatenate(
                [np.full(part[1].size, part[0], dtype=np.intp) for part in parts]
            )
            columns = tuple(
                np.concatenate([part[position] for part in parts])
                for position in range(1, 7)
            )
        else:
            round_ids = np.empty(0, dtype=np.intp)
            columns = (
                np.empty(0),
                np.empty(0, dtype=np.intp),
                np.empty(0, dtype=bool),
                np.empty(0),
                np.empty(0),
                np.empty(0, dtype=bool),
            )
        reader = self._reader
        return SweepEventTable(
            tag_ids=list(self._setup.ids),
            channel_index=reader.config.channel.channel_index,
            antenna_port=reader.config.antenna_port,
            round_count=round_count,
            times_s=columns[0],
            tag_indices=columns[1],
            round_ids=round_ids,
            dropped=columns[2],
            phase_noise_rad=columns[3],
            rssi_noise_db=columns[4],
            assumed_deep=columns[5],
        )


@dataclass(frozen=True, slots=True)
class ReaderConfig:
    """Configuration of a simulated reader."""

    channel: BackscatterChannel = field(default_factory=BackscatterChannel)
    reading_zone: ReadingZone = field(default_factory=ReadingZone)
    antenna_port: int = 1
    reader_tx_phase_rad: float = 0.55
    """Phase rotation of the reader transmit circuit (part of ``mu`` in Eq. 1)."""

    reader_rx_phase_rad: float = 1.1
    """Phase rotation of the reader receive circuit (part of ``mu`` in Eq. 1)."""

    tag_coupling_coefficient: float = 0.75
    """Strength of mutual coupling between nearby tags (0 disables coupling).

    Each neighbouring tag is treated as a weak scatterer whose influence
    decays quickly with distance; this is what degrades ordering accuracy for
    tags packed a couple of centimetres apart (paper Figures 13/14)."""

    tag_coupling_decay_m: float = 0.022
    """Distance scale of the coupling decay."""

    tag_coupling_radius_m: float = 0.15
    """Neighbours farther than this contribute no coupling (saves computation)."""

    def __post_init__(self) -> None:
        if not 0.0 <= self.tag_coupling_coefficient <= 1.0:
            raise ValueError(
                "tag coupling coefficient must be in [0, 1], "
                f"got {self.tag_coupling_coefficient}"
            )
        if self.tag_coupling_decay_m <= 0.0:
            raise ValueError(
                f"tag coupling decay must be positive, got {self.tag_coupling_decay_m}"
            )
        if self.tag_coupling_radius_m <= 0.0:
            raise ValueError(
                "tag coupling radius must be positive "
                f"(use coefficient 0 to disable coupling), got {self.tag_coupling_radius_m}"
            )


class _CallableTagPositions:
    """Fallback provider wrapping a plain ``(tag_id, t) -> Point3D`` callable.

    Correct for arbitrary user-supplied motion, but evaluates positions one
    call at a time; the standard scenarios install array-native providers
    (see :mod:`repro.motion.scenarios`) that vectorize these queries.
    """

    is_static = False

    def __init__(self, fn: TagPositionFn) -> None:
        self._fn = fn

    def __call__(self, tag_id: str, time_s: float) -> Point3D:
        return self._fn(tag_id, time_s)

    def positions_at(self, tag_ids: Sequence[str], times_s: np.ndarray) -> np.ndarray:
        times = np.asarray(times_s, dtype=float)
        out = np.empty((times.size, len(tag_ids), 3))
        for t_index, time_s in enumerate(times):
            for n_index, tag_id in enumerate(tag_ids):
                point = self._fn(tag_id, float(time_s))
                out[t_index, n_index, 0] = point.x
                out[t_index, n_index, 1] = point.y
                out[t_index, n_index, 2] = point.z
        return out

    def positions_paired(
        self, tag_ids: Sequence[str], times_s: np.ndarray
    ) -> np.ndarray:
        """Position of ``tag_ids[i]`` at ``times_s[i]``, as ``(M, 3)``.

        One call per pair — O(M), unlike the O(M^2) cross product
        :meth:`positions_at` would evaluate for the same pairs.
        """
        times = np.asarray(times_s, dtype=float)
        out = np.empty((len(tag_ids), 3))
        for index, (tag_id, time_s) in enumerate(zip(tag_ids, times)):
            point = self._fn(tag_id, float(time_s))
            out[index, 0] = point.x
            out[index, 1] = point.y
            out[index, 2] = point.z
        return out


class RFIDReader:
    """Simulates continuous C1G2 inventory during a sweep."""

    def __init__(
        self,
        config: ReaderConfig | None = None,
        protocol: FrameSlottedAloha | None = None,
        physics_backend: object | None = None,
    ) -> None:
        self.config = config if config is not None else ReaderConfig()
        self.protocol = protocol if protocol is not None else FrameSlottedAloha()
        self.physics_backend = resolve_physics_backend(physics_backend)
        """How the fused engine's physics pass executes: ``serial`` (default),
        ``threads``, ``process``, or a custom backend instance — see
        :mod:`repro.rfid.backends`.  All backends are bit-identical; the
        default honours the ``REPRO_PHYSICS_BACKEND`` environment variable."""

        self._per_tag_channels: dict[str, BackscatterChannel] = {}
        self.last_sweep_stats: dict = {}
        """Diagnostics of the most recent fused sweep: optimistic attempts,
        rolled-back rounds, whether the per-round fallback engaged, the
        physics backend and its chunk count, and the scheduling-vs-physics
        wall-time split."""

    def _device_offsets_for(self, tag: Tag) -> DeviceOffsets:
        """Eq. (1) ``mu`` components for one tag behind this reader."""
        return DeviceOffsets(
            theta_tx=self.config.reader_tx_phase_rad,
            theta_rx=self.config.reader_rx_phase_rad,
            theta_tag=tag.model.reflection_phase_rad,
        )

    def _channel_for(self, tag: Tag) -> BackscatterChannel:
        """A channel whose device offsets include this tag's reflection phase."""
        existing = self._per_tag_channels.get(tag.tag_id)
        if existing is not None:
            return existing
        channel = dataclasses.replace(
            self.config.channel, device_offsets=self._device_offsets_for(tag)
        )
        self._per_tag_channels[tag.tag_id] = channel
        return channel

    def _resolve_tag_positions(
        self, tag_position: TagPositionFn | None, tags: TagCollection
    ):
        """Normalise the tag-position argument into an array-native provider."""
        if tag_position is None:
            return StaticTagPositions(tags.positions())
        if hasattr(tag_position, "positions_at") and hasattr(tag_position, "is_static"):
            return tag_position
        return _CallableTagPositions(tag_position)

    def sweep(
        self,
        tags: TagCollection,
        antenna_position: AntennaPositionFn,
        duration_s: float,
        tag_position: TagPositionFn | None = None,
        rng: np.random.Generator | None = None,
        batched: bool = True,
        engine: str | None = None,
        physics_backend: object | None = None,
    ) -> ReadLog:
        """Run inventory rounds for ``duration_s`` seconds and return the read log.

        Parameters
        ----------
        tags:
            The tag population.  Tags outside the reading zone at a given
            instant do not participate in that round.
        antenna_position:
            Antenna position as a function of time.
        duration_s:
            Sweep duration in seconds.
        tag_position:
            Optional tag position as a function of (tag id, time); defaults to
            the static positions stored in ``tags`` (antenna-moving case).
        rng:
            Random generator controlling slot choices, noise, and dropouts.
        batched:
            Back-compat switch: ``False`` forces the scalar reference loop.
        engine:
            Which sweep engine to run — ``"fused"`` (default: two-phase
            scheduling + whole-sweep physics), ``"round"`` (the per-round
            batched kernel), or ``"scalar"`` (the read-at-a-time reference
            loop).  All three produce bit-identical logs from the same seed;
            an explicit ``engine`` overrides ``batched``.
        physics_backend:
            Per-sweep override of the reader's physics backend (name or
            instance, see :mod:`repro.rfid.backends`); only the fused engine
            has a parallelisable physics phase, the other engines ignore it.
            All backends produce bit-identical logs.
        """
        if duration_s <= 0:
            raise ValueError(f"duration must be positive, got {duration_s}")
        if engine is None:
            engine = "fused" if batched else "scalar"
        if engine not in _SWEEP_ENGINES:
            raise ValueError(
                f"engine must be one of {_SWEEP_ENGINES}, got {engine!r}"
            )
        rng = rng if rng is not None else np.random.default_rng()
        if engine == "fused":
            return self.sweep_events(
                tags, antenna_position, duration_s, tag_position, rng,
                physics_backend=physics_backend,
            ).to_read_log()
        if engine == "round":
            return self._sweep_batched(tags, antenna_position, duration_s, tag_position, rng)
        return self._sweep_scalar(tags, antenna_position, duration_s, tag_position, rng)

    # ------------------------------------------------------------------
    # Scalar reference path
    # ------------------------------------------------------------------

    def _sweep_scalar(
        self,
        tags: TagCollection,
        antenna_position: AntennaPositionFn,
        duration_s: float,
        tag_position: TagPositionFn | None,
        rng: np.random.Generator,
    ) -> ReadLog:
        """The original read-at-a-time loop, kept as the reference semantics."""
        static_positions: Mapping[str, Point3D] = tags.positions()

        def position_of(tag_id: str, time_s: float) -> Point3D:
            if tag_position is not None:
                return tag_position(tag_id, time_s)
            return static_positions[tag_id]

        log = ReadLog()
        clock = 0.0
        tags_by_id = {tag.tag_id: tag for tag in tags}

        while clock < duration_s:
            antenna_pos = antenna_position(clock)
            in_zone = [
                tag_id
                for tag_id in tags_by_id
                if self.config.reading_zone.contains(
                    antenna_pos, position_of(tag_id, clock)
                )
            ]
            events = self.protocol.run_round(in_zone, clock, rng)
            for event in events:
                if event.outcome is not SlotOutcome.SUCCESS or event.tag_id is None:
                    continue
                read_time = event.end_time_s
                if read_time > duration_s:
                    break
                tag = tags_by_id[event.tag_id]
                channel = self._channel_for(tag)
                tag_pos_now = position_of(tag.tag_id, read_time)
                coupling = self._coupling_scatterers(
                    tag.tag_id, tag_pos_now, tags_by_id, position_of, read_time
                )
                observation = channel.observe(
                    antenna_position(read_time),
                    tag_pos_now,
                    rng,
                    extra_reflectors=coupling,
                )
                if not observation.readable:
                    continue
                log.append(
                    TagRead(
                        timestamp_s=read_time,
                        tag_id=tag.tag_id,
                        phase_rad=observation.phase_rad,
                        rssi_dbm=observation.rssi_dbm,
                        channel_index=channel.channel_index,
                        antenna_port=self.config.antenna_port,
                    )
                )
            round_time = self.protocol.round_duration_s(events)
            if round_time <= 0:
                raise RuntimeError("inventory round produced non-positive duration")
            clock += round_time

        return log.sorted_by_time()

    def _coupling_scatterers(
        self,
        tag_id: str,
        tag_pos: Point3D,
        tags_by_id: Mapping[str, Tag],
        position_of: Callable[[str, float], Point3D],
        time_s: float,
    ) -> tuple[Reflector, ...]:
        """Scatterers representing nearby tags at this instant of the sweep."""
        coefficient = self.config.tag_coupling_coefficient
        if coefficient <= 0.0:
            return ()
        radius = self.config.tag_coupling_radius_m
        scatterers: list[Reflector] = []
        for other_id in tags_by_id:
            if other_id == tag_id:
                continue
            other_pos = position_of(other_id, time_s)
            if tag_pos.distance_to(other_pos) > radius:
                continue
            scatterers.append(
                Reflector(
                    position=other_pos,
                    reflection_coefficient=coefficient,
                    scattering_decay_m=self.config.tag_coupling_decay_m,
                )
            )
        return tuple(scatterers)

    # ------------------------------------------------------------------
    # Shared sweep setup
    # ------------------------------------------------------------------

    def _sweep_setup(
        self,
        tags: TagCollection,
        tag_position: TagPositionFn | None,
        antenna_position: AntennaPositionFn,
    ) -> "_SweepSetup":
        """Resolve the per-sweep invariants shared by the batched engines."""
        config = self.config
        tag_list = list(tags)
        ids = [tag.tag_id for tag in tag_list]
        index_of = {tag_id: i for i, tag_id in enumerate(ids)}
        population = len(ids)
        # Hoist the per-tag Eq. (1) offsets: theta_TAG varies per tag model,
        # everything else about the channel is shared.
        mu_by_tag = np.array(
            [self._device_offsets_for(tag).total for tag in tag_list], dtype=float
        )

        provider = self._resolve_tag_positions(tag_position, tags)
        static_layout = bool(getattr(provider, "is_static", False))
        antenna_positions_at = getattr(antenna_position, "positions_at", None)
        antenna_position_row = getattr(antenna_position, "position_row", None)

        coupling_on = config.tag_coupling_coefficient > 0.0 and population > 1
        radius = config.tag_coupling_radius_m
        base_positions: np.ndarray | None = None
        grid: NeighborGrid | None = None
        if static_layout:
            base_positions = provider.positions_at(ids, np.zeros(1))[0]
            # Copy: the provider may hand out a broadcast view of its cache.
            base_positions = np.array(base_positions, dtype=float)
            if coupling_on:
                grid = NeighborGrid(base_positions, radius)

        return _SweepSetup(
            ids=ids,
            index_of=index_of,
            mu_by_tag=mu_by_tag,
            provider=provider,
            static_layout=static_layout,
            antenna_positions_at=antenna_positions_at,
            antenna_position_row=antenna_position_row,
            coupling_on=coupling_on,
            radius=radius,
            base_positions=base_positions,
            grid=grid,
        )

    def _round_start_geometry(
        self,
        setup: "_SweepSetup",
        antenna_position: AntennaPositionFn,
        clock: float,
        clock_buffer: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """(antenna row, tag rows) at a round's start — the zone-check inputs.

        Shared by every round loop.  Uses the providers' row-level queries
        when available (identical arithmetic to the ``Point3D`` forms) and a
        caller-owned one-element time buffer, so the per-round geometry costs
        no wrapper objects or allocations beyond the providers' own outputs.
        """
        if setup.antenna_position_row is not None:
            antenna_row = setup.antenna_position_row(clock)
        else:
            antenna_row = antenna_position(clock).as_array()
        if setup.static_layout:
            round_positions = setup.base_positions
        else:
            clock_buffer[0] = clock
            round_positions = setup.provider.positions_at(setup.ids, clock_buffer)[0]
        return antenna_row, round_positions

    # ------------------------------------------------------------------
    # Per-round batched path (engine="round")
    # ------------------------------------------------------------------

    def _sweep_batched(
        self,
        tags: TagCollection,
        antenna_position: AntennaPositionFn,
        duration_s: float,
        tag_position: TagPositionFn | None,
        rng: np.random.Generator,
    ) -> ReadLog:
        """Round-batched sweep: vectorized geometry, RF kernel, and logging."""
        # Column accumulators for the read log.
        out_times: list[np.ndarray] = []
        out_ids: list[str] = []
        out_phases: list[np.ndarray] = []
        out_rssis: list[np.ndarray] = []

        for times, ids, phases, rssis in self._batched_rounds(
            tags, antenna_position, duration_s, tag_position, rng
        ):
            out_times.append(times)
            out_ids.extend(ids)
            out_phases.append(phases)
            out_rssis.append(rssis)

        if out_times:
            timestamps = np.concatenate(out_times)
            phases = np.concatenate(out_phases)
            rssis = np.concatenate(out_rssis)
        else:
            timestamps = phases = rssis = np.empty(0)
        order = np.argsort(timestamps, kind="stable")
        log = ReadLog()
        log.extend_columns(
            timestamps[order],
            [out_ids[i] for i in order],
            phases[order],
            rssis[order],
            channel_index=self.config.channel.channel_index,
            antenna_port=self.config.antenna_port,
        )
        return log

    def sweep_stream(
        self,
        tags: TagCollection,
        antenna_position: AntennaPositionFn,
        duration_s: float,
        tag_position: TagPositionFn | None = None,
        rng: np.random.Generator | None = None,
    ):
        """Run a sweep and yield one :class:`ReadBatch` per inventory round.

        The streaming entry point: instead of returning the finished
        :class:`ReadLog`, reads are emitted round by round — in a real
        deployment this is the LLRP report stream the reader pushes while the
        antenna is still moving.  Rounds that decode no readable reply yield
        nothing.  Reads within a batch are stable-sorted by timestamp.

        Since PR 5 the batches are *replayed* off the fused engine's
        whole-sweep event table (the simulation runs to completion on the
        first ``next()``, then yields per-round slices); the rng draw order
        is owned by the same scheduling loop as :meth:`sweep`, so
        concatenating the yielded batches reproduces the sweep's read log
        read for read (pinned by ``tests/test_streaming.py`` and the
        event-table property test in ``tests/test_fused_sweep.py``).
        """
        if duration_s <= 0:
            raise ValueError(f"duration must be positive, got {duration_s}")
        rng = rng if rng is not None else np.random.default_rng()
        table = self.sweep_events(tags, antenna_position, duration_s, tag_position, rng)
        yield from table.iter_round_batches()

    def _batched_rounds(
        self,
        tags: TagCollection,
        antenna_position: AntennaPositionFn,
        duration_s: float,
        tag_position: TagPositionFn | None,
        rng: np.random.Generator,
    ):
        """The round-batched sweep loop, one ``(times, ids, phases, rssis)``
        tuple per inventory round with at least one readable reply.

        The per-round reference engine (``engine="round"``): the fused
        two-phase engine must stay bit-identical to this loop, which in turn
        is pinned against the scalar loop.
        """
        setup = self._sweep_setup(tags, tag_position, antenna_position)
        zone = self.config.reading_zone
        ids = setup.ids
        scratch = _CouplingScratch()
        clock_buffer = np.empty(1)

        clock = 0.0
        while clock < duration_s:
            antenna_row, round_positions = self._round_start_geometry(
                setup, antenna_position, clock, clock_buffer
            )
            in_zone_mask = zone.contains_many(antenna_row, round_positions)
            in_zone = [ids[i] for i in np.nonzero(in_zone_mask)[0]]

            events = self.protocol.run_round(in_zone, clock, rng)
            success_ids: list[str] = []
            success_times: list[float] = []
            for event in events:
                if event.outcome is not SlotOutcome.SUCCESS or event.tag_id is None:
                    continue
                read_time = event.end_time_s
                if read_time > duration_s:
                    break
                success_ids.append(event.tag_id)
                success_times.append(read_time)

            if success_ids:
                observed = self._observe_round(
                    rng=rng,
                    setup=setup,
                    antenna_position=antenna_position,
                    success_ids=success_ids,
                    success_times=success_times,
                    scratch=scratch,
                )
                if observed is not None:
                    yield observed

            round_time = self.protocol.round_duration_s(events)
            if round_time <= 0:
                raise RuntimeError("inventory round produced non-positive duration")
            clock += round_time

    def _observe_round(
        self,
        rng: np.random.Generator,
        setup: "_SweepSetup",
        antenna_position: AntennaPositionFn,
        success_ids: list[str],
        success_times: list[float],
        scratch: "_CouplingScratch",
    ) -> "tuple[np.ndarray, list[str], np.ndarray, np.ndarray] | None":
        """Observe one round's successful slots as a single vectorized batch.

        Returns the round's readable reads as ``(times, ids, phases, rssis)``
        columns in slot order, or ``None`` when nothing was readable.  The
        per-event index arrays come from the shared grow-only cache
        (:func:`_event_indices`) and the dense coupling filter reuses
        ``scratch``'s mask buffer — the same (tag index, timestamp) event
        schema the fused engine's phase 1 emits as a whole-sweep table.
        """
        count = len(success_ids)
        tag_indices = np.array(
            [setup.index_of[tag_id] for tag_id in success_ids], dtype=np.intp
        )
        times = np.array(success_times, dtype=float)

        if setup.antenna_positions_at is not None:
            antenna_rows = np.asarray(setup.antenna_positions_at(times), dtype=float)
        else:
            antenna_rows = np.array(
                [
                    (p.x, p.y, p.z)
                    for p in (antenna_position(t) for t in success_times)
                ],
                dtype=float,
            )

        extra_positions = extra_index = None
        if setup.base_positions is not None:
            # Static layout: positions never change; neighbour sets come from
            # the sweep-lifetime spatial hash.
            event_tag_positions = setup.base_positions[tag_indices]
            if setup.coupling_on and setup.grid is not None:
                neighbor_lists = [setup.grid.neighbors_of(int(i)) for i in tag_indices]
                total = sum(len(n) for n in neighbor_lists)
                if total:
                    extra_index = np.repeat(
                        _event_indices(count),
                        [len(n) for n in neighbor_lists],
                    )
                    flat_neighbors = np.concatenate(neighbor_lists)
                    extra_positions = setup.base_positions[flat_neighbors]
        elif not setup.coupling_on:
            # Moving tags without coupling: only the observed tags' own
            # positions matter.  Providers evaluate each (tag, time) cell
            # independently, so a pairwise query equals the corresponding
            # cells of the full-population query bitwise.
            paired = getattr(setup.provider, "positions_paired", None)
            if paired is not None:
                event_tag_positions = paired(success_ids, times)
            else:
                rows = setup.provider.positions_at(success_ids, times)
                indices = _event_indices(count)
                event_tag_positions = rows[indices, indices]
        else:
            # Moving tags with coupling: evaluate every tag's position at
            # every read time in one array pass, then apply the exact radius
            # filter (the positions change each event, so the spatial hash
            # would have to be rebuilt per event anyway — the dense filter IS
            # that rebuild).
            all_positions = setup.provider.positions_at(setup.ids, times)
            indices = _event_indices(count)
            event_tag_positions = all_positions[indices, tag_indices]
            distances = euclidean_distances(
                event_tag_positions[:, None, :], all_positions
            )
            within = scratch.within_mask(distances, setup.radius)
            within[indices, tag_indices] = False
            event_index, neighbor_index = np.nonzero(within)
            if event_index.size:
                extra_index = event_index.astype(np.intp)
                extra_positions = all_positions[event_index, neighbor_index]

        extra_coefficients = extra_decays = None
        if extra_positions is not None:
            extra_coefficients = np.full(
                len(extra_positions), self.config.tag_coupling_coefficient
            )
            extra_decays = np.full(
                len(extra_positions), self.config.tag_coupling_decay_m
            )

        observation = self.config.channel.observe_batch(
            antenna_rows,
            event_tag_positions,
            rng,
            device_offsets_total=setup.mu_by_tag[tag_indices],
            extra_positions=extra_positions,
            extra_coefficients=extra_coefficients,
            extra_decays=extra_decays,
            extra_event_index=extra_index,
        )

        keep = observation.readable
        if not np.any(keep):
            return None
        kept = np.nonzero(keep)[0]
        return (
            times[kept],
            [success_ids[i] for i in kept],
            observation.phase_rad[kept],
            observation.rssi_dbm[kept],
        )

    # ------------------------------------------------------------------
    # Fused two-phase path (engine="fused", the default)
    # ------------------------------------------------------------------

    def sweep_events(
        self,
        tags: TagCollection,
        antenna_position: AntennaPositionFn,
        duration_s: float,
        tag_position: TagPositionFn | None = None,
        rng: np.random.Generator | None = None,
        physics_backend: object | None = None,
    ) -> SweepEventTable:
        """Run the fused two-phase sweep and return its completed event table.

        **Phase 1 (scheduling)** runs the sequential round loop — zone
        membership, MAC slotting, per-event noise draws, clock advance — and
        emits the whole sweep's reply attempts as a structure-of-arrays
        :class:`~repro.rfid.event_table.SweepEventTable`.  All rng
        consumption happens here, in the same order as the per-round and
        scalar engines.  **Phase 2 (physics)** evaluates every event's
        geometry, link budget, multipath, Eq. (1) phase, quantisation, and
        RSSI in one fused NumPy pass
        (:meth:`~repro.rf.channel.BackscatterChannel.observe_sweep`).

        The one place physics feeds back into the rng order is the dropout
        draw, which the scalar path skips for events in a deep multipath
        fade.  Phase 1 therefore draws *optimistically* (assuming no deep
        fades — overwhelmingly the common case) and phase 2 verifies; on a
        mis-guess the generator and protocol state are rolled back to the
        nearest per-round checkpoint and only the schedule tail replays,
        with the exact booleans for the offending round (each retry fixes at
        least one round, so the loop terminates).  Pathological
        configurations that keep
        mis-guessing fall back to an exact per-round mode.  Either way the
        read log is bit-identical to the scalar reference — pinned by
        ``tests/test_fused_sweep.py``.
        """
        if duration_s <= 0:
            raise ValueError(f"duration must be positive, got {duration_s}")
        rng = rng if rng is not None else np.random.default_rng()
        backend = (
            self.physics_backend
            if physics_backend is None
            else resolve_physics_backend(physics_backend)
        )
        setup = self._sweep_setup(tags, tag_position, antenna_position)
        noise = self.config.channel.noise

        rng_checkpoint = rng.bit_generator.state
        protocol_checkpoint = self.protocol.scheduling_checkpoint()
        corrections: dict[int, np.ndarray] = {}
        stats = {
            "attempts": 0,
            "rolled_back_rounds": 0,
            "per_round_fallback": False,
            "backend": backend.name,
            "physics_chunks": 0,
            "scheduling_s": 0.0,
            "physics_s": 0.0,
        }

        scheduler = _SweepScheduler(self, setup, antenna_position, duration_s, rng)
        table: SweepEventTable | None = None
        resume_round: int | None = None
        for attempt in range(_MAX_FUSED_ATTEMPTS):
            tick = time.perf_counter()
            if resume_round is None:
                candidate = scheduler.run(corrections)
            else:
                # Everything before the corrected round consumed the
                # generator correctly — replay only the tail from that
                # round's checkpoint.
                candidate = scheduler.resume(resume_round, corrections)
            tock = time.perf_counter()
            stats["scheduling_s"] += tock - tick
            stats["physics_chunks"] += self._observe_events(
                setup, antenna_position, candidate, backend
            )
            stats["physics_s"] += time.perf_counter() - tock
            stats["attempts"] = attempt + 1
            if noise.random_dropout_probability == 0.0:
                # Deep fades never gate a draw when dropouts are off; the
                # schedule cannot have diverged.
                table = candidate
                break
            mistaken = candidate.deep_fade & ~candidate.assumed_deep
            if not mistaken.any():
                table = candidate
                break
            # Each retry pins down one more round; if more rounds are wrong
            # than retries remain, optimism cannot converge — go straight to
            # the exact per-round mode instead of burning the attempts.
            mistaken_rounds = np.unique(candidate.round_ids[mistaken]).size
            if mistaken_rounds > _MAX_FUSED_ATTEMPTS - attempt - 1:
                break
            # The first mis-guessed round: its own events are fixed by its
            # (pre-noise) slotting draw, so its exact booleans stay valid
            # across the replay.
            first_round = int(candidate.round_ids[int(np.argmax(mistaken))])
            round_rows = candidate.round_ids == first_round
            corrections[first_round] = candidate.deep_fade[round_rows].copy()
            resume_round = first_round
            stats["rolled_back_rounds"] += 1

        if table is None:
            # Pathological channel (deep fades on most rounds): replay once
            # more in exact per-round mode — physics before noise, round by
            # round — which can never mis-guess.
            rng.bit_generator.state = rng_checkpoint
            self.protocol.restore_scheduling_checkpoint(protocol_checkpoint)
            stats["per_round_fallback"] = True
            table = self._sweep_table_per_round(
                setup, antenna_position, duration_s, rng
            )

        self.last_sweep_stats = stats
        return table

    def _event_geometry(
        self,
        setup: "_SweepSetup",
        antenna_position: AntennaPositionFn,
        times: np.ndarray,
        tag_indices: np.ndarray,
    ):
        """Geometry and coupling scatterers for a batch of events.

        Returns ``(antenna_rows, event_tag_positions, extra_positions,
        extra_coefficients, extra_decays, extra_event_index)``.  Shared by
        the fused physics pass (one call per sweep) and the exact per-round
        fallback (one call per round); every per-event value is evaluated by
        the same elementwise arithmetic as :meth:`_observe_round`.
        """
        count = int(times.size)
        if setup.antenna_positions_at is not None:
            antenna_rows = np.asarray(setup.antenna_positions_at(times), dtype=float)
        else:
            antenna_rows = np.array(
                [
                    (p.x, p.y, p.z)
                    for p in (antenna_position(t) for t in times.tolist())
                ],
                dtype=float,
            ).reshape(count, 3)

        extra_positions = extra_index = None
        if setup.base_positions is not None:
            event_tag_positions = setup.base_positions[tag_indices]
            if setup.coupling_on and setup.grid is not None:
                event_index, flat_neighbors = setup.grid.neighbors_for_events(
                    tag_indices
                )
                if event_index.size:
                    extra_index = event_index
                    extra_positions = setup.base_positions[flat_neighbors]
        elif not setup.coupling_on:
            event_ids = [setup.ids[i] for i in tag_indices]
            paired = getattr(setup.provider, "positions_paired", None)
            if paired is not None:
                event_tag_positions = paired(event_ids, times)
            else:
                # Exotic provider without a paired query: fall back to the
                # cross-product diagonal in bounded chunks (each cell depends
                # only on its own pair, so chunking preserves bit-identity).
                event_tag_positions = np.empty((count, 3))
                for start in range(0, count, _PAIRED_FALLBACK_CHUNK):
                    stop = min(start + _PAIRED_FALLBACK_CHUNK, count)
                    rows = setup.provider.positions_at(
                        event_ids[start:stop], times[start:stop]
                    )
                    indices = _event_indices(stop - start)
                    event_tag_positions[start:stop] = rows[indices, indices]
        else:
            # Moving tags with coupling: the dense per-event radius filter,
            # evaluated in event-count chunks sized to bound the (events x
            # population) distance matrix.
            population = len(setup.ids)
            chunk = max(1, _COUPLING_CHUNK_CELLS // max(population, 1))
            event_tag_positions = np.empty((count, 3))
            index_chunks: list[np.ndarray] = []
            position_chunks: list[np.ndarray] = []
            for start in range(0, count, chunk):
                stop = min(start + chunk, count)
                all_positions = setup.provider.positions_at(
                    setup.ids, times[start:stop]
                )
                indices = _event_indices(stop - start)
                chunk_tags = tag_indices[start:stop]
                chunk_positions = all_positions[indices, chunk_tags]
                event_tag_positions[start:stop] = chunk_positions
                distances = euclidean_distances(
                    chunk_positions[:, None, :], all_positions
                )
                within = distances <= setup.radius
                within[indices, chunk_tags] = False
                event_index, neighbor_index = np.nonzero(within)
                if event_index.size:
                    index_chunks.append(event_index.astype(np.intp) + start)
                    position_chunks.append(all_positions[event_index, neighbor_index])
            if index_chunks:
                extra_index = np.concatenate(index_chunks)
                extra_positions = np.concatenate(position_chunks)

        extra_coefficients = extra_decays = None
        if extra_positions is not None:
            extra_coefficients = np.full(
                len(extra_positions), self.config.tag_coupling_coefficient
            )
            extra_decays = np.full(
                len(extra_positions), self.config.tag_coupling_decay_m
            )
        return (
            antenna_rows,
            event_tag_positions,
            extra_positions,
            extra_coefficients,
            extra_decays,
            extra_index,
        )

    def _observe_event_range(
        self,
        setup: "_SweepSetup",
        antenna_position: AntennaPositionFn,
        table: SweepEventTable,
        start: int,
        stop: int,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Physics of event rows ``[start, stop)``: the backend chunk kernel.

        Every per-event observable depends only on that event's own row, so
        evaluating any row range yields exactly the rows the whole-table pass
        would — the invariant that makes the parallel backends bit-identical
        (pinned by the chunk-boundary property tests).  Returns the chunk's
        ``(phase, rssi, readable, deep_fade)`` columns.
        """
        times = table.times_s[start:stop]
        tag_indices = table.tag_indices[start:stop]
        (
            antenna_rows,
            event_tag_positions,
            extra_positions,
            extra_coefficients,
            extra_decays,
            extra_index,
        ) = self._event_geometry(setup, antenna_position, times, tag_indices)
        observation, deep_fade = self.config.channel.observe_sweep(
            antenna_rows,
            event_tag_positions,
            dropped=table.dropped[start:stop],
            phase_noise=table.phase_noise_rad[start:stop],
            rssi_noise=table.rssi_noise_db[start:stop],
            device_offsets_total=setup.mu_by_tag[tag_indices],
            extra_positions=extra_positions,
            extra_coefficients=extra_coefficients,
            extra_decays=extra_decays,
            extra_event_index=extra_index,
        )
        return observation.phase_rad, observation.rssi_dbm, observation.readable, deep_fade

    def _observe_events(
        self,
        setup: "_SweepSetup",
        antenna_position: AntennaPositionFn,
        table: SweepEventTable,
        backend: object,
    ) -> int:
        """Phase 2: physics over the whole event table, in place.

        The table's rows are split into the backend's chunk bounds, each chunk
        evaluated by :meth:`_observe_event_range`, and the results stitched
        back in chunk order — bitwise the single fused pass, whatever the
        chunking.  Returns the number of chunks dispatched.
        """
        count = len(table)
        if count == 0:
            table.phase_rad = np.empty(0)
            table.rssi_dbm = np.empty(0)
            table.readable = np.empty(0, dtype=bool)
            table.deep_fade = np.empty(0, dtype=bool)
            return 0
        bounds = backend.chunk_bounds(count)
        if len(bounds) <= 1:
            results = [self._observe_event_range(setup, antenna_position, table, 0, count)]
        else:
            # Populate the providers' lazily-filled caches before fan-out so
            # parallel chunk kernels only ever read them.
            warm = getattr(setup.provider, "initial_array", None)
            if warm is not None:
                warm(setup.ids)
            _event_indices(min(max(stop - start for start, stop in bounds), count))
            kernel = partial(_physics_chunk, self, setup, antenna_position, table)
            results = backend.map_chunks(kernel, bounds)
        if len(results) == 1:
            phase, rssi, readable, deep_fade = results[0]
        else:
            phase = np.concatenate([chunk[0] for chunk in results])
            rssi = np.concatenate([chunk[1] for chunk in results])
            readable = np.concatenate([chunk[2] for chunk in results])
            deep_fade = np.concatenate([chunk[3] for chunk in results])
        table.phase_rad = phase
        table.rssi_dbm = rssi
        table.readable = readable
        table.deep_fade = deep_fade
        return len(bounds)

    def _sweep_table_per_round(
        self,
        setup: "_SweepSetup",
        antenna_position: AntennaPositionFn,
        duration_s: float,
        rng: np.random.Generator,
    ) -> SweepEventTable:
        """Exact per-round mode: physics before noise, round by round.

        The last-resort path for channels whose deep fades keep invalidating
        the optimistic schedule: within each round the physics runs first, so
        the noise draws always use the exact booleans — the same draw order as
        the scalar loop, with none of the fused pass's whole-sweep batching.
        """
        zone = self.config.reading_zone
        channel = self.config.channel
        noise = channel.noise
        protocol = self.protocol
        ids = setup.ids
        clock_buffer = np.empty(1)

        parts: list[tuple] = []
        round_index = 0
        clock = 0.0
        while clock < duration_s:
            antenna_row, round_positions = self._round_start_geometry(
                setup, antenna_position, clock, clock_buffer
            )
            in_zone_mask = zone.contains_many(antenna_row, round_positions)
            in_zone = np.nonzero(in_zone_mask)[0]

            success_ids, success_ends, round_time = protocol.run_round_schedule(
                in_zone, clock, rng
            )
            if len(success_ids):
                count = int(np.searchsorted(success_ends, duration_s, side="right"))
                if count:
                    times = success_ends[:count]
                    tag_indices = np.asarray(success_ids[:count], dtype=np.intp)
                    (
                        antenna_rows,
                        event_tag_positions,
                        extra_positions,
                        extra_coefficients,
                        extra_decays,
                        extra_index,
                    ) = self._event_geometry(setup, antenna_position, times, tag_indices)
                    physics = channel.sweep_physics(
                        antenna_rows,
                        event_tag_positions,
                        device_offsets_total=setup.mu_by_tag[tag_indices],
                        extra_positions=extra_positions,
                        extra_coefficients=extra_coefficients,
                        extra_decays=extra_decays,
                        extra_event_index=extra_index,
                    )
                    dropped, phase_noise, rssi_noise = (
                        noise.draw_event_noise_scheduled(physics.deep_fade, rng)
                    )
                    observation = channel.observe_scheduled(
                        physics, dropped, phase_noise, rssi_noise
                    )
                    parts.append(
                        (
                            times,
                            tag_indices,
                            np.full(count, round_index, dtype=np.intp),
                            dropped,
                            phase_noise,
                            rssi_noise,
                            physics.deep_fade,
                            observation.phase_rad,
                            observation.rssi_dbm,
                            observation.readable,
                        )
                    )

            if round_time <= 0:
                raise RuntimeError("inventory round produced non-positive duration")
            clock += round_time
            round_index += 1

        def _column(position: int, dtype=None, default_dtype=float) -> np.ndarray:
            if parts:
                return np.concatenate([part[position] for part in parts])
            return np.empty(0, dtype=dtype if dtype is not None else default_dtype)

        deep = _column(6, dtype=bool)
        return SweepEventTable(
            tag_ids=list(ids),
            channel_index=channel.channel_index,
            antenna_port=self.config.antenna_port,
            round_count=round_index,
            times_s=_column(0),
            tag_indices=_column(1, dtype=np.intp),
            round_ids=_column(2, dtype=np.intp),
            dropped=_column(3, dtype=bool),
            phase_noise_rad=_column(4),
            rssi_noise_db=_column(5),
            assumed_deep=deep,
            deep_fade=deep,
            phase_rad=_column(7),
            rssi_dbm=_column(8),
            readable=_column(9, dtype=bool),
        )


def _physics_chunk(
    reader: RFIDReader,
    setup: _SweepSetup,
    antenna_position: AntennaPositionFn,
    table: SweepEventTable,
    start: int,
    stop: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Module-level chunk kernel the backends dispatch (picklable via partial).

    Thread backends call it in-process; the process backend pickles the bound
    arguments (reader, setup, antenna provider, event table) to its workers.
    Either way it is a pure function of the chunk's rows.
    """
    return reader._observe_event_range(setup, antenna_position, table, start, stop)
