"""COTS RFID reader simulator.

:class:`RFIDReader` reproduces, in simulation, what an ImpinJ R420-class
reader does during a sweep: it runs back-to-back inventory rounds (frame
slotted ALOHA by default), and for every successful slot it attempts to decode
the reply of the winning tag over the backscatter channel.  Each decoded reply
becomes a :class:`~repro.rfid.reading.TagRead` carrying timestamp, phase,
RSSI, and channel — the exact observables the paper's algorithms consume.

The reader is agnostic to *why* geometry changes over time: callers provide
callables mapping time to antenna position and to tag positions, so the same
reader serves the antenna-moving case (librarian pushing a cart) and the
tag-moving case (baggage on a conveyor belt).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, Mapping

import numpy as np

from ..rf.antenna import ReadingZone
from ..rf.channel import BackscatterChannel
from ..rf.geometry import Point3D
from ..rf.multipath import Reflector
from ..rf.phase_model import DeviceOffsets
from .aloha import FrameSlottedAloha, SlotOutcome
from .reading import ReadLog, TagRead
from .tag import Tag, TagCollection

AntennaPositionFn = Callable[[float], Point3D]
"""Maps time (seconds) to the antenna position."""

TagPositionFn = Callable[[str, float], Point3D]
"""Maps (tag id, time in seconds) to that tag's position."""


@dataclass(frozen=True, slots=True)
class ReaderConfig:
    """Configuration of a simulated reader."""

    channel: BackscatterChannel = field(default_factory=BackscatterChannel)
    reading_zone: ReadingZone = field(default_factory=ReadingZone)
    antenna_port: int = 1
    reader_tx_phase_rad: float = 0.55
    """Phase rotation of the reader transmit circuit (part of ``mu`` in Eq. 1)."""

    reader_rx_phase_rad: float = 1.1
    """Phase rotation of the reader receive circuit (part of ``mu`` in Eq. 1)."""

    tag_coupling_coefficient: float = 0.75
    """Strength of mutual coupling between nearby tags (0 disables coupling).

    Each neighbouring tag is treated as a weak scatterer whose influence
    decays quickly with distance; this is what degrades ordering accuracy for
    tags packed a couple of centimetres apart (paper Figures 13/14)."""

    tag_coupling_decay_m: float = 0.022
    """Distance scale of the coupling decay."""

    tag_coupling_radius_m: float = 0.15
    """Neighbours farther than this contribute no coupling (saves computation)."""


class RFIDReader:
    """Simulates continuous C1G2 inventory during a sweep."""

    def __init__(
        self,
        config: ReaderConfig | None = None,
        protocol: FrameSlottedAloha | None = None,
    ) -> None:
        self.config = config if config is not None else ReaderConfig()
        self.protocol = protocol if protocol is not None else FrameSlottedAloha()
        self._per_tag_channels: dict[str, BackscatterChannel] = {}

    def _channel_for(self, tag: Tag) -> BackscatterChannel:
        """A channel whose device offsets include this tag's reflection phase."""
        existing = self._per_tag_channels.get(tag.tag_id)
        if existing is not None:
            return existing
        offsets = DeviceOffsets(
            theta_tx=self.config.reader_tx_phase_rad,
            theta_rx=self.config.reader_rx_phase_rad,
            theta_tag=tag.model.reflection_phase_rad,
        )
        channel = dataclasses.replace(self.config.channel, device_offsets=offsets)
        self._per_tag_channels[tag.tag_id] = channel
        return channel

    def sweep(
        self,
        tags: TagCollection,
        antenna_position: AntennaPositionFn,
        duration_s: float,
        tag_position: TagPositionFn | None = None,
        rng: np.random.Generator | None = None,
    ) -> ReadLog:
        """Run inventory rounds for ``duration_s`` seconds and return the read log.

        Parameters
        ----------
        tags:
            The tag population.  Tags outside the reading zone at a given
            instant do not participate in that round.
        antenna_position:
            Antenna position as a function of time.
        duration_s:
            Sweep duration in seconds.
        tag_position:
            Optional tag position as a function of (tag id, time); defaults to
            the static positions stored in ``tags`` (antenna-moving case).
        rng:
            Random generator controlling slot choices, noise, and dropouts.
        """
        if duration_s <= 0:
            raise ValueError(f"duration must be positive, got {duration_s}")
        rng = rng if rng is not None else np.random.default_rng()
        static_positions: Mapping[str, Point3D] = tags.positions()

        def position_of(tag_id: str, time_s: float) -> Point3D:
            if tag_position is not None:
                return tag_position(tag_id, time_s)
            return static_positions[tag_id]

        log = ReadLog()
        clock = 0.0
        tags_by_id = {tag.tag_id: tag for tag in tags}

        while clock < duration_s:
            antenna_pos = antenna_position(clock)
            in_zone = [
                tag_id
                for tag_id in tags_by_id
                if self.config.reading_zone.contains(
                    antenna_pos, position_of(tag_id, clock)
                )
            ]
            events = self.protocol.run_round(in_zone, clock, rng)
            for event in events:
                if event.outcome is not SlotOutcome.SUCCESS or event.tag_id is None:
                    continue
                read_time = event.end_time_s
                if read_time > duration_s:
                    break
                tag = tags_by_id[event.tag_id]
                channel = self._channel_for(tag)
                tag_pos_now = position_of(tag.tag_id, read_time)
                coupling = self._coupling_scatterers(
                    tag.tag_id, tag_pos_now, tags_by_id, position_of, read_time
                )
                observation = channel.observe(
                    antenna_position(read_time),
                    tag_pos_now,
                    rng,
                    extra_reflectors=coupling,
                )
                if not observation.readable:
                    continue
                log.append(
                    TagRead(
                        timestamp_s=read_time,
                        tag_id=tag.tag_id,
                        phase_rad=observation.phase_rad,
                        rssi_dbm=observation.rssi_dbm,
                        channel_index=channel.channel_index,
                        antenna_port=self.config.antenna_port,
                    )
                )
            round_time = self.protocol.round_duration_s(events)
            if round_time <= 0:
                raise RuntimeError("inventory round produced non-positive duration")
            clock += round_time

        return log.sorted_by_time()

    def _coupling_scatterers(
        self,
        tag_id: str,
        tag_pos: Point3D,
        tags_by_id: Mapping[str, Tag],
        position_of: Callable[[str, float], Point3D],
        time_s: float,
    ) -> tuple[Reflector, ...]:
        """Scatterers representing nearby tags at this instant of the sweep."""
        coefficient = self.config.tag_coupling_coefficient
        if coefficient <= 0.0:
            return ()
        radius = self.config.tag_coupling_radius_m
        scatterers: list[Reflector] = []
        for other_id in tags_by_id:
            if other_id == tag_id:
                continue
            other_pos = position_of(other_id, time_s)
            if tag_pos.distance_to(other_pos) > radius:
                continue
            scatterers.append(
                Reflector(
                    position=other_pos,
                    reflection_coefficient=coefficient,
                    scattering_decay_m=self.config.tag_coupling_decay_m,
                )
            )
        return tuple(scatterers)
