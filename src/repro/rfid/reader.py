"""COTS RFID reader simulator.

:class:`RFIDReader` reproduces, in simulation, what an ImpinJ R420-class
reader does during a sweep: it runs back-to-back inventory rounds (frame
slotted ALOHA by default), and for every successful slot it attempts to decode
the reply of the winning tag over the backscatter channel.  Each decoded reply
becomes a :class:`~repro.rfid.reading.TagRead` carrying timestamp, phase,
RSSI, and channel — the exact observables the paper's algorithms consume.

The reader is agnostic to *why* geometry changes over time: callers provide
callables mapping time to antenna position and to tag positions, so the same
reader serves the antenna-moving case (librarian pushing a cart) and the
tag-moving case (baggage on a conveyor belt).

Two sweep implementations share one RF kernel:

* the **batched** path (default) gathers each round's successful slots into
  structure-of-arrays batches and evaluates the whole RF pipeline in
  vectorized NumPy (:meth:`~repro.rf.channel.BackscatterChannel.observe_batch`),
  with coupling neighbours found via a spatial hash
  (:class:`~repro.rfid.coupling.NeighborGrid`) for static layouts;
* the **scalar** path (``batched=False``) is the original read-at-a-time
  reference loop.

Both consume the shared random generator in the identical order (one
``rng.integers`` per round, then the fixed per-event noise-draw sequence), so
their read logs are **bit-identical** — pinned by
``tests/test_batch_sweep.py``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from ..motion.scenarios import StaticTagPositions
from ..rf.antenna import ReadingZone
from ..rf.channel import BackscatterChannel
from ..rf.geometry import Point3D, euclidean_distances
from ..rf.multipath import Reflector
from ..rf.phase_model import DeviceOffsets
from .aloha import FrameSlottedAloha, SlotOutcome
from .coupling import NeighborGrid
from .reading import ReadBatch, ReadLog, TagRead
from .tag import Tag, TagCollection

AntennaPositionFn = Callable[[float], Point3D]
"""Maps time (seconds) to the antenna position."""

TagPositionFn = Callable[[str, float], Point3D]
"""Maps (tag id, time in seconds) to that tag's position."""


@dataclass(frozen=True, slots=True)
class ReaderConfig:
    """Configuration of a simulated reader."""

    channel: BackscatterChannel = field(default_factory=BackscatterChannel)
    reading_zone: ReadingZone = field(default_factory=ReadingZone)
    antenna_port: int = 1
    reader_tx_phase_rad: float = 0.55
    """Phase rotation of the reader transmit circuit (part of ``mu`` in Eq. 1)."""

    reader_rx_phase_rad: float = 1.1
    """Phase rotation of the reader receive circuit (part of ``mu`` in Eq. 1)."""

    tag_coupling_coefficient: float = 0.75
    """Strength of mutual coupling between nearby tags (0 disables coupling).

    Each neighbouring tag is treated as a weak scatterer whose influence
    decays quickly with distance; this is what degrades ordering accuracy for
    tags packed a couple of centimetres apart (paper Figures 13/14)."""

    tag_coupling_decay_m: float = 0.022
    """Distance scale of the coupling decay."""

    tag_coupling_radius_m: float = 0.15
    """Neighbours farther than this contribute no coupling (saves computation)."""

    def __post_init__(self) -> None:
        if not 0.0 <= self.tag_coupling_coefficient <= 1.0:
            raise ValueError(
                "tag coupling coefficient must be in [0, 1], "
                f"got {self.tag_coupling_coefficient}"
            )
        if self.tag_coupling_decay_m <= 0.0:
            raise ValueError(
                f"tag coupling decay must be positive, got {self.tag_coupling_decay_m}"
            )
        if self.tag_coupling_radius_m <= 0.0:
            raise ValueError(
                "tag coupling radius must be positive "
                f"(use coefficient 0 to disable coupling), got {self.tag_coupling_radius_m}"
            )


class _CallableTagPositions:
    """Fallback provider wrapping a plain ``(tag_id, t) -> Point3D`` callable.

    Correct for arbitrary user-supplied motion, but evaluates positions one
    call at a time; the standard scenarios install array-native providers
    (see :mod:`repro.motion.scenarios`) that vectorize these queries.
    """

    is_static = False

    def __init__(self, fn: TagPositionFn) -> None:
        self._fn = fn

    def __call__(self, tag_id: str, time_s: float) -> Point3D:
        return self._fn(tag_id, time_s)

    def positions_at(self, tag_ids: Sequence[str], times_s: np.ndarray) -> np.ndarray:
        times = np.asarray(times_s, dtype=float)
        out = np.empty((times.size, len(tag_ids), 3))
        for t_index, time_s in enumerate(times):
            for n_index, tag_id in enumerate(tag_ids):
                point = self._fn(tag_id, float(time_s))
                out[t_index, n_index, 0] = point.x
                out[t_index, n_index, 1] = point.y
                out[t_index, n_index, 2] = point.z
        return out

    def positions_paired(
        self, tag_ids: Sequence[str], times_s: np.ndarray
    ) -> np.ndarray:
        """Position of ``tag_ids[i]`` at ``times_s[i]``, as ``(M, 3)``.

        One call per pair — O(M), unlike the O(M^2) cross product
        :meth:`positions_at` would evaluate for the same pairs.
        """
        times = np.asarray(times_s, dtype=float)
        out = np.empty((len(tag_ids), 3))
        for index, (tag_id, time_s) in enumerate(zip(tag_ids, times)):
            point = self._fn(tag_id, float(time_s))
            out[index, 0] = point.x
            out[index, 1] = point.y
            out[index, 2] = point.z
        return out


class RFIDReader:
    """Simulates continuous C1G2 inventory during a sweep."""

    def __init__(
        self,
        config: ReaderConfig | None = None,
        protocol: FrameSlottedAloha | None = None,
    ) -> None:
        self.config = config if config is not None else ReaderConfig()
        self.protocol = protocol if protocol is not None else FrameSlottedAloha()
        self._per_tag_channels: dict[str, BackscatterChannel] = {}

    def _device_offsets_for(self, tag: Tag) -> DeviceOffsets:
        """Eq. (1) ``mu`` components for one tag behind this reader."""
        return DeviceOffsets(
            theta_tx=self.config.reader_tx_phase_rad,
            theta_rx=self.config.reader_rx_phase_rad,
            theta_tag=tag.model.reflection_phase_rad,
        )

    def _channel_for(self, tag: Tag) -> BackscatterChannel:
        """A channel whose device offsets include this tag's reflection phase."""
        existing = self._per_tag_channels.get(tag.tag_id)
        if existing is not None:
            return existing
        channel = dataclasses.replace(
            self.config.channel, device_offsets=self._device_offsets_for(tag)
        )
        self._per_tag_channels[tag.tag_id] = channel
        return channel

    def _resolve_tag_positions(
        self, tag_position: TagPositionFn | None, tags: TagCollection
    ):
        """Normalise the tag-position argument into an array-native provider."""
        if tag_position is None:
            return StaticTagPositions(tags.positions())
        if hasattr(tag_position, "positions_at") and hasattr(tag_position, "is_static"):
            return tag_position
        return _CallableTagPositions(tag_position)

    def sweep(
        self,
        tags: TagCollection,
        antenna_position: AntennaPositionFn,
        duration_s: float,
        tag_position: TagPositionFn | None = None,
        rng: np.random.Generator | None = None,
        batched: bool = True,
    ) -> ReadLog:
        """Run inventory rounds for ``duration_s`` seconds and return the read log.

        Parameters
        ----------
        tags:
            The tag population.  Tags outside the reading zone at a given
            instant do not participate in that round.
        antenna_position:
            Antenna position as a function of time.
        duration_s:
            Sweep duration in seconds.
        tag_position:
            Optional tag position as a function of (tag id, time); defaults to
            the static positions stored in ``tags`` (antenna-moving case).
        rng:
            Random generator controlling slot choices, noise, and dropouts.
        batched:
            Use the round-batched vectorized RF kernel (default).  The scalar
            path observes one read at a time; both produce bit-identical logs
            from the same seed.
        """
        if duration_s <= 0:
            raise ValueError(f"duration must be positive, got {duration_s}")
        rng = rng if rng is not None else np.random.default_rng()
        if batched:
            return self._sweep_batched(tags, antenna_position, duration_s, tag_position, rng)
        return self._sweep_scalar(tags, antenna_position, duration_s, tag_position, rng)

    # ------------------------------------------------------------------
    # Scalar reference path
    # ------------------------------------------------------------------

    def _sweep_scalar(
        self,
        tags: TagCollection,
        antenna_position: AntennaPositionFn,
        duration_s: float,
        tag_position: TagPositionFn | None,
        rng: np.random.Generator,
    ) -> ReadLog:
        """The original read-at-a-time loop, kept as the reference semantics."""
        static_positions: Mapping[str, Point3D] = tags.positions()

        def position_of(tag_id: str, time_s: float) -> Point3D:
            if tag_position is not None:
                return tag_position(tag_id, time_s)
            return static_positions[tag_id]

        log = ReadLog()
        clock = 0.0
        tags_by_id = {tag.tag_id: tag for tag in tags}

        while clock < duration_s:
            antenna_pos = antenna_position(clock)
            in_zone = [
                tag_id
                for tag_id in tags_by_id
                if self.config.reading_zone.contains(
                    antenna_pos, position_of(tag_id, clock)
                )
            ]
            events = self.protocol.run_round(in_zone, clock, rng)
            for event in events:
                if event.outcome is not SlotOutcome.SUCCESS or event.tag_id is None:
                    continue
                read_time = event.end_time_s
                if read_time > duration_s:
                    break
                tag = tags_by_id[event.tag_id]
                channel = self._channel_for(tag)
                tag_pos_now = position_of(tag.tag_id, read_time)
                coupling = self._coupling_scatterers(
                    tag.tag_id, tag_pos_now, tags_by_id, position_of, read_time
                )
                observation = channel.observe(
                    antenna_position(read_time),
                    tag_pos_now,
                    rng,
                    extra_reflectors=coupling,
                )
                if not observation.readable:
                    continue
                log.append(
                    TagRead(
                        timestamp_s=read_time,
                        tag_id=tag.tag_id,
                        phase_rad=observation.phase_rad,
                        rssi_dbm=observation.rssi_dbm,
                        channel_index=channel.channel_index,
                        antenna_port=self.config.antenna_port,
                    )
                )
            round_time = self.protocol.round_duration_s(events)
            if round_time <= 0:
                raise RuntimeError("inventory round produced non-positive duration")
            clock += round_time

        return log.sorted_by_time()

    def _coupling_scatterers(
        self,
        tag_id: str,
        tag_pos: Point3D,
        tags_by_id: Mapping[str, Tag],
        position_of: Callable[[str, float], Point3D],
        time_s: float,
    ) -> tuple[Reflector, ...]:
        """Scatterers representing nearby tags at this instant of the sweep."""
        coefficient = self.config.tag_coupling_coefficient
        if coefficient <= 0.0:
            return ()
        radius = self.config.tag_coupling_radius_m
        scatterers: list[Reflector] = []
        for other_id in tags_by_id:
            if other_id == tag_id:
                continue
            other_pos = position_of(other_id, time_s)
            if tag_pos.distance_to(other_pos) > radius:
                continue
            scatterers.append(
                Reflector(
                    position=other_pos,
                    reflection_coefficient=coefficient,
                    scattering_decay_m=self.config.tag_coupling_decay_m,
                )
            )
        return tuple(scatterers)

    # ------------------------------------------------------------------
    # Batched path
    # ------------------------------------------------------------------

    def _sweep_batched(
        self,
        tags: TagCollection,
        antenna_position: AntennaPositionFn,
        duration_s: float,
        tag_position: TagPositionFn | None,
        rng: np.random.Generator,
    ) -> ReadLog:
        """Round-batched sweep: vectorized geometry, RF kernel, and logging."""
        # Column accumulators for the read log.
        out_times: list[np.ndarray] = []
        out_ids: list[str] = []
        out_phases: list[np.ndarray] = []
        out_rssis: list[np.ndarray] = []

        for times, ids, phases, rssis in self._batched_rounds(
            tags, antenna_position, duration_s, tag_position, rng
        ):
            out_times.append(times)
            out_ids.extend(ids)
            out_phases.append(phases)
            out_rssis.append(rssis)

        if out_times:
            timestamps = np.concatenate(out_times)
            phases = np.concatenate(out_phases)
            rssis = np.concatenate(out_rssis)
        else:
            timestamps = phases = rssis = np.empty(0)
        order = np.argsort(timestamps, kind="stable")
        log = ReadLog()
        log.extend_columns(
            timestamps[order],
            [out_ids[i] for i in order],
            phases[order],
            rssis[order],
            channel_index=self.config.channel.channel_index,
            antenna_port=self.config.antenna_port,
        )
        return log

    def sweep_stream(
        self,
        tags: TagCollection,
        antenna_position: AntennaPositionFn,
        duration_s: float,
        tag_position: TagPositionFn | None = None,
        rng: np.random.Generator | None = None,
    ):
        """Run a sweep and yield one :class:`ReadBatch` per inventory round.

        The streaming entry point: instead of returning the finished
        :class:`ReadLog`, reads are emitted round by round as they are
        decoded — in a real deployment this is the LLRP report stream the
        reader pushes while the antenna is still moving.  Rounds that decode
        no readable reply yield nothing.  Reads within a batch are
        stable-sorted by timestamp.

        The round loop, RF kernel, and rng draw order are shared with
        :meth:`sweep`, so concatenating the yielded batches reproduces the
        batched sweep's read log read for read (pinned by
        ``tests/test_streaming.py``).
        """
        if duration_s <= 0:
            raise ValueError(f"duration must be positive, got {duration_s}")
        rng = rng if rng is not None else np.random.default_rng()
        round_index = 0
        for times, ids, phases, rssis in self._batched_rounds(
            tags, antenna_position, duration_s, tag_position, rng
        ):
            order = np.argsort(times, kind="stable")
            yield ReadBatch(
                timestamps_s=times[order],
                tag_ids=tuple(ids[i] for i in order),
                phases_rad=phases[order],
                rssi_dbm=rssis[order],
                channel_index=self.config.channel.channel_index,
                antenna_port=self.config.antenna_port,
                round_index=round_index,
            )
            round_index += 1

    def _batched_rounds(
        self,
        tags: TagCollection,
        antenna_position: AntennaPositionFn,
        duration_s: float,
        tag_position: TagPositionFn | None,
        rng: np.random.Generator,
    ):
        """The round-batched sweep loop, one ``(times, ids, phases, rssis)``
        tuple per inventory round with at least one readable reply.

        Shared by :meth:`_sweep_batched` (which concatenates and globally
        sorts) and :meth:`sweep_stream` (which emits per-round batches), so
        there is exactly one implementation of the round loop and both paths
        consume the rng identically.
        """
        config = self.config
        channel = config.channel
        zone = config.reading_zone
        tag_list = list(tags)
        ids = [tag.tag_id for tag in tag_list]
        index_of = {tag_id: i for i, tag_id in enumerate(ids)}
        population = len(ids)
        # Hoist the per-tag Eq. (1) offsets: theta_TAG varies per tag model,
        # everything else about the channel is shared.
        mu_by_tag = np.array(
            [self._device_offsets_for(tag).total for tag in tag_list], dtype=float
        )

        provider = self._resolve_tag_positions(tag_position, tags)
        static_layout = bool(getattr(provider, "is_static", False))
        antenna_positions_at = getattr(antenna_position, "positions_at", None)

        coupling_on = config.tag_coupling_coefficient > 0.0 and population > 1
        radius = config.tag_coupling_radius_m
        base_positions: np.ndarray | None = None
        grid: NeighborGrid | None = None
        if static_layout:
            base_positions = provider.positions_at(ids, np.zeros(1))[0]
            # Copy: the provider may hand out a broadcast view of its cache.
            base_positions = np.array(base_positions, dtype=float)
            if coupling_on:
                grid = NeighborGrid(base_positions, radius)

        clock = 0.0
        while clock < duration_s:
            antenna_pos = antenna_position(clock)
            if static_layout:
                round_positions = base_positions
            else:
                round_positions = provider.positions_at(ids, np.array([clock]))[0]
            in_zone_mask = zone.contains_many(antenna_pos.as_array(), round_positions)
            in_zone = [ids[i] for i in np.nonzero(in_zone_mask)[0]]

            events = self.protocol.run_round(in_zone, clock, rng)
            success_ids: list[str] = []
            success_times: list[float] = []
            for event in events:
                if event.outcome is not SlotOutcome.SUCCESS or event.tag_id is None:
                    continue
                read_time = event.end_time_s
                if read_time > duration_s:
                    break
                success_ids.append(event.tag_id)
                success_times.append(read_time)

            if success_ids:
                observed = self._observe_round(
                    rng=rng,
                    channel=channel,
                    provider=provider,
                    antenna_position=antenna_position,
                    antenna_positions_at=antenna_positions_at,
                    ids=ids,
                    index_of=index_of,
                    mu_by_tag=mu_by_tag,
                    base_positions=base_positions,
                    grid=grid,
                    coupling_on=coupling_on,
                    radius=radius,
                    success_ids=success_ids,
                    success_times=success_times,
                )
                if observed is not None:
                    yield observed

            round_time = self.protocol.round_duration_s(events)
            if round_time <= 0:
                raise RuntimeError("inventory round produced non-positive duration")
            clock += round_time

    def _observe_round(
        self,
        rng: np.random.Generator,
        channel: BackscatterChannel,
        provider,
        antenna_position: AntennaPositionFn,
        antenna_positions_at,
        ids: list[str],
        index_of: dict[str, int],
        mu_by_tag: np.ndarray,
        base_positions: np.ndarray | None,
        grid: NeighborGrid | None,
        coupling_on: bool,
        radius: float,
        success_ids: list[str],
        success_times: list[float],
    ) -> "tuple[np.ndarray, list[str], np.ndarray, np.ndarray] | None":
        """Observe one round's successful slots as a single vectorized batch.

        Returns the round's readable reads as ``(times, ids, phases, rssis)``
        columns in slot order, or ``None`` when nothing was readable.
        """
        count = len(success_ids)
        tag_indices = np.array([index_of[tag_id] for tag_id in success_ids], dtype=np.intp)
        times = np.array(success_times, dtype=float)

        if antenna_positions_at is not None:
            antenna_rows = np.asarray(antenna_positions_at(times), dtype=float)
        else:
            antenna_rows = np.array(
                [
                    (p.x, p.y, p.z)
                    for p in (antenna_position(t) for t in success_times)
                ],
                dtype=float,
            )

        extra_positions = extra_index = None
        if base_positions is not None:
            # Static layout: positions never change; neighbour sets come from
            # the sweep-lifetime spatial hash.
            event_tag_positions = base_positions[tag_indices]
            if coupling_on and grid is not None:
                neighbor_lists = [grid.neighbors_of(int(i)) for i in tag_indices]
                total = sum(len(n) for n in neighbor_lists)
                if total:
                    extra_index = np.repeat(
                        np.arange(count, dtype=np.intp),
                        [len(n) for n in neighbor_lists],
                    )
                    flat_neighbors = np.concatenate(neighbor_lists)
                    extra_positions = base_positions[flat_neighbors]
        elif not coupling_on:
            # Moving tags without coupling: only the observed tags' own
            # positions matter.  Providers evaluate each (tag, time) cell
            # independently, so a pairwise query equals the corresponding
            # cells of the full-population query bitwise.
            paired = getattr(provider, "positions_paired", None)
            if paired is not None:
                event_tag_positions = paired(success_ids, times)
            else:
                rows = provider.positions_at(success_ids, times)
                event_tag_positions = rows[np.arange(count), np.arange(count)]
        else:
            # Moving tags with coupling: evaluate every tag's position at
            # every read time in one array pass, then apply the exact radius
            # filter (the positions change each event, so the spatial hash
            # would have to be rebuilt per event anyway — the dense filter IS
            # that rebuild).
            all_positions = provider.positions_at(ids, times)
            event_tag_positions = all_positions[np.arange(count), tag_indices]
            distances = euclidean_distances(
                event_tag_positions[:, None, :], all_positions
            )
            within = distances <= radius
            within[np.arange(count), tag_indices] = False
            event_index, neighbor_index = np.nonzero(within)
            if event_index.size:
                extra_index = event_index.astype(np.intp)
                extra_positions = all_positions[event_index, neighbor_index]

        extra_coefficients = extra_decays = None
        if extra_positions is not None:
            extra_coefficients = np.full(
                len(extra_positions), self.config.tag_coupling_coefficient
            )
            extra_decays = np.full(
                len(extra_positions), self.config.tag_coupling_decay_m
            )

        observation = channel.observe_batch(
            antenna_rows,
            event_tag_positions,
            rng,
            device_offsets_total=mu_by_tag[tag_indices],
            extra_positions=extra_positions,
            extra_coefficients=extra_coefficients,
            extra_decays=extra_decays,
            extra_event_index=extra_index,
        )

        keep = observation.readable
        if not np.any(keep):
            return None
        kept = np.nonzero(keep)[0]
        return (
            times[kept],
            [success_ids[i] for i in kept],
            observation.phase_rad[kept],
            observation.rssi_dbm[kept],
        )
