"""C1G2 RFID protocol substrate: EPCs, tags, inventory protocols, reader.

This subpackage simulates the parts of the EPC Class-1 Generation-2 air
interface that determine *when* each tag is read during a sweep: frame-slotted
ALOHA (with the adaptive Q algorithm), tree walking, and a reader that glues
the protocol to the RF channel and produces the (timestamp, phase, RSSI)
read records the paper's algorithms consume.
"""

from .aloha import (
    AlohaTimings,
    FrameSlottedAloha,
    QAlgorithm,
    SlotEvent,
    SlotOutcome,
    expected_success_rate,
)
from .coupling import NeighborGrid
from .epc import EPC, EPC_BITS, generate_epcs
from .reader import ReaderConfig, RFIDReader
from .reading import ReadBatch, ReadLog, TagRead
from .tag import (
    ALIEN_ALN_9634,
    ALIEN_ALN_9662,
    ALIEN_ALN_9720,
    ALIEN_ALR_9610,
    PAPER_TAG_MODELS,
    Tag,
    TagCollection,
    TagModel,
    make_tags,
)
from .tree_walking import (
    TreeWalkQuery,
    TreeWalkResult,
    identification_order,
    query_overhead,
    tree_walk,
)

__all__ = [
    "ALIEN_ALN_9634",
    "ALIEN_ALN_9662",
    "ALIEN_ALN_9720",
    "ALIEN_ALR_9610",
    "AlohaTimings",
    "EPC",
    "EPC_BITS",
    "FrameSlottedAloha",
    "NeighborGrid",
    "PAPER_TAG_MODELS",
    "QAlgorithm",
    "RFIDReader",
    "ReadBatch",
    "ReadLog",
    "ReaderConfig",
    "SlotEvent",
    "SlotOutcome",
    "Tag",
    "TagCollection",
    "TagModel",
    "TagRead",
    "TreeWalkQuery",
    "TreeWalkResult",
    "expected_success_rate",
    "generate_epcs",
    "identification_order",
    "make_tags",
    "query_overhead",
    "tree_walk",
]
