"""Spatial hashing for tag-to-tag coupling neighbour lookups.

The reader models mutual coupling by treating every tag within
``ReaderConfig.tag_coupling_radius_m`` of the observed tag as a weak
scatterer.  The scalar reference path discovers those neighbours by scanning
the whole population per read — O(N) distance checks per decoded reply,
which is the dominant cost for dense scenes.  :class:`NeighborGrid` replaces
the scan with a uniform spatial hash whose cell edge equals the coupling
radius: any point within the radius of a query point lives in one of the 27
cells surrounding the query's cell, so a bucket lookup plus an exact distance
filter finds the same neighbour set the scan does.

For static tag layouts (the antenna-moving case) the grid — and each tag's
exact neighbour list — is built once per sweep and reused for every round.
When tags move, positions change at every read timestamp, so the reader
instead evaluates the exact vectorized distance filter per round (the
moral equivalent of rebuilding the grid at each position change; for the
populations the workloads use, the dense NumPy filter is already faster than
rebuilding buckets per event).

The exact filter compares ``distance <= radius`` with the same naive
``sqrt(dx²+dy²+dz²)`` arithmetic as the scalar scan, so the neighbour sets —
and therefore the simulated RF observations — are bit-identical.
"""

from __future__ import annotations

import numpy as np

from ..rf.geometry import euclidean_distances

_NEIGHBOR_OFFSETS = [
    (dx, dy, dz)
    for dx in (-1, 0, 1)
    for dy in (-1, 0, 1)
    for dz in (-1, 0, 1)
]


class NeighborGrid:
    """Uniform spatial hash over a fixed set of positions.

    Parameters
    ----------
    positions:
        ``(N, 3)`` array of point positions (metres).
    radius:
        Neighbour radius; also the cell edge length.
    """

    def __init__(self, positions: np.ndarray, radius: float) -> None:
        if radius <= 0:
            raise ValueError(f"radius must be positive, got {radius}")
        self._positions = np.asarray(positions, dtype=float)
        if self._positions.ndim != 2 or self._positions.shape[1] != 3:
            raise ValueError(
                f"positions must have shape (N, 3), got {self._positions.shape}"
            )
        self._radius = float(radius)
        self._keys = np.floor(self._positions / self._radius).astype(np.int64)
        buckets: dict[tuple[int, int, int], list[int]] = {}
        for index, key in enumerate(map(tuple, self._keys)):
            buckets.setdefault(key, []).append(index)
        self._buckets = {
            key: np.array(indices, dtype=np.intp) for key, indices in buckets.items()
        }
        self._neighbor_cache: dict[int, np.ndarray] = {}

    @property
    def radius(self) -> float:
        """The neighbour radius (== cell edge), metres."""
        return self._radius

    def __len__(self) -> int:
        return int(self._positions.shape[0])

    def candidates(self, index: int) -> np.ndarray:
        """Indices in the 27-cell neighbourhood of point ``index`` (sorted).

        A superset of the true neighbours within the radius; includes
        ``index`` itself.
        """
        cx, cy, cz = (int(c) for c in self._keys[index])
        found = []
        for dx, dy, dz in _NEIGHBOR_OFFSETS:
            bucket = self._buckets.get((cx + dx, cy + dy, cz + dz))
            if bucket is not None:
                found.append(bucket)
        if not found:
            return np.empty(0, dtype=np.intp)
        return np.sort(np.concatenate(found))

    def neighbors_of(self, index: int) -> np.ndarray:
        """Indices within ``radius`` of point ``index`` (excluding itself).

        Returned sorted ascending — the insertion order the scalar
        whole-population scan visits them in — and cached, since the grid is
        only used for static layouts.
        """
        cached = self._neighbor_cache.get(index)
        if cached is not None:
            return cached
        candidates = self.candidates(index)
        candidates = candidates[candidates != index]
        if candidates.size:
            distances = euclidean_distances(
                self._positions[index], self._positions[candidates]
            )
            candidates = candidates[distances <= self._radius]
        self._neighbor_cache[index] = candidates
        return candidates
