"""Spatial hashing for tag-to-tag coupling neighbour lookups.

The reader models mutual coupling by treating every tag within
``ReaderConfig.tag_coupling_radius_m`` of the observed tag as a weak
scatterer.  The scalar reference path discovers those neighbours by scanning
the whole population per read — O(N) distance checks per decoded reply,
which is the dominant cost for dense scenes.  :class:`NeighborGrid` replaces
the scan with a uniform spatial hash whose cell edge equals the coupling
radius: any point within the radius of a query point lives in one of the 27
cells surrounding the query's cell, so a bucket lookup plus an exact distance
filter finds the same neighbour set the scan does.

For static tag layouts (the antenna-moving case) the grid — and each tag's
exact neighbour list — is built once per sweep and reused for every round.
When tags move, positions change at every read timestamp, so the reader
instead evaluates the exact vectorized distance filter per round (the
moral equivalent of rebuilding the grid at each position change; for the
populations the workloads use, the dense NumPy filter is already faster than
rebuilding buckets per event).

The exact filter compares ``distance <= radius`` with the same naive
``sqrt(dx²+dy²+dz²)`` arithmetic as the scalar scan, so the neighbour sets —
and therefore the simulated RF observations — are bit-identical.
"""

from __future__ import annotations

import numpy as np

from ..rf.geometry import euclidean_distances

_NEIGHBOR_OFFSETS = [
    (dx, dy, dz)
    for dx in (-1, 0, 1)
    for dy in (-1, 0, 1)
    for dz in (-1, 0, 1)
]


class NeighborGrid:
    """Uniform spatial hash over a fixed set of positions.

    Parameters
    ----------
    positions:
        ``(N, 3)`` array of point positions (metres).
    radius:
        Neighbour radius; also the cell edge length.
    """

    def __init__(self, positions: np.ndarray, radius: float) -> None:
        if radius <= 0:
            raise ValueError(f"radius must be positive, got {radius}")
        self._positions = np.asarray(positions, dtype=float)
        if self._positions.ndim != 2 or self._positions.shape[1] != 3:
            raise ValueError(
                f"positions must have shape (N, 3), got {self._positions.shape}"
            )
        self._radius = float(radius)
        self._keys = np.floor(self._positions / self._radius).astype(np.int64)
        buckets: dict[tuple[int, int, int], list[int]] = {}
        for index, key in enumerate(map(tuple, self._keys)):
            buckets.setdefault(key, []).append(index)
        self._buckets = {
            key: np.array(indices, dtype=np.intp) for key, indices in buckets.items()
        }
        self._neighbor_cache: dict[int, np.ndarray] = {}
        self._packed: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None

    @property
    def radius(self) -> float:
        """The neighbour radius (== cell edge), metres."""
        return self._radius

    def __len__(self) -> int:
        return int(self._positions.shape[0])

    def candidates(self, index: int) -> np.ndarray:
        """Indices in the 27-cell neighbourhood of point ``index`` (sorted).

        A superset of the true neighbours within the radius; includes
        ``index`` itself.
        """
        cx, cy, cz = (int(c) for c in self._keys[index])
        found = []
        for dx, dy, dz in _NEIGHBOR_OFFSETS:
            bucket = self._buckets.get((cx + dx, cy + dy, cz + dz))
            if bucket is not None:
                found.append(bucket)
        if not found:
            return np.empty(0, dtype=np.intp)
        return np.sort(np.concatenate(found))

    def neighbors_of(self, index: int) -> np.ndarray:
        """Indices within ``radius`` of point ``index`` (excluding itself).

        Returned sorted ascending — the insertion order the scalar
        whole-population scan visits them in — and cached, since the grid is
        only used for static layouts.
        """
        cached = self._neighbor_cache.get(index)
        if cached is not None:
            return cached
        candidates = self.candidates(index)
        candidates = candidates[candidates != index]
        if candidates.size:
            distances = euclidean_distances(
                self._positions[index], self._positions[candidates]
            )
            candidates = candidates[distances <= self._radius]
        self._neighbor_cache[index] = candidates
        return candidates

    def packed_neighbors(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """CSR packing of every point's neighbour list (cached).

        Returns ``(counts, offsets, flat)``: point ``i``'s neighbours are
        ``flat[offsets[i] : offsets[i] + counts[i]]``, sorted ascending — the
        same order :meth:`neighbors_of` returns.  The fused sweep engine uses
        this to expand a whole event table's coupling scatterers in a few
        NumPy calls instead of one Python lookup per decoded reply.
        """
        if self._packed is None:
            lists = [self.neighbors_of(i) for i in range(len(self))]
            counts = np.array([len(n) for n in lists], dtype=np.intp)
            offsets = np.concatenate(([0], np.cumsum(counts)))[:-1]
            flat = (
                np.concatenate(lists) if lists and counts.sum() else np.empty(0, dtype=np.intp)
            )
            self._packed = (counts, offsets, flat.astype(np.intp, copy=False))
        return self._packed

    def neighbors_for_events(
        self, tag_indices: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-event neighbour pairs for a batch of observed tags.

        ``tag_indices`` names the observed point of each event.  Returns
        ``(event_index, neighbor_index)`` — one row per (event, neighbour)
        pair, grouped by event in event order with each event's neighbours
        ascending — exactly the flattening the per-round engine builds from
        repeated :meth:`neighbors_of` calls, computed via the CSR arrays.
        """
        counts, offsets, flat = self.packed_neighbors()
        tag_indices = np.asarray(tag_indices, dtype=np.intp)
        event_counts = counts[tag_indices]
        total = int(event_counts.sum())
        if total == 0:
            return np.empty(0, dtype=np.intp), np.empty(0, dtype=np.intp)
        event_index = np.repeat(np.arange(tag_indices.size, dtype=np.intp), event_counts)
        # Position of each pair inside ``flat``: the event's CSR offset plus
        # the pair's rank within its event.
        pair_starts = np.concatenate(([0], np.cumsum(event_counts)))[:-1]
        within_event = np.arange(total, dtype=np.intp) - np.repeat(pair_starts, event_counts)
        flat_position = np.repeat(offsets[tag_indices], event_counts) + within_event
        return event_index, flat[flat_position]
