"""Frame-slotted ALOHA (C1G2 Q protocol) inventory simulation.

The EPC Class-1 Generation-2 air interface inventories tags in rounds.  In
every round the reader announces a frame of ``2**Q`` slots; every energised
tag in the reading zone draws a slot uniformly at random and replies in it.
Slots with exactly one reply are successful reads; slots with two or more
replies collide; empty slots are skipped quickly.  The reader adapts Q between
rounds to keep the collision/empty balance near the optimum (the standard's
"Q algorithm").

Two consequences matter for the paper:

* the **identification order is random** (Section 2.1) — it carries no spatial
  information, which is why STPP needs phase profiles in the first place;
* the **per-tag read rate drops as the population grows**, because a frame can
  deliver at most one successful read per occupied slot.  This produces the
  undersampling that degrades ordering accuracy in Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Sequence

import numpy as np


class SlotOutcome(Enum):
    """What happened in a single ALOHA slot."""

    EMPTY = "empty"
    SUCCESS = "success"
    COLLISION = "collision"


@dataclass(frozen=True, slots=True)
class SlotEvent:
    """The outcome of one slot within an inventory round."""

    start_time_s: float
    duration_s: float
    outcome: SlotOutcome
    tag_id: str | None = None
    """The replying tag for SUCCESS slots, None otherwise."""

    @property
    def end_time_s(self) -> float:
        """Time at which the slot ends."""
        return self.start_time_s + self.duration_s


@dataclass(frozen=True, slots=True)
class AlohaTimings:
    """Air-interface timing of the three slot outcomes, in seconds.

    Values approximate a C1G2 link at Miller-4 / 250 kHz backscatter link
    frequency, giving an aggregate rate of a few hundred successful reads per
    second — consistent with the profile lengths the paper reports
    (roughly 400 samples per tag over a sweep).
    """

    empty_slot_s: float = 0.00035
    collision_slot_s: float = 0.0011
    success_slot_s: float = 0.0025
    round_overhead_s: float = 0.001
    """Per-round overhead (Query command, frequency dwell bookkeeping)."""

    def __post_init__(self) -> None:
        for name in ("empty_slot_s", "collision_slot_s", "success_slot_s", "round_overhead_s"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")


@dataclass
class QAlgorithm:
    """The C1G2 adaptive Q algorithm (floating-point variant).

    ``q_fp`` is nudged up on collisions and down on empty slots; the rounded
    value is the frame-size exponent used for the next round.
    """

    q_fp: float = 4.0
    c: float = 0.3
    q_min: float = 0.0
    q_max: float = 15.0

    def on_slot(self, outcome: SlotOutcome) -> None:
        """Update the floating-point Q after one slot."""
        if outcome is SlotOutcome.COLLISION:
            self.q_fp = min(self.q_max, self.q_fp + self.c)
        elif outcome is SlotOutcome.EMPTY:
            self.q_fp = max(self.q_min, self.q_fp - self.c)

    @property
    def q(self) -> int:
        """The integer Q for the next round."""
        return int(round(self.q_fp))

    @property
    def frame_size(self) -> int:
        """The number of slots in the next round."""
        return 1 << self.q


@dataclass
class FrameSlottedAloha:
    """Simulates C1G2 inventory rounds over a (possibly changing) tag set."""

    timings: AlohaTimings = field(default_factory=AlohaTimings)
    initial_q: float = 4.0
    adaptive: bool = True
    """If False, Q stays at ``initial_q`` (useful for deterministic tests)."""

    def __post_init__(self) -> None:
        self._q_algorithm = QAlgorithm(q_fp=self.initial_q)
        self._duration_lut: np.ndarray | None = None
        self._ends_buffer: np.ndarray | None = None

    @property
    def current_q(self) -> int:
        """The frame-size exponent that the next round will use."""
        return self._q_algorithm.q

    def scheduling_checkpoint(self) -> float:
        """The protocol's mutable state (the floating-point Q) as a snapshot.

        The fused sweep engine checkpoints this together with the rng state so
        a mis-guessed noise schedule can be rolled back and replayed exactly.
        """
        return self._q_algorithm.q_fp

    def restore_scheduling_checkpoint(self, q_fp: float) -> None:
        """Restore the state captured by :meth:`scheduling_checkpoint`."""
        self._q_algorithm.q_fp = q_fp

    def run_round(
        self,
        tag_ids: Sequence[str],
        start_time_s: float,
        rng: np.random.Generator,
    ) -> list[SlotEvent]:
        """Simulate one inventory round over ``tag_ids`` starting at ``start_time_s``.

        Returns the slot events of the round in time order.  Tags that
        collide or pick later slots simply do not produce a read this round;
        the C1G2 session/inventoried-flag machinery is not modelled because
        the paper's readers run in a mode where tags keep replying every
        round (required to accumulate a phase profile).
        """
        events: list[SlotEvent] = []
        clock = start_time_s + self.timings.round_overhead_s
        frame_size = self._q_algorithm.frame_size

        if not tag_ids:
            # An empty round still burns one empty slot of air time.
            events.append(SlotEvent(clock, self.timings.empty_slot_s, SlotOutcome.EMPTY))
            return events

        chosen_slots = rng.integers(0, frame_size, size=len(tag_ids))
        slot_to_tags: dict[int, list[str]] = {}
        for tag_id, slot in zip(tag_ids, chosen_slots):
            slot_to_tags.setdefault(int(slot), []).append(tag_id)

        for slot_index in range(frame_size):
            occupants = slot_to_tags.get(slot_index, [])
            if not occupants:
                outcome = SlotOutcome.EMPTY
                duration = self.timings.empty_slot_s
                tag_id = None
            elif len(occupants) == 1:
                outcome = SlotOutcome.SUCCESS
                duration = self.timings.success_slot_s
                tag_id = occupants[0]
            else:
                outcome = SlotOutcome.COLLISION
                duration = self.timings.collision_slot_s
                tag_id = None
            events.append(SlotEvent(clock, duration, outcome, tag_id))
            clock += duration
            if self.adaptive:
                self._q_algorithm.on_slot(outcome)
        return events

    def run_round_schedule(
        self,
        tag_ids: Sequence[str],
        start_time_s: float,
        rng: np.random.Generator,
    ) -> "tuple[list[str] | np.ndarray, np.ndarray, float]":
        """Scheduling-only round: the array-native twin of :meth:`run_round`.

        Returns ``(success_tag_ids, success_end_times, round_duration_s)``
        without materialising a :class:`SlotEvent` per slot; when ``tag_ids``
        is an index array (the fused scheduler's form) the winners come back
        as an array too.  The fused
        two-phase sweep engine runs hundreds of rounds per sweep, and the
        per-slot dataclass construction of :meth:`run_round` dominates its
        scheduling cost; this path computes the identical outcome from the
        same single ``rng.integers`` draw:

        * slot end times accumulate through ``np.cumsum``, whose sequential
          left-to-right adds replicate the scalar loop's ``clock += duration``
          float-for-float;
        * the adaptive Q walk replays :meth:`QAlgorithm.on_slot`'s exact
          ``min``/``max`` arithmetic per slot (on outcome codes, not event
          objects), leaving the protocol state bit-identical.

        ``tests/test_fused_sweep.py`` pins the equivalence against
        :meth:`run_round`.
        """
        timings = self.timings
        first_slot_start = start_time_s + timings.round_overhead_s
        frame_size = self._q_algorithm.frame_size

        if len(tag_ids) == 0:
            # An empty round still burns one empty slot of air time (and,
            # like run_round, skips the Q update).
            end = first_slot_start + timings.empty_slot_s
            duration = (end - first_slot_start) + timings.round_overhead_s
            return [], np.empty(0), duration

        chosen = rng.integers(0, frame_size, size=len(tag_ids))
        counts = np.bincount(chosen, minlength=frame_size)
        if self._duration_lut is None:
            # Slot duration by occupancy class: 0 empty, 1 success, 2+ collision.
            self._duration_lut = np.array(
                [timings.empty_slot_s, timings.success_slot_s, timings.collision_slot_s]
            )
        durations = self._duration_lut[np.minimum(counts, 2)]
        # ends[0] is the first slot's start; ends[k + 1] is slot k's end.
        # In-place left-to-right accumulate == the scalar loop's sequential
        # ``clock += duration`` float-for-float.  The buffer is reused across
        # rounds: nothing below escapes except fancy-indexed copies.
        ends = self._ends_buffer
        if ends is None or ends.size != frame_size + 1:
            self._ends_buffer = ends = np.empty(frame_size + 1)
        ends[0] = first_slot_start
        ends[1:] = durations
        np.add.accumulate(ends, out=ends)

        if self.adaptive:
            algorithm = self._q_algorithm
            q_fp = algorithm.q_fp
            c = algorithm.c
            q_min = algorithm.q_min
            q_max = algorithm.q_max
            # Successful slots never move Q, so replaying only the empty and
            # collision slots (in slot order) walks the same clamped path.
            for occupancy in counts[counts != 1].tolist():
                if occupancy == 0:
                    q_fp = max(q_min, q_fp - c)
                else:
                    q_fp = min(q_max, q_fp + c)
            algorithm.q_fp = q_fp

        winners = np.nonzero(counts[chosen] == 1)[0]
        winner_slots = chosen[winners]
        order = np.argsort(winner_slots)
        winners = winners[order]
        if isinstance(tag_ids, np.ndarray):
            # Index-array form (the fused scheduler): winners gather in one
            # fancy index, no per-winner Python objects.
            success_ids = tag_ids[winners]
        else:
            success_ids = [tag_ids[i] for i in winners]
        success_ends = ends[winner_slots[order] + 1]
        duration = (float(ends[-1]) - float(ends[0])) + timings.round_overhead_s
        return success_ids, success_ends, duration

    def round_duration_s(self, events: Sequence[SlotEvent]) -> float:
        """Total air time of a round produced by :meth:`run_round`."""
        if not events:
            return self.timings.round_overhead_s
        return (events[-1].end_time_s - events[0].start_time_s) + self.timings.round_overhead_s


def expected_success_rate(tag_count: int, frame_size: int) -> float:
    """Expected successful reads per slot for ``tag_count`` tags and ``frame_size`` slots.

    This is the classic slotted-ALOHA throughput ``n/F * (1 - 1/F)**(n-1)``;
    exposed for tests and for documentation of the undersampling effect.
    """
    if tag_count <= 0 or frame_size <= 0:
        return 0.0
    p_slot = 1.0 / frame_size
    return tag_count * p_slot * (1.0 - p_slot) ** (tag_count - 1)
