"""Read records: what a COTS reader hands to application software.

Every successfully decoded tag reply yields a :class:`TagRead` carrying the
fields the ImpinJ LLRP API exposes and the paper consumes: EPC, a timestamp,
the RF phase, the RSSI, and the channel index.  A :class:`ReadLog` groups the
reads of one sweep and offers the per-tag views STPP and the baselines use.

:class:`ReadLog` stores reads **columnar** (one sequence per field) rather
than as a list of per-read objects: the batched reader simulator assembles a
sweep's time-sorted reads via :meth:`ReadLog.extend_columns`, and profile
assembly slices the cached NumPy columns instead of list-comprehending over
objects.  :class:`TagRead` objects are materialised lazily, only for callers
that iterate the log read-by-read.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np


@dataclass(frozen=True, slots=True, order=True)
class TagRead:
    """One successfully decoded tag reply."""

    timestamp_s: float
    """Time of the read, seconds since the start of the sweep."""

    tag_id: str
    """EPC of the replying tag (hex string)."""

    phase_rad: float
    """Reported RF phase, radians in [0, 2*pi)."""

    rssi_dbm: float
    """Reported RSSI in dBm."""

    channel_index: int = 6
    """Reader channel on which the read happened."""

    antenna_port: int = 1
    """Antenna port that produced the read (multi-antenna baselines use >1)."""


@dataclass(frozen=True)
class ReadBatch:
    """A columnar batch of reads sharing one channel and antenna port.

    The unit of streaming ingestion: :meth:`RFIDReader.sweep_stream
    <repro.rfid.reader.RFIDReader.sweep_stream>` yields one per inventory
    round, :meth:`ReadLog.iter_batches` replays a finished log as batches, and
    :class:`~repro.simulation.streaming.StreamingCollector` consumes them
    without materialising per-read objects.
    """

    timestamps_s: np.ndarray
    tag_ids: tuple[str, ...]
    phases_rad: np.ndarray
    rssi_dbm: np.ndarray
    channel_index: int
    antenna_port: int = 1
    round_index: int = -1
    """Inventory round that produced the batch (-1 for replayed chunks)."""

    def __post_init__(self) -> None:
        timestamps = np.asarray(self.timestamps_s, dtype=float)
        phases = np.asarray(self.phases_rad, dtype=float)
        rssis = np.asarray(self.rssi_dbm, dtype=float)
        object.__setattr__(self, "timestamps_s", timestamps)
        object.__setattr__(self, "phases_rad", phases)
        object.__setattr__(self, "rssi_dbm", rssis)
        object.__setattr__(self, "tag_ids", tuple(self.tag_ids))
        count = len(self.tag_ids)
        if timestamps.shape != (count,) or phases.shape != (count,) or rssis.shape != (count,):
            raise ValueError(
                "column lengths disagree: "
                f"{count} ids vs {timestamps.shape} timestamps, "
                f"{phases.shape} phases, {rssis.shape} rssis"
            )

    def __len__(self) -> int:
        return len(self.tag_ids)


class ReadLog:
    """An append-only, columnar log of reads from one sweep."""

    __slots__ = (
        "_timestamps",
        "_tag_ids",
        "_phases",
        "_rssis",
        "_channels",
        "_ports",
        "_arrays",
        "_reads",
        "_tag_indices",
    )

    def __init__(self, reads: Iterable[TagRead] | None = None) -> None:
        self._timestamps: list[float] = []
        self._tag_ids: list[str] = []
        self._phases: list[float] = []
        self._rssis: list[float] = []
        self._channels: list[int] = []
        self._ports: list[int] = []
        self._invalidate()
        if reads is not None:
            self.extend(reads)

    def _invalidate(self) -> None:
        self._arrays: dict[str, np.ndarray] | None = None
        self._reads: list[TagRead] | None = None
        self._tag_indices: dict[str, np.ndarray] | None = None

    # -- ingestion ---------------------------------------------------------

    def append(self, read: TagRead) -> None:
        """Append one read to the log."""
        self._timestamps.append(read.timestamp_s)
        self._tag_ids.append(read.tag_id)
        self._phases.append(read.phase_rad)
        self._rssis.append(read.rssi_dbm)
        self._channels.append(read.channel_index)
        self._ports.append(read.antenna_port)
        self._invalidate()

    def extend(self, reads: Iterable[TagRead]) -> None:
        """Append many reads to the log."""
        for read in reads:
            self.append(read)

    def extend_columns(
        self,
        timestamps_s: np.ndarray,
        tag_ids: Sequence[str],
        phases_rad: np.ndarray,
        rssi_dbm: np.ndarray,
        channel_index: int,
        antenna_port: int,
    ) -> None:
        """Append a batch of reads given as parallel columns (one channel/port)."""
        count = len(tag_ids)
        timestamps = np.asarray(timestamps_s, dtype=float)
        phases = np.asarray(phases_rad, dtype=float)
        rssis = np.asarray(rssi_dbm, dtype=float)
        if timestamps.shape != (count,) or phases.shape != (count,) or rssis.shape != (count,):
            raise ValueError(
                "column lengths disagree: "
                f"{count} ids vs {timestamps.shape} timestamps, "
                f"{phases.shape} phases, {rssis.shape} rssis"
            )
        self._timestamps.extend(timestamps.tolist())
        self._tag_ids.extend(tag_ids)
        self._phases.extend(phases.tolist())
        self._rssis.extend(rssis.tolist())
        self._channels.extend([int(channel_index)] * count)
        self._ports.extend([int(antenna_port)] * count)
        self._invalidate()

    def extend_batch(self, batch: ReadBatch) -> None:
        """Append one columnar :class:`ReadBatch` to the log."""
        self.extend_columns(
            batch.timestamps_s,
            list(batch.tag_ids),
            batch.phases_rad,
            batch.rssi_dbm,
            channel_index=batch.channel_index,
            antenna_port=batch.antenna_port,
        )

    def iter_batches(self, batch_size: int = 256) -> Iterator[ReadBatch]:
        """Replay the log as columnar batches of up to ``batch_size`` reads.

        Batches preserve log order, so replaying a time-sorted log into a
        streaming consumer reproduces the live ingestion order.  A batch never
        mixes channels or antenna ports (it is split at every change), so each
        batch is a valid :class:`ReadBatch`.
        """
        if batch_size < 1:
            raise ValueError(f"batch size must be >= 1, got {batch_size}")
        columns = self.columns()
        total = len(self)
        start = 0
        while start < total:
            stop = min(start + batch_size, total)
            channel = self._channels[start]
            port = self._ports[start]
            for index in range(start + 1, stop):
                if self._channels[index] != channel or self._ports[index] != port:
                    stop = index
                    break
            yield ReadBatch(
                timestamps_s=columns["timestamp_s"][start:stop],
                tag_ids=tuple(self._tag_ids[start:stop]),
                phases_rad=columns["phase_rad"][start:stop],
                rssi_dbm=columns["rssi_dbm"][start:stop],
                channel_index=channel,
                antenna_port=port,
            )
            start = stop

    @classmethod
    def from_columns(
        cls,
        timestamps_s: Sequence[float],
        tag_ids: Sequence[str],
        phases_rad: Sequence[float],
        rssi_dbm: Sequence[float],
        channel_indices: Sequence[int],
        antenna_ports: Sequence[int],
    ) -> "ReadLog":
        """Build a log directly from full parallel columns."""
        log = cls()
        log._timestamps = [float(t) for t in timestamps_s]
        log._tag_ids = list(tag_ids)
        log._phases = [float(p) for p in phases_rad]
        log._rssis = [float(r) for r in rssi_dbm]
        log._channels = [int(c) for c in channel_indices]
        log._ports = [int(p) for p in antenna_ports]
        lengths = {
            len(log._timestamps),
            len(log._tag_ids),
            len(log._phases),
            len(log._rssis),
            len(log._channels),
            len(log._ports),
        }
        if len(lengths) != 1:
            raise ValueError(f"column lengths disagree: {sorted(lengths)}")
        return log

    # -- cached views ------------------------------------------------------

    def columns(self) -> dict[str, np.ndarray]:
        """The log's fields as NumPy columns (cached; do not mutate)."""
        if self._arrays is None:
            self._arrays = {
                "timestamp_s": np.array(self._timestamps, dtype=float),
                "phase_rad": np.array(self._phases, dtype=float),
                "rssi_dbm": np.array(self._rssis, dtype=float),
                "channel_index": np.array(self._channels, dtype=np.int64),
                "antenna_port": np.array(self._ports, dtype=np.int64),
            }
        return self._arrays

    @property
    def reads(self) -> list[TagRead]:
        """The log as :class:`TagRead` objects (materialised lazily, cached)."""
        if self._reads is None:
            self._reads = [
                TagRead(t, tid, ph, rs, ch, po)
                for t, tid, ph, rs, ch, po in zip(
                    self._timestamps,
                    self._tag_ids,
                    self._phases,
                    self._rssis,
                    self._channels,
                    self._ports,
                )
            ]
        return self._reads

    def _indices_for(self, tag_id: str) -> np.ndarray:
        """Log positions of ``tag_id``'s reads, in append order (cached)."""
        if self._tag_indices is None:
            grouped: dict[str, list[int]] = {}
            for index, tid in enumerate(self._tag_ids):
                grouped.setdefault(tid, []).append(index)
            self._tag_indices = {
                tid: np.array(indices, dtype=np.intp)
                for tid, indices in grouped.items()
            }
        return self._tag_indices.get(tag_id, np.empty(0, dtype=np.intp))

    def _time_sorted_indices_for(self, tag_id: str) -> np.ndarray:
        """Log positions of ``tag_id``'s reads, stable-sorted by timestamp."""
        indices = self._indices_for(tag_id)
        if indices.size < 2:
            return indices
        times = self.columns()["timestamp_s"][indices]
        return indices[np.argsort(times, kind="stable")]

    # -- basic protocol ----------------------------------------------------

    def __len__(self) -> int:
        return len(self._timestamps)

    def __iter__(self) -> Iterator[TagRead]:
        return iter(self.reads)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ReadLog):
            return NotImplemented
        return (
            self._timestamps == other._timestamps
            and self._tag_ids == other._tag_ids
            and self._phases == other._phases
            and self._rssis == other._rssis
            and self._channels == other._channels
            and self._ports == other._ports
        )

    def __repr__(self) -> str:
        return f"ReadLog({len(self)} reads, {len(self.tag_ids())} tags)"

    # -- queries -----------------------------------------------------------

    def tag_ids(self) -> list[str]:
        """Distinct tag ids in first-seen order."""
        return list(dict.fromkeys(self._tag_ids))

    def for_tag(self, tag_id: str) -> list[TagRead]:
        """All reads of ``tag_id`` in timestamp order."""
        reads = self.reads
        return [reads[i] for i in self._time_sorted_indices_for(tag_id)]

    def for_antenna(self, antenna_port: int) -> "ReadLog":
        """A new log containing only reads from ``antenna_port``."""
        keep = [i for i, port in enumerate(self._ports) if port == antenna_port]
        return ReadLog.from_columns(
            [self._timestamps[i] for i in keep],
            [self._tag_ids[i] for i in keep],
            [self._phases[i] for i in keep],
            [self._rssis[i] for i in keep],
            [self._channels[i] for i in keep],
            [self._ports[i] for i in keep],
        )

    def timestamps(self, tag_id: str) -> np.ndarray:
        """Timestamps of ``tag_id``'s reads as a float array (seconds)."""
        return self.columns()["timestamp_s"][self._time_sorted_indices_for(tag_id)]

    def phases(self, tag_id: str) -> np.ndarray:
        """Phases of ``tag_id``'s reads as a float array (radians)."""
        return self.columns()["phase_rad"][self._time_sorted_indices_for(tag_id)]

    def rssis(self, tag_id: str) -> np.ndarray:
        """RSSI values of ``tag_id``'s reads as a float array (dBm)."""
        return self.columns()["rssi_dbm"][self._time_sorted_indices_for(tag_id)]

    def channel_indices(self) -> set[int]:
        """The distinct reader channels present in the log."""
        return set(self._channels)

    def read_counts(self) -> dict[str, int]:
        """Number of reads per tag id."""
        counts: dict[str, int] = {}
        for tag_id in self._tag_ids:
            counts[tag_id] = counts.get(tag_id, 0) + 1
        return counts

    def duration_s(self) -> float:
        """Span between first and last read, in seconds (0 when empty)."""
        if not self._timestamps:
            return 0.0
        return max(self._timestamps) - min(self._timestamps)

    def sorted_by_time(self) -> "ReadLog":
        """A new log with reads stable-sorted by timestamp."""
        order = np.argsort(np.array(self._timestamps, dtype=float), kind="stable")
        return ReadLog.from_columns(
            [self._timestamps[i] for i in order],
            [self._tag_ids[i] for i in order],
            [self._phases[i] for i in order],
            [self._rssis[i] for i in order],
            [self._channels[i] for i in order],
            [self._ports[i] for i in order],
        )
