"""Read records: what a COTS reader hands to application software.

Every successfully decoded tag reply yields a :class:`TagRead` carrying the
fields the ImpinJ LLRP API exposes and the paper consumes: EPC, a timestamp,
the RF phase, the RSSI, and the channel index.  A :class:`ReadLog` groups the
reads of one sweep and offers the per-tag views STPP and the baselines use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

import numpy as np


@dataclass(frozen=True, slots=True, order=True)
class TagRead:
    """One successfully decoded tag reply."""

    timestamp_s: float
    """Time of the read, seconds since the start of the sweep."""

    tag_id: str
    """EPC of the replying tag (hex string)."""

    phase_rad: float
    """Reported RF phase, radians in [0, 2*pi)."""

    rssi_dbm: float
    """Reported RSSI in dBm."""

    channel_index: int = 6
    """Reader channel on which the read happened."""

    antenna_port: int = 1
    """Antenna port that produced the read (multi-antenna baselines use >1)."""


@dataclass
class ReadLog:
    """An append-only log of reads from one sweep."""

    reads: list[TagRead] = field(default_factory=list)

    def append(self, read: TagRead) -> None:
        """Append one read to the log."""
        self.reads.append(read)

    def extend(self, reads: Iterable[TagRead]) -> None:
        """Append many reads to the log."""
        self.reads.extend(reads)

    def __len__(self) -> int:
        return len(self.reads)

    def __iter__(self) -> Iterator[TagRead]:
        return iter(self.reads)

    def tag_ids(self) -> list[str]:
        """Distinct tag ids in first-seen order."""
        seen: dict[str, None] = {}
        for read in self.reads:
            seen.setdefault(read.tag_id, None)
        return list(seen)

    def for_tag(self, tag_id: str) -> list[TagRead]:
        """All reads of ``tag_id`` in timestamp order."""
        return sorted(
            (read for read in self.reads if read.tag_id == tag_id),
            key=lambda read: read.timestamp_s,
        )

    def for_antenna(self, antenna_port: int) -> "ReadLog":
        """A new log containing only reads from ``antenna_port``."""
        return ReadLog([r for r in self.reads if r.antenna_port == antenna_port])

    def timestamps(self, tag_id: str) -> np.ndarray:
        """Timestamps of ``tag_id``'s reads as a float array (seconds)."""
        return np.array([r.timestamp_s for r in self.for_tag(tag_id)], dtype=float)

    def phases(self, tag_id: str) -> np.ndarray:
        """Phases of ``tag_id``'s reads as a float array (radians)."""
        return np.array([r.phase_rad for r in self.for_tag(tag_id)], dtype=float)

    def rssis(self, tag_id: str) -> np.ndarray:
        """RSSI values of ``tag_id``'s reads as a float array (dBm)."""
        return np.array([r.rssi_dbm for r in self.for_tag(tag_id)], dtype=float)

    def read_counts(self) -> dict[str, int]:
        """Number of reads per tag id."""
        counts: dict[str, int] = {}
        for read in self.reads:
            counts[read.tag_id] = counts.get(read.tag_id, 0) + 1
        return counts

    def duration_s(self) -> float:
        """Span between first and last read, in seconds (0 when empty)."""
        if not self.reads:
            return 0.0
        times = [r.timestamp_s for r in self.reads]
        return max(times) - min(times)

    def sorted_by_time(self) -> "ReadLog":
        """A new log with reads sorted by timestamp."""
        return ReadLog(sorted(self.reads, key=lambda read: read.timestamp_s))
