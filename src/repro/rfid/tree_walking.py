"""Binary tree-walking tag identification.

Tree walking is the second identification protocol mentioned by the C1G2
standard discussion in the paper (Section 2.1).  The reader performs a
depth-first descent over the binary prefix tree of tag identifiers: it
broadcasts a prefix; tags whose EPC starts with the prefix reply; if more than
one replies (collision), the reader recurses on ``prefix+'0'`` and
``prefix+'1'``; if exactly one replies it is identified.

The resulting identification order is the lexicographic order of the EPCs —
it depends only on the IDs stored in the tags, not on where the tags are,
which is the paper's argument for why identification order cannot provide
relative localization.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from .epc import EPC_BITS


@dataclass(frozen=True, slots=True)
class TreeWalkQuery:
    """One prefix query issued during a tree walk."""

    prefix: str
    responders: int
    """How many tags matched the prefix (0, 1, or more)."""

    identified_tag: str | None = None
    """The tag identified by this query, when ``responders == 1``."""


@dataclass
class TreeWalkResult:
    """The full trace of a tree-walking inventory."""

    identified_order: list[str] = field(default_factory=list)
    queries: list[TreeWalkQuery] = field(default_factory=list)

    @property
    def query_count(self) -> int:
        """Total number of prefix queries issued."""
        return len(self.queries)


def tree_walk(tag_bit_ids: dict[str, str]) -> TreeWalkResult:
    """Identify all tags in ``tag_bit_ids`` via binary tree walking.

    Parameters
    ----------
    tag_bit_ids:
        Mapping of tag id to its EPC bit string (MSB first).  All bit strings
        must share the same length.

    Returns
    -------
    TreeWalkResult
        Identification order (lexicographic in the bit strings) and the query
        trace, useful for analysing protocol overhead.
    """
    if not tag_bit_ids:
        return TreeWalkResult()
    lengths = {len(bits) for bits in tag_bit_ids.values()}
    if len(lengths) != 1:
        raise ValueError(f"all EPC bit strings must share a length, got {sorted(lengths)}")
    bit_length = lengths.pop()
    if bit_length > EPC_BITS:
        raise ValueError(f"bit strings longer than {EPC_BITS} bits are not valid EPCs")

    result = TreeWalkResult()

    def matching(prefix: str) -> list[str]:
        return [tag_id for tag_id, bits in tag_bit_ids.items() if bits.startswith(prefix)]

    def descend(prefix: str) -> None:
        responders = matching(prefix)
        if not responders:
            result.queries.append(TreeWalkQuery(prefix, 0))
            return
        if len(responders) == 1:
            tag_id = responders[0]
            result.queries.append(TreeWalkQuery(prefix, 1, tag_id))
            result.identified_order.append(tag_id)
            return
        result.queries.append(TreeWalkQuery(prefix, len(responders)))
        if len(prefix) >= bit_length:
            # Identical IDs cannot be separated; identify them in stored order.
            for tag_id in responders:
                result.identified_order.append(tag_id)
            return
        descend(prefix + "0")
        descend(prefix + "1")

    descend("")
    return result


def identification_order(tag_bit_ids: dict[str, str]) -> list[str]:
    """Just the identification order of a tree walk over ``tag_bit_ids``."""
    return tree_walk(tag_bit_ids).identified_order


def query_overhead(tag_bit_ids: dict[str, str]) -> float:
    """Queries issued per identified tag (protocol overhead measure)."""
    result = tree_walk(tag_bit_ids)
    if not result.identified_order:
        return 0.0
    return result.query_count / len(result.identified_order)


def walk_sequence(tag_bit_ids: Sequence[tuple[str, str]]) -> list[str]:
    """Convenience wrapper accepting (tag_id, bits) pairs instead of a dict."""
    return identification_order(dict(tag_bit_ids))
