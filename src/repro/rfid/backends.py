"""Pluggable physics backends for the fused sweep engine.

PR 5 split a sweep into a sequential, rng-owning **scheduling** phase and an
order-free **physics** phase over the emitted
:class:`~repro.rfid.event_table.SweepEventTable`.  The physics phase is
rng-free and every event's observables depend only on that event's own row
(geometry, link budget, multipath, Eq. (1) phase, quantisation), so the event
rows can be evaluated in any partition, in any order, and concatenated back —
**bitwise identically**.  This module turns that property into a pluggable
execution layer:

* ``serial``  — the whole table in one fused NumPy pass (the default; exactly
  the pre-backend behaviour);
* ``threads`` — the table split into row chunks across a thread pool.  The
  big NumPy kernels in :meth:`~repro.rf.channel.BackscatterChannel.sweep_physics`
  and :meth:`~repro.rf.multipath.MultipathChannel.complex_gains` release the
  GIL, so chunks genuinely overlap on multi-core hosts;
* ``process`` — the same chunking across a process pool, for populations big
  enough to amortise pickling the sweep state.  Sweeps whose state cannot be
  pickled (e.g. closure-based position providers) fall back to in-process
  evaluation of the identical chunks rather than failing.

A backend never touches the generator and never reorders rows: chunk results
are concatenated in chunk order, so every backend's
:class:`~repro.rf.channel.SweepPhysics` columns — and therefore the read log —
are bit-identical to ``serial`` (pinned by ``tests/test_physics_backends.py``).

Selection: pass a name or instance to :class:`~repro.rfid.reader.RFIDReader`
(or per sweep via ``RFIDReader.sweep(..., physics_backend=...)``), or set the
``REPRO_PHYSICS_BACKEND`` environment variable — the hook CI uses to force the
whole tier-1 suite through the threads backend.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Sequence

PHYSICS_BACKEND_ENV = "REPRO_PHYSICS_BACKEND"
"""Environment override for the default backend (e.g. CI forces ``threads``)."""

PHYSICS_BACKENDS: tuple[str, ...] = ("serial", "threads", "process")
"""The built-in backend names, all bit-identical from the same event table."""

DEFAULT_CHUNK_EVENTS = 4096
"""Default events per chunk for the parallel backends.

Small enough that a handful of chunks exist on the benchmark scenes (so a
pool has something to balance), large enough that each chunk's NumPy kernels
dominate the per-chunk dispatch overhead."""

ChunkKernel = Callable[[int, int], tuple]
"""``kernel(start, stop)`` evaluates event rows ``[start, stop)`` and returns
that chunk's physics columns.  Must be pure per chunk: no rng, no shared
mutable state (the reader pre-warms provider caches before dispatch)."""

Bounds = Sequence[tuple[int, int]]


def _chunk_bounds(count: int, chunk_events: int) -> list[tuple[int, int]]:
    """Contiguous ``[start, stop)`` row ranges covering ``count`` events."""
    chunk = max(1, int(chunk_events))
    return [(start, min(start + chunk, count)) for start in range(0, count, chunk)]


class SerialPhysicsBackend:
    """The default backend: one fused pass over the whole event table."""

    name = "serial"

    def chunk_bounds(self, count: int) -> list[tuple[int, int]]:
        return [(0, count)] if count else []

    def map_chunks(self, kernel: ChunkKernel, bounds: Bounds) -> list[tuple]:
        return [kernel(start, stop) for start, stop in bounds]

    def close(self) -> None:
        """Nothing to release."""


class ThreadPhysicsBackend:
    """Chunk the event rows across a reused thread pool.

    Python-level chunk dispatch serialises on the GIL, but each chunk's time
    is dominated by NumPy kernels that release it, so chunks overlap on
    multi-core hosts.  On a single-core host this backend degrades to
    serial-with-dispatch-overhead — the benchmarks mark such comparisons
    inconclusive rather than recording the ~1x as a speedup.
    """

    name = "threads"

    def __init__(
        self, workers: int | None = None, chunk_events: int = DEFAULT_CHUNK_EVENTS
    ) -> None:
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if chunk_events < 1:
            raise ValueError(f"chunk_events must be >= 1, got {chunk_events}")
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        self.chunk_events = chunk_events
        self._pool: ThreadPoolExecutor | None = None

    def __getstate__(self) -> dict:
        # The pool (and its locks) never crosses process boundaries: the
        # process backend pickles the reader — which holds a backend — into
        # its workers, where chunk kernels run directly, pool-less.
        return {**self.__dict__, "_pool": None}

    def chunk_bounds(self, count: int) -> list[tuple[int, int]]:
        return _chunk_bounds(count, self.chunk_events)

    def map_chunks(self, kernel: ChunkKernel, bounds: Bounds) -> list[tuple]:
        if len(bounds) <= 1 or self.workers == 1:
            return [kernel(start, stop) for start, stop in bounds]
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="physics"
            )
        futures = [self._pool.submit(kernel, start, stop) for start, stop in bounds]
        return [future.result() for future in futures]

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class ProcessPhysicsBackend:
    """Chunk the event rows across a reused process pool.

    Each chunk ships the (picklable) sweep state to a worker and returns the
    chunk's physics columns; the payload is the sweep setup plus the event
    table's scheduling columns, so the cost only amortises on large
    populations.  Sweeps whose state cannot be pickled (closure providers,
    lambdas) are evaluated in-process through the identical chunk kernel —
    the fallback changes the executor, never the arithmetic.
    """

    name = "process"

    def __init__(
        self, workers: int | None = None, chunk_events: int = 4 * DEFAULT_CHUNK_EVENTS
    ) -> None:
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if chunk_events < 1:
            raise ValueError(f"chunk_events must be >= 1, got {chunk_events}")
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        self.chunk_events = chunk_events
        self._pool: ProcessPoolExecutor | None = None
        self.last_fallback_reason: str | None = None

    def __getstate__(self) -> dict:
        # See ThreadPhysicsBackend.__getstate__ — pools never pickle.
        return {**self.__dict__, "_pool": None}

    def chunk_bounds(self, count: int) -> list[tuple[int, int]]:
        return _chunk_bounds(count, self.chunk_events)

    def map_chunks(self, kernel: ChunkKernel, bounds: Bounds) -> list[tuple]:
        self.last_fallback_reason = None
        if len(bounds) <= 1 or self.workers == 1:
            return [kernel(start, stop) for start, stop in bounds]
        try:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(max_workers=self.workers)
            futures = [
                self._pool.submit(kernel, start, stop) for start, stop in bounds
            ]
            return [future.result() for future in futures]
        except Exception as exc:  # unpicklable sweep state, broken pool, ...
            self.last_fallback_reason = f"{type(exc).__name__}: {exc}"
            self.close()
            return [kernel(start, stop) for start, stop in bounds]

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


_BACKEND_FACTORIES = {
    "serial": SerialPhysicsBackend,
    "threads": ThreadPhysicsBackend,
    "process": ProcessPhysicsBackend,
}


def resolve_physics_backend(backend: object | None = None):
    """Normalise a backend argument into a backend instance.

    ``None`` consults the ``REPRO_PHYSICS_BACKEND`` environment variable and
    defaults to ``serial``; a string is looked up among the built-ins; an
    object exposing the backend interface (``name``, ``chunk_bounds``,
    ``map_chunks``) passes through unchanged.
    """
    if backend is None:
        backend = os.environ.get(PHYSICS_BACKEND_ENV) or "serial"
    if isinstance(backend, str):
        factory = _BACKEND_FACTORIES.get(backend)
        if factory is None:
            raise ValueError(
                f"physics backend must be one of {PHYSICS_BACKENDS}, got {backend!r}"
            )
        return factory()
    for attribute in ("name", "chunk_bounds", "map_chunks"):
        if not hasattr(backend, attribute):
            raise TypeError(
                f"physics backend {backend!r} lacks the {attribute!r} attribute "
                f"of the backend interface"
            )
    return backend
