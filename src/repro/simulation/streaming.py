"""Incremental profile assembly: reads in, growing phase profiles out.

:class:`StreamingCollector` is the streaming counterpart of
:func:`~repro.simulation.collector.profiles_from_read_log`: instead of
converting a *finished* :class:`~repro.rfid.reading.ReadLog` into a
:class:`~repro.core.phase_profile.ProfileSet`, it ingests reads (single
:class:`~repro.rfid.reading.TagRead` objects or columnar
:class:`~repro.rfid.reading.ReadBatch` batches from the round-batched reader)
as they arrive and maintains one growing per-tag sample buffer with amortized
O(1) appends.  Snapshots taken at any instant are bit-identical to what the
batch converter would produce from the reads ingested so far — same stable
timestamp sort, same phase wrapping — which is the foundation of the
streaming session's batch-convergence guarantee.

Out-of-order reads (a late LLRP report, a replayed log that was never
sorted) are handled by policy, chosen at construction:

* ``"reorder"`` (default): the late read is accepted and the tag's samples
  are deterministically stable-sorted by timestamp at the next snapshot —
  exactly the sort :meth:`PhaseProfile.from_reads` applies, so the result is
  independent of arrival order.  Consumers that maintain incremental state
  over the sample sequence (the streaming session) detect the reorder via
  :attr:`TagStreamBuffer.reorders` and rebuild that tag's state.
* ``"dedupe"``: like ``"reorder"``, but an **exact duplicate** read (same
  tag, timestamp, channel, and wrapped phase — an LLRP report retry) is
  dropped instead of corrupting the profile; drops are counted per tag in
  :attr:`TagStreamBuffer.duplicates_dropped`, surfaced exactly like
  :attr:`TagStreamBuffer.reorders`.
* ``"raise"``: ingestion raises ``ValueError`` at the offending read, for
  deployments where a timestamp regression means a broken reader clock.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from ..core.phase_profile import PhaseProfile, ProfileSet
from ..rf.constants import TWO_PI
from ..rfid.reading import ReadBatch, TagRead

OUT_OF_ORDER_POLICIES = ("reorder", "dedupe", "raise")
"""Supported responses to a read whose timestamp precedes its tag's last one.
``"dedupe"`` additionally drops exact duplicate reads at ingest."""

_INITIAL_CAPACITY = 16


class TagStreamBuffer:
    """The growing sample columns of one tag (append order preserved).

    Appends are amortized O(1): columns live in NumPy buffers that double in
    capacity when full, and phases are wrapped into [0, 2π) chunk-wise at
    ingest time.  :meth:`sorted_arrays` / :meth:`profile` return snapshots in
    timestamp order — bit-identical to
    :meth:`PhaseProfile.from_reads` on the same reads in the same arrival
    order (stable sort, so equal timestamps keep arrival order).
    """

    __slots__ = (
        "tag_id",
        "_times",
        "_phases",
        "_rssis",
        "_count",
        "_last_time",
        "_disordered",
        "reorders",
        "duplicates_dropped",
        "_seen",
        "_profile_cache",
        "_profile_cache_count",
        "_channel_index",
    )

    def __init__(self, tag_id: str) -> None:
        self.tag_id = tag_id
        self._times = np.empty(_INITIAL_CAPACITY, dtype=float)
        self._phases = np.empty(_INITIAL_CAPACITY, dtype=float)
        self._rssis = np.empty(_INITIAL_CAPACITY, dtype=float)
        self._count = 0
        self._last_time = float("-inf")
        self._disordered = False
        self.reorders = 0
        """Incremented whenever an out-of-order read is accepted; incremental
        consumers rebuild their per-tag state when this changes."""
        self.duplicates_dropped = 0
        """Exact duplicate reads dropped at ingest (``"dedupe"`` policy only)."""
        self._seen: set[tuple[float, float, int]] | None = None
        self._profile_cache: PhaseProfile | None = None
        self._profile_cache_count = -1
        self._channel_index = 6

    def __len__(self) -> int:
        return self._count

    @property
    def last_timestamp_s(self) -> float:
        """Largest timestamp ingested so far (-inf when empty).

        ``_last_time`` is maintained as the global high-water mark on every
        append (disordered chunks included), so this is O(1).
        """
        return self._last_time

    def _ensure_capacity(self, extra: int) -> None:
        needed = self._count + extra
        capacity = self._times.shape[0]
        if needed <= capacity:
            return
        while capacity < needed:
            capacity *= 2
        for name in ("_times", "_phases", "_rssis"):
            old = getattr(self, name)
            grown = np.empty(capacity, dtype=float)
            grown[: self._count] = old[: self._count]
            setattr(self, name, grown)

    def append_columns(
        self,
        timestamps_s: np.ndarray,
        phases_rad: np.ndarray,
        rssi_dbm: np.ndarray,
        channel_index: int,
        out_of_order: str,
    ) -> int:
        """Append a chunk of this tag's reads (arrival order).

        Returns the number of exact duplicates dropped (always 0 unless the
        policy is ``"dedupe"``), so the collector can keep its read count an
        ingested-reads count.
        """
        count = timestamps_s.shape[0]
        if count == 0:
            return 0
        if out_of_order == "dedupe":
            timestamps_s, phases_rad, rssi_dbm, dropped = self._dedupe_chunk(
                timestamps_s, phases_rad, rssi_dbm, channel_index
            )
            count = timestamps_s.shape[0]
            if count == 0:
                return dropped
        else:
            dropped = 0
        in_order = timestamps_s[0] >= self._last_time and (
            count == 1 or bool(np.all(np.diff(timestamps_s) >= 0.0))
        )
        if not in_order:
            if out_of_order == "raise":
                raise ValueError(
                    f"tag {self.tag_id}: out-of-order timestamp "
                    f"(new read at {float(np.min(timestamps_s)):.6f} s after "
                    f"{self._last_time:.6f} s); collector policy is 'raise'"
                )
            if not self._disordered:
                self._disordered = True
            self.reorders += 1
        self._ensure_capacity(count)
        start = self._count
        self._times[start : start + count] = timestamps_s
        self._phases[start : start + count] = np.mod(phases_rad, TWO_PI)
        self._rssis[start : start + count] = rssi_dbm
        self._count += count
        # The chunk max, not the chunk's last element: after an internally
        # disordered chunk the next reads must be compared against the true
        # high-water mark, or a read between the two would dodge the reorder
        # detection (and the consumer's incremental-state rebuild).
        self._last_time = max(self._last_time, float(np.max(timestamps_s)))
        self._channel_index = int(channel_index)
        self._profile_cache = None
        return dropped

    def _dedupe_chunk(
        self,
        timestamps_s: np.ndarray,
        phases_rad: np.ndarray,
        rssi_dbm: np.ndarray,
        channel_index: int,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
        """Filter exact duplicates out of one chunk (``"dedupe"`` policy).

        A duplicate is a read identical to an already-ingested one in
        (timestamp, wrapped phase, channel) — this tag's buffer, so the tag
        id is implicit.  Phases are wrapped before comparison so the dropped
        read is exactly the one whose ingestion would be a no-op signal-wise;
        wrapping is idempotent, so passing wrapped phases onward changes
        nothing downstream.
        """
        if self._seen is None:
            self._seen = set()
        seen = self._seen
        channel = int(channel_index)
        wrapped = np.mod(phases_rad, TWO_PI)
        count = timestamps_s.shape[0]
        keep = np.ones(count, dtype=bool)
        for index in range(count):
            key = (float(timestamps_s[index]), float(wrapped[index]), channel)
            if key in seen:
                keep[index] = False
            else:
                seen.add(key)
        dropped = count - int(np.count_nonzero(keep))
        if dropped == 0:
            return timestamps_s, wrapped, rssi_dbm, 0
        self.duplicates_dropped += dropped
        return timestamps_s[keep], wrapped[keep], rssi_dbm[keep], dropped

    def sorted_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(timestamps, wrapped phases, rssis)`` in stable timestamp order.

        The returned arrays are views/copies the caller must not mutate.
        """
        times = self._times[: self._count]
        phases = self._phases[: self._count]
        rssis = self._rssis[: self._count]
        if not self._disordered:
            return times, phases, rssis
        order = np.argsort(times, kind="stable")
        return times[order], phases[order], rssis[order]

    def profile(self, channel_index: int | None = None) -> PhaseProfile:
        """Snapshot of this tag's profile over the reads ingested so far."""
        channel = self._channel_index if channel_index is None else channel_index
        if (
            self._profile_cache is not None
            and self._profile_cache_count == self._count
            and self._profile_cache.channel_index == channel
        ):
            return self._profile_cache
        times, phases, rssis = self.sorted_arrays()
        profile = PhaseProfile(
            tag_id=self.tag_id,
            timestamps_s=times,
            phases_rad=phases,
            rssi_dbm=rssis,
            channel_index=channel,
        )
        self._profile_cache = profile
        self._profile_cache_count = self._count
        return profile


class StreamingCollector:
    """Ingests reads incrementally and maintains per-tag phase profiles.

    Parameters
    ----------
    channel_index:
        Channel label for the produced profiles.  When omitted it is derived
        from the ingested reads, with the same contract as
        :func:`~repro.simulation.collector.profiles_from_read_log`: a stream
        spanning several reader channels has no single per-profile channel,
        so :meth:`profiles` raises unless the label was given explicitly.
    out_of_order:
        ``"reorder"`` (default), ``"dedupe"``, or ``"raise"`` — see the
        module docstring.
    """

    def __init__(
        self,
        channel_index: int | None = None,
        out_of_order: str = "reorder",
    ) -> None:
        if out_of_order not in OUT_OF_ORDER_POLICIES:
            raise ValueError(
                f"out_of_order must be one of {OUT_OF_ORDER_POLICIES}, "
                f"got {out_of_order!r}"
            )
        self.out_of_order = out_of_order
        self._explicit_channel = channel_index
        self._channels_seen: set[int] = set()
        self._streams: dict[str, TagStreamBuffer] = {}
        self._read_count = 0

    def __len__(self) -> int:
        return self._read_count

    @property
    def read_count(self) -> int:
        """Total reads ingested so far (duplicates dropped at ingest under
        the ``"dedupe"`` policy are not counted)."""
        return self._read_count

    @property
    def duplicates_dropped(self) -> int:
        """Exact duplicate reads dropped across all tags (``"dedupe"`` only)."""
        return sum(stream.duplicates_dropped for stream in self._streams.values())

    @property
    def reorders(self) -> int:
        """Out-of-order acceptances across all tags (any policy but ``"raise"``)."""
        return sum(stream.reorders for stream in self._streams.values())

    def tag_ids(self) -> list[str]:
        """Distinct tag ids in first-seen order (matches ``ReadLog.tag_ids``)."""
        return list(self._streams)

    def stream(self, tag_id: str) -> TagStreamBuffer:
        """The growing buffer of one tag (raises ``KeyError`` if never seen)."""
        return self._streams[tag_id]

    def streams(self) -> Iterator[TagStreamBuffer]:
        """All tag buffers in first-seen order."""
        return iter(self._streams.values())

    # -- ingestion ---------------------------------------------------------

    def _stream_for(self, tag_id: str) -> TagStreamBuffer:
        stream = self._streams.get(tag_id)
        if stream is None:
            stream = TagStreamBuffer(tag_id)
            self._streams[tag_id] = stream
        return stream

    def ingest_read(self, read: TagRead) -> None:
        """Ingest one decoded reply."""
        self.ingest_columns(
            np.array([read.timestamp_s], dtype=float),
            (read.tag_id,),
            np.array([read.phase_rad], dtype=float),
            np.array([read.rssi_dbm], dtype=float),
            channel_index=read.channel_index,
        )

    def ingest(self, reads: Iterable[TagRead]) -> None:
        """Ingest many reads (arrival order preserved)."""
        for read in reads:
            self.ingest_read(read)

    def ingest_batch(self, batch: ReadBatch) -> None:
        """Ingest one columnar read batch (e.g. from ``sweep_stream``)."""
        self.ingest_columns(
            batch.timestamps_s,
            batch.tag_ids,
            batch.phases_rad,
            batch.rssi_dbm,
            channel_index=batch.channel_index,
        )

    def ingest_batches(self, batches: Iterable[ReadBatch]) -> int:
        """Ingest a stream of read batches; returns the number ingested.

        Convenience for replaying a whole per-round stream — e.g. the fused
        sweep engine's event table
        (:meth:`~repro.rfid.event_table.SweepEventTable.iter_round_batches`,
        which is what ``RFIDReader.sweep_stream`` yields) or a finished log's
        :meth:`~repro.rfid.reading.ReadLog.iter_batches` — in arrival order.
        """
        count = 0
        for batch in batches:
            self.ingest_batch(batch)
            count += 1
        return count

    def ingest_columns(
        self,
        timestamps_s: np.ndarray,
        tag_ids: "tuple[str, ...] | list[str]",
        phases_rad: np.ndarray,
        rssi_dbm: np.ndarray,
        channel_index: int = 6,
    ) -> None:
        """Ingest parallel read columns sharing one reader channel.

        The batch is split per tag and appended to each tag's buffer in
        column order, so ingesting a log's batches reproduces ingesting its
        reads one by one.
        """
        timestamps = np.asarray(timestamps_s, dtype=float)
        phases = np.asarray(phases_rad, dtype=float)
        rssis = np.asarray(rssi_dbm, dtype=float)
        count = len(tag_ids)
        if timestamps.shape != (count,) or phases.shape != (count,) or rssis.shape != (count,):
            raise ValueError(
                "column lengths disagree: "
                f"{count} ids vs {timestamps.shape} timestamps, "
                f"{phases.shape} phases, {rssis.shape} rssis"
            )
        if count == 0:
            return
        self._channels_seen.add(int(channel_index))
        dropped = 0
        if len(set(tag_ids)) == 1:
            dropped = self._stream_for(tag_ids[0]).append_columns(
                timestamps, phases, rssis, channel_index, self.out_of_order
            )
        else:
            by_tag: dict[str, list[int]] = {}
            for index, tag_id in enumerate(tag_ids):
                by_tag.setdefault(tag_id, []).append(index)
            for tag_id, indices in by_tag.items():
                rows = np.array(indices, dtype=np.intp)
                dropped += self._stream_for(tag_id).append_columns(
                    timestamps[rows],
                    phases[rows],
                    rssis[rows],
                    channel_index,
                    self.out_of_order,
                )
        self._read_count += count - dropped

    # -- snapshots ---------------------------------------------------------

    def resolved_channel_index(self) -> int | None:
        """The channel label profiles get (explicit, or derived from reads)."""
        if self._explicit_channel is not None:
            return self._explicit_channel
        if len(self._channels_seen) > 1:
            raise ValueError(
                "read stream spans multiple reader channels "
                f"({sorted(self._channels_seen)}); pass channel_index explicitly"
            )
        return next(iter(self._channels_seen)) if self._channels_seen else None

    def profile(self, tag_id: str) -> PhaseProfile:
        """Snapshot profile of one tag over the reads ingested so far."""
        channel = self.resolved_channel_index()
        return self._streams[tag_id].profile(
            channel_index=6 if channel is None else channel
        )

    def profiles(self) -> ProfileSet:
        """Snapshot of every tag's profile, in first-seen order.

        Bit-identical to ``profiles_from_read_log(log_so_far)`` where
        ``log_so_far`` holds the same reads in the same arrival order.
        """
        channel = self.resolved_channel_index()
        profile_set = ProfileSet()
        for tag_id in self._streams:
            profile_set.add(
                self._streams[tag_id].profile(
                    channel_index=6 if channel is None else channel
                )
            )
        return profile_set
