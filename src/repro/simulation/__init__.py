"""Scene simulation glue: scenes, the sweep collector, and channel presets."""

from .collector import SweepResult, collect_sweep, profiles_from_read_log
from .presets import (
    DEFAULT_ANTENNA_SPEED_MPS,
    DEFAULT_NOISE,
    DEFAULT_STANDOFF_M,
    SweepGeometry,
    clean_channel,
    indoor_channel,
    standard_antenna_moving_scene,
    standard_reader_config,
    standard_tag_moving_scene,
)
from .scene import Scene
from .streaming import StreamingCollector, TagStreamBuffer

__all__ = [
    "DEFAULT_ANTENNA_SPEED_MPS",
    "DEFAULT_NOISE",
    "DEFAULT_STANDOFF_M",
    "Scene",
    "SweepGeometry",
    "StreamingCollector",
    "SweepResult",
    "TagStreamBuffer",
    "clean_channel",
    "collect_sweep",
    "indoor_channel",
    "profiles_from_read_log",
    "standard_antenna_moving_scene",
    "standard_reader_config",
    "standard_tag_moving_scene",
]
