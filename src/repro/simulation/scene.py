"""Scene description: everything needed to simulate one sweep.

A :class:`Scene` bundles the tag population, the sweep scenario (who moves and
how), and the reader configuration.  The collector turns a scene into the
per-tag phase profiles that STPP and the baselines consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..motion.scenarios import SweepScenario
from ..rfid.aloha import FrameSlottedAloha
from ..rfid.reader import ReaderConfig
from ..rfid.tag import TagCollection


@dataclass
class Scene:
    """A complete sweep setup ready to be simulated."""

    tags: TagCollection
    scenario: SweepScenario
    reader_config: ReaderConfig = field(default_factory=ReaderConfig)
    protocol: FrameSlottedAloha = field(default_factory=FrameSlottedAloha)
    seed: int | None = None
    description: str = ""

    def __post_init__(self) -> None:
        if len(self.tags) == 0:
            raise ValueError("a scene needs at least one tag")

    def rng(self) -> np.random.Generator:
        """A fresh random generator for this scene's seed."""
        return np.random.default_rng(self.seed)

    def ground_truth_order(self, axis: str) -> list[str]:
        """Ground-truth tag order along ``axis`` at the start of the sweep.

        For the tag-moving case the relative order never changes (all tags
        share the same velocity), so the order at t=0 is the order throughout.
        """
        return self.tags.order_along(axis)
