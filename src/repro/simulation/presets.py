"""Preset channel configurations and a standard sweep-scene builder.

Absolute accuracy numbers in the paper depend on channel conditions we cannot
know exactly (multipath richness of a particular library aisle or baggage
tunnel).  These presets pin a default noise/multipath/dropout configuration
chosen so the *shape* of the paper's results is reproduced; every experiment
in :mod:`repro.evaluation.experiments` builds its scenes through this module
so that the calibration lives in exactly one place.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..motion.scenarios import SweepScenario, antenna_moving_scenario, tag_moving_scenario
from ..motion.speed_profiles import ConstantSpeedProfile, jittered_speed_profile
from ..motion.trajectory import LinearTrajectory
from ..rf.antenna import DirectionalAntenna, ReadingZone
from ..rf.channel import BackscatterChannel
from ..rf.geometry import Point3D
from ..rf.multipath import (
    MultipathChannel,
    tag_coupling_scatterers,
    typical_indoor_reflectors,
)
from ..rf.noise import NOISELESS, NoiseModel
from ..rfid.aloha import FrameSlottedAloha
from ..rfid.reader import ReaderConfig
from ..rfid.tag import TagCollection
from .scene import Scene

DEFAULT_STANDOFF_M = 0.30
"""Antenna-to-tag-plane distance (the 30 cm librarian-to-shelf gap, §4.2)."""

DEFAULT_ANTENNA_CLEARANCE_M = 0.15
"""How far below the lowest tag the antenna trajectory runs (§4.2)."""

DEFAULT_SWEEP_MARGIN_M = 0.30
"""Extra trajectory length beyond the outermost tags on each side."""

DEFAULT_ANTENNA_SPEED_MPS = 0.30
"""Sweep speed used in the micro-benchmarks (§4.3)."""

DEFAULT_NOISE = NoiseModel(
    phase_noise_std_rad=0.25,
    rssi_noise_std_db=2.0,
    random_dropout_probability=0.10,
    fade_dropout_threshold_db=-10.0,
)
"""Calibrated measurement-noise preset (see DESIGN.md, calibration note)."""

DEFAULT_REFLECTOR_COUNT = 6
"""Number of static reflectors in the default indoor multipath preset."""


def clean_channel(channel_index: int = 6) -> BackscatterChannel:
    """A noise-free, multipath-free channel (reference-profile conditions)."""
    return BackscatterChannel(
        channel_index=channel_index,
        multipath=MultipathChannel(),
        noise=NOISELESS,
        quantise=False,
    )


def indoor_channel(
    tag_positions: "list[Point3D]",
    seed: int | None = None,
    noise: NoiseModel = DEFAULT_NOISE,
    reflector_count: int = DEFAULT_REFLECTOR_COUNT,
    channel_index: int = 6,
    tag_coupling: bool = False,
) -> BackscatterChannel:
    """A channel with indoor multipath scattered around the tag region.

    With ``tag_coupling=True`` every tag also acts as a static weak scatterer.
    The standard scene builders leave this off because the reader simulator
    already models coupling dynamically per read (which is also correct when
    the tags move); enable it only for channel-level experiments that bypass
    the reader.
    """
    if not tag_positions:
        raise ValueError("at least one tag position is required")
    rng = np.random.default_rng(seed)
    coords = np.array([p.as_array() for p in tag_positions])
    region_min = Point3D(*coords.min(axis=0))
    region_max = Point3D(*coords.max(axis=0))
    reflectors = typical_indoor_reflectors(
        region_min, region_max, count=reflector_count, rng=rng
    )
    if tag_coupling:
        # Static scatterers only make sense when the tags themselves are
        # static; the reader additionally models *dynamic* coupling per read
        # (ReaderConfig.tag_coupling_coefficient), which is what the standard
        # scene builders rely on.  Keeping this flag allows channel-only
        # experiments to include coupling without a reader in the loop.
        reflectors = reflectors + tag_coupling_scatterers(tag_positions)
    return BackscatterChannel(
        channel_index=channel_index,
        multipath=MultipathChannel(reflectors=reflectors),
        noise=noise,
    )


@dataclass(frozen=True, slots=True)
class SweepGeometry:
    """Geometry of a standard sweep over a planar tag arrangement.

    Tags live in the z=0 plane with coordinates (x, y); the antenna moves
    parallel to the X axis at ``y = min(tag y) - clearance`` and
    ``z = standoff``, pointed at the tag plane.  This matches the paper's
    deployment guidance (Section 4.2): put the antenna below all tags so that
    every tag has a distinct distance to the trajectory.
    """

    standoff_m: float = DEFAULT_STANDOFF_M
    antenna_clearance_m: float = DEFAULT_ANTENNA_CLEARANCE_M
    sweep_margin_m: float = DEFAULT_SWEEP_MARGIN_M

    def __post_init__(self) -> None:
        if self.standoff_m <= 0:
            raise ValueError("standoff must be positive")
        if self.sweep_margin_m < 0:
            raise ValueError("sweep margin must be non-negative")

    def trajectory_endpoints(self, tags: TagCollection) -> tuple[Point3D, Point3D]:
        """Start and end of the antenna trajectory for this tag population."""
        xs = [tag.position.x for tag in tags]
        ys = [tag.position.y for tag in tags]
        antenna_y = min(ys) - self.antenna_clearance_m
        start = Point3D(min(xs) - self.sweep_margin_m, antenna_y, self.standoff_m)
        end = Point3D(max(xs) + self.sweep_margin_m, antenna_y, self.standoff_m)
        return start, end


def standard_reader_config(
    tags: TagCollection,
    seed: int | None = None,
    noise: NoiseModel = DEFAULT_NOISE,
    reflector_count: int = DEFAULT_REFLECTOR_COUNT,
    max_range_m: float = 3.0,
) -> ReaderConfig:
    """Reader configuration with the indoor channel preset for ``tags``."""
    antenna = DirectionalAntenna(gain_dbi=6.0, beamwidth_deg=70.0, boresight=(0.0, 0.0, -1.0))
    channel = indoor_channel(
        [tag.position for tag in tags],
        seed=seed,
        noise=noise,
        reflector_count=reflector_count,
    )
    # The channel's antenna pattern and the reading zone share the antenna.
    channel = BackscatterChannel(
        channel_index=channel.channel_index,
        antenna=antenna,
        link_budget=channel.link_budget,
        multipath=channel.multipath,
        noise=channel.noise,
        device_offsets=channel.device_offsets,
        quantise=channel.quantise,
    )
    reading_zone = ReadingZone(max_range_m=max_range_m, antenna=antenna, beam_limited=True)
    return ReaderConfig(channel=channel, reading_zone=reading_zone)


def standard_antenna_moving_scene(
    tags: TagCollection,
    speed_mps: float = DEFAULT_ANTENNA_SPEED_MPS,
    jitter_fraction: float = 0.12,
    geometry: SweepGeometry = SweepGeometry(),
    noise: NoiseModel = DEFAULT_NOISE,
    reflector_count: int = DEFAULT_REFLECTOR_COUNT,
    seed: int | None = None,
    extra_dwell_s: float = 0.0,
) -> Scene:
    """The librarian case: a hand-pushed antenna sweeps past static tags."""
    start, end = geometry.trajectory_endpoints(tags)
    path_length = start.distance_to(end)
    rng = np.random.default_rng(seed)
    if jitter_fraction > 0:
        nominal_duration = path_length / speed_mps
        profile = jittered_speed_profile(
            speed_mps, nominal_duration * 1.2, jitter_fraction=jitter_fraction, rng=rng
        )
    else:
        profile = ConstantSpeedProfile(speed_mps)
    trajectory = LinearTrajectory(start, end, speed_profile=profile)
    scenario = antenna_moving_scenario(trajectory, tags.positions(), extra_dwell_s=extra_dwell_s)
    reader_config = standard_reader_config(
        tags, seed=seed, noise=noise, reflector_count=reflector_count
    )
    return Scene(
        tags=tags,
        scenario=scenario,
        reader_config=reader_config,
        protocol=FrameSlottedAloha(),
        seed=None if seed is None else seed + 1,
        description="standard antenna-moving sweep",
    )


def standard_tag_moving_scene(
    tags: TagCollection,
    belt_speed_mps: float = DEFAULT_ANTENNA_SPEED_MPS,
    geometry: SweepGeometry = SweepGeometry(),
    noise: NoiseModel = DEFAULT_NOISE,
    reflector_count: int = DEFAULT_REFLECTOR_COUNT,
    seed: int | None = None,
) -> Scene:
    """The conveyor-belt case: static antenna, tags translate along −X.

    The antenna sits above the middle of where the tags will pass; the belt
    carries the tags in the −X direction so that, in the antenna's frame, the
    geometry matches an antenna moving in +X.
    """
    xs = [tag.position.x for tag in tags]
    ys = [tag.position.y for tag in tags]
    antenna_y = min(ys) - geometry.antenna_clearance_m
    span = (max(xs) - min(xs)) + 2.0 * geometry.sweep_margin_m
    # Place the antenna beyond the leading tag so every tag passes it.
    antenna_pos = Point3D(min(xs) - geometry.sweep_margin_m, antenna_y, geometry.standoff_m)
    duration = span / belt_speed_mps + 1.0
    scenario = tag_moving_scenario(
        antenna_position=antenna_pos,
        initial_tag_positions=tags.positions(),
        belt_direction=(-1.0, 0.0, 0.0),
        belt_speed_mps=belt_speed_mps,
        duration_s=duration,
    )
    reader_config = standard_reader_config(
        tags, seed=seed, noise=noise, reflector_count=reflector_count
    )
    return Scene(
        tags=tags,
        scenario=scenario,
        reader_config=reader_config,
        protocol=FrameSlottedAloha(),
        seed=None if seed is None else seed + 1,
        description="standard tag-moving sweep",
    )
