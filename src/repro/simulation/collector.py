"""Runs a scene through the reader simulator and assembles phase profiles.

This is the glue between the substrates (RF channel, C1G2 protocol, motion)
and the STPP core: it produces, for every tag, the
:class:`~repro.core.phase_profile.PhaseProfile` a real deployment would log.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.phase_profile import PhaseProfile, ProfileSet
from ..rfid.reader import RFIDReader
from ..rfid.reading import ReadLog
from .scene import Scene


@dataclass(frozen=True, slots=True)
class SweepResult:
    """Everything one simulated sweep produced."""

    profiles: ProfileSet
    read_log: ReadLog
    duration_s: float


def profiles_from_read_log(
    read_log: ReadLog, channel_index: int | None = None
) -> ProfileSet:
    """Group a read log into one phase profile per tag.

    ``channel_index`` labels the resulting profiles.  When omitted it is
    derived from the reads themselves (every :class:`~repro.rfid.reading.TagRead`
    carries the channel it was decoded on), so profiles are labelled correctly
    whatever channel the scene's reader used.  A log whose reads span several
    channels has no single per-profile channel; pass ``channel_index``
    explicitly in that case.
    """
    if channel_index is None:
        seen = read_log.channel_indices()
        if len(seen) > 1:
            raise ValueError(
                "read log spans multiple reader channels "
                f"({sorted(seen)}); pass channel_index explicitly"
            )
        channel_index = seen.pop() if seen else None
    profile_set = ProfileSet()
    for tag_id in read_log.tag_ids():
        # The columnar log slices each tag's reads straight out of its cached
        # arrays — no per-read object materialisation.
        profile = PhaseProfile.from_reads(
            tag_id=tag_id,
            timestamps_s=read_log.timestamps(tag_id),
            phases_rad=read_log.phases(tag_id),
            rssi_dbm=read_log.rssis(tag_id),
            channel_index=channel_index,
        )
        profile_set.add(profile)
    return profile_set


def collect_sweep(
    scene: Scene,
    batched: bool = True,
    engine: str | None = None,
    physics_backend: object | None = None,
) -> SweepResult:
    """Simulate ``scene`` and return profiles plus the raw read log.

    Tags that were never successfully read during the sweep have no entry in
    the resulting :class:`ProfileSet`; callers that must account for every tag
    (e.g. the ordering accuracy metric) should compare against
    ``scene.tags.ids()``.

    ``engine`` selects the sweep implementation (``"fused"`` two-phase
    engine by default, ``"round"`` for the per-round batched kernel,
    ``"scalar"`` for the read-at-a-time reference loop); ``batched=False`` is
    the back-compat spelling of ``engine="scalar"``.  ``physics_backend``
    selects how the fused engine's physics phase executes (``"serial"``,
    ``"threads"``, ``"process"``, or an instance — see
    :mod:`repro.rfid.backends`); ``None`` defers to the
    ``REPRO_PHYSICS_BACKEND`` environment variable.  All engines and all
    backends produce bit-identical results — the knobs exist for
    benchmarking and equivalence testing.
    """
    reader = RFIDReader(
        config=scene.reader_config,
        protocol=scene.protocol,
        physics_backend=physics_backend,
    )
    read_log = reader.sweep(
        tags=scene.tags,
        antenna_position=scene.scenario.antenna_position,
        duration_s=scene.scenario.duration_s,
        tag_position=scene.scenario.tag_position,
        rng=scene.rng(),
        batched=batched,
        engine=engine,
    )
    profiles = profiles_from_read_log(
        read_log, channel_index=scene.reader_config.channel.channel_index
    )
    return SweepResult(
        profiles=profiles,
        read_log=read_log,
        duration_s=scene.scenario.duration_s,
    )
