"""V-zone detection (paper §3.1).

The V-zone of a phase profile is the wrap-free, self-symmetric region around
the instant the antenna is perpendicular to the tag.  Finding it is the core
of tag ordering along the X axis: the V-zone bottom times order the tags.

Three detection strategies are provided:

* ``"segmented_dtw"`` (default, the paper's method §3.1.2): match a reference
  profile against the coarse segment representation of the measured profile
  with duration-weighted DTW, then read the V-zone location off the warping
  path.
* ``"full_dtw"`` (the paper's unoptimised method §3.1.1): the same idea on raw
  samples; used by the ablation benchmarks to quantify the speed-up of
  segmentation.
* ``"longest_run"``: a simple heuristic that picks the longest wrap-free run
  of the profile (phase changes slowest near the perpendicular point, so the
  wrap-free run containing it lasts longest).  It is used as a fallback when a
  DTW detection yields a degenerate window, and as an ablation point.

Whatever the strategy, the detected window is refined with the quadratic fit
of :mod:`repro.core.fitting`, which supplies the bottom time (X ordering), the
curvature (Y ordering), and a validity flag.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..rf.constants import TWO_PI
from .dtw import (
    DTWResult,
    segmented_dtw_align,
    segmented_dtw_align_batch,
    subsequence_dtw,
    subsequence_dtw_batch,
)
from .fitting import QuadraticFit, fit_vzone
from .phase_profile import PhaseProfile
from .reference import ReferenceProfile, shared_canonical_reference
from .segmentation import Segment, segment_profile, segment_profile_arrays

DETECTION_METHODS = ("segmented_dtw", "full_dtw", "longest_run")
"""The supported V-zone detection strategies."""


@dataclass(frozen=True, slots=True)
class VZone:
    """A detected V-zone within a measured phase profile."""

    tag_id: str
    start_index: int
    end_index: int
    """Sample index range of the V-zone window (end exclusive)."""

    start_time_s: float
    end_time_s: float
    fit: QuadraticFit
    """Quadratic fit over the window; carries bottom time and curvature."""

    method: str
    """Which detection strategy produced the window."""

    dtw_cost: float = float("nan")
    """Warping cost of the DTW match (NaN for non-DTW methods)."""

    @property
    def duration_s(self) -> float:
        """Duration of the detected window, seconds."""
        return self.end_time_s - self.start_time_s

    @property
    def bottom_time_s(self) -> float:
        """Estimated perpendicular-point time (the V-zone bottom)."""
        return self.fit.bottom_time_s

    @property
    def sample_count(self) -> int:
        """Number of samples inside the window."""
        return self.end_index - self.start_index


@dataclass
class VZoneDetector:
    """Detects the V-zone of measured phase profiles.

    Parameters
    ----------
    reference:
        The reference profile used by the DTW strategies.  Defaults to the
        canonical 4-period reference (paper §4.2).
    window_size:
        Samples per coarse segment (``w``); the paper selects 5 (Figure 12).
    method:
        One of :data:`DETECTION_METHODS`.
    min_profile_samples:
        Profiles with fewer samples than this are rejected (detection returns
        ``None``); such tags are reported as unordered by the localizer.
    expand_fraction:
        The detected window is symmetrically expanded by this fraction of its
        length before fitting, which recovers samples lost to segmentation
        granularity at the window edges.
    """

    reference: ReferenceProfile = field(default_factory=shared_canonical_reference)
    window_size: int = 5
    method: str = "segmented_dtw"
    min_profile_samples: int = 12
    expand_fraction: float = 0.15
    fallback_to_longest_run: bool = True

    def __post_init__(self) -> None:
        if self.method not in DETECTION_METHODS:
            raise ValueError(
                f"unknown detection method {self.method!r}; expected one of {DETECTION_METHODS}"
            )
        if self.window_size < 1:
            raise ValueError("window size must be >= 1")
        if self.min_profile_samples < 3:
            raise ValueError("min_profile_samples must be at least 3")
        if self.expand_fraction < 0:
            raise ValueError("expand fraction must be non-negative")
        self._reference_segments: list[Segment] | None = None

    # ------------------------------------------------------------------ API

    def detect(self, profile: PhaseProfile) -> VZone | None:
        """Locate the V-zone of ``profile``; returns None for unusable profiles."""
        if len(profile) < self.min_profile_samples:
            return None

        if self.method == "segmented_dtw":
            vzone = self._detect_segmented_dtw(profile)
        elif self.method == "full_dtw":
            vzone = self._detect_full_dtw(profile)
        else:
            vzone = self._detect_longest_run(profile)

        if self.fallback_to_longest_run and self.method != "longest_run":
            vzone = self._apply_fallback(vzone, profile)
        return vzone

    def _apply_fallback(self, vzone: VZone | None, profile: PhaseProfile) -> VZone | None:
        """Run the longest-run fallback only when it could change the outcome.

        :meth:`_better_of` keeps the primary whenever its fit is valid, so
        computing the fallback (three candidate windows, a quadratic fit
        each) for a valid primary is pure waste — the detections are
        identical either way, this just skips the discarded work.
        """
        if vzone is not None and vzone.fit.valid:
            return vzone
        return self._better_of(vzone, self._detect_longest_run(profile))

    @staticmethod
    def _better_of(primary: VZone | None, secondary: VZone | None) -> VZone | None:
        """Prefer the primary detection; fall back when it is missing/invalid.

        A valid fit always beats an invalid one.  When both are valid the
        primary (the configured method) wins — comparing fit residuals across
        windows of different widths is not a reliable tie-breaker because
        narrow windows can overfit noise.
        """
        if primary is None:
            return secondary
        if secondary is None:
            return primary
        if primary.fit.valid or not secondary.fit.valid:
            return primary
        return secondary

    def detect_all(
        self,
        profiles: "dict[str, PhaseProfile] | list[PhaseProfile]",
        batched: bool = True,
    ) -> dict[str, VZone]:
        """Detect V-zones for many profiles; tags without a detection are omitted.

        With ``batched=True`` (the default) the DTW strategies align every
        usable profile against the reference in one batched accumulation
        (:func:`~repro.core.dtw.accumulate_cost_batch`) instead of running a
        per-tag Python loop.  The detections are identical to the sequential
        path — the batched kernel is bit-exact — so this is purely a
        throughput optimisation.
        """
        items = list(profiles.values()) if isinstance(profiles, dict) else list(profiles)
        if batched and self.method != "longest_run" and len(items) > 1:
            return self._detect_all_batched(items)
        detections: dict[str, VZone] = {}
        for profile in items:
            vzone = self.detect(profile)
            if vzone is not None:
                detections[profile.tag_id] = vzone
        return detections

    def detect_from_segmented_alignment(
        self,
        profile: PhaseProfile,
        measured_segments: list[Segment],
        result: DTWResult,
    ) -> VZone | None:
        """Build a V-zone from an externally computed segmented-DTW alignment.

        The streaming session computes alignments with the resumable aligner
        (:class:`~repro.core.dtw.ResumableSegmentAligner`) as profiles grow;
        this method turns such an alignment into a detection through exactly
        the same window/fit/fallback path as :meth:`detect_all` — including
        the longest-run fallback — so a streaming detection from the final
        alignment is bit-identical to the batch detection.
        """
        vzone = self._vzone_from_segmented(profile, measured_segments, result)
        if self.fallback_to_longest_run:
            vzone = self._apply_fallback(vzone, profile)
        return vzone

    def _detect_all_batched(self, items: "list[PhaseProfile]") -> dict[str, VZone]:
        """Batched DTW detection over every usable profile at once."""
        usable = [p for p in items if len(p) >= self.min_profile_samples]
        primaries: dict[int, VZone | None] = {}
        if self.method == "segmented_dtw":
            # Column-form segmentations: the aligner reads bounds/durations
            # straight off the arrays, with no per-segment objects built.
            segmentations = [
                segment_profile_arrays(p, self.window_size) for p in usable
            ]
            indices = [k for k, segs in enumerate(segmentations) if segs]
            if indices:
                results = segmented_dtw_align_batch(
                    self.reference_segmentation(),
                    [segmentations[k] for k in indices],
                    subsequence=True,
                )
                for k, result in zip(indices, results):
                    primaries[k] = self._vzone_from_segmented(
                        usable[k], segmentations[k], result
                    )
        else:  # full_dtw
            results = subsequence_dtw_batch(
                self.reference.profile.phases_rad, [p.phases_rad for p in usable]
            )
            for k, result in enumerate(results):
                primaries[k] = self._vzone_from_full(usable[k], result)

        detections: dict[str, VZone] = {}
        for k, profile in enumerate(usable):
            vzone = primaries.get(k)
            if self.fallback_to_longest_run:
                vzone = self._apply_fallback(vzone, profile)
            if vzone is not None:
                detections[profile.tag_id] = vzone
        return detections

    # ------------------------------------------------------- DTW strategies

    def reference_segmentation(self) -> list[Segment]:
        """The reference profile's segmentation (computed once, cached).

        Public because the streaming session seeds its per-tag resumable
        aligners with it; callers must not mutate the returned list.
        """
        if self._reference_segments is None:
            self._reference_segments = segment_profile(
                self.reference.profile, self.window_size
            )
        return self._reference_segments

    def _reference_vzone_segment_range(self, segments: list[Segment]) -> tuple[int, int]:
        """Indices of the reference segments overlapping the reference V-zone."""
        start = self.reference.vzone_start_index
        end = self.reference.vzone_end_index
        overlapping = [
            i
            for i, seg in enumerate(segments)
            if seg.end_index > start and seg.start_index < end
        ]
        if not overlapping:
            raise RuntimeError("reference segmentation does not cover its own V-zone")
        return min(overlapping), max(overlapping)

    def _detect_segmented_dtw(self, profile: PhaseProfile) -> VZone | None:
        measured_segments = segment_profile(profile, self.window_size)
        if not measured_segments:
            return None
        result = segmented_dtw_align(
            self.reference_segmentation(), measured_segments, subsequence=True
        )
        return self._vzone_from_segmented(profile, measured_segments, result)

    def _vzone_from_segmented(
        self,
        profile: PhaseProfile,
        measured_segments: "list[Segment] | object",
        result: DTWResult,
    ) -> VZone | None:
        """Turn a segmented-DTW alignment into a V-zone window.

        ``measured_segments`` may be a ``list[Segment]`` or the batched
        detector's column-form ``SegmentArrays`` — only indexed access to the
        matched segments' sample ranges is needed.
        """
        reference_segments = self.reference_segmentation()
        ref_vz_start, ref_vz_end = self._reference_vzone_segment_range(reference_segments)
        try:
            q_start_seg, q_end_seg = result.query_indices_for_reference_range(
                ref_vz_start, ref_vz_end
            )
        except ValueError:
            return None
        start_index = measured_segments[q_start_seg].start_index
        end_index = measured_segments[q_end_seg].end_index
        return self._build_vzone(profile, start_index, end_index, "segmented_dtw", result.cost)

    def _detect_full_dtw(self, profile: PhaseProfile) -> VZone | None:
        result = subsequence_dtw(self.reference.profile.phases_rad, profile.phases_rad)
        return self._vzone_from_full(profile, result)

    def _vzone_from_full(self, profile: PhaseProfile, result: DTWResult) -> VZone | None:
        """Turn a raw-sample alignment into a V-zone window."""
        try:
            q_start, q_end = result.query_indices_for_reference_range(
                self.reference.vzone_start_index,
                max(self.reference.vzone_start_index, self.reference.vzone_end_index - 1),
            )
        except ValueError:
            return None
        return self._build_vzone(profile, q_start, q_end + 1, "full_dtw", result.cost)

    # -------------------------------------------------- heuristic strategy

    def _detect_longest_run(self, profile: PhaseProfile) -> VZone | None:
        """Pick the best wrap-free run as the V-zone candidate.

        Near the perpendicular point the phase changes slowest, so the
        wrap-free run containing it spans the most time.  Among the three
        longest runs (by duration) the one whose quadratic fit is best (valid,
        lowest residual) wins; this guards against long flat runs produced by
        an antenna dwelling at the end of its sweep.
        """
        phases = profile.phases_rad
        times = profile.timestamps_s
        if phases.size < 3:
            return None
        jump_threshold = 0.75 * TWO_PI
        jumps = np.nonzero(np.abs(np.diff(phases)) > jump_threshold)[0] + 1
        boundaries = [0, *jumps.tolist(), phases.size]
        runs: list[tuple[float, int, int]] = []
        for run_start, run_end in zip(boundaries[:-1], boundaries[1:]):
            if run_end - run_start < 3:
                continue
            duration = float(times[run_end - 1] - times[run_start])
            runs.append((duration, run_start, run_end))
        if not runs:
            return None
        runs.sort(key=lambda item: item[0], reverse=True)
        candidates = []
        for _, start_index, end_index in runs[:3]:
            vzone = self._build_vzone(profile, start_index, end_index, "longest_run", float("nan"))
            if vzone is not None:
                candidates.append(vzone)
        if not candidates:
            return None
        valid = [vz for vz in candidates if vz.fit.valid]
        if valid:
            return min(valid, key=lambda vz: vz.fit.residual_rms_rad / max(vz.fit.curvature, 1e-6))
        return candidates[0]

    # -------------------------------------------------------------- helpers

    def _build_vzone(
        self,
        profile: PhaseProfile,
        start_index: int,
        end_index: int,
        method: str,
        dtw_cost: float,
    ) -> VZone | None:
        start_index = max(0, start_index)
        end_index = min(len(profile), end_index)
        if end_index - start_index < 3:
            return None
        if self.expand_fraction > 0:
            expansion = int(round((end_index - start_index) * self.expand_fraction))
            start_index = max(0, start_index - expansion)
            end_index = min(len(profile), end_index + expansion)
        window = profile.slice_index(start_index, end_index)
        fit = fit_vzone(window.timestamps_s, window.phases_rad)

        # Recentre-and-refit: DTW (or the heuristic) only needs to land a
        # window that overlaps the true V-zone; the quadratic fit then tells
        # us where the bottom really is, and refitting on a window centred
        # there (with the half-width implied by the curvature) symmetrises the
        # window and sharpens both the bottom-time and curvature estimates.
        if fit.valid:
            refined = self._refit_centred(profile, fit)
            if refined is not None:
                start_index, end_index, fit = refined

        return VZone(
            tag_id=profile.tag_id,
            start_index=start_index,
            end_index=end_index,
            start_time_s=float(profile.timestamps_s[start_index]),
            end_time_s=float(profile.timestamps_s[end_index - 1]),
            fit=fit,
            method=method,
            dtw_cost=dtw_cost,
        )

    def _refit_centred(
        self, profile: PhaseProfile, fit: QuadraticFit
    ) -> tuple[int, int, QuadraticFit] | None:
        """Refit the quadratic on a window centred at the fitted bottom."""
        halfwidth = fit.vzone_halfwidth_s()
        if not np.isfinite(halfwidth):
            return None
        halfwidth = float(np.clip(halfwidth, 0.15, 3.0))
        times = profile.timestamps_s
        start_time = fit.bottom_time_s - halfwidth
        end_time = fit.bottom_time_s + halfwidth
        start_index = int(np.searchsorted(times, start_time, side="left"))
        end_index = int(np.searchsorted(times, end_time, side="right"))
        if end_index - start_index < 5:
            return None
        window = profile.slice_index(start_index, end_index)
        refined = fit_vzone(window.timestamps_s, window.phases_rad)
        if not refined.valid:
            return None
        return start_index, end_index, refined
