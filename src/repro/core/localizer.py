"""The end-to-end STPP pipeline: phase profiles in, relative locations out.

:class:`STPPLocalizer` packages the paper's full workflow:

1. detect every tag's V-zone by matching a reference profile with (segmented)
   DTW (§3.1.1–3.1.2);
2. quadratically fit each V-zone to obtain its bottom time and curvature
   (§3.1.2);
3. order tags along X by bottom time (§3.1) and along Y by comparing V-zone
   coarse representations (§3.2).

The localizer consumes :class:`~repro.core.phase_profile.ProfileSet` objects,
which in this repository come from the simulator but in a real deployment
would come straight from the reader's read log.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from .ordering_x import order_tags_x
from .ordering_y import YOrderingConfig, order_tags_y
from .phase_profile import PhaseProfile, ProfileSet
from .reference import (
    DEFAULT_REFERENCE_PERIODS,
    ReferenceProfile,
    shared_canonical_reference,
)
from .result import LocalizationResult
from .vzone import DETECTION_METHODS, VZoneDetector


@dataclass(frozen=True, slots=True)
class STPPConfig:
    """Tunable parameters of the STPP pipeline.

    The defaults reproduce the paper's choices: 4-period reference profile
    (§4.2), coarse-segment window ``w = 5`` (Figure 12), ``k = 10`` segments
    for the Y-axis coarse representation, pivot-based Y comparison (§3.2.2).
    """

    window_size: int = 5
    """Samples per coarse DTW segment (``w``)."""

    detection_method: str = "segmented_dtw"
    """V-zone detection strategy; one of repro.core.vzone.DETECTION_METHODS."""

    reference_periods: int = DEFAULT_REFERENCE_PERIODS
    """Number of periods in the reference profile."""

    reference_speed_mps: float = 0.3
    """Nominal sweep speed used to generate the reference profile."""

    reference_perpendicular_distance_m: float = 0.35
    """Nominal tag-to-trajectory distance used for the reference profile."""

    y_segment_count: int = 10
    """Number of equal segments (``k``) for the Y-axis coarse representation."""

    y_value_mode: str = "depth"
    """V-zone summary used for Y ordering: 'depth', 'raw', or 'curvature'."""

    y_comparison: str = "pivot"
    """'pivot' (M−1 comparisons) or 'all_pairs'."""

    antenna_below_tags: bool = True
    """True when the antenna trajectory passes below all tags (paper §4.2);
    tags closer to the trajectory then have smaller Y coordinates."""

    min_profile_samples: int = 12
    """Profiles with fewer samples are reported as unordered."""

    def __post_init__(self) -> None:
        if self.detection_method not in DETECTION_METHODS:
            raise ValueError(
                f"detection_method must be one of {DETECTION_METHODS}, "
                f"got {self.detection_method!r}"
            )
        if self.window_size < 1:
            raise ValueError("window_size must be >= 1")
        if self.reference_periods < 1:
            raise ValueError("reference_periods must be >= 1")
        if self.y_segment_count < 2:
            raise ValueError("y_segment_count must be >= 2")

    def y_config(self) -> YOrderingConfig:
        """The Y-axis ordering configuration implied by this STPP config."""
        return YOrderingConfig(
            segment_count=self.y_segment_count,
            value_mode=self.y_value_mode,
            comparison=self.y_comparison,
            closest_first=self.antenna_below_tags,
        )


@dataclass
class STPPLocalizer:
    """Relative localization of RFID tags from their phase profiles."""

    config: STPPConfig = field(default_factory=STPPConfig)
    reference: ReferenceProfile | None = None
    """Optional explicit reference profile; built from the config when None."""

    batched: bool = True
    """Run V-zone detection through the batched DTW engine.  The batched and
    per-tag paths produce identical results (the vectorized kernel is
    bit-exact); set False to force the per-tag loop, e.g. for A/B timing."""

    def __post_init__(self) -> None:
        if self.reference is None:
            self.reference = shared_canonical_reference(
                perpendicular_distance_m=self.config.reference_perpendicular_distance_m,
                speed_mps=self.config.reference_speed_mps,
                periods=self.config.reference_periods,
            )
        self._detector = VZoneDetector(
            reference=self.reference,
            window_size=self.config.window_size,
            method=self.config.detection_method,
            min_profile_samples=self.config.min_profile_samples,
        )

    @property
    def detector(self) -> VZoneDetector:
        """The V-zone detector the localizer uses (exposed for diagnostics)."""
        return self._detector

    def localize(
        self,
        profiles: "ProfileSet | Mapping[str, PhaseProfile]",
        expected_tag_ids: "list[str] | None" = None,
        pivot_tag_id: str | None = None,
    ) -> LocalizationResult:
        """Run the full pipeline and return X and Y orderings.

        Parameters
        ----------
        profiles:
            Phase profiles keyed by tag id (a :class:`ProfileSet` works).
        expected_tag_ids:
            The full tag population; tags without a usable profile are listed
            in the orderings' ``unordered_ids``.  Defaults to the profiles'
            own tag ids.
        pivot_tag_id:
            Optional pivot for the Y-axis comparison (a random tag otherwise).
        """
        profile_map = self._as_mapping(profiles)
        if expected_tag_ids is not None:
            expected = list(expected_tag_ids)
            # Only the tags of interest are localized; any other profiles in
            # the input (e.g. Landmarc reference tags sharing the read log)
            # are ignored rather than silently mixed into the ordering.
            expected_set = set(expected)
            profile_map = {
                tag_id: profile
                for tag_id, profile in profile_map.items()
                if tag_id in expected_set
            }
        else:
            expected = list(profile_map)

        started = time.perf_counter()
        vzones = self._detector.detect_all(profile_map, batched=self.batched)
        x_ordering = order_tags_x(vzones, all_tag_ids=expected)
        y_ordering = order_tags_y(
            profile_map,
            vzones,
            config=self.config.y_config(),
            all_tag_ids=expected,
            pivot_tag_id=pivot_tag_id,
        )
        elapsed = time.perf_counter() - started

        return LocalizationResult(
            x_ordering=x_ordering,
            y_ordering=y_ordering,
            vzones=vzones,
            metadata={
                "detection_method": self.config.detection_method,
                "window_size": self.config.window_size,
                "y_value_mode": self.config.y_value_mode,
                "elapsed_s": elapsed,
                "profile_count": len(profile_map),
                "batched": self.batched,
            },
        )

    def order_x(
        self,
        profiles: "ProfileSet | Mapping[str, PhaseProfile]",
        expected_tag_ids: "list[str] | None" = None,
    ):
        """Convenience wrapper returning only the X-axis ordering."""
        return self.localize(profiles, expected_tag_ids).x_ordering

    def order_y(
        self,
        profiles: "ProfileSet | Mapping[str, PhaseProfile]",
        expected_tag_ids: "list[str] | None" = None,
    ):
        """Convenience wrapper returning only the Y-axis ordering."""
        return self.localize(profiles, expected_tag_ids).y_ordering

    @staticmethod
    def _as_mapping(
        profiles: "ProfileSet | Mapping[str, PhaseProfile]",
    ) -> dict[str, PhaseProfile]:
        if isinstance(profiles, ProfileSet):
            return dict(profiles.profiles)
        return dict(profiles)


@dataclass
class BatchLocalizer(STPPLocalizer):
    """The batched localization engine: many tags (and many sweeps) per call.

    Where :class:`STPPLocalizer` is the paper-shaped pipeline object, a
    ``BatchLocalizer`` is the serving-oriented entry point the evaluation
    harness, the baselines adapter, and the workload scenarios go through:

    * V-zone detection for **all** tags of a sweep runs through the batch
      aligners (``core.dtw.segmented_dtw_align_batch`` /
      ``subsequence_dtw_batch``), which sweep whole padded chunks of cost
      matrices per NumPy step instead of a per-tag Python loop;
    * the reference profile comes from the process-wide cache
      (:func:`~repro.core.reference.shared_canonical_reference`), and its
      segmentation is derived once and reused across every call;
    * :meth:`localize_many` amortises both across a stream of sweeps, e.g.
      one per conveyor batch in the airport workload.

    Results are identical to the sequential per-tag path — the vectorized
    kernel matches the seed implementation bit for bit — so swapping one in
    never changes orderings, only latency.
    """

    def localize_many(
        self,
        profile_sets: "Iterable[ProfileSet | Mapping[str, PhaseProfile]]",
        expected_tag_ids: "list[list[str] | None] | None" = None,
        pivot_tag_ids: "list[str | None] | None" = None,
    ) -> list[LocalizationResult]:
        """Localize several independent sweeps with one shared engine.

        Parameters
        ----------
        profile_sets:
            One profile collection per sweep (e.g. per conveyor batch).
        expected_tag_ids:
            Optional per-sweep tag populations, aligned with ``profile_sets``.
        pivot_tag_ids:
            Optional per-sweep Y-comparison pivots, aligned likewise.
        """
        profile_sets = list(profile_sets)
        if expected_tag_ids is not None and len(expected_tag_ids) != len(profile_sets):
            raise ValueError(
                "expected_tag_ids must have one entry per profile set "
                f"({len(expected_tag_ids)} != {len(profile_sets)})"
            )
        if pivot_tag_ids is not None and len(pivot_tag_ids) != len(profile_sets):
            raise ValueError(
                "pivot_tag_ids must have one entry per profile set "
                f"({len(pivot_tag_ids)} != {len(profile_sets)})"
            )
        results: list[LocalizationResult] = []
        for index, profiles in enumerate(profile_sets):
            results.append(
                self.localize(
                    profiles,
                    expected_tag_ids=None if expected_tag_ids is None else expected_tag_ids[index],
                    pivot_tag_id=None if pivot_tag_ids is None else pivot_tag_ids[index],
                )
            )
        return results
