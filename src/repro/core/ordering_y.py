"""Tag ordering along the Y axis (paper §3.2).

The farther a tag is from the antenna trajectory, the lower its radial
velocity as the antenna passes, hence the smaller its phase changing rate and
the shallower its V-zone.  STPP therefore orders tags along Y by comparing
V-zone *shapes*:

* each V-zone is summarised by the mean phase value of ``k`` equal segments
  (the coarse representation of §3.2.1);
* two tags are compared with the ratio metric ``O(P,Q) = Σ (s_P,i − s_Q,i)/s_P,i``
  and the gap metric ``G(P,Q) = Σ |s_P,i − s_Q,i|``;
* a pivot tag reduces the number of comparisons from M(M−1)/2 to M−1 (§3.2.2).

Implementation note (documented in DESIGN.md): the paper computes the segment
means over raw wrapped phase values, which carries a half-wavelength ambiguity
in the V-zone bottom value.  The default here computes the means over the
phase *depth above the fitted bottom*, sampled over a common time window
centred on each tag's bottom — this preserves the paper's intent (compare
phase changing rates via segment means) while removing the ambiguity.  The
paper-literal behaviour is available as ``value_mode="raw"`` and a pure
curvature comparison as ``value_mode="curvature"``; both are exercised by the
ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

import numpy as np

from .fitting import QuadraticFit
from .phase_profile import PhaseProfile
from .result import AxisOrdering
from .segmentation import CoarseRepresentation, coarse_representation
from .vzone import VZone

VALUE_MODES = ("depth", "raw", "curvature")
"""Supported ways of summarising a V-zone for Y-axis comparison."""


def order_metric(p: CoarseRepresentation, q: CoarseRepresentation) -> float:
    """The paper's O(P,Q): sums (s_P,i − s_Q,i) / s_P,i over segments.

    Values near ``k`` mean P's segment values dominate Q's; values near 0 mean
    the opposite.  Requires both representations to share the segment count.
    """
    if p.segment_count != q.segment_count:
        raise ValueError("representations must have the same segment count")
    p_vals = p.segment_means_rad
    q_vals = q.segment_means_rad
    safe_p = np.where(np.abs(p_vals) < 1e-9, 1e-9, p_vals)
    return float(np.sum((p_vals - q_vals) / safe_p))


def gap_metric(p: CoarseRepresentation, q: CoarseRepresentation) -> float:
    """The paper's G(P,Q): sum of per-segment absolute differences.

    Proportional to the physical spacing between the two tags along Y.
    """
    if p.segment_count != q.segment_count:
        raise ValueError("representations must have the same segment count")
    return float(np.sum(np.abs(p.segment_means_rad - q.segment_means_rad)))


def signed_gap(p: CoarseRepresentation, q: CoarseRepresentation) -> float:
    """Signed version of the gap metric: positive when P's values dominate Q's."""
    if p.segment_count != q.segment_count:
        raise ValueError("representations must have the same segment count")
    return float(np.sum(p.segment_means_rad - q.segment_means_rad))


@dataclass(frozen=True, slots=True)
class YOrderingConfig:
    """Configuration of the Y-axis ordering stage."""

    segment_count: int = 10
    """Number of equal segments (``k``) in the coarse representation."""

    value_mode: str = "depth"
    """'depth' (default), 'raw' (paper-literal), or 'curvature'."""

    comparison: str = "pivot"
    """'pivot' (M−1 comparisons, §3.2.2) or 'all_pairs' (M(M−1)/2, Borda count)."""

    window_halfwidth_s: float | None = None
    """Half-width of the common comparison window; None derives it from the
    narrowest detected V-zone."""

    closest_first: bool = True
    """If True, the ordering lists the tag closest to the trajectory first
    (the correct choice when the antenna passes below all tags, §4.2)."""

    def __post_init__(self) -> None:
        if self.segment_count < 2:
            raise ValueError("segment count must be at least 2")
        if self.value_mode not in VALUE_MODES:
            raise ValueError(f"value_mode must be one of {VALUE_MODES}, got {self.value_mode!r}")
        if self.comparison not in ("pivot", "all_pairs"):
            raise ValueError("comparison must be 'pivot' or 'all_pairs'")
        if self.window_halfwidth_s is not None and self.window_halfwidth_s <= 0:
            raise ValueError("window halfwidth must be positive")


def _smooth(values: np.ndarray, width: int = 5) -> np.ndarray:
    """Centred moving average with edge padding; suppresses per-sample noise."""
    if values.size < width or width < 2:
        return values
    pad = width // 2
    padded = np.pad(values, pad, mode="edge")
    kernel = np.ones(width, dtype=float) / width
    smoothed = np.convolve(padded, kernel, mode="valid")
    return smoothed[: values.size]


def _folded_depth_segments(
    profile: PhaseProfile,
    fit: QuadraticFit,
    halfwidth_s: float,
    segment_count: int,
) -> np.ndarray:
    """Per-segment mean phase depth, folded around the V-zone bottom.

    The V-zone is symmetric around the perpendicular point, so samples at
    time offset ``+τ`` and ``−τ`` carry the same depth information.  Folding
    the window onto ``|τ|`` before averaging makes the representation robust
    to one flank being partially outside the sweep (edge tags) or thinned by
    dropouts — the remaining flank still populates every segment.

    Returns ``segment_count`` means over equal ``|τ|`` bins spanning
    ``[0, halfwidth_s]``; empty bins are filled by linear interpolation from
    their neighbours.  Returns an empty array when the window holds fewer
    than ``segment_count`` samples.
    """
    window = profile.slice_time(
        fit.bottom_time_s - halfwidth_s, fit.bottom_time_s + halfwidth_s
    )
    if len(window) < segment_count:
        return np.array([], dtype=float)
    unwrapped = _smooth(np.unwrap(window.phases_rad))
    depth = unwrapped - float(np.min(unwrapped))
    offsets = np.abs(window.timestamps_s - fit.bottom_time_s)
    bin_width = halfwidth_s / segment_count
    bins = np.minimum((offsets / bin_width).astype(int), segment_count - 1)

    sums = np.zeros(segment_count, dtype=float)
    counts = np.zeros(segment_count, dtype=float)
    np.add.at(sums, bins, depth)
    np.add.at(counts, bins, 1.0)
    filled = counts > 0
    if not np.any(filled):
        return np.array([], dtype=float)
    means = np.zeros(segment_count, dtype=float)
    means[filled] = sums[filled] / counts[filled]
    if not np.all(filled):
        centres = (np.arange(segment_count) + 0.5) * bin_width
        means[~filled] = np.interp(centres[~filled], centres[filled], means[filled])
    return means


def _available_halfwidth(vzone: VZone) -> float:
    """Largest symmetric window around the bottom covered by the detection."""
    before = vzone.fit.bottom_time_s - vzone.start_time_s
    after = vzone.end_time_s - vzone.fit.bottom_time_s
    return max(min(before, after), 0.0)


def _common_halfwidth(vzones: Mapping[str, VZone], configured: float | None) -> float:
    """The comparison half-window shared by all tags.

    Uses the median available symmetric window across tags (the depth values
    are sliced from the full profile, so a tag whose *detected* window is
    narrower than the median still contributes its surrounding samples),
    clipped to [0.3 s, 1.5 s]: wide enough for the depth differences to beat
    the noise, narrow enough to stay inside every tag's reading zone.
    """
    if configured is not None:
        return configured
    halfwidths = [_available_halfwidth(vz) for vz in vzones.values()]
    if not halfwidths:
        raise ValueError("no V-zones available to derive a comparison window")
    return float(np.clip(np.median(halfwidths), 0.3, 1.5))


def build_representations(
    profiles: Mapping[str, PhaseProfile],
    vzones: Mapping[str, VZone],
    config: YOrderingConfig,
) -> dict[str, CoarseRepresentation]:
    """Build the per-tag coarse representation used for Y-axis comparison."""
    representations: dict[str, CoarseRepresentation] = {}
    if not vzones:
        return representations
    halfwidth = _common_halfwidth(vzones, config.window_halfwidth_s)
    for tag_id, vzone in vzones.items():
        profile = profiles.get(tag_id)
        if profile is None:
            continue
        if config.value_mode == "depth":
            means = _folded_depth_segments(
                profile, vzone.fit, halfwidth, config.segment_count
            )
            if means.size != config.segment_count:
                continue
            representations[tag_id] = CoarseRepresentation(
                tag_id=tag_id,
                segment_means_rad=means,
                segment_count=config.segment_count,
            )
        elif config.value_mode == "raw":
            window = profile.slice_index(vzone.start_index, vzone.end_index)
            values = np.asarray(window.phases_rad, dtype=float)
            if values.size < config.segment_count:
                continue
            representations[tag_id] = coarse_representation(
                tag_id, values, config.segment_count
            )
        # curvature mode does not use coarse representations at all
    return representations


def order_tags_y(
    profiles: Mapping[str, PhaseProfile],
    vzones: Mapping[str, VZone],
    config: YOrderingConfig | None = None,
    all_tag_ids: Iterable[str] | None = None,
    pivot_tag_id: str | None = None,
) -> AxisOrdering:
    """Order tags along the Y axis by comparing their V-zone profiles.

    The returned scores are "distance-from-trajectory" scores: larger score
    means farther from the antenna trajectory.  With ``closest_first=True``
    (the paper's deployment: antenna below all tags) the ordering is by
    increasing Y coordinate.
    """
    config = config if config is not None else YOrderingConfig()

    if config.value_mode == "curvature":
        scores = {
            tag_id: -vzone.fit.curvature
            for tag_id, vzone in vzones.items()
            if vzone.fit.valid and vzone.fit.curvature > 0
        }
    else:
        representations = build_representations(profiles, vzones, config)
        scores = _scores_from_representations(representations, config, pivot_tag_id)

    ordered = sorted(scores, key=lambda tag_id: scores[tag_id])
    if not config.closest_first:
        ordered.reverse()

    if all_tag_ids is None:
        unordered: tuple[str, ...] = ()
    else:
        unordered = tuple(tag_id for tag_id in all_tag_ids if tag_id not in scores)

    return AxisOrdering(
        axis="y",
        ordered_ids=tuple(ordered),
        scores={tag_id: float(scores[tag_id]) for tag_id in ordered},
        unordered_ids=unordered,
    )


def _scores_from_representations(
    representations: dict[str, CoarseRepresentation],
    config: YOrderingConfig,
    pivot_tag_id: str | None,
) -> dict[str, float]:
    """Distance-from-trajectory scores (larger = farther) from representations.

    The sign of a segment-mean difference means opposite things in the two
    value modes: in "depth" mode larger values mean a deeper V-zone, i.e. a
    tag *closer* to the trajectory; in "raw" mode larger values mean a
    shallower V-zone, i.e. a tag *farther* away (paper §3.2.1).
    """
    if not representations:
        return {}
    tag_ids = list(representations)
    farther_sign = 1.0 if config.value_mode == "raw" else -1.0

    if config.comparison == "pivot":
        pivot = pivot_tag_id if pivot_tag_id in representations else tag_ids[0]
        pivot_rep = representations[pivot]
        return {
            tag_id: farther_sign * signed_gap(representations[tag_id], pivot_rep)
            for tag_id in tag_ids
        }

    # All-pairs comparison: accumulate signed gaps over every pair so each
    # tag's score reflects how much shallower it is than the rest.
    scores: dict[str, float] = {tag_id: 0.0 for tag_id in tag_ids}
    for i, tag_a in enumerate(tag_ids):
        for tag_b in tag_ids[i + 1 :]:
            gap = signed_gap(representations[tag_a], representations[tag_b])
            scores[tag_a] += farther_sign * gap
            scores[tag_b] -= farther_sign * gap
    return scores


def pairwise_gaps(
    representations: Mapping[str, CoarseRepresentation],
    pivot_tag_id: str,
) -> dict[str, float]:
    """G(P,Q) of every tag against the pivot — a relative-distance estimate (§3.2.2)."""
    if pivot_tag_id not in representations:
        raise KeyError(f"pivot {pivot_tag_id} has no representation")
    pivot = representations[pivot_tag_id]
    return {
        tag_id: gap_metric(rep, pivot)
        for tag_id, rep in representations.items()
        if tag_id != pivot_tag_id
    }
