"""Tag ordering along the X axis (paper §3.1).

Once every tag's V-zone has been detected and quadratically fitted, the X-axis
order is simply the order of the fitted bottom times: the antenna passes the
tags in the order their V-zones reach their bottoms.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from .result import AxisOrdering
from .vzone import VZone


def order_tags_x(
    vzones: Mapping[str, VZone],
    all_tag_ids: Iterable[str] | None = None,
) -> AxisOrdering:
    """Order tags along the sweep direction by V-zone bottom time.

    Parameters
    ----------
    vzones:
        Detected V-zone per tag.
    all_tag_ids:
        The full tag population.  Tags present here but absent from
        ``vzones`` (no usable profile) are reported in ``unordered_ids``.

    Returns
    -------
    AxisOrdering
        Tags sorted by increasing bottom time; the scores dict carries each
        tag's bottom time in seconds.
    """
    usable = {
        tag_id: vzone
        for tag_id, vzone in vzones.items()
        if not _is_nan(vzone.bottom_time_s)
    }
    ordered = sorted(usable, key=lambda tag_id: usable[tag_id].bottom_time_s)
    scores = {tag_id: float(usable[tag_id].bottom_time_s) for tag_id in ordered}

    if all_tag_ids is None:
        unordered: tuple[str, ...] = ()
    else:
        unordered = tuple(tag_id for tag_id in all_tag_ids if tag_id not in usable)

    return AxisOrdering(
        axis="x",
        ordered_ids=tuple(ordered),
        scores=scores,
        unordered_ids=unordered,
    )


def bottom_time_gaps(ordering: AxisOrdering) -> dict[tuple[str, str], float]:
    """Time gaps between consecutive tags' V-zone bottoms.

    The paper notes the gap grows with the physical spacing between adjacent
    tags (Figure 3); exposed for tests and for the spacing experiments.
    """
    gaps: dict[tuple[str, str], float] = {}
    ids = ordering.ordered_ids
    for left, right in zip(ids[:-1], ids[1:]):
        gaps[(left, right)] = ordering.scores[right] - ordering.scores[left]
    return gaps


def _is_nan(value: float) -> bool:
    return value != value
