"""Result types returned by the STPP pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field

from .vzone import VZone


@dataclass(frozen=True)
class AxisOrdering:
    """The relative order of tags along one axis."""

    axis: str
    """'x' or 'y'."""

    ordered_ids: tuple[str, ...]
    """Tag ids from smallest to largest coordinate along the axis."""

    scores: dict[str, float] = field(default_factory=dict)
    """Per-tag score that produced the order (bottom time for X, depth gap for Y)."""

    unordered_ids: tuple[str, ...] = ()
    """Tags that could not be ordered (no usable profile / V-zone)."""

    def position_of(self, tag_id: str) -> int:
        """Zero-based rank of ``tag_id`` along this axis.

        Raises ``KeyError`` for tags that were not ordered.
        """
        try:
            return self.ordered_ids.index(tag_id)
        except ValueError as exc:
            raise KeyError(f"tag {tag_id} was not ordered along {self.axis}") from exc

    def __len__(self) -> int:
        return len(self.ordered_ids)


@dataclass(frozen=True)
class LocalizationResult:
    """Full output of one STPP localization run."""

    x_ordering: AxisOrdering
    y_ordering: AxisOrdering
    vzones: dict[str, VZone] = field(default_factory=dict)
    """Detected V-zone per tag (only tags with a successful detection)."""

    metadata: dict = field(default_factory=dict)

    @property
    def ordered_tag_count(self) -> int:
        """Number of tags that received an X-axis rank."""
        return len(self.x_ordering.ordered_ids)

    def relative_position(self, tag_id: str) -> tuple[int, int]:
        """(x rank, y rank) of ``tag_id``; raises KeyError if unordered."""
        return (
            self.x_ordering.position_of(tag_id),
            self.y_ordering.position_of(tag_id),
        )
