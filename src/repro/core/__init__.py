"""STPP core: phase profiles, V-zone detection, and relative tag ordering.

This subpackage is the paper's contribution.  Everything else in the
repository exists to feed it realistic phase profiles (the simulation
substrates) or to compare it against prior schemes (the baselines).
"""

from .dtw import (
    DTWResult,
    ResumableSegmentAligner,
    accumulate_cost,
    accumulate_cost_batch,
    dtw_align,
    segmented_dtw_align,
    segmented_dtw_align_batch,
    subsequence_dtw,
    subsequence_dtw_batch,
    warp_query_to_reference,
)
from .fitting import QuadraticFit, fit_vzone, fit_vzone_profile
from .localizer import BatchLocalizer, STPPConfig, STPPLocalizer
from .ordering_x import bottom_time_gaps, order_tags_x
from .ordering_y import (
    VALUE_MODES,
    YOrderingConfig,
    build_representations,
    gap_metric,
    order_metric,
    order_tags_y,
    pairwise_gaps,
    signed_gap,
)
from .phase_profile import PhaseProfile, ProfileSet
from .reference import (
    DEFAULT_REFERENCE_PERIODS,
    ReferenceProfile,
    canonical_reference,
    reference_profile,
    shared_canonical_reference,
)
from .result import AxisOrdering, LocalizationResult
from .segmentation import (
    CoarseRepresentation,
    IncrementalSegmenter,
    Segment,
    coarse_representation,
    segment_distance_matrix,
    segment_profile,
    segment_range_distance,
)
from .vzone import DETECTION_METHODS, VZone, VZoneDetector

__all__ = [
    "AxisOrdering",
    "BatchLocalizer",
    "CoarseRepresentation",
    "DEFAULT_REFERENCE_PERIODS",
    "DETECTION_METHODS",
    "DTWResult",
    "LocalizationResult",
    "PhaseProfile",
    "ProfileSet",
    "QuadraticFit",
    "ReferenceProfile",
    "STPPConfig",
    "STPPLocalizer",
    "Segment",
    "VALUE_MODES",
    "VZone",
    "VZoneDetector",
    "YOrderingConfig",
    "accumulate_cost",
    "accumulate_cost_batch",
    "bottom_time_gaps",
    "build_representations",
    "canonical_reference",
    "coarse_representation",
    "IncrementalSegmenter",
    "ResumableSegmentAligner",
    "dtw_align",
    "fit_vzone",
    "fit_vzone_profile",
    "gap_metric",
    "order_metric",
    "order_tags_x",
    "order_tags_y",
    "pairwise_gaps",
    "reference_profile",
    "segment_distance_matrix",
    "segment_profile",
    "segment_range_distance",
    "segmented_dtw_align",
    "segmented_dtw_align_batch",
    "shared_canonical_reference",
    "signed_gap",
    "subsequence_dtw",
    "subsequence_dtw_batch",
    "warp_query_to_reference",
]
