"""Reference phase profile generation (paper §2.2, Figures 3 and 4).

A *reference* phase profile is the phase sequence a tag **would** produce under
nominal conditions — known geometry, constant sweep speed, no noise, no
multipath.  STPP uses reference profiles in two ways:

* to illustrate and validate the V-zone observations (Figures 3 and 4);
* as the template that segmented DTW matches against each measured profile to
  locate the V-zone (§3.1.1).  The paper finds that measured profiles contain
  about 4 partial or complete periods and therefore uses a 4-period reference
  (§4.2); :func:`canonical_reference` reproduces that default.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from ..rf.constants import TWO_PI, channel_wavelength_m
from ..rf.phase_model import round_trip_phase
from .phase_profile import PhaseProfile

DEFAULT_REFERENCE_SAMPLE_RATE_HZ = 120.0
"""Sample rate of generated reference profiles (close to a COTS per-tag read rate)."""

DEFAULT_REFERENCE_PERIODS = 4
"""Number of phase periods in the canonical reference profile (paper §4.2)."""


@dataclass(frozen=True)
class ReferenceProfile:
    """A reference phase profile with its known V-zone annotations."""

    profile: PhaseProfile
    perpendicular_time_s: float
    """Time at which the antenna is perpendicular to the tag (V-zone bottom)."""

    vzone_start_index: int
    """Index of the first sample inside the V-zone."""

    vzone_end_index: int
    """Index one past the last sample inside the V-zone."""

    perpendicular_distance_m: float
    """Distance between the tag and the trajectory line, metres."""

    @property
    def vzone_profile(self) -> PhaseProfile:
        """Just the V-zone part of the reference profile."""
        return self.profile.slice_index(self.vzone_start_index, self.vzone_end_index)

    @property
    def vzone_duration_s(self) -> float:
        """Duration of the V-zone, seconds."""
        vzone = self.vzone_profile
        return vzone.duration_s


def _vzone_bounds_around(phases: np.ndarray, centre_index: int) -> tuple[int, int]:
    """Find the wrap-free region of ``phases`` containing ``centre_index``.

    Returns ``(start, end)`` with ``end`` exclusive: the indices between the
    0/2π jumps that bracket the centre sample.
    """
    if phases.size == 0:
        return 0, 0
    jump_threshold = 0.75 * TWO_PI
    diffs = np.abs(np.diff(phases))
    jumps = np.nonzero(diffs > jump_threshold)[0] + 1
    start = 0
    end = phases.size
    for jump in jumps:
        if jump <= centre_index:
            start = jump
        elif jump > centre_index:
            end = jump
            break
    return int(start), int(end)


def reference_profile(
    tag_x_m: float,
    perpendicular_distance_m: float,
    sweep_start_x_m: float,
    sweep_end_x_m: float,
    speed_mps: float = 0.1,
    sample_rate_hz: float = DEFAULT_REFERENCE_SAMPLE_RATE_HZ,
    wavelength_m: float | None = None,
    phase_offset_rad: float = 0.0,
    tag_id: str = "reference",
) -> ReferenceProfile:
    """Reference profile of a tag during a full constant-speed sweep.

    The antenna moves along the X axis from ``sweep_start_x_m`` to
    ``sweep_end_x_m`` at ``speed_mps``; the tag sits at ``tag_x_m`` along the
    sweep and ``perpendicular_distance_m`` away from the trajectory line (this
    distance already combines the antenna height and the lateral offset, i.e.
    it is the closest the antenna ever gets to the tag).

    Parameters mirror Figure 3's setup: span 3 m, speed 0.1 m/s, height 1 m.
    """
    if perpendicular_distance_m <= 0:
        raise ValueError("perpendicular distance must be positive")
    if speed_mps <= 0:
        raise ValueError("speed must be positive")
    if sample_rate_hz <= 0:
        raise ValueError("sample rate must be positive")
    if sweep_end_x_m <= sweep_start_x_m:
        raise ValueError("sweep end must be beyond sweep start")
    wavelength = wavelength_m if wavelength_m is not None else channel_wavelength_m(6)

    duration_s = (sweep_end_x_m - sweep_start_x_m) / speed_mps
    sample_count = max(2, int(round(duration_s * sample_rate_hz)) + 1)
    times = np.linspace(0.0, duration_s, sample_count)
    antenna_x = sweep_start_x_m + speed_mps * times
    distances = np.sqrt((antenna_x - tag_x_m) ** 2 + perpendicular_distance_m**2)
    phases = np.mod(
        round_trip_phase(distances, wavelength) + phase_offset_rad, TWO_PI
    )

    profile = PhaseProfile(
        tag_id=tag_id,
        timestamps_s=times,
        phases_rad=phases,
        metadata={
            "reference": True,
            "speed_mps": speed_mps,
            "perpendicular_distance_m": perpendicular_distance_m,
        },
    )
    perpendicular_time = (tag_x_m - sweep_start_x_m) / speed_mps
    perpendicular_time = min(max(perpendicular_time, 0.0), duration_s)
    centre_index = int(np.argmin(np.abs(times - perpendicular_time)))
    vzone_start, vzone_end = _vzone_bounds_around(phases, centre_index)
    return ReferenceProfile(
        profile=profile,
        perpendicular_time_s=perpendicular_time,
        vzone_start_index=vzone_start,
        vzone_end_index=vzone_end,
        perpendicular_distance_m=perpendicular_distance_m,
    )


def canonical_reference(
    perpendicular_distance_m: float = 0.35,
    speed_mps: float = 0.3,
    periods: int = DEFAULT_REFERENCE_PERIODS,
    sample_rate_hz: float = DEFAULT_REFERENCE_SAMPLE_RATE_HZ,
    wavelength_m: float | None = None,
    bottom_phase_rad: float = 0.5,
) -> ReferenceProfile:
    """The matching template: ``periods`` phase periods centred on the V-zone.

    The template spans the region around the perpendicular point within which
    the unwrapped phase stays within ``periods/2`` full periods of its minimum
    (so the whole template contains roughly ``periods`` partial or complete
    periods, the paper's default of 4).  ``bottom_phase_rad`` pins the wrapped
    phase value at the bottom of the V so the template's V-zone is deep and
    unambiguous, which is what makes it a good DTW anchor.
    """
    if periods < 1:
        raise ValueError(f"periods must be >= 1, got {periods}")
    if perpendicular_distance_m <= 0:
        raise ValueError("perpendicular distance must be positive")
    if speed_mps <= 0:
        raise ValueError("speed must be positive")
    wavelength = wavelength_m if wavelength_m is not None else channel_wavelength_m(6)

    # Half-extent of the template along the sweep: the antenna offset at which
    # the unwrapped phase has risen (periods/2) * 2*pi above the bottom.
    excess_distance = periods * wavelength / 4.0
    half_extent_m = math.sqrt(
        (perpendicular_distance_m + excess_distance) ** 2 - perpendicular_distance_m**2
    )

    # Choose a constant offset so that the wrapped phase at the bottom equals
    # bottom_phase_rad, making the template's V-zone span nearly a full period.
    bottom_unwrapped = float(
        round_trip_phase(perpendicular_distance_m, wavelength)
    )
    phase_offset = bottom_phase_rad - bottom_unwrapped

    reference = reference_profile(
        tag_x_m=half_extent_m,
        perpendicular_distance_m=perpendicular_distance_m,
        sweep_start_x_m=0.0,
        sweep_end_x_m=2.0 * half_extent_m,
        speed_mps=speed_mps,
        sample_rate_hz=sample_rate_hz,
        wavelength_m=wavelength,
        phase_offset_rad=phase_offset,
        tag_id="canonical-reference",
    )
    return ReferenceProfile(
        profile=reference.profile.with_metadata(periods=periods),
        perpendicular_time_s=reference.perpendicular_time_s,
        vzone_start_index=reference.vzone_start_index,
        vzone_end_index=reference.vzone_end_index,
        perpendicular_distance_m=perpendicular_distance_m,
    )


@lru_cache(maxsize=64)
def _cached_canonical_reference(
    perpendicular_distance_m: float,
    speed_mps: float,
    periods: int,
    sample_rate_hz: float,
    wavelength_m: float | None,
    bottom_phase_rad: float,
) -> ReferenceProfile:
    return canonical_reference(
        perpendicular_distance_m=perpendicular_distance_m,
        speed_mps=speed_mps,
        periods=periods,
        sample_rate_hz=sample_rate_hz,
        wavelength_m=wavelength_m,
        bottom_phase_rad=bottom_phase_rad,
    )


def shared_canonical_reference(
    perpendicular_distance_m: float = 0.35,
    speed_mps: float = 0.3,
    periods: int = DEFAULT_REFERENCE_PERIODS,
    sample_rate_hz: float = DEFAULT_REFERENCE_SAMPLE_RATE_HZ,
    wavelength_m: float | None = None,
    bottom_phase_rad: float = 0.5,
) -> ReferenceProfile:
    """A process-wide cached :func:`canonical_reference`.

    Reference generation is deterministic, so localizers with the same
    configuration can share one immutable :class:`ReferenceProfile` instead of
    regenerating it (and re-deriving its segmentation) per instance.  This is
    what lets a fleet of :class:`~repro.core.localizer.BatchLocalizer` calls —
    e.g. one per conveyor batch — pay the reference construction cost once.
    """
    return _cached_canonical_reference(
        float(perpendicular_distance_m),
        float(speed_mps),
        int(periods),
        float(sample_rate_hz),
        None if wavelength_m is None else float(wavelength_m),
        float(bottom_phase_rad),
    )


def clear_reference_cache() -> None:
    """Drop all cached reference profiles (mainly for tests)."""
    _cached_canonical_reference.cache_clear()
