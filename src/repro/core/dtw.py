"""Dynamic Time Warping: classic, subsequence, segmented, and batched variants.

STPP matches a *reference* phase profile (computed from nominal geometry)
against the *measured* profile of each tag to locate the V-zone (paper
§3.1.1).  Because the reader is moved by hand, the measured profile is locally
stretched and compressed; DTW absorbs those warps.  The paper's efficiency
optimisation (§3.1.2) runs DTW on the coarse segment representation instead of
raw samples, with a range-gap distance and a duration-weighted cost.

Two alignment modes are provided:

* **full** alignment maps the entire reference onto the entire measured
  profile (the textbook DTW recurrence);
* **subsequence** alignment leaves the start and end of the *measured* side
  free, i.e. it finds the measured subrange that best matches the whole
  reference.  This is the mode V-zone detection uses, because a measured
  profile usually contains more periods than the 4-period reference.

All variants share one accumulated-cost kernel, :func:`accumulate_cost`,
which evaluates the DTW recurrence along anti-diagonals so NumPy can process
a whole diagonal per step instead of one cell per step.  The batched kernel
:func:`accumulate_cost_batch` stacks many (padded) distance matrices and runs
the same diagonal sweep across all of them at once; this is what lets the
localization engine align every tag of a sweep in one pass.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .segmentation import (
    Segment,
    SegmentArrays,
    duration_weight_matrix,
    range_gap_matrix,
    segment_bounds,
    segment_distance_matrix,
    segment_durations,
    segment_duration_weights,
)


def _segmentation_columns(
    segments: "list[Segment] | SegmentArrays",
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(mins, maxs, durations)`` of either segmentation representation.

    :class:`SegmentArrays` already holds the columns; a ``list[Segment]``
    gets the identical values extracted object by object.
    """
    if isinstance(segments, SegmentArrays):
        mins, maxs = segments.bounds()
        return mins, maxs, segments.durations()
    mins, maxs = segment_bounds(segments)
    return mins, maxs, segment_durations(segments)

MAX_BATCH_CELLS = 250_000
"""Padded-cell budget per batched accumulation chunk.

The anti-diagonal sweep traverses the whole chunk once per diagonal, so the
chunk must stay cache-resident: 250k float64 cells is ~2 MB, which keeps the
sweep in L2/L3 on typical hardware.  Larger chunks amortise more per-call
overhead but start thrashing the cache (measured: a 12×380×600 stack is ~2×
slower at an 8M budget than at 250k), so this is a throughput knob, not a
correctness one — results are identical at any setting.
"""


@dataclass(frozen=True, slots=True)
class DTWResult:
    """Outcome of a DTW alignment."""

    cost: float
    """Total cost of the optimal warping path."""

    path: tuple[tuple[int, int], ...]
    """The optimal warping path as (reference index, query index) pairs."""

    query_start: int
    """First query index touched by the path."""

    query_end: int
    """Last query index touched by the path (inclusive)."""

    def query_indices_for_reference_range(self, ref_start: int, ref_end: int) -> tuple[int, int]:
        """Query index range matched to reference indices ``[ref_start, ref_end]``.

        The range is **inclusive on both ends**: a path pair ``(r, q)``
        contributes its query index ``q`` whenever ``ref_start <= r <= ref_end``.
        The returned ``(start, end)`` pair is likewise inclusive — ``end`` is
        the last matched query index, not one past it.

        Raises
        ------
        ValueError
            If ``ref_start > ref_end``, if either bound is negative, or if the
            warping path does not touch any reference index in the range (for
            a valid path this only happens when the range lies outside the
            reference rows the path covers).
        """
        if ref_start < 0 or ref_end < 0:
            raise ValueError(
                f"reference indices must be non-negative, got [{ref_start}, {ref_end}]"
            )
        if ref_start > ref_end:
            raise ValueError(
                f"reference range is inverted: start {ref_start} > end {ref_end}"
            )
        matched = [q for r, q in self.path if ref_start <= r <= ref_end]
        if not matched:
            covered_lo = min(r for r, _ in self.path)
            covered_hi = max(r for r, _ in self.path)
            raise ValueError(
                f"reference range [{ref_start}, {ref_end}] not covered by the "
                f"warping path (path covers reference rows "
                f"[{covered_lo}, {covered_hi}])"
            )
        return min(matched), max(matched)


def _backtrack(
    cost: np.ndarray, start_col: int | None = None
) -> tuple[tuple[int, int], ...]:
    """Backtrack the optimal path through an accumulated cost matrix.

    ``start_col`` selects the ending column (used by subsequence DTW); when
    None the path ends at the bottom-right corner.  Degenerate matrices are
    handled naturally: a 1×N matrix yields a purely horizontal path (or a
    single cell under a free start) and an N×1 matrix a purely vertical one.
    """
    rows, cols = cost.shape
    i = rows - 1
    j = cols - 1 if start_col is None else start_col
    path = [(i, j)]
    while i > 0 or j > 0:
        if i == 0:
            if start_col is not None:
                break  # free start: stop as soon as the first reference row is reached
            j -= 1
        elif j == 0:
            i -= 1
        else:
            candidates = (
                (cost[i - 1, j - 1], i - 1, j - 1),
                (cost[i - 1, j], i - 1, j),
                (cost[i, j - 1], i, j - 1),
            )
            _, i, j = min(candidates, key=lambda item: item[0])
        path.append((i, j))
    path.reverse()
    return tuple(path)


def _accumulate_python(
    distance: np.ndarray,
    weights: np.ndarray | None = None,
    free_query_start: bool = False,
) -> np.ndarray:
    """The seed repository's pure-Python DTW accumulation (double loop).

    Kept as the reference implementation: the equivalence tests assert that
    :func:`accumulate_cost` reproduces it bit for bit, and
    ``benchmarks/bench_dtw.py`` uses it as the before-optimisation baseline.
    """
    rows, cols = distance.shape
    if weights is None:
        weighted = distance
    else:
        weighted = distance * weights
    cost = np.full((rows, cols), np.inf, dtype=float)
    cost[0, 0] = weighted[0, 0]
    if free_query_start:
        cost[0, :] = weighted[0, :]
    else:
        for j in range(1, cols):
            cost[0, j] = cost[0, j - 1] + weighted[0, j]
    for i in range(1, rows):
        cost[i, 0] = cost[i - 1, 0] + weighted[i, 0]
        row_prev = cost[i - 1]
        row_curr = cost[i]
        for j in range(1, cols):
            best_prev = min(row_prev[j - 1], row_prev[j], row_curr[j - 1])
            row_curr[j] = weighted[i, j] + best_prev
    return cost


def _accumulate_stack(stack: np.ndarray, free_query_start: bool) -> np.ndarray:
    """Run the DTW recurrence over a ``(rows, cols, batch)`` weighted stack.

    The recurrence's row-major data dependency is broken by sweeping
    anti-diagonals: every cell on diagonal ``d = i + j`` depends only on
    diagonals ``d-1`` and ``d-2``, so a whole diagonal (across the whole
    batch) is one NumPy step.  With the batch axis innermost, flattening the
    cell axes makes an anti-diagonal a plain strided slice of ``cols - 1``
    rows apart (``flat(i, d - i) = d + i * (cols - 1)``), each row a
    contiguous run of batch lanes — no index arrays, no copies, and the inner
    ufunc loops stream over contiguous memory.

    Cell values match :func:`_accumulate_python` bit for bit: the first
    row/column use ``np.add.accumulate`` (a strictly sequential sum, like the
    seed loop) and interior cells add the same operands in the same order.
    """
    rows, cols, batch = stack.shape
    cost = np.empty_like(stack)
    if free_query_start:
        cost[0] = stack[0]
    else:
        cost[0] = np.add.accumulate(stack[0], axis=0)
    # First column: cost[i, 0] = cost[i-1, 0] + w[i, 0]; cost[0, 0] = w[0, 0]
    # in both modes, so the running sum covers it.
    cost[:, 0] = np.add.accumulate(stack[:, 0], axis=0)
    if rows == 1 or cols == 1:
        return cost

    flat_cost = cost.reshape(rows * cols, batch)
    flat_weighted = stack.reshape(rows * cols, batch)
    step = cols - 1
    for d in range(2, rows + cols - 1):
        i_lo = max(1, d - cols + 1)
        i_hi = min(rows - 1, d - 1)
        if i_lo > i_hi:
            continue
        start = d + i_lo * step
        stop = d + i_hi * step + 1
        current = slice(start, stop, step)
        left = slice(start - 1, stop - 1, step)              # (i,   j-1)
        up = slice(start - 1 - step, stop - 1 - step, step)  # (i-1, j)
        diag = slice(start - 2 - step, stop - 2 - step, step)  # (i-1, j-1)
        best = np.minimum(
            np.minimum(flat_cost[diag], flat_cost[up]), flat_cost[left]
        )
        flat_cost[current] = flat_weighted[current] + best
    return cost


def _weighted_matrix(distance: np.ndarray, weights: np.ndarray | None) -> np.ndarray:
    weighted = distance if weights is None else distance * weights
    return np.ascontiguousarray(weighted, dtype=float)


def accumulate_cost(
    distance: np.ndarray,
    weights: np.ndarray | None = None,
    free_query_start: bool = False,
) -> np.ndarray:
    """Accumulated cost matrix for (optionally weighted) DTW, vectorized.

    The single shared kernel behind :func:`dtw_align`,
    :func:`subsequence_dtw`, and :func:`segmented_dtw_align`.  Produces the
    same matrix as the seed's pure-Python double loop
    (:func:`_accumulate_python`), evaluated along anti-diagonals.
    """
    weighted = _weighted_matrix(distance, weights)
    return _accumulate_stack(weighted[:, :, None], free_query_start)[:, :, 0]


def _plan_chunks(
    shapes: list[tuple[int, int]], max_cells: int
) -> list[list[int]]:
    """Group matrix indices into padded chunks of at most ``max_cells`` cells.

    Indices are sorted by shape first so similarly sized matrices share a
    chunk and padding waste stays low.
    """
    order = sorted(range(len(shapes)), key=lambda k: shapes[k])
    chunks: list[list[int]] = []
    chunk: list[int] = []
    chunk_rows = chunk_cols = 0
    for k in order:
        rows, cols = shapes[k]
        new_rows, new_cols = max(chunk_rows, rows), max(chunk_cols, cols)
        if chunk and (len(chunk) + 1) * new_rows * new_cols > max_cells:
            chunks.append(chunk)
            chunk = []
            new_rows, new_cols = rows, cols
        chunk.append(k)
        chunk_rows, chunk_cols = new_rows, new_cols
    if chunk:
        chunks.append(chunk)
    return chunks


def _accumulate_chunk(
    chunk: list[int],
    shapes: list[tuple[int, int]],
    make_weighted,
    free_query_start: bool,
) -> np.ndarray:
    """Stack one chunk's weighted matrices (zero-padded) and accumulate it.

    Padding cannot leak into a matrix's own cells because the DTW recurrence
    only ever reads up/left/up-left neighbours, which all lie inside the
    unpadded region.
    """
    rows = max(shapes[k][0] for k in chunk)
    cols = max(shapes[k][1] for k in chunk)
    stack = np.zeros((rows, cols, len(chunk)), dtype=float)
    for slot, k in enumerate(chunk):
        r, c = shapes[k]
        stack[:r, :c, slot] = make_weighted(k)
    return _accumulate_stack(stack, free_query_start)


def accumulate_cost_batch(
    weighted: list[np.ndarray],
    free_query_start: bool = False,
    max_cells: int = MAX_BATCH_CELLS,
) -> list[np.ndarray]:
    """Accumulate many weighted distance matrices in batched diagonal sweeps.

    Matrices of different shapes are zero-padded to a common shape and swept
    together, at most ``max_cells`` padded cells per chunk (a cache-residency
    knob, see :data:`MAX_BATCH_CELLS`).  Returns the accumulated cost matrix
    of each input, in input order, each identical to what
    :func:`accumulate_cost` would produce on its own.

    Note that the *returned* matrices dominate memory here — all of them are
    materialised.  The batch aligners (:func:`subsequence_dtw_batch`,
    :func:`segmented_dtw_align_batch`) avoid that by backtracking each chunk
    as soon as it is accumulated and discarding its cost matrices.
    """
    shapes = [m.shape for m in weighted]
    results: list[np.ndarray | None] = [None] * len(weighted)
    for chunk in _plan_chunks(shapes, max_cells):
        cost = _accumulate_chunk(
            chunk, shapes, lambda k: weighted[k], free_query_start
        )
        for slot, k in enumerate(chunk):
            r, c = shapes[k]
            results[k] = np.ascontiguousarray(cost[:r, :c, slot])
    return results  # type: ignore[return-value]


def _backtracked_batch(
    shapes: list[tuple[int, int]],
    make_weighted,
    free_query_start: bool,
    subsequence: bool,
    max_cells: int = MAX_BATCH_CELLS,
) -> list[DTWResult]:
    """Accumulate-and-backtrack many alignments, one padded chunk at a time.

    ``make_weighted(k)`` builds the weighted distance matrix of item ``k`` on
    demand, so peak memory is one chunk's stack plus the (tiny) results —
    independent of fleet size.
    """
    results: list[DTWResult | None] = [None] * len(shapes)
    for chunk in _plan_chunks(shapes, max_cells):
        cost = _accumulate_chunk(chunk, shapes, make_weighted, free_query_start)
        for slot, k in enumerate(chunk):
            r, c = shapes[k]
            results[k] = _result_from_cost(
                np.ascontiguousarray(cost[:r, :c, slot]), subsequence
            )
    return results  # type: ignore[return-value]


def _result_from_cost(cost: np.ndarray, subsequence: bool) -> DTWResult:
    """Backtrack ``cost`` and package the alignment as a :class:`DTWResult`."""
    if subsequence:
        end_col = int(np.argmin(cost[-1]))
        path = _backtrack(cost, start_col=end_col)
        total = float(cost[-1, end_col])
    else:
        path = _backtrack(cost)
        total = float(cost[-1, -1])
    return DTWResult(
        cost=total,
        path=path,
        query_start=path[0][1],
        query_end=path[-1][1],
    )


def _as_nonempty_sequence(values: np.ndarray, label: str) -> np.ndarray:
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        raise ValueError(f"{label} sequence must be non-empty")
    return array


def dtw_align(reference: np.ndarray, query: np.ndarray) -> DTWResult:
    """Full DTW alignment of two 1-D value sequences (paper §3.1.1).

    The element distance is the absolute difference of values, matching the
    Euclidean distance the paper uses on scalar phase samples.
    """
    reference = _as_nonempty_sequence(reference, "reference")
    query = _as_nonempty_sequence(query, "query")
    distance = np.abs(reference[:, None] - query[None, :])
    cost = accumulate_cost(distance, weights=None, free_query_start=False)
    return _result_from_cost(cost, subsequence=False)


def subsequence_dtw(reference: np.ndarray, query: np.ndarray) -> DTWResult:
    """Match the whole ``reference`` to the best subrange of ``query``.

    The query start and end are left free (classic subsequence DTW): the
    returned ``query_start``/``query_end`` delimit the matched subrange.
    """
    reference = _as_nonempty_sequence(reference, "reference")
    query = _as_nonempty_sequence(query, "query")
    distance = np.abs(reference[:, None] - query[None, :])
    cost = accumulate_cost(distance, weights=None, free_query_start=True)
    return _result_from_cost(cost, subsequence=True)


def subsequence_dtw_batch(
    reference: np.ndarray, queries: list[np.ndarray]
) -> list[DTWResult]:
    """Subsequence-align one reference against many queries in one batch.

    Equivalent to ``[subsequence_dtw(reference, q) for q in queries]`` but the
    accumulation sweeps whole chunks of cost matrices at once, building each
    chunk's distance matrices on demand and discarding them after
    backtracking.
    """
    reference = _as_nonempty_sequence(reference, "reference")
    cleaned = [_as_nonempty_sequence(query, "query") for query in queries]
    shapes = [(reference.size, query.size) for query in cleaned]
    return _backtracked_batch(
        shapes,
        lambda k: np.abs(reference[:, None] - cleaned[k][None, :]),
        free_query_start=True,
        subsequence=True,
    )


def segmented_dtw_align(
    reference_segments: list[Segment],
    query_segments: list[Segment],
    subsequence: bool = True,
) -> DTWResult:
    """Segmented DTW (paper §3.1.2) between two segmentations.

    The per-cell distance is the gap between segment phase ranges; the cost of
    matching two segments is that distance weighted by the shorter of the two
    segment durations — both exactly as defined in the paper.  With
    ``subsequence=True`` the query's start and end are free, which is how the
    V-zone of a short reference is located inside a long measured profile.
    """
    if not reference_segments or not query_segments:
        raise ValueError("both segmentations must be non-empty")
    distance = segment_distance_matrix(reference_segments, query_segments)
    weights = segment_duration_weights(reference_segments, query_segments)
    cost = accumulate_cost(distance, weights=weights, free_query_start=subsequence)
    return _result_from_cost(cost, subsequence=subsequence)


def segmented_dtw_align_batch(
    reference_segments: "list[Segment] | SegmentArrays",
    query_segmentations: "list[list[Segment] | SegmentArrays]",
    subsequence: bool = True,
) -> list[DTWResult]:
    """Segmented DTW of one reference segmentation against many queries.

    The reference's bounds and durations are extracted once and reused across
    every query's distance/weight matrices, and the accumulations sweep whole
    padded chunks at a time (each chunk's matrices are built on demand and
    freed after backtracking).  Results are identical (costs and paths) to
    calling :func:`segmented_dtw_align` per query.  Segmentations may be
    given as ``list[Segment]`` or column-form
    :class:`~repro.core.segmentation.SegmentArrays` (the batched detector's
    representation) interchangeably.
    """
    if not len(reference_segments):
        raise ValueError("reference segmentation must be non-empty")
    if any(not len(query_segments) for query_segments in query_segmentations):
        raise ValueError("query segmentations must be non-empty")
    ref_min, ref_max, ref_durations = _segmentation_columns(reference_segments)
    query_arrays = [
        _segmentation_columns(query_segments)
        for query_segments in query_segmentations
    ]
    shapes = [
        (len(reference_segments), len(query_segments))
        for query_segments in query_segmentations
    ]

    def make_weighted(k: int) -> np.ndarray:
        q_min, q_max, q_durations = query_arrays[k]
        distance = range_gap_matrix(ref_min, ref_max, q_min, q_max)
        return distance * duration_weight_matrix(ref_durations, q_durations)

    return _backtracked_batch(
        shapes, make_weighted, free_query_start=subsequence, subsequence=subsequence
    )


class ResumableSegmentAligner:
    """Subsequence segmented DTW that resumes as the query grows (streaming).

    The accumulated-cost matrix of subsequence DTW has a crucial property:
    column ``j`` depends only on columns ``<= j``.  A growing *measured*
    segmentation therefore never invalidates the columns of segments that are
    already **stable** (closed by the incremental segmenter — no future sample
    can change them), so this aligner caches the accumulation prefix over the
    stable columns and, on every refresh, computes only

    * the columns of segments that became stable since the last refresh, which
      are appended to the cache, and
    * the (at most one, usually) volatile tail columns, recomputed into
      scratch space.

    Per refresh that is O(rows × new_columns) instead of O(rows × columns),
    which is what makes per-round provisional orderings cheap.

    **Bit-identity contract**: every cell is computed with the same operations
    on the same operands as :func:`accumulate_cost` (column 0 via the same
    strictly sequential ``np.add.accumulate``; interior cells as
    ``weighted + min(diag, up, left)``), and the path comes from the shared
    :func:`_backtrack`.  The result of :meth:`align` is therefore bit-identical
    to ``segmented_dtw_align(reference_segments, query_segments)`` — pinned by
    ``tests/test_streaming.py``.
    """

    def __init__(self, reference_segments: list[Segment]) -> None:
        if not reference_segments:
            raise ValueError("reference segmentation must be non-empty")
        self._ref_min, self._ref_max = segment_bounds(reference_segments)
        self._ref_durations = segment_durations(reference_segments)
        self._rows = len(reference_segments)
        self._cost = np.empty((self._rows, 8), dtype=float)
        self._cached_cols = 0

    @property
    def cached_columns(self) -> int:
        """Number of stable query columns whose accumulation is cached."""
        return self._cached_cols

    def reset(self) -> None:
        """Drop the cached prefix (used when a tag's stream is rebuilt)."""
        self._cached_cols = 0

    def _weighted_column(self, segment: Segment) -> np.ndarray:
        """Weighted distance of every reference segment against ``segment``.

        Built from the same :func:`range_gap_matrix` /
        :func:`duration_weight_matrix` helpers the batch aligner uses (as
        one-column matrices), so the two paths share a single source of
        truth for the paper's distance and weight formulas.
        """
        distance = range_gap_matrix(
            self._ref_min,
            self._ref_max,
            np.array([segment.min_phase_rad]),
            np.array([segment.max_phase_rad]),
        )[:, 0]
        weights = duration_weight_matrix(
            self._ref_durations, np.array([max(segment.duration_s, 1e-6)])
        )[:, 0]
        return distance * weights

    def _accumulate_column(
        self, weighted: np.ndarray, previous: np.ndarray | None
    ) -> np.ndarray:
        """One column of the subsequence-DTW recurrence.

        ``previous`` is the accumulated column to the left (None for the
        first column, which is a plain running sum in both start modes).
        """
        if previous is None:
            return np.add.accumulate(weighted)
        column = np.empty(self._rows, dtype=float)
        # Free query start: the first reference row restarts the match.
        column[0] = weighted[0]
        prev = previous.tolist()
        w = weighted.tolist()
        up = w[0]
        for i in range(1, self._rows):
            best = min(prev[i - 1], up, prev[i])  # diag, up, left
            up = w[i] + best
            column[i] = up
        return column

    def _ensure_capacity(self, columns: int) -> None:
        if self._cost.shape[1] >= columns:
            return
        capacity = self._cost.shape[1]
        while capacity < columns:
            capacity *= 2
        grown = np.empty((self._rows, capacity), dtype=float)
        grown[:, : self._cached_cols] = self._cost[:, : self._cached_cols]
        self._cost = grown

    def align(
        self, query_segments: list[Segment], stable_count: int | None = None
    ) -> DTWResult:
        """Align the reference against the current query segmentation.

        Parameters
        ----------
        query_segments:
            The measured profile's segmentation so far (stable prefix first).
        stable_count:
            How many leading segments are stable (from
            :meth:`~repro.core.segmentation.IncrementalSegmenter.stable_count`).
            Defaults to all but the last segment.  Must not shrink between
            calls — a shrinking prefix means the stream was rebuilt, in which
            case call :meth:`reset` first.
        """
        columns = len(query_segments)
        if columns == 0:
            raise ValueError("query segmentation must be non-empty")
        if stable_count is None:
            stable_count = columns - 1
        stable = min(stable_count, columns)
        if stable < self._cached_cols:
            raise ValueError(
                f"stable prefix shrank from {self._cached_cols} to {stable} "
                "columns; call reset() after rebuilding a stream"
            )

        # Volatile tail columns are written into the same buffer past the
        # cached prefix (no scratch matrix, no prefix copy — the per-refresh
        # cost really is O(rows × new columns)); they are overwritten on the
        # next refresh because _cached_cols does not advance past `stable`.
        self._ensure_capacity(columns)
        for j in range(self._cached_cols, columns):
            previous = self._cost[:, j - 1] if j > 0 else None
            self._cost[:, j] = self._accumulate_column(
                self._weighted_column(query_segments[j]), previous
            )
        self._cached_cols = stable
        return _result_from_cost(self._cost[:, :columns], subsequence=True)


def warp_query_to_reference(result: DTWResult, query_values: np.ndarray) -> np.ndarray:
    """Re-sample ``query_values`` onto the reference index axis along the path.

    For each reference index the matched query values are averaged; used to
    visualise the "after warping" alignment of Figure 7.
    """
    query_values = np.asarray(query_values, dtype=float)
    ref_length = max(r for r, _ in result.path) + 1
    sums = np.zeros(ref_length, dtype=float)
    counts = np.zeros(ref_length, dtype=float)
    for ref_index, query_index in result.path:
        sums[ref_index] += query_values[query_index]
        counts[ref_index] += 1.0
    counts[counts == 0] = 1.0
    return sums / counts
